// Application performance & power model.
//
// Performance: a two-term roofline abstraction.  A fraction `beta` of an
// application's runtime scales inversely with the core clock (instruction
// throughput bound); the remainder is clock-insensitive (DRAM bandwidth,
// network, I/O).  Runtime at effective frequency f relative to the
// reference boost clock f_ref is
//
//     T(f) = T_ref * [ (1 - beta) + beta * f_ref / f ].
//
// This single parameter reproduces the paper's observation that the 2.25->
// 2.0 GHz change costs 5% (memory-bound VASP CdTe) to 26% (compute-bound
// LAMMPS) because applications actually boost to ~2.8 GHz, so the change is
// really 2.8 -> 2.0 (§4.2).  `beta` is recovered from Table 4's published
// performance ratios by inverting the formula.
//
// Power: the node draw while running the application comes from
// power/node_model.hpp with a per-application dynamic profile calibrated
// from the published energy ratios (see calibration notes there), plus a
// per-application power-determinism uplift calibrated from Table 3.
#pragma once

#include <string>

#include "power/node_model.hpp"
#include "power/pstate.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Broad research areas used for the workload mix (paper §1.1 lists the
/// major ARCHER2 communities).
enum class ScienceArea {
  kMaterials,
  kClimateOcean,
  kBiomolecular,
  kEngineering,
  kMineralPhysics,
  kSeismology,
  kPlasma,
};

[[nodiscard]] std::string to_string(ScienceArea a);

/// Static description of one application (or benchmark case).
struct ApplicationSpec {
  std::string name;
  ScienceArea area = ScienceArea::kMaterials;
  /// Clock-sensitive fraction of runtime, in [0, 1].
  double beta = 0.3;
  /// Loaded whole-node draw at the boost clock under performance
  /// determinism, watts.
  double loaded_node_w = 470.0;
  /// Loaded node power ratio at 2.0 GHz vs boost (rho = P(2.0)/P(boost)).
  double power_ratio_2ghz = 0.78;
  /// Achieved all-core boost under 2.25 GHz + turbo, performance
  /// determinism.
  Frequency boost = Frequency::ghz(2.8);
  /// Fractional extra dynamic core power drawn under power determinism.
  double power_det_uplift = 0.25;
  /// Fraction of runtime spent in inter-node communication (a subset of
  /// the clock-insensitive part; used by the interconnect model).
  double comm_fraction = 0.15;
  /// Share of the machine's *node-hours* attributed to this application
  /// when generating the production mix (unnormalised weight; 0 for
  /// benchmark-only entries that never appear in the background mix).  The
  /// generator converts this into a per-job probability internally.
  double mix_weight = 0.0;
  /// Typical job geometry for the generator.
  double typical_nodes = 32.0;
  double typical_runtime_h = 6.0;
};

/// Runnable model: spec plus the calibrated dynamic power profile.
class ApplicationModel {
 public:
  /// Calibrates the dynamic power profile from the spec against the node
  /// parameters; throws InvalidArgument if the spec is infeasible.
  ApplicationModel(ApplicationSpec spec, const NodePowerParams& node_params);

  [[nodiscard]] const ApplicationSpec& spec() const { return spec_; }
  [[nodiscard]] const std::string& name() const { return spec_.name; }
  [[nodiscard]] const DynamicPowerProfile& profile() const { return profile_; }

  /// Effective core clock under a P-state/mode.
  [[nodiscard]] Frequency effective_frequency(DeterminismMode mode,
                                              const PState& pstate) const;

  /// Runtime multiplier relative to reference conditions (boost clock,
  /// performance determinism).  >= ~1 for any slower setting.
  [[nodiscard]] double time_factor(DeterminismMode mode,
                                   const PState& pstate) const;

  /// Runtime at the given settings for a job with reference runtime
  /// `ref_runtime` (measured at reference conditions).
  [[nodiscard]] Duration runtime(Duration ref_runtime, DeterminismMode mode,
                                 const PState& pstate) const;

  /// perf(b) / perf(a): how much faster/slower condition b is than a.
  [[nodiscard]] double perf_ratio(DeterminismMode mode_b, const PState& ps_b,
                                  DeterminismMode mode_a,
                                  const PState& ps_a) const;

  /// Fractional slowdown of `pstate`/`mode` vs reference conditions
  /// (0.26 means 26% slower).  Used by the per-application opt-out policy.
  [[nodiscard]] double expected_slowdown(DeterminismMode mode,
                                         const PState& pstate) const;

  /// Whole-node draw while running this application at full node load.
  [[nodiscard]] Power node_draw(DeterminismMode mode, const PState& pstate,
                                double silicon_factor = 1.0) const;

  /// Silicon-independent power terms for this application at full node
  /// load: `node_draw_terms(m, p).watts(s)` equals
  /// `node_draw(m, p, s).w()` bit-for-bit, but the DVFS state is hoisted
  /// so per-silicon evaluation is two multiply-adds (policy-epoch caches,
  /// fleet batching).
  [[nodiscard]] NodePowerTerms node_draw_terms(DeterminismMode mode,
                                               const PState& pstate) const;

  /// Compute-node energy of a whole job (nodes x node power x runtime).
  [[nodiscard]] Energy job_energy(std::size_t nodes, Duration ref_runtime,
                                  DeterminismMode mode,
                                  const PState& pstate) const;

  /// energy(b) / energy(a) for the same job under two settings.
  [[nodiscard]] double energy_ratio(DeterminismMode mode_b,
                                    const PState& ps_b,
                                    DeterminismMode mode_a,
                                    const PState& ps_a) const;

  [[nodiscard]] const NodePowerParams& node_params() const {
    return node_params_;
  }

 private:
  ApplicationSpec spec_;
  NodePowerParams node_params_;
  DynamicPowerProfile profile_;
};

/// Invert the roofline formula: clock-sensitive fraction from a published
/// performance ratio between 2.0 GHz and the boost clock.
[[nodiscard]] double beta_from_perf_ratio(double perf_ratio_2ghz,
                                          Frequency boost);

/// Calibrate the power-determinism uplift so that the model reproduces a
/// published energy ratio (performance- vs power-determinism, both at the
/// turbo P-state), as measured in the paper's Table 3.
[[nodiscard]] double calibrate_power_det_uplift(
    const ApplicationSpec& spec, const NodePowerParams& node_params,
    double target_energy_ratio);

}  // namespace hpcem
