#include "workload/trace.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

namespace {

double parse_double(const std::string& s, const char* field) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw ParseError(std::string("job trace: bad ") + field + ": " + s);
  }
  return v;
}

std::string pstate_code(const PState& p) {
  return TextTable::num(p.nominal.to_ghz(), 2) + (p.turbo ? "+turbo" : "");
}

PState parse_pstate(const std::string& s) {
  const bool turbo = s.ends_with("+turbo");
  const std::string num = turbo ? s.substr(0, s.size() - 6) : s;
  PState p{Frequency::ghz(parse_double(num, "pstate")), turbo};
  if (!is_valid_pstate(p)) throw ParseError("job trace: bad pstate: " + s);
  return p;
}

}  // namespace

std::string jobs_to_csv(const std::vector<JobSpec>& jobs) {
  CsvWriter w({"id", "app", "nodes", "ref_runtime_s", "submit_s",
               "walltime_s", "user_pstate", "silicon"});
  for (const auto& j : jobs) {
    w.add_row({std::to_string(j.id), j.app, std::to_string(j.nodes),
               TextTable::num(j.ref_runtime.sec(), 3),
               TextTable::num(j.submit_time.sec(), 3),
               TextTable::num(j.requested_walltime.sec(), 3),
               j.user_pstate ? pstate_code(*j.user_pstate) : "",
               TextTable::num(j.silicon_factor, 6)});
  }
  return w.str();
}

std::vector<JobSpec> jobs_from_csv(const std::string& text) {
  const CsvTable t = parse_csv(text);
  const std::size_t c_id = t.column("id");
  const std::size_t c_app = t.column("app");
  const std::size_t c_nodes = t.column("nodes");
  const std::size_t c_ref = t.column("ref_runtime_s");
  const std::size_t c_sub = t.column("submit_s");
  const std::size_t c_wall = t.column("walltime_s");
  const std::size_t c_ps = t.column("user_pstate");
  const std::size_t c_sil = t.column("silicon");

  std::vector<JobSpec> jobs;
  jobs.reserve(t.rows.size());
  for (const auto& row : t.rows) {
    JobSpec j;
    j.id = static_cast<JobId>(parse_double(row[c_id], "id"));
    j.app = row[c_app];
    j.nodes = static_cast<std::size_t>(parse_double(row[c_nodes], "nodes"));
    if (j.nodes == 0) throw ParseError("job trace: zero-node job");
    j.ref_runtime =
        Duration::seconds(parse_double(row[c_ref], "ref_runtime_s"));
    j.submit_time = SimTime(parse_double(row[c_sub], "submit_s"));
    j.requested_walltime =
        Duration::seconds(parse_double(row[c_wall], "walltime_s"));
    if (!row[c_ps].empty()) j.user_pstate = parse_pstate(row[c_ps]);
    j.silicon_factor = parse_double(row[c_sil], "silicon");
    jobs.push_back(std::move(j));
  }
  return jobs;
}

void write_jobs_file(const std::filesystem::path& path,
                     const std::vector<JobSpec>& jobs) {
  const std::string text = jobs_to_csv(jobs);
  std::ofstream out(path);
  if (!out) throw ParseError("cannot write jobs file: " + path.string());
  out << text;
  if (!out) throw ParseError("I/O error writing jobs file: " + path.string());
}

std::vector<JobSpec> read_jobs_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open jobs file: " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return jobs_from_csv(buf.str());
}

std::string records_to_csv(const std::vector<JobRecord>& recs) {
  CsvWriter w({"id", "app", "nodes", "submit", "start", "end", "pstate",
               "mode", "node_energy_kwh", "node_power_w", "node_hours"});
  for (const auto& r : recs) {
    w.add_row({std::to_string(r.spec.id), r.spec.app,
               std::to_string(r.spec.nodes),
               iso_date_time(r.spec.submit_time), iso_date_time(r.start_time),
               iso_date_time(r.end_time), pstate_code(r.pstate),
               to_string(r.mode), TextTable::num(r.node_energy.to_kwh(), 3),
               TextTable::num(r.node_power_w, 1),
               TextTable::num(r.node_hours(), 3)});
  }
  return w.str();
}

}  // namespace hpcem
