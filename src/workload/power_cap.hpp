// Node-level power capping (RAPL/cray-style) as an operational lever.
//
// The paper's two levers act through BIOS mode and the frequency default.
// Production systems expose a third: a per-node power cap that the firmware
// enforces by throttling the clock until the node draws no more than the
// cap.  The model inverts the node power function: given a cap, find the
// effective core clock on the continuous DVFS curve (bisection on the
// monotone f·V(f)² law), then feed that clock through the same roofline
// performance model the rest of the library uses.  This makes caps and
// frequency defaults directly comparable: same fleet saving, different
// per-application performance distribution — capping hurts power-hungry
// codes most, while a frequency default hurts clock-sensitive codes most.
#pragma once

#include <optional>

#include "power/node_model.hpp"
#include "workload/catalog.hpp"

namespace hpcem {

/// Result of applying a cap to one application's node.
struct CappedOperatingPoint {
  /// Clock the firmware settles at (<= the uncapped effective clock).
  Frequency effective;
  /// Node draw at that clock (<= cap, == cap when throttled).
  Power node_power;
  /// True if the cap actually bound (the app drew more uncapped).
  bool throttled = false;
  /// Runtime multiplier vs the uncapped turbo reference.
  double time_factor = 1.0;
};

/// Lowest clock the throttle model will settle at.
inline constexpr double kMinThrottleGhz = 1.0;

/// Solve the throttle point for an application under a node power cap,
/// starting from the turbo operating point (performance determinism).
/// Caps below the node's draw at kMinThrottleGhz are unreachable and
/// reported as throttled at kMinThrottleGhz (firmware floor), matching
/// real RAPL behaviour where idle/uncore power is not cappable.
[[nodiscard]] CappedOperatingPoint apply_power_cap(
    const ApplicationModel& app, Power cap);

/// Fleet planning: the cap that yields a target mix-average node draw.
/// Returns nullopt if the target is below the fleet's floor draw.
[[nodiscard]] std::optional<Power> cap_for_target_draw(
    const AppCatalog& catalog, Power target_mean_draw);

/// One row of the cap-vs-frequency comparison.
struct CapComparisonRow {
  std::string app;
  double cap_time_factor = 0.0;   ///< runtime multiplier under the cap
  double freq_time_factor = 0.0;  ///< runtime multiplier at 2.0 GHz
  double cap_node_w = 0.0;
  double freq_node_w = 0.0;
};

/// Compare a node power cap against the 2.0 GHz default at matched fleet
/// draw, per production application.
[[nodiscard]] std::vector<CapComparisonRow> compare_cap_vs_frequency(
    const AppCatalog& catalog, Power cap);

}  // namespace hpcem
