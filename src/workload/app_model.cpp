#include "workload/app_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hpcem {

std::string to_string(ScienceArea a) {
  switch (a) {
    case ScienceArea::kMaterials:
      return "materials science";
    case ScienceArea::kClimateOcean:
      return "climate/ocean modelling";
    case ScienceArea::kBiomolecular:
      return "biomolecular modelling";
    case ScienceArea::kEngineering:
      return "engineering";
    case ScienceArea::kMineralPhysics:
      return "mineral physics";
    case ScienceArea::kSeismology:
      return "seismology";
    case ScienceArea::kPlasma:
      return "plasma physics";
  }
  return "unknown";
}

ApplicationModel::ApplicationModel(ApplicationSpec spec,
                                   const NodePowerParams& node_params)
    : spec_(std::move(spec)), node_params_(node_params) {
  require(spec_.beta >= 0.0 && spec_.beta <= 1.0,
          "ApplicationModel: beta must be in [0, 1] for " + spec_.name);
  require(spec_.comm_fraction >= 0.0 &&
              spec_.comm_fraction + spec_.beta <= 1.0,
          "ApplicationModel: comm_fraction must fit in the clock-insensitive "
          "part for " +
              spec_.name);
  require(spec_.power_det_uplift >= 0.0,
          "ApplicationModel: uplift must be non-negative for " + spec_.name);
  require(spec_.mix_weight >= 0.0,
          "ApplicationModel: mix_weight must be non-negative for " +
              spec_.name);
  profile_ = calibrate_dynamic_profile(
      node_params_, Power::watts(spec_.loaded_node_w),
      spec_.power_ratio_2ghz, spec_.boost);
}

Frequency ApplicationModel::effective_frequency(DeterminismMode mode,
                                                const PState& pstate) const {
  return ::hpcem::effective_frequency(node_params_.cpu, pstate, mode,
                                      spec_.boost);
}

double ApplicationModel::time_factor(DeterminismMode mode,
                                     const PState& pstate) const {
  const Frequency f = effective_frequency(mode, pstate);
  const double ratio = spec_.boost.to_ghz() / f.to_ghz();
  return (1.0 - spec_.beta) + spec_.beta * ratio;
}

Duration ApplicationModel::runtime(Duration ref_runtime, DeterminismMode mode,
                                   const PState& pstate) const {
  require(ref_runtime.sec() > 0.0,
          "ApplicationModel::runtime: reference runtime must be positive");
  return ref_runtime * time_factor(mode, pstate);
}

double ApplicationModel::perf_ratio(DeterminismMode mode_b,
                                    const PState& ps_b,
                                    DeterminismMode mode_a,
                                    const PState& ps_a) const {
  return time_factor(mode_a, ps_a) / time_factor(mode_b, ps_b);
}

double ApplicationModel::expected_slowdown(DeterminismMode mode,
                                           const PState& pstate) const {
  return time_factor(mode, pstate) - 1.0;
}

Power ApplicationModel::node_draw(DeterminismMode mode, const PState& pstate,
                                  double silicon_factor) const {
  NodeActivity act;
  act.load = 1.0;
  act.pstate = pstate;
  act.mode = mode;
  act.app_boost = spec_.boost;
  act.power_det_uplift = spec_.power_det_uplift;
  act.silicon_factor = silicon_factor;
  return node_power(node_params_, profile_, act);
}

NodePowerTerms ApplicationModel::node_draw_terms(DeterminismMode mode,
                                                 const PState& pstate) const {
  NodeActivity act;
  act.load = 1.0;
  act.pstate = pstate;
  act.mode = mode;
  act.app_boost = spec_.boost;
  act.power_det_uplift = spec_.power_det_uplift;
  return node_power_terms(node_params_, profile_, act);
}

Energy ApplicationModel::job_energy(std::size_t nodes, Duration ref_runtime,
                                    DeterminismMode mode,
                                    const PState& pstate) const {
  require(nodes > 0, "ApplicationModel::job_energy: nodes must be positive");
  const Power p = node_draw(mode, pstate) * static_cast<double>(nodes);
  return p * runtime(ref_runtime, mode, pstate);
}

double ApplicationModel::energy_ratio(DeterminismMode mode_b,
                                      const PState& ps_b,
                                      DeterminismMode mode_a,
                                      const PState& ps_a) const {
  const Duration ref = Duration::hours(1.0);
  const Energy eb = job_energy(1, ref, mode_b, ps_b);
  const Energy ea = job_energy(1, ref, mode_a, ps_a);
  return eb / ea;
}

double beta_from_perf_ratio(double perf_ratio_2ghz, Frequency boost) {
  require(perf_ratio_2ghz > 0.0 && perf_ratio_2ghz <= 1.0,
          "beta_from_perf_ratio: ratio must be in (0, 1]");
  const double speed_ratio = boost.to_ghz() / 2.0;
  require(speed_ratio > 1.0, "beta_from_perf_ratio: boost must be > 2 GHz");
  // 1/r = (1 - beta) + beta * speed_ratio  =>  beta = (1/r - 1)/(sr - 1).
  const double beta = (1.0 / perf_ratio_2ghz - 1.0) / (speed_ratio - 1.0);
  require(beta <= 1.0,
          "beta_from_perf_ratio: ratio implies beta > 1 (inconsistent with "
          "the boost clock)");
  return beta;
}

double calibrate_power_det_uplift(const ApplicationSpec& spec,
                                  const NodePowerParams& node_params,
                                  double target_energy_ratio) {
  require(target_energy_ratio > 0.0 && target_energy_ratio <= 1.0,
          "calibrate_power_det_uplift: target must be in (0, 1]");
  // Work at the turbo P-state.  E_ratio = (P_pd * T_pd) / (P_wd * T_wd)
  // where pd = performance determinism, wd = power determinism, and the
  // only unknown in P_wd is the uplift.
  const DynamicPowerProfile profile = calibrate_dynamic_profile(
      node_params, Power::watts(spec.loaded_node_w), spec.power_ratio_2ghz,
      spec.boost);

  const double s = node_params.idle.w();
  const double boost_factor = 1.0 + node_params.cpu.power_determinism_boost;
  const Frequency f_wd = Frequency::ghz(spec.boost.to_ghz() * boost_factor);
  const double phi_wd = dvfs_factor(node_params.cpu, f_wd, spec.boost);

  // Time ratio: power determinism runs slightly faster via the extra boost.
  const double t_pd = 1.0;  // reference conditions
  const double t_wd =
      (1.0 - spec.beta) + spec.beta / boost_factor;

  const double p_pd = spec.loaded_node_w;  // phi = 1 at the boost reference
  const double p_wd_needed = p_pd * t_pd / (target_energy_ratio * t_wd);

  const double core_at_wd = p_wd_needed - s - profile.uncore_w;
  require(profile.core_w > 0.0,
          "calibrate_power_det_uplift: application has no core-clock "
          "dynamic power to uplift");
  const double one_plus_uplift = core_at_wd / (profile.core_w * phi_wd);
  require(one_plus_uplift >= 1.0,
          "calibrate_power_det_uplift: target energy ratio implies a "
          "negative uplift for " +
              spec.name);
  return one_plus_uplift - 1.0;
}

}  // namespace hpcem
