#include "workload/policy.hpp"

namespace hpcem {

bool OperatingPolicy::auto_reverts(const ApplicationModel& app) const {
  if (!auto_revert_enabled) return false;
  if (default_pstate == pstates::kHighTurbo) return false;
  return app.expected_slowdown(bios_mode, default_pstate) > revert_threshold;
}

PState OperatingPolicy::resolve_pstate(const ApplicationModel& app,
                                       const JobSpec& job) const {
  if (job.user_pstate) return *job.user_pstate;
  if (auto_reverts(app)) return pstates::kHighTurbo;
  return default_pstate;
}

OperatingPolicy OperatingPolicy::baseline() {
  OperatingPolicy p;
  p.bios_mode = DeterminismMode::kPowerDeterminism;
  p.default_pstate = pstates::kHighTurbo;
  return p;
}

OperatingPolicy OperatingPolicy::performance_determinism() {
  OperatingPolicy p = baseline();
  p.bios_mode = DeterminismMode::kPerformanceDeterminism;
  return p;
}

OperatingPolicy OperatingPolicy::low_frequency_default() {
  OperatingPolicy p = performance_determinism();
  p.default_pstate = pstates::kMid;
  return p;
}

}  // namespace hpcem
