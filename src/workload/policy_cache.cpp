#include "workload/policy_cache.hpp"

#include "util/error.hpp"

namespace hpcem {

namespace {

constexpr std::array<PState, 4> kSlotPStates = {
    pstates::kLow, pstates::kMid, pstates::kHighTurbo, pstates::kHighNoTurbo};

}  // namespace

PolicyFactorCache::PolicyFactorCache(const AppCatalog& catalog)
    : catalog_(&catalog) {}

std::size_t PolicyFactorCache::slot_of(const PState& pstate) {
  for (std::size_t i = 0; i < kSlotPStates.size(); ++i) {
    if (kSlotPStates[i] == pstate) return i;
  }
  // Same guard (and message) the uncached path hits first, in
  // ApplicationModel::time_factor -> effective_frequency.
  require(false, "effective_frequency: invalid P-state");
  return 0;
}

void PolicyFactorCache::set_policy(const OperatingPolicy& policy) {
  policy_ = policy;
  ++epoch_;

  const auto apps = catalog_->apps();
  by_app_.resize(apps.size());
  default_slot_.resize(apps.size());
  const JobSpec probe;  // no user pin: policy resolution applies
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const ApplicationModel& app = apps[a];
    for (std::size_t s = 0; s < kPStateSlots; ++s) {
      JobFactors& f = by_app_[a][s];
      f.pstate = kSlotPStates[s];
      f.time_factor = app.time_factor(policy_.bios_mode, f.pstate);
      f.draw = app.node_draw_terms(policy_.bios_mode, f.pstate);
    }
    default_slot_[a] = slot_of(policy_.resolve_pstate(app, probe));
  }

  // Identical accumulation (weights, order, division) to the uncached
  // demand_scale: mix_average over the cached time factors.
  const double mean_factor =
      catalog_->mix_average([&](const ApplicationModel& app) {
        const std::size_t a =
            static_cast<std::size_t>(&app - apps.data());
        return by_app_[a][default_slot_[a]].time_factor;
      });
  HPCEM_ASSERT(mean_factor > 0.0, "mean time factor must be positive");
  demand_scale_ = 1.0 / mean_factor;
}

const PolicyFactorCache::JobFactors& PolicyFactorCache::factors(
    std::size_t app_index, const JobSpec& job) const {
  require_state(epoch_ > 0,
                "PolicyFactorCache::factors: set_policy not called");
  require(app_index < by_app_.size(),
          "PolicyFactorCache::factors: app index out of range");
  const std::size_t slot = job.user_pstate ? slot_of(*job.user_pstate)
                                           : default_slot_[app_index];
  return by_app_[app_index][slot];
}

}  // namespace hpcem
