// Job-trace serialisation (CSV), for replaying workloads and exporting
// simulated accounting data in a Slurm-sacct-like layout.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "workload/jobs.hpp"

namespace hpcem {

/// Serialise submitted jobs (a workload) to CSV text.
[[nodiscard]] std::string jobs_to_csv(const std::vector<JobSpec>& jobs);

/// Parse a workload written by jobs_to_csv; throws ParseError on bad input.
[[nodiscard]] std::vector<JobSpec> jobs_from_csv(const std::string& text);

/// Write/read workload files.
void write_jobs_file(const std::filesystem::path& path,
                     const std::vector<JobSpec>& jobs);
[[nodiscard]] std::vector<JobSpec> read_jobs_file(
    const std::filesystem::path& path);

/// Serialise completed-job accounting records (sacct-like) to CSV text.
[[nodiscard]] std::string records_to_csv(const std::vector<JobRecord>& recs);

}  // namespace hpcem
