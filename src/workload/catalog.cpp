#include "workload/catalog.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

namespace {

/// Build a benchmark spec from its Table 4 row: invert the published
/// performance ratio into beta and the published energy ratio into the
/// dynamic power split (rho = energy_ratio * perf_ratio).  `loaded_w` is
/// raised to the feasibility bound if the published ratios demand it.
ApplicationSpec benchmark_from_table4(std::string name, ScienceArea area,
                                      double perf_ratio, double energy_ratio,
                                      double loaded_w,
                                      const NodePowerParams& node_params) {
  ApplicationSpec spec;
  spec.name = std::move(name);
  spec.area = area;
  spec.boost = Frequency::ghz(2.8);
  spec.beta = beta_from_perf_ratio(perf_ratio, spec.boost);
  spec.power_ratio_2ghz = energy_ratio * perf_ratio;
  const Power min_l = min_feasible_loaded_power(
      node_params, spec.power_ratio_2ghz, spec.boost);
  spec.loaded_node_w = std::max(loaded_w, min_l.w() + 5.0);
  spec.mix_weight = 0.0;  // benchmark-only entry
  return spec;
}

}  // namespace

AppCatalog AppCatalog::archer2(const NodePowerParams& np) {
  AppCatalog cat;

  // -------------------------------------------------------------------
  // Benchmark cases (Tables 3 and 4).  Published numbers from the paper.
  // -------------------------------------------------------------------

  // CASTEP Al Slab: Table 4 (4 nodes: perf 0.93, energy 0.88) and
  // Table 3 (16 nodes: perf 0.99, energy 0.94).
  {
    auto spec = benchmark_from_table4("CASTEP Al Slab",
                                      ScienceArea::kMaterials, 0.93, 0.88,
                                      450.0, np);
    spec.power_det_uplift = calibrate_power_det_uplift(spec, np, 0.94);
    spec.comm_fraction = 0.20;
    spec.typical_nodes = 16;
    spec.typical_runtime_h = 2.0;
    cat.add(std::move(spec), np,
            {{4, 4, 0.93, 0.88}, {3, 16, 0.99, 0.94}});
  }

  // CP2K H2O 2048: Table 4 (4 nodes: perf 0.91, energy 0.93).
  {
    auto spec = benchmark_from_table4("CP2K H2O 2048",
                                      ScienceArea::kMaterials, 0.91, 0.93,
                                      460.0, np);
    spec.power_det_uplift = 0.20;
    spec.comm_fraction = 0.18;
    spec.typical_nodes = 4;
    spec.typical_runtime_h = 1.5;
    cat.add(std::move(spec), np, {{4, 4, 0.91, 0.93}});
  }

  // GROMACS 1400k: Table 4 (3 nodes: perf 0.83, energy 0.92).
  {
    auto spec = benchmark_from_table4("GROMACS 1400k",
                                      ScienceArea::kBiomolecular, 0.83, 0.92,
                                      490.0, np);
    spec.power_det_uplift = 0.22;
    spec.comm_fraction = 0.12;
    spec.typical_nodes = 3;
    spec.typical_runtime_h = 1.0;
    cat.add(std::move(spec), np, {{4, 3, 0.83, 0.92}});
  }

  // LAMMPS Ethanol: Table 4 (4 nodes: perf 0.74, energy 0.92).
  {
    auto spec = benchmark_from_table4("LAMMPS Ethanol",
                                      ScienceArea::kMaterials, 0.74, 0.92,
                                      510.0, np);
    spec.power_det_uplift = 0.24;
    spec.comm_fraction = 0.08;
    spec.typical_nodes = 4;
    spec.typical_runtime_h = 1.0;
    cat.add(std::move(spec), np, {{4, 4, 0.74, 0.92}});
  }

  // Nektar++ TGV 128 DoF: Table 4 (2 nodes: perf 0.80, energy 0.80).
  {
    auto spec = benchmark_from_table4("Nektar++ TGV 128 DoF",
                                      ScienceArea::kEngineering, 0.80, 0.80,
                                      570.0, np);
    spec.power_det_uplift = 0.20;
    spec.comm_fraction = 0.10;
    spec.typical_nodes = 2;
    spec.typical_runtime_h = 2.0;
    cat.add(std::move(spec), np, {{4, 2, 0.80, 0.80}});
  }

  // ONETEP hBN-BP-hBN: Table 4 (4 nodes: perf 0.92, energy 0.82).
  {
    auto spec = benchmark_from_table4("ONETEP hBN-BP-hBN",
                                      ScienceArea::kMaterials, 0.92, 0.82,
                                      450.0, np);
    spec.power_det_uplift = 0.16;
    spec.comm_fraction = 0.15;
    spec.typical_nodes = 4;
    spec.typical_runtime_h = 3.0;
    cat.add(std::move(spec), np, {{4, 4, 0.92, 0.82}});
  }

  // VASP CdTe: Table 4 (8 nodes: perf 0.95, energy 0.88).
  {
    auto spec = benchmark_from_table4("VASP CdTe", ScienceArea::kMaterials,
                                      0.95, 0.88, 470.0, np);
    spec.power_det_uplift = 0.19;
    spec.comm_fraction = 0.22;
    spec.typical_nodes = 8;
    spec.typical_runtime_h = 2.0;
    cat.add(std::move(spec), np, {{4, 8, 0.95, 0.88}});
  }

  // VASP TiO2: Table 3 only (32 nodes: perf 0.99, energy 0.93).  No
  // published 2.0 GHz data; parameters follow the CdTe case.
  {
    ApplicationSpec spec;
    spec.name = "VASP TiO2";
    spec.area = ScienceArea::kMaterials;
    spec.beta = 0.14;
    spec.power_ratio_2ghz = 0.84;
    spec.loaded_node_w = 470.0;
    spec.comm_fraction = 0.22;
    spec.typical_nodes = 32;
    spec.typical_runtime_h = 2.0;
    spec.power_det_uplift = calibrate_power_det_uplift(spec, np, 0.93);
    cat.add(std::move(spec), np, {{3, 32, 0.99, 0.93}});
  }

  // OpenSBLI TGV 1024^3: Table 3 only (32 nodes: perf 1.00, energy 0.90).
  // A structured-grid CFD code: memory-bandwidth dominated at this scale.
  {
    ApplicationSpec spec;
    spec.name = "OpenSBLI TGV 1024";
    spec.area = ScienceArea::kEngineering;
    spec.beta = 0.35;
    spec.power_ratio_2ghz = 0.80;
    spec.loaded_node_w = 470.0;
    spec.comm_fraction = 0.15;
    spec.typical_nodes = 32;
    spec.typical_runtime_h = 1.0;
    spec.power_det_uplift = calibrate_power_det_uplift(spec, np, 0.90);
    cat.add(std::move(spec), np, {{3, 32, 1.00, 0.90}});
  }

  // -------------------------------------------------------------------
  // Production mix.  Weights are node-hour shares shaped by the ARCHER2
  // research-area profile; power parameters tuned to the fleet anchors
  // (see file comment).  Names carry "(production)" to distinguish them
  // from the fixed benchmark cases above.
  // -------------------------------------------------------------------
  struct MixRow {
    const char* name;
    ScienceArea area;
    double weight;
    double beta;
    double rho;
    double loaded_w;
    double uplift;
    double comm;
    double nodes;
    double runtime_h;
  };
  const MixRow mix[] = {
      {"VASP (production)", ScienceArea::kMaterials, 25, 0.15, 0.80, 460,
       0.21, 0.22, 8, 8},
      {"CASTEP (production)", ScienceArea::kMaterials, 10, 0.19, 0.80, 445,
       0.16, 0.20, 16, 6},
      {"CP2K (production)", ScienceArea::kMaterials, 7, 0.24, 0.78, 450,
       0.22, 0.18, 8, 6},
      {"GROMACS (production)", ScienceArea::kBiomolecular, 8, 0.51, 0.74,
       485, 0.25, 0.12, 4, 12},
      {"LAMMPS (production)", ScienceArea::kMaterials, 5, 0.88, 0.68, 505,
       0.27, 0.08, 8, 8},
      {"UM atmosphere (production)", ScienceArea::kClimateOcean, 10, 0.24,
       0.73, 460, 0.22, 0.25, 128, 6},
      {"NEMO ocean (production)", ScienceArea::kClimateOcean, 8, 0.24, 0.73,
       455, 0.22, 0.25, 64, 8},
      {"OpenSBLI (production)", ScienceArea::kEngineering, 8, 0.24, 0.78,
       465, 0.30, 0.15, 64, 6},
      {"Nektar++ (production)", ScienceArea::kEngineering, 2, 0.625, 0.64,
       570, 0.22, 0.10, 16, 8},
      {"ONETEP (production)", ScienceArea::kMaterials, 2, 0.22, 0.75, 440,
       0.18, 0.15, 4, 10},
      {"SENGA combustion (production)", ScienceArea::kEngineering, 5, 0.24,
       0.72, 475, 0.22, 0.20, 128, 12},
      {"GS2 gyrokinetics (production)", ScienceArea::kPlasma, 5, 0.24, 0.70,
       460, 0.21, 0.18, 32, 8},
      {"SPECFEM3D (production)", ScienceArea::kSeismology, 5, 0.245, 0.75,
       470, 0.22, 0.20, 64, 10},
      {"CRYSTAL (production)", ScienceArea::kMineralPhysics, 5, 0.20, 0.76,
       450, 0.19, 0.15, 16, 8},
  };
  for (const auto& row : mix) {
    ApplicationSpec spec;
    spec.name = row.name;
    spec.area = row.area;
    spec.mix_weight = row.weight;
    spec.beta = row.beta;
    spec.power_ratio_2ghz = row.rho;
    spec.loaded_node_w = row.loaded_w;
    spec.power_det_uplift = row.uplift;
    spec.comm_fraction = row.comm;
    spec.typical_nodes = row.nodes;
    spec.typical_runtime_h = row.runtime_h;
    cat.add(std::move(spec), np);
  }

  return cat;
}

void AppCatalog::add(ApplicationSpec spec, const NodePowerParams& node_params,
                     std::vector<PaperReference> references) {
  require(!contains(spec.name),
          "AppCatalog::add: duplicate application name: " + spec.name);
  apps_.emplace_back(std::move(spec), node_params);
  refs_.push_back(std::move(references));
  index_by_name_.emplace(apps_.back().name(), apps_.size() - 1);
}

bool AppCatalog::contains(const std::string& name) const {
  return index_by_name_.count(name) > 0;
}

std::size_t AppCatalog::index_of(const std::string& name) const {
  const auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) {
    throw InvalidArgument("AppCatalog: no such application: " + name);
  }
  return it->second;
}

const ApplicationModel& AppCatalog::at(const std::string& name) const {
  return apps_[index_of(name)];
}

std::size_t AppCatalog::index(const std::string& name) const {
  return index_of(name);
}

const ApplicationModel& AppCatalog::at_index(std::size_t index) const {
  require(index < apps_.size(), "AppCatalog::at_index: index out of range");
  return apps_[index];
}

std::span<const PaperReference> AppCatalog::references(
    const std::string& name) const {
  return refs_[index_of(name)];
}

std::optional<PaperReference> AppCatalog::reference(const std::string& name,
                                                    int table) const {
  for (const auto& r : refs_[index_of(name)]) {
    if (r.table == table) return r;
  }
  return std::nullopt;
}

std::vector<const ApplicationModel*> AppCatalog::production_mix() const {
  std::vector<const ApplicationModel*> out;
  for (const auto& a : apps_) {
    if (a.spec().mix_weight > 0.0) out.push_back(&a);
  }
  return out;
}

std::vector<const ApplicationModel*> AppCatalog::benchmarks_for_table(
    int table) const {
  std::vector<const ApplicationModel*> out;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    for (const auto& r : refs_[i]) {
      if (r.table == table) {
        out.push_back(&apps_[i]);
        break;
      }
    }
  }
  return out;
}

double AppCatalog::mix_average(
    const std::function<double(const ApplicationModel&)>& metric) const {
  double num = 0.0;
  double den = 0.0;
  for (const auto& a : apps_) {
    const double w = a.spec().mix_weight;
    if (w > 0.0) {
      num += w * metric(a);
      den += w;
    }
  }
  require_state(den > 0.0, "AppCatalog::mix_average: empty production mix");
  return num / den;
}

}  // namespace hpcem
