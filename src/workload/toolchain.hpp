// Compiler/toolchain variants and their energy-efficiency interaction with
// CPU frequency.
//
// The paper's conclusions name this as future work: "investigating the
// impact of compiler and library choices on the energy efficiency of
// application benchmarks at different CPU frequencies".  The model: a
// toolchain rescales an application's runtime (better codegen), shifts its
// clock-sensitive fraction beta (vectorised code retires more work per
// cycle, so a larger share of runtime scales with the clock), and scales
// the core dynamic power (denser SIMD draws more).  The interesting
// emergent effect this reproduces: a faster, more vectorised build both
// saves energy outright *and* changes the frequency response — its 2.0 GHz
// energy ratio differs from the reference build's, so the best per-app
// frequency choice is toolchain-dependent.
#pragma once

#include <string>
#include <vector>

#include "workload/app_model.hpp"

namespace hpcem {

/// One compiler/library configuration.
struct Toolchain {
  std::string name;
  /// Runtime multiplier at reference conditions (<1 = faster build).
  double runtime_factor = 1.0;
  /// Additive shift of the application's clock-sensitive fraction.
  double beta_shift = 0.0;
  /// Multiplier on the core dynamic power component.
  double core_power_factor = 1.0;
};

/// Representative toolchains for the modelled system.  The reference is
/// the build the catalogue was calibrated against.
namespace toolchains {
/// The calibration reference (identity).
[[nodiscard]] Toolchain reference();
/// Vendor compiler with tuned math libraries: faster, more vectorised,
/// hotter cores.
[[nodiscard]] Toolchain vendor_tuned();
/// A portable -O2 build: a little slower, less vectorised.
[[nodiscard]] Toolchain portable_o2();
/// An unoptimised/debug-ish build: slow, clock-insensitive, cool.
[[nodiscard]] Toolchain unoptimised();
/// All of the above in display order.
[[nodiscard]] std::vector<Toolchain> all();
}  // namespace toolchains

/// An application rebuilt with a toolchain: wraps a re-derived
/// ApplicationModel plus the absolute runtime scale vs the reference
/// build (the ApplicationModel alone only knows *relative* time factors).
class ToolchainedApplication {
 public:
  /// Derive the variant from a calibrated base model.  Throws
  /// InvalidArgument if the shifted parameters leave the feasible space.
  ToolchainedApplication(const ApplicationModel& base, Toolchain toolchain);

  [[nodiscard]] const ApplicationModel& model() const { return model_; }
  [[nodiscard]] const Toolchain& toolchain() const { return toolchain_; }

  /// Wall-clock runtime for work that takes `base_ref_runtime` on the
  /// reference build at reference conditions.
  [[nodiscard]] Duration runtime(Duration base_ref_runtime,
                                 DeterminismMode mode,
                                 const PState& pstate) const;

  /// Compute-node energy-to-solution for the same work definition.
  [[nodiscard]] Energy energy_to_solution(std::size_t nodes,
                                          Duration base_ref_runtime,
                                          DeterminismMode mode,
                                          const PState& pstate) const;

 private:
  Toolchain toolchain_;
  ApplicationModel model_;
};

/// One cell of the toolchain x frequency energy matrix.
struct ToolchainFrequencyPoint {
  std::string toolchain;
  PState pstate;
  double runtime_ratio = 0.0;  ///< vs reference build at turbo
  double energy_ratio = 0.0;   ///< vs reference build at turbo
  double node_power_w = 0.0;
};

/// Sweep toolchains x P-states for one application (the future-work study).
[[nodiscard]] std::vector<ToolchainFrequencyPoint>
toolchain_frequency_study(const ApplicationModel& base,
                          DeterminismMode mode =
                              DeterminismMode::kPerformanceDeterminism);

}  // namespace hpcem
