#include "workload/power_cap.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hpcem {

namespace {

/// Node draw of `app` with its core clock pinned to `f` (performance
/// determinism; the continuous generalisation of the P-state model).
double draw_at_ghz(const ApplicationModel& app, double ghz) {
  const auto& np = app.node_params();
  const auto& profile = app.profile();
  const double phi =
      dvfs_factor(np.cpu, Frequency::ghz(ghz), app.spec().boost);
  return np.idle.w() + profile.uncore_w + profile.core_w * phi;
}

double time_factor_at_ghz(const ApplicationModel& app, double ghz) {
  const double beta = app.spec().beta;
  return (1.0 - beta) + beta * app.spec().boost.to_ghz() / ghz;
}

}  // namespace

CappedOperatingPoint apply_power_cap(const ApplicationModel& app,
                                     Power cap) {
  require(cap.w() > 0.0, "apply_power_cap: cap must be positive");
  const double boost_ghz = app.spec().boost.to_ghz();

  CappedOperatingPoint out;
  const double uncapped = draw_at_ghz(app, boost_ghz);
  if (uncapped <= cap.w()) {
    out.effective = app.spec().boost;
    out.node_power = Power::watts(uncapped);
    out.throttled = false;
    out.time_factor = 1.0;
    return out;
  }

  out.throttled = true;
  const double floor_draw = draw_at_ghz(app, kMinThrottleGhz);
  if (floor_draw >= cap.w()) {
    // Unreachable cap: firmware bottoms out at the throttle floor.
    out.effective = Frequency::ghz(kMinThrottleGhz);
    out.node_power = Power::watts(floor_draw);
    out.time_factor = time_factor_at_ghz(app, kMinThrottleGhz);
    return out;
  }

  // Bisection on the monotone draw(f) curve.
  double lo = kMinThrottleGhz;
  double hi = boost_ghz;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (draw_at_ghz(app, mid) > cap.w()) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  out.effective = Frequency::ghz(lo);
  out.node_power = Power::watts(draw_at_ghz(app, lo));
  out.time_factor = time_factor_at_ghz(app, lo);
  HPCEM_ASSERT(out.node_power <= cap + Power::watts(0.5),
               "bisection must respect the cap");
  return out;
}

std::optional<Power> cap_for_target_draw(const AppCatalog& catalog,
                                         Power target_mean_draw) {
  require(target_mean_draw.w() > 0.0,
          "cap_for_target_draw: target must be positive");
  auto mean_draw_under = [&](double cap_w) {
    return catalog.mix_average([&](const ApplicationModel& app) {
      return apply_power_cap(app, Power::watts(cap_w)).node_power.w();
    });
  };
  // The floor: every app throttled to the minimum clock.
  const double floor = catalog.mix_average([&](const ApplicationModel& app) {
    return draw_at_ghz(app, kMinThrottleGhz);
  });
  if (target_mean_draw.w() < floor) return std::nullopt;

  double lo = 100.0;
  double hi = 1000.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mean_draw_under(mid) > target_mean_draw.w()) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return Power::watts(0.5 * (lo + hi));
}

std::vector<CapComparisonRow> compare_cap_vs_frequency(
    const AppCatalog& catalog, Power cap) {
  std::vector<CapComparisonRow> out;
  const auto mode = DeterminismMode::kPerformanceDeterminism;
  for (const auto* app : catalog.production_mix()) {
    CapComparisonRow row;
    row.app = app->name();
    const CappedOperatingPoint capped = apply_power_cap(*app, cap);
    row.cap_time_factor = capped.time_factor;
    row.cap_node_w = capped.node_power.w();
    row.freq_time_factor = app->time_factor(mode, pstates::kMid);
    row.freq_node_w = app->node_draw(mode, pstates::kMid).w();
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace hpcem
