// Service operating policy: the paper's two levers plus the opt-out rule.
//
// §4.2 of the paper: after the default CPU frequency moved to 2.0 GHz,
// (a) users could still pin a frequency per job, and (b) applications with
// an expected slowdown above 10% had their module setup reset the frequency
// to 2.25 GHz + turbo automatically.  `resolve_pstate` encodes exactly that
// resolution order: user choice > service auto-revert > service default.
#pragma once

#include "power/pstate.hpp"
#include "workload/app_model.hpp"
#include "workload/jobs.hpp"

namespace hpcem {

/// System-wide operating configuration at a point in time.
struct OperatingPolicy {
  /// BIOS determinism mode (fleet-wide; §4.1).
  DeterminismMode bios_mode = DeterminismMode::kPowerDeterminism;
  /// Default CPU frequency for jobs that express no preference (§4.2).
  PState default_pstate = pstates::kHighTurbo;
  /// Whether the service auto-reverts badly-affected applications.
  bool auto_revert_enabled = true;
  /// Expected-slowdown threshold for the auto-revert (paper: >10%).
  double revert_threshold = 0.10;

  friend bool operator==(const OperatingPolicy&,
                         const OperatingPolicy&) = default;

  /// The P-state a job actually runs at under this policy.
  [[nodiscard]] PState resolve_pstate(const ApplicationModel& app,
                                      const JobSpec& job) const;

  /// True if the service would auto-revert this application.
  [[nodiscard]] bool auto_reverts(const ApplicationModel& app) const;

  /// The ARCHER2 service baseline (to May 2022): power determinism,
  /// 2.25 GHz + turbo default.
  [[nodiscard]] static OperatingPolicy baseline();
  /// After the §4.1 change: performance determinism, turbo default.
  [[nodiscard]] static OperatingPolicy performance_determinism();
  /// After the §4.2 change (Dec 2022 service default): performance
  /// determinism and a 2.0 GHz default with the >10% auto-revert.
  [[nodiscard]] static OperatingPolicy low_frequency_default();
};

}  // namespace hpcem
