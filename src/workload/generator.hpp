// Synthetic production workload generator.
//
// Generates a job stream whose node-hour mix follows the catalogue's
// production weights and whose offered load tracks a target utilisation —
// ARCHER2 runs "consistently over 90%" utilised (paper §3.2), which is an
// input assumption of the whole analysis.  Arrivals are Poisson with weekly
// modulation (weekday submissions outnumber weekends) so the simulated
// cabinet-power series has the texture of the paper's Figure 1 rather than
// a flat line.
#pragma once

#include <vector>

#include "util/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/jobs.hpp"

namespace hpcem {

/// Tunables for the generator.
struct WorkloadGenParams {
  /// Long-run offered load as a fraction of machine capacity.  Slightly
  /// above the achievable utilisation so the scheduler queue stays primed.
  double offered_load = 0.97;
  /// Weekend arrival rate relative to weekdays.
  double weekend_factor = 0.75;
  /// Log-normal sigma applied to per-job node counts around the app's
  /// typical size (jobs come in many sizes).
  double nodes_sigma = 0.6;
  /// Log-normal sigma applied to per-job runtimes.
  double runtime_sigma = 0.5;
  /// Per-node silicon quality spread (std dev of the fleet distribution).
  double silicon_sigma = 0.25;
  /// Fraction of jobs whose users explicitly pin the turbo P-state once the
  /// default changes (the paper let users revert the frequency default).
  double user_turbo_pin_fraction = 0.05;
  /// Largest job the generator will emit, in nodes.
  std::size_t max_job_nodes = 1024;
  /// Fraction of jobs submitted to the discounted low-priority class.
  double low_priority_fraction = 0.08;
  /// Width at or above which a job is classed large-scale.
  std::size_t largescale_min_nodes = 256;
};

/// Poisson job-stream generator over a catalogue's production mix.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const AppCatalog& catalog, std::size_t machine_nodes,
                    WorkloadGenParams params, Rng rng);

  /// Generate all arrivals in [start, end), time-ordered.
  [[nodiscard]] std::vector<JobSpec> generate(SimTime start, SimTime end);

  /// Generate one hour of arrivals starting at `hour_start`.  `rate_scale`
  /// multiplies the arrival rate; the facility simulator uses it to model
  /// budget-capped demand — ARCHER2 allocations are charged in node-hours,
  /// so when a policy slows jobs down users burn budget faster and submit
  /// correspondingly less work, keeping offered node-hours constant.
  [[nodiscard]] std::vector<JobSpec> generate_hour(SimTime hour_start,
                                                   double rate_scale = 1.0);

  /// Expected node-hours per hour of wall clock at the offered load.
  [[nodiscard]] double offered_node_hours_per_hour() const;

  /// Mean node-hours of one generated job (analytic, for rate derivation).
  [[nodiscard]] double mean_job_node_hours() const;

 private:
  JobSpec make_job(SimTime submit);

  const AppCatalog* catalog_;
  std::size_t machine_nodes_;
  WorkloadGenParams params_;
  Rng rng_;
  std::vector<const ApplicationModel*> mix_;
  std::vector<double> weights_;
  JobId next_id_ = 1;
};

}  // namespace hpcem
