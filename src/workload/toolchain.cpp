#include "workload/toolchain.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

namespace toolchains {

Toolchain reference() { return {"reference (GCC -O3)", 1.0, 0.0, 1.0}; }

Toolchain vendor_tuned() {
  return {"vendor tuned (CCE + libsci)", 0.90, 0.06, 1.10};
}

Toolchain portable_o2() { return {"portable -O2", 1.06, -0.03, 0.96}; }

Toolchain unoptimised() { return {"unoptimised -O0", 1.60, -0.10, 0.85}; }

std::vector<Toolchain> all() {
  return {reference(), vendor_tuned(), portable_o2(), unoptimised()};
}

}  // namespace toolchains

namespace {

/// Re-derive an ApplicationSpec for a toolchain variant.  The base spec's
/// calibrated dynamic profile is recovered, the core component scaled, and
/// the (loaded power, power ratio) pair recomputed so ApplicationModel's
/// constructor re-calibrates to an identical profile.
ApplicationSpec variant_spec(const ApplicationModel& base,
                             const Toolchain& tc) {
  require(tc.runtime_factor > 0.0,
          "Toolchain: runtime_factor must be positive");
  require(tc.core_power_factor > 0.0,
          "Toolchain: core_power_factor must be positive");

  ApplicationSpec spec = base.spec();
  spec.name = base.name() + " [" + tc.name + "]";
  spec.beta = std::clamp(spec.beta + tc.beta_shift, 0.0,
                         1.0 - spec.comm_fraction);

  const NodePowerParams& np = base.node_params();
  DynamicPowerProfile profile = base.profile();
  profile.core_w *= tc.core_power_factor;

  const double idle = np.idle.w();
  const double loaded = idle + profile.uncore_w + profile.core_w;
  const double phi2 =
      dvfs_factor(np.cpu, Frequency::ghz(2.0), spec.boost);
  const double at_2ghz =
      idle + profile.uncore_w + profile.core_w * phi2;
  spec.loaded_node_w = loaded;
  spec.power_ratio_2ghz = at_2ghz / loaded;
  return spec;
}

}  // namespace

ToolchainedApplication::ToolchainedApplication(const ApplicationModel& base,
                                               Toolchain toolchain)
    : toolchain_(std::move(toolchain)),
      model_(variant_spec(base, toolchain_), base.node_params()) {}

Duration ToolchainedApplication::runtime(Duration base_ref_runtime,
                                         DeterminismMode mode,
                                         const PState& pstate) const {
  return model_.runtime(base_ref_runtime * toolchain_.runtime_factor, mode,
                        pstate);
}

Energy ToolchainedApplication::energy_to_solution(
    std::size_t nodes, Duration base_ref_runtime, DeterminismMode mode,
    const PState& pstate) const {
  return model_.job_energy(nodes,
                           base_ref_runtime * toolchain_.runtime_factor,
                           mode, pstate);
}

std::vector<ToolchainFrequencyPoint> toolchain_frequency_study(
    const ApplicationModel& base, DeterminismMode mode) {
  // Reference cell: the base build at the turbo default.
  const Duration unit = Duration::hours(1.0);
  const Energy ref_energy =
      base.job_energy(1, unit, mode, pstates::kHighTurbo);
  const Duration ref_runtime = base.runtime(unit, mode, pstates::kHighTurbo);

  std::vector<ToolchainFrequencyPoint> out;
  for (const Toolchain& tc : toolchains::all()) {
    const ToolchainedApplication app(base, tc);
    for (const PState& ps :
         {pstates::kLow, pstates::kMid, pstates::kHighTurbo}) {
      ToolchainFrequencyPoint p;
      p.toolchain = tc.name;
      p.pstate = ps;
      p.runtime_ratio = app.runtime(unit, mode, ps) / ref_runtime;
      p.energy_ratio = app.energy_to_solution(1, unit, mode, ps) / ref_energy;
      p.node_power_w = app.model().node_draw(mode, ps).w();
      out.push_back(std::move(p));
    }
  }
  return out;
}

}  // namespace hpcem
