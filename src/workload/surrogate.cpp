#include "workload/surrogate.hpp"

#include "util/error.hpp"

namespace hpcem {

SurrogateStudy::SurrogateStudy(const ApplicationModel& original,
                               SurrogateSpec spec, std::size_t nodes,
                               Duration reference_runtime)
    : original_(&original),
      spec_(std::move(spec)),
      nodes_(nodes),
      reference_runtime_(reference_runtime) {
  require(nodes_ > 0, "SurrogateStudy: nodes must be positive");
  require(reference_runtime_.sec() > 0.0,
          "SurrogateStudy: runtime must be positive");
  require(spec_.node_hour_ratio > 0.0 && spec_.node_hour_ratio < 1.0,
          "SurrogateStudy: node_hour_ratio must be in (0, 1)");
  require(spec_.power_factor > 0.0,
          "SurrogateStudy: power_factor must be positive");
  require(spec_.coverage > 0.0 && spec_.coverage <= 1.0,
          "SurrogateStudy: coverage must be in (0, 1]");
  require(spec_.training_energy.j() >= 0.0,
          "SurrogateStudy: training energy must be non-negative");
  require(saving_per_run().j() > 0.0,
          "SurrogateStudy: surrogate must save energy per run (check "
          "node_hour_ratio x power_factor < 1)");
}

Energy SurrogateStudy::original_run_energy() const {
  return original_->job_energy(nodes_, reference_runtime_,
                               DeterminismMode::kPerformanceDeterminism,
                               pstates::kHighTurbo);
}

Energy SurrogateStudy::surrogate_run_energy() const {
  const Energy original = original_run_energy();
  // The replaced share runs in node_hour_ratio of the node-hours at
  // power_factor times the draw; the remainder is untouched numerics.
  const Energy replaced = original * spec_.coverage * spec_.node_hour_ratio *
                          spec_.power_factor;
  const Energy untouched = original * (1.0 - spec_.coverage);
  return replaced + untouched;
}

Energy SurrogateStudy::saving_per_run() const {
  return original_run_energy() - surrogate_run_energy();
}

double SurrogateStudy::break_even_runs() const {
  return spec_.training_energy / saving_per_run();
}

SurrogateStudy::Campaign SurrogateStudy::campaign(
    std::size_t runs, CarbonIntensity intensity) const {
  require(runs > 0, "SurrogateStudy::campaign: runs must be positive");
  Campaign c;
  c.original = original_run_energy() * static_cast<double>(runs);
  c.surrogate = surrogate_run_energy() * static_cast<double>(runs) +
                spec_.training_energy;
  c.saving_fraction = 1.0 - c.surrogate / c.original;
  c.scope2_saved = (c.original - c.surrogate) * intensity;
  return c;
}

}  // namespace hpcem
