#include "workload/jobs.hpp"

namespace hpcem {

std::string to_string(QosClass q) {
  switch (q) {
    case QosClass::kStandard:
      return "standard";
    case QosClass::kShort:
      return "short";
    case QosClass::kLargeScale:
      return "largescale";
    case QosClass::kLowPriority:
      return "lowpriority";
  }
  return "unknown";
}

}  // namespace hpcem
