// Job descriptions exchanged between the workload generator and scheduler.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "power/pstate.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace hpcem {

using JobId = std::uint64_t;

/// Quality-of-service class, shaped like the ARCHER2 Slurm QoS set.
enum class QosClass {
  kStandard,     ///< the default production class
  kShort,        ///< small/short debug-style jobs, boosted priority
  kLargeScale,   ///< very wide jobs, boosted so they can ever assemble
  kLowPriority,  ///< discounted opportunistic work, runs in the gaps
};

[[nodiscard]] std::string to_string(QosClass q);

/// A job as submitted: what to run, how big, and any user frequency choice.
struct JobSpec {
  JobId id = 0;
  std::string app;  ///< catalogue application name
  std::size_t nodes = 1;
  /// Runtime at reference conditions (boost clock, performance
  /// determinism); actual runtime depends on the policy at start.
  Duration ref_runtime = Duration::hours(1.0);
  SimTime submit_time;
  /// Walltime the user requested from the scheduler (used for backfill
  /// planning); must be >= any achievable actual runtime.
  Duration requested_walltime = Duration::hours(24.0);
  /// Explicit per-job CPU frequency choice (srun --cpu-freq); overrides the
  /// service default and any per-application opt-out when set.
  std::optional<PState> user_pstate;
  /// Per-job mean silicon quality of the allocated nodes (fleet mean 1.0).
  double silicon_factor = 1.0;
  /// Scheduling class (only consulted by the priority discipline).
  QosClass qos = QosClass::kStandard;
};

/// A completed job with its realised schedule and energy.
struct JobRecord {
  JobSpec spec;
  SimTime start_time;
  SimTime end_time;
  PState pstate;            ///< frequency the job actually ran at
  DeterminismMode mode;     ///< BIOS mode during the run
  Energy node_energy;       ///< compute-node energy consumed
  double node_power_w = 0;  ///< per-node draw while running

  [[nodiscard]] Duration runtime() const { return end_time - start_time; }
  [[nodiscard]] Duration wait_time() const {
    return start_time - spec.submit_time;
  }
  [[nodiscard]] double node_hours() const {
    return static_cast<double>(spec.nodes) * runtime().hrs();
  }
};

}  // namespace hpcem
