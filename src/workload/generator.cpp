#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hpcem {

WorkloadGenerator::WorkloadGenerator(const AppCatalog& catalog,
                                     std::size_t machine_nodes,
                                     WorkloadGenParams params, Rng rng)
    : catalog_(&catalog),
      machine_nodes_(machine_nodes),
      params_(params),
      rng_(rng),
      mix_(catalog.production_mix()) {
  require(machine_nodes_ > 0, "WorkloadGenerator: machine must have nodes");
  require(!mix_.empty(), "WorkloadGenerator: catalogue has no production mix");
  require(params_.offered_load > 0.0 && params_.offered_load <= 1.5,
          "WorkloadGenerator: offered_load out of range");
  require(params_.weekend_factor > 0.0 && params_.weekend_factor <= 1.0,
          "WorkloadGenerator: weekend_factor out of range");
  require(params_.max_job_nodes >= 1 &&
              params_.max_job_nodes <= machine_nodes_,
          "WorkloadGenerator: max_job_nodes out of range");
  // mix_weight is a *node-hour* share; converting to a per-job draw
  // probability divides out the app's typical job size so that big-job
  // applications do not swallow the machine.
  weights_.reserve(mix_.size());
  for (const auto* app : mix_) {
    const auto& s = app->spec();
    weights_.push_back(s.mix_weight /
                       (s.typical_nodes * s.typical_runtime_h));
  }
}

double WorkloadGenerator::mean_job_node_hours() const {
  // Node counts and runtimes are drawn log-normally with the catalogue's
  // typical values as means.  Jobs are drawn with probability proportional
  // to mix_weight / typical-node-hours (see the constructor), so the mean
  // job size is sum(p_i * nh_i) / sum(p_i) = sum(w_i) / sum(w_i / nh_i).
  double num = 0.0;
  double den = 0.0;
  for (const auto* app : mix_) {
    const auto& s = app->spec();
    num += s.mix_weight;
    den += s.mix_weight / (s.typical_nodes * s.typical_runtime_h);
  }
  HPCEM_ASSERT(den > 0.0, "production mix weights");
  return num / den;
}

double WorkloadGenerator::offered_node_hours_per_hour() const {
  return params_.offered_load * static_cast<double>(machine_nodes_);
}

JobSpec WorkloadGenerator::make_job(SimTime submit) {
  const std::size_t app_idx = rng_.discrete(weights_);
  const ApplicationModel& app = *mix_[app_idx];
  const auto& s = app.spec();

  JobSpec job;
  job.id = next_id_++;
  job.app = app.name();
  job.submit_time = submit;

  // Log-normal around the application's typical geometry, parameterised so
  // the mean equals the typical value: mu = ln(m) - sigma^2 / 2.
  const double ns = params_.nodes_sigma;
  const double nodes_f =
      rng_.lognormal(std::log(s.typical_nodes) - ns * ns / 2.0, ns);
  job.nodes = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::llround(nodes_f)), 1,
      params_.max_job_nodes);

  const double rs = params_.runtime_sigma;
  const double runtime_h =
      rng_.lognormal(std::log(s.typical_runtime_h) - rs * rs / 2.0, rs);
  job.ref_runtime = Duration::hours(std::max(0.05, runtime_h));
  // Twice the reference runtime comfortably covers the worst slowdown the
  // hardware can express (1.5 GHz cap on a fully compute-bound code: 1.87x).
  job.requested_walltime = job.ref_runtime * 2.0;

  // Mean silicon quality of the allocation; averaging over `nodes` parts
  // shrinks the spread.
  const double sil =
      rng_.normal(1.0, params_.silicon_sigma /
                           std::sqrt(static_cast<double>(job.nodes)));
  job.silicon_factor = std::clamp(sil, 0.5, 1.5);

  // A small user population pins turbo regardless of the service default.
  if (rng_.bernoulli(params_.user_turbo_pin_fraction)) {
    job.user_pstate = pstates::kHighTurbo;
  }

  // QoS classification: discounted opportunistic work first, then the
  // structural classes by geometry.
  if (rng_.bernoulli(params_.low_priority_fraction)) {
    job.qos = QosClass::kLowPriority;
  } else if (job.nodes >= params_.largescale_min_nodes) {
    job.qos = QosClass::kLargeScale;
  } else if (job.ref_runtime.hrs() <= 3.0 && job.nodes <= 16) {
    job.qos = QosClass::kShort;
  } else {
    job.qos = QosClass::kStandard;
  }
  return job;
}

std::vector<JobSpec> WorkloadGenerator::generate_hour(SimTime hour_start,
                                                      double rate_scale) {
  require(rate_scale >= 0.0,
          "WorkloadGenerator::generate_hour: rate_scale must be >= 0");
  // Average weekly modulation factor (5 weekdays + 2 weekend days) keeps
  // the long-run offered load at the configured level.
  const double avg_week = (5.0 + 2.0 * params_.weekend_factor) / 7.0;
  const double base_rate_per_hour =
      offered_node_hours_per_hour() / mean_job_node_hours() / avg_week;

  const bool weekend = day_of_week(hour_start) >= 5;
  const double rate = base_rate_per_hour * rate_scale *
                      (weekend ? params_.weekend_factor : 1.0);
  std::vector<JobSpec> jobs;
  const std::uint64_t n = rng_.poisson(rate);
  jobs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    jobs.push_back(make_job(hour_start + Duration::hours(rng_.uniform())));
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.submit_time < b.submit_time;
            });
  return jobs;
}

std::vector<JobSpec> WorkloadGenerator::generate(SimTime start, SimTime end) {
  require(end > start, "WorkloadGenerator::generate: end must follow start");
  std::vector<JobSpec> jobs;
  for (SimTime t = start; t < end; t += Duration::hours(1.0)) {
    for (auto& j : generate_hour(t)) {
      if (j.submit_time < end) jobs.push_back(std::move(j));
    }
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.submit_time < b.submit_time;
            });
  return jobs;
}

}  // namespace hpcem
