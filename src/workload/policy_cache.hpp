// Policy-epoch cache of per-application power/runtime factors.
//
// The facility simulator resolves, for every job start, the application's
// P-state under the active policy, its runtime stretch and its node draw —
// all pure functions of (application, BIOS mode, P-state) that change only
// when the operating policy changes.  This cache evaluates them once per
// policy epoch — per application and per expressible P-state — and serves
// job starts from flat lookups: an O(1) slot fetch plus two multiply-adds
// for the silicon-dependent draw (power/node_model.hpp `NodePowerTerms`).
//
// Bit-for-bit identity: every cached number is produced by the same call
// the uncached path made (`ApplicationModel::time_factor`, the
// `node_power` expression via `node_draw_terms`, `AppCatalog::mix_average`
// for the demand scale), so consuming the cache is a pure reordering of
// when the arithmetic runs, not a change to it.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "power/node_model.hpp"
#include "workload/catalog.hpp"
#include "workload/policy.hpp"

namespace hpcem {

/// Per-(application, policy) factors cached across a policy epoch.
class PolicyFactorCache {
 public:
  /// What a job of one application runs at under the active policy.
  struct JobFactors {
    PState pstate{};           ///< resolved P-state
    double time_factor = 1.0;  ///< runtime stretch vs reference conditions
    NodePowerTerms draw{};     ///< silicon-independent node-draw terms
  };

  /// Binds to a catalogue; call `set_policy` before the first lookup.
  explicit PolicyFactorCache(const AppCatalog& catalog);

  /// Install a policy and rebuild every cached factor (bumps the epoch).
  void set_policy(const OperatingPolicy& policy);

  [[nodiscard]] const OperatingPolicy& policy() const { return policy_; }
  /// Number of rebuilds so far (0 until the first `set_policy`).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Factors a job runs at: its user P-state pin if present, else the
  /// policy resolution (auto-revert or service default) for the
  /// application.  `app_index` is the catalogue insertion index.
  [[nodiscard]] const JobFactors& factors(std::size_t app_index,
                                          const JobSpec& job) const;

  /// Arrival-rate multiplier keeping the offered node-hour stream
  /// constant under the active policy: 1 / mix-average time factor
  /// (same accumulation as `AppCatalog::mix_average`).
  [[nodiscard]] double demand_scale() const { return demand_scale_; }

 private:
  /// Slot of an expressible P-state in the per-app factor array.
  [[nodiscard]] static std::size_t slot_of(const PState& pstate);

  static constexpr std::size_t kPStateSlots = 4;

  const AppCatalog* catalog_;
  OperatingPolicy policy_{};
  std::uint64_t epoch_ = 0;
  /// [app][pstate slot], catalogue insertion order.
  std::vector<std::array<JobFactors, kPStateSlots>> by_app_;
  /// Policy-resolved default slot per app (after any auto-revert).
  std::vector<std::size_t> default_slot_;
  double demand_scale_ = 1.0;
};

}  // namespace hpcem
