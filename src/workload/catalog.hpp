// Application catalogue: the paper's benchmark cases plus a production mix.
//
// Two kinds of entries:
//  * *Benchmark cases* — the exact cases of Tables 3 and 4 (CASTEP Al Slab,
//    OpenSBLI TGV 1024³, VASP TiO₂/CdTe, CP2K H₂O-2048, GROMACS 1400k,
//    LAMMPS Ethanol, Nektar++ TGV 128 DoF, ONETEP hBN-BP-hBN).  Their
//    roofline beta is inverted from the published performance ratios, their
//    dynamic power split from the published energy ratios, and (for Table 3
//    cases) the power-determinism uplift from the published determinism
//    energy ratios.  The published numbers are attached so the reproduction
//    harness can print paper-vs-model side by side.
//  * *Production applications* — the background mix that fills the machine
//    in facility simulations, with node-hour weights shaped by the ARCHER2
//    research-area profile (§1.1).  Their parameters are plausible for the
//    code family and tuned so the fleet-level calibration anchors hold
//    (DESIGN.md §3): fleet-average loaded node draw ≈ 0.51 kW under the
//    baseline configuration and the three published cabinet-power means.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/app_model.hpp"

namespace hpcem {

/// Published measurement attached to a benchmark entry.  A benchmark may
/// appear in more than one paper table (CASTEP Al Slab is in both 3 and 4).
struct PaperReference {
  int table = 0;  ///< paper table number (3 or 4)
  std::size_t nodes = 0;
  double perf_ratio = 0.0;
  double energy_ratio = 0.0;
};

/// Catalogue of application models keyed by name.
class AppCatalog {
 public:
  /// Build the default ARCHER2 catalogue against the given node parameters.
  static AppCatalog archer2(const NodePowerParams& node_params);

  /// Empty catalogue for custom construction.
  AppCatalog() = default;

  /// Add an application; throws InvalidArgument on duplicate names.
  void add(ApplicationSpec spec, const NodePowerParams& node_params,
           std::vector<PaperReference> references = {});

  [[nodiscard]] std::size_t size() const { return apps_.size(); }
  [[nodiscard]] bool contains(const std::string& name) const;

  /// Lookup by name; throws InvalidArgument if absent.
  [[nodiscard]] const ApplicationModel& at(const std::string& name) const;

  /// Stable insertion index of an entry (O(1) hash lookup); throws
  /// InvalidArgument if absent.  Lets hot paths key flat per-app caches by
  /// index instead of repeating string lookups.
  [[nodiscard]] std::size_t index(const std::string& name) const;

  /// Entry by stable insertion index; throws InvalidArgument if out of
  /// range.
  [[nodiscard]] const ApplicationModel& at_index(std::size_t index) const;

  /// All paper references attached to an entry (empty for production apps).
  [[nodiscard]] std::span<const PaperReference> references(
      const std::string& name) const;

  /// The reference from a specific paper table, if any.
  [[nodiscard]] std::optional<PaperReference> reference(
      const std::string& name, int table) const;

  [[nodiscard]] std::span<const ApplicationModel> apps() const {
    return apps_;
  }

  /// Entries with positive mix weight, i.e. the production workload.
  [[nodiscard]] std::vector<const ApplicationModel*> production_mix() const;

  /// Entries carrying a published reference from the given table, in
  /// catalogue insertion order (which matches the paper's row order).
  [[nodiscard]] std::vector<const ApplicationModel*> benchmarks_for_table(
      int table) const;

  /// Node-hour-weighted average of an arbitrary per-app metric over the
  /// production mix.
  [[nodiscard]] double mix_average(
      const std::function<double(const ApplicationModel&)>& metric) const;

 private:
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  std::vector<ApplicationModel> apps_;
  std::vector<std::vector<PaperReference>> refs_;
  std::unordered_map<std::string, std::size_t> index_by_name_;
};

}  // namespace hpcem
