// AI surrogate replacement study.
//
// The paper's conclusions name this future work: "looking at the impact on
// energy and emissions efficiency of replacing parts of modelling
// applications by AI-based approaches".  The model: a trained surrogate
// replaces some fraction of a simulation campaign's runs, executing the
// same science question in far fewer node-hours but at a higher power
// density, after a one-off training cost.  The planner answers the
// operator's questions: energy per run, break-even run count where the
// training energy amortises, and campaign-level energy/emissions savings.
#pragma once

#include <string>

#include "grid/carbon.hpp"
#include "workload/app_model.hpp"

namespace hpcem {

/// A surrogate for (part of) an application's work.
struct SurrogateSpec {
  std::string name;
  /// Node-hours per run relative to the original application (<< 1).
  double node_hour_ratio = 0.05;
  /// Node power while running the surrogate, relative to the original's
  /// loaded draw (dense inference kernels run hot).
  double power_factor = 1.2;
  /// Fraction of each run's work the surrogate can replace (the remainder
  /// still runs the original numerics, e.g. for validation/refinement).
  double coverage = 0.8;
  /// One-off training energy.
  Energy training_energy = Energy::mwh(20.0);
};

/// Per-run and campaign-level comparison of original vs surrogate.
class SurrogateStudy {
 public:
  /// `reference_runtime`/`nodes`: the geometry of one original run at
  /// reference conditions.
  SurrogateStudy(const ApplicationModel& original, SurrogateSpec spec,
                 std::size_t nodes, Duration reference_runtime);

  /// Energy of one pure-numerics run (reference conditions).
  [[nodiscard]] Energy original_run_energy() const;
  /// Energy of one surrogate-accelerated run (coverage replaced, the rest
  /// original), excluding training.
  [[nodiscard]] Energy surrogate_run_energy() const;
  /// Energy saved per run (>= 0 for sensible specs).
  [[nodiscard]] Energy saving_per_run() const;

  /// Runs needed before the training energy is paid back; infinity-like
  /// large value is impossible here because construction validates that
  /// the surrogate saves energy per run.
  [[nodiscard]] double break_even_runs() const;

  /// Campaign totals including training.
  struct Campaign {
    Energy original;
    Energy surrogate;  ///< incl. training
    double saving_fraction = 0.0;
    CarbonMass scope2_saved;
  };
  [[nodiscard]] Campaign campaign(std::size_t runs,
                                  CarbonIntensity intensity) const;

  [[nodiscard]] const SurrogateSpec& spec() const { return spec_; }

 private:
  const ApplicationModel* original_;
  SurrogateSpec spec_;
  std::size_t nodes_;
  Duration reference_runtime_;
};

}  // namespace hpcem
