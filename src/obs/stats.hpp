// StatsRegistry: live operational statistics derived from the metrics
// snapshot — the exposition half of the runtime telemetry plane.
//
// A StatsSnapshot is the merged metrics snapshot (bit-identical across
// shards and worker counts, see obs/metrics.hpp) plus derived histogram
// statistics: mean and estimated p50/p95/p99 quantiles.  Quantiles are
// interpolated within the log2 buckets, so they are estimates with
// power-of-two resolution — but *deterministic* estimates: the same
// collected data yields the same bytes whatever thread count produced it.
//
// Serialization (`stats_json`) is the document the serve tier's `stats`
// NDJSON command embeds:
//
//   {"schema": "hpcem.obs_stats", "schema_version": 1,
//    "deterministic": <bool>,
//    "counters":   [{"name", "unit", "value"}...],
//    "gauges":     [{"name", "unit", "value"}...],
//    "histograms": [{"name", "unit", "count", "sum", "min", "max",
//                    "mean", "p50", "p95", "p99"}...]}
//
// All lists are name-sorted (inherited from metrics_snapshot()).
#pragma once

#include "obs/registry.hpp"
#include "util/json.hpp"

namespace hpcem::obs {

inline constexpr int kStatsSchemaVersion = 1;

/// One histogram with derived statistics.
struct HistogramStats {
  std::string name;
  std::string unit;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Merged live statistics: counters and gauges verbatim, histograms with
/// quantiles.  Lists are sorted by metric name.
struct StatsSnapshot {
  bool deterministic = false;
  std::vector<MetricsSnapshot::CounterValue> counters;
  std::vector<MetricsSnapshot::GaugeValue> gauges;
  std::vector<HistogramStats> histograms;
};

/// Snapshot access point for live stats exposition.  Requires the same
/// quiescence as metrics_snapshot() for exact results.
class StatsRegistry {
 public:
  [[nodiscard]] static StatsSnapshot snapshot();
};

/// Estimated q-quantile (q in (0, 1]) of a merged histogram value:
/// nearest-rank bucket lookup with linear interpolation inside the log2
/// bucket, clamped to the recorded [min, max].  0 for an empty histogram.
[[nodiscard]] double histogram_quantile(
    const MetricsSnapshot::HistogramValue& h, double q);

/// Derive mean/p50/p95/p99 for one merged histogram value.
[[nodiscard]] HistogramStats histogram_stats(
    const MetricsSnapshot::HistogramValue& h);

[[nodiscard]] JsonValue stats_json(const StatsSnapshot& snap);

}  // namespace hpcem::obs
