// Observability registry: collection toggles, name interning and
// per-thread event buffers.
//
// The paper's contribution is *observing* a running facility; this layer
// makes the reproduction observable in the same spirit — without touching
// simulation semantics.  Design constraints, in order:
//
//   1. Near-zero cost when disabled.  Every collection entry point starts
//      with one relaxed atomic load and a predictable branch; nothing else
//      runs.  The `HPCEM_OBS_DISABLE` compile definition removes the span
//      macro entirely.
//   2. No cross-thread synchronisation on the hot path.  Each thread owns a
//      `ThreadBuffer`; spans and metric shards append to it lock-free.  The
//      registry mutex is taken only to register a new thread, intern a new
//      name, or snapshot.
//   3. Deterministic export.  Snapshots merge shards and order output by
//      *names*, never by interning order, registration order or thread
//      identity, so the same collected data always serializes to the same
//      bytes.  Under deterministic mode (see below) timestamps themselves
//      are logical per-thread tick counts, making single-threaded traces
//      byte-stable run to run.
//
// Wall-clock reads are confined to obs/clock.cpp (the one file the
// `no-wall-clock` lint rule exempts): observability must measure real
// elapsed time, but simulation state must never depend on it.
//
// Snapshots and resets require quiescence: no thread may be recording
// concurrently (join workers first — the campaign layer's pool barrier
// already guarantees this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpcem::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
inline std::atomic<bool> g_deterministic{false};
/// Monotonic nanoseconds since an arbitrary process-local anchor.
/// Implemented in obs/clock.cpp — the only wall-clock read in the tree.
[[nodiscard]] std::uint64_t wall_now_ns();
}  // namespace detail

/// Monotonic nanoseconds since an arbitrary process-local anchor, for
/// latency measurement in benches and the serving layer's load generator.
/// This is the sanctioned way to time real elapsed work: the actual clock
/// read stays confined to obs/clock.cpp (see file comment).
[[nodiscard]] std::uint64_t monotonic_now_ns();

/// True when collection is on.  The hot-path guard: one relaxed load.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// True when timestamps are logical per-thread ticks instead of wall
/// nanoseconds (byte-stable exports; see file comment).
[[nodiscard]] inline bool deterministic() {
  return detail::g_deterministic.load(std::memory_order_relaxed);
}

void set_enabled(bool on);
void set_deterministic(bool on);

/// Read the environment toggles once: HPCEM_OBS=1 enables collection,
/// HPCEM_OBS_DETERMINISTIC=1 selects logical timestamps.  Called by
/// ObsSession and the tools; idempotent.
void init_from_env();

/// Interned span/metric name.  Ids are process-local and never exported —
/// snapshots always resolve back to strings.
using NameId = std::uint32_t;
[[nodiscard]] NameId intern_name(std::string_view name);
[[nodiscard]] const std::string& name_of(NameId id);

/// One closed span on one thread.  `begin`/`end` are wall nanoseconds, or
/// logical ticks in deterministic mode.
struct SpanRecord {
  NameId name{};
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// Merge-exact histogram shard: integer-valued so that merging shards is
/// plain integer addition — commutative and associative at the bit level,
/// which is what makes N-thread merges identical for any worker count.
/// Buckets are log2: bucket index == std::bit_width(value).
struct HistogramShard {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = ~std::uint64_t{0};
  std::uint64_t max = 0;
  std::array<std::uint64_t, 65> buckets{};
};

/// Fold `src` into `dst`.  The single definition of the histogram merge,
/// shared by every snapshot path.  An empty shard contributes nothing —
/// in particular its `min` sentinel never leaks into `dst` — so merging
/// {empty, single-sample} is bit-identical in either order (and any
/// bracketing: the fold is commutative and associative).
inline void merge_shard(HistogramShard& dst, const HistogramShard& src) {
  if (src.count == 0) return;
  dst.count += src.count;
  dst.sum += src.sum;
  if (src.min < dst.min) dst.min = src.min;
  if (src.max > dst.max) dst.max = src.max;
  for (std::size_t b = 0; b < src.buckets.size(); ++b) {
    dst.buckets[b] += src.buckets[b];
  }
}

// ---------------------------------------------------------------------------
// Flight recorder: a bounded per-thread ring of recent span/event records.
// ---------------------------------------------------------------------------
// The postmortem substrate: each thread keeps the last kFlightRingSlots
// records it produced, overwriting the oldest.  Appends are lock-free
// (relaxed stores into the owning thread's ring); a snapshot may run
// concurrently with serving, in which case a slot being overwritten at
// that instant can read torn — acceptable for a best-effort crash dump,
// and exact under quiescence (which is what the deterministic tests use).

inline constexpr std::size_t kFlightRingSlots = 1024;  // power of two

enum class FlightKind : std::uint8_t { kSpan = 0, kInstant = 1 };

/// One ring slot.  All fields are relaxed atomics so a concurrent snapshot
/// read is a data-race-free (if possibly torn) observation, not UB.
/// `meta` packs (name << 8 | kind + 1); zero means never written.
struct FlightSlot {
  std::atomic<std::uint64_t> meta{0};
  std::atomic<std::uint64_t> request{0};
  std::atomic<std::uint64_t> begin{0};
  /// Span close stamp, or the auxiliary word of an instant event.
  std::atomic<std::uint64_t> end{0};
};

/// Per-thread flight ring.  `head` is the next sequence number; slot
/// `seq & (kFlightRingSlots - 1)` holds record `seq`.
struct FlightRing {
  std::array<FlightSlot, kFlightRingSlots> slots;
  std::atomic<std::uint64_t> head{0};
};

/// Per-thread collection buffer.  Owned by the registry (it outlives the
/// thread so campaign workers' data survives the pool teardown); the
/// owning thread appends without locks.
struct ThreadBuffer {
  std::string label = "thread";
  /// Logical clock for deterministic mode; each stamp is ++tick.
  std::uint64_t tick = 0;
  std::vector<SpanRecord> spans;
  /// Metric shards, indexed by MetricId (grown on first touch).
  std::vector<std::uint64_t> counters;
  std::vector<std::uint64_t> gauges;
  std::vector<HistogramShard> histograms;
  /// Recent span/event records for the postmortem flight recorder.
  FlightRing flight;
};

/// Append one record to this thread's flight ring (owning thread only).
inline void flight_append(ThreadBuffer& tb, FlightKind kind, NameId name,
                          std::uint64_t request, std::uint64_t begin,
                          std::uint64_t end) {
  FlightRing& ring = tb.flight;
  const std::uint64_t seq = ring.head.load(std::memory_order_relaxed);
  FlightSlot& slot = ring.slots[seq & (kFlightRingSlots - 1)];
  slot.meta.store((std::uint64_t{name} << 8) |
                      (static_cast<std::uint64_t>(kind) + 1),
                  std::memory_order_relaxed);
  slot.request.store(request, std::memory_order_relaxed);
  slot.begin.store(begin, std::memory_order_relaxed);
  slot.end.store(end, std::memory_order_relaxed);
  // Publish after the fields: a snapshot that sees `seq + 1` sees the
  // stores above (or a later overwrite of the same slot — torn, tolerated).
  ring.head.store(seq + 1, std::memory_order_release);
}

/// This thread's buffer, created and registered on first use.
[[nodiscard]] ThreadBuffer& thread_buffer();

/// Label this thread's buffer for trace export ("main", "campaign-worker").
void set_thread_label(std::string_view label);

/// Next timestamp on this thread: a logical tick in deterministic mode,
/// wall nanoseconds otherwise.
[[nodiscard]] inline std::uint64_t next_stamp(ThreadBuffer& tb) {
  return deterministic() ? ++tb.tick : detail::wall_now_ns();
}

/// Metric descriptor registration.  Re-registering the same name returns
/// the existing id (the kind and unit must match).
enum class MetricKind { kCounter, kGauge, kHistogram };
using MetricId = std::uint32_t;
[[nodiscard]] MetricId register_metric(std::string_view name, MetricKind kind,
                                       std::string_view unit);

/// All spans of one thread, in record (i.e. span-close) order.
struct ThreadTrace {
  std::string label;
  std::vector<SpanRecord> spans;
};

/// Every thread's spans.  Threads are ordered deterministically by
/// (label, span sequence), never by registration order.
struct TraceSnapshot {
  bool deterministic = false;
  std::vector<ThreadTrace> threads;
};

[[nodiscard]] TraceSnapshot trace_snapshot();

/// One resolved flight-recorder record (names back to strings; `end` is
/// the auxiliary word for instants).
struct FlightRecord {
  std::string name;
  FlightKind kind = FlightKind::kSpan;
  std::uint64_t request = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

/// The surviving ring contents of one thread, oldest record first.
struct FlightThreadTrace {
  std::string label;
  std::vector<FlightRecord> records;
};

/// Every thread's recent records.  Threads are ordered deterministically
/// by (label, record sequence), mirroring trace_snapshot().
struct FlightSnapshot {
  bool deterministic = false;
  std::vector<FlightThreadTrace> threads;
};

[[nodiscard]] FlightSnapshot flight_snapshot();

/// Merged metric values, each list sorted by metric name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::string unit;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::string unit;
    std::uint64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::string unit;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /// (bucket bit-width, count) pairs, non-empty buckets only.
    std::vector<std::pair<int, std::uint64_t>> buckets;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
};

/// Merge every thread shard (integer folds: worker-count invariant).
[[nodiscard]] MetricsSnapshot metrics_snapshot();

/// Drop collected spans and zero metric shards.  Interned names and metric
/// descriptors persist (statics in instrumented code keep their ids).
void reset_collected();

}  // namespace hpcem::obs
