// The one wall-clock read in the tree (see registry.hpp).  Observability
// measures real elapsed time; everything else derives time from SimTime.
// The `no-wall-clock` lint rule is allowed for exactly this file in
// .hpcemlint.
#include <chrono>

#include "obs/registry.hpp"

namespace hpcem::obs {

namespace detail {

std::uint64_t wall_now_ns() {
  // hpcem-lint: sanctioned-source(determinism-flow) — observability-only
  // timing; values feed spans/histograms, never a RunArtifact field, and
  // obs output is disabled in deterministic runs (HPCEM_OBS gate).
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

}  // namespace detail

std::uint64_t monotonic_now_ns() { return detail::wall_now_ns(); }

}  // namespace hpcem::obs
