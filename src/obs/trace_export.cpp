#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <tuple>

#include "obs/metrics_export.hpp"
#include "util/error.hpp"

namespace hpcem::obs {

namespace {

/// Export scale: ticks stay verbatim, wall ns become microseconds.
double export_time(std::uint64_t raw, bool deterministic) {
  const auto v = static_cast<double>(raw);
  return deterministic ? v : v / 1000.0;
}

}  // namespace

JsonValue trace_json(const TraceSnapshot& snap,
                     const MetricsSnapshot* metrics) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hpcem.trace");
  doc.set("schema_version", kTraceSchemaVersion);
  doc.set("deterministic", snap.deterministic);
  doc.set("time_unit", snap.deterministic ? "ticks" : "us");
  if (metrics != nullptr) doc.set("metrics", metrics_json(*metrics));

  JsonValue events = JsonValue::array();
  for (std::size_t ti = 0; ti < snap.threads.size(); ++ti) {
    const ThreadTrace& thread = snap.threads[ti];
    const int tid = static_cast<int>(ti) + 1;

    JsonValue meta = JsonValue::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    meta.set("tid", tid);
    JsonValue margs = JsonValue::object();
    margs.set("name", thread.label);
    meta.set("args", std::move(margs));
    events.push_back(std::move(meta));

    // Spans close in child-before-parent order; re-sort so parents precede
    // their children and the document is stable whatever the close order.
    std::vector<SpanRecord> spans = thread.spans;
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return std::tuple(a.begin, b.end, name_of(a.name)) <
                       std::tuple(b.begin, a.end, name_of(b.name));
              });
    for (const SpanRecord& s : spans) {
      JsonValue ev = JsonValue::object();
      ev.set("name", name_of(s.name));
      ev.set("cat", "hpcem");
      ev.set("ph", "X");
      ev.set("ts", export_time(s.begin, snap.deterministic));
      ev.set("dur", export_time(s.end - s.begin, snap.deterministic));
      ev.set("pid", 1);
      ev.set("tid", tid);
      events.push_back(std::move(ev));
    }
  }
  doc.set("traceEvents", std::move(events));
  return doc;
}

std::string trace_json_text(const TraceSnapshot& snap,
                            const MetricsSnapshot* metrics) {
  return trace_json(snap, metrics).dump(2);
}

void write_trace_file(const TraceSnapshot& snap, const std::string& path,
                      const MetricsSnapshot* metrics) {
  std::ofstream out(path, std::ios::binary);
  out << trace_json_text(snap, metrics);
  if (!out) throw ParseError("write_trace_file: cannot write " + path);
}

}  // namespace hpcem::obs
