// Profile computation over exported traces.
//
// Rebuilds span nesting from a Chrome-format trace document (interval
// containment per thread) and aggregates per span name:
//
//   inclusive — total time inside spans of that name
//   self      — inclusive minus time inside directly nested spans
//
// This is the analysis half of the obs layer: hpcem_prof prints these
// tables and diffs two of them into an A/B regression report, which is the
// pipeline the BENCH_*.json / trace artifacts feed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace hpcem::obs {

/// Aggregate of one span name across the whole trace.
struct ProfileEntry {
  std::string name;
  std::uint64_t count = 0;
  double inclusive = 0.0;
  double self = 0.0;
};

/// Whole-trace profile, entries sorted by self time (descending; name
/// breaks ties).
struct Profile {
  /// "us" for wall traces, "ticks" for deterministic ones.
  std::string time_unit = "us";
  std::vector<ProfileEntry> entries;

  /// Entry by name; nullptr when absent.
  [[nodiscard]] const ProfileEntry* find(std::string_view name) const;
};

/// Profile a parsed trace document (trace_export.hpp layout; any Chrome
/// trace with "X" events works).  Throws ParseError on malformed input.
[[nodiscard]] Profile profile_trace(const JsonValue& trace_doc);

/// One span name's A/B comparison.  `self_pct` is the self-time change
/// from a (baseline) to b, in percent; +inf when the span is new in b.
struct ProfileDelta {
  std::string name;
  std::uint64_t count_a = 0;
  std::uint64_t count_b = 0;
  double self_a = 0.0;
  double self_b = 0.0;
  double inclusive_a = 0.0;
  double inclusive_b = 0.0;
  double self_pct = 0.0;
};

/// Union of both profiles' span names, sorted by current (b) self time
/// descending.  Throws InvalidArgument when the time units differ.
[[nodiscard]] std::vector<ProfileDelta> compare_profiles(const Profile& a,
                                                         const Profile& b);

}  // namespace hpcem::obs
