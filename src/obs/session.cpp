#include "obs/session.hpp"

#include <exception>
#include <iostream>

#include "obs/trace_export.hpp"

namespace hpcem::obs {

ObsSession::ObsSession(std::string name) : name_(std::move(name)) {
  init_from_env();
  active_ = enabled();
  if (active_) {
    set_thread_label("main");
    root_.emplace(intern_name(name_));
  }
}

ObsSession::~ObsSession() {
  if (!active_) return;
  root_.reset();  // close the root span before snapshotting
  try {
    const MetricsSnapshot metrics = metrics_snapshot();
    write_trace_file(trace_snapshot(), trace_path(), &metrics);
    std::cout << "obs: trace written: " << trace_path() << '\n';
  } catch (const std::exception& e) {
    // A failed trace write must not turn a successful run into a crash
    // (we are in a destructor); report and carry on.
    std::cerr << "obs: trace write failed: " << e.what() << '\n';
  }
}

std::string ObsSession::trace_path() const { return name_ + ".trace.json"; }

}  // namespace hpcem::obs
