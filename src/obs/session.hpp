// Per-binary observability session: the auto root span for benches and
// tools.
//
//   int main() {
//     hpcem::obs::ObsSession session("bench_fig2_bios_timeline");
//     ...  // instrumented work
//   }    // session writes bench_fig2_bios_timeline.trace.json when enabled
//
// Construction reads the environment toggles (HPCEM_OBS,
// HPCEM_OBS_DETERMINISTIC), labels the calling thread "main" and opens a
// root span named after the session.  Destruction closes the root span
// and, when collection is enabled, writes `<name>.trace.json` and prints
// the path.  When disabled the session does nothing and prints nothing, so
// a bench's output is byte-identical with or without the session line.
#pragma once

#include <optional>
#include <string>

#include "obs/span.hpp"

namespace hpcem::obs {

class ObsSession {
 public:
  /// `name` also serves as the trace basename; it may contain a directory
  /// prefix ("out/fig2" -> "out/fig2.trace.json").
  explicit ObsSession(std::string name);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// True when collection was enabled at construction.
  [[nodiscard]] bool active() const { return active_; }
  /// Path the destructor will write ("<name>.trace.json").
  [[nodiscard]] std::string trace_path() const;

 private:
  std::string name_;
  bool active_ = false;
  std::optional<ScopedSpan> root_;
};

}  // namespace hpcem::obs
