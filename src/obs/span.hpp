// RAII scoped spans.
//
// Usage at an instrumentation site:
//
//   void FacilitySimulator::sample() {
//     HPCEM_OBS_SPAN("sim.sample.power");
//     ...
//   }
//
// The macro interns the name once (thread-safe function-local static) and
// opens a `ScopedSpan` for the enclosing scope.  When collection is
// disabled the constructor is one relaxed load and a branch; defining
// HPCEM_OBS_DISABLE compiles the macro out entirely.
//
// A span records (name, begin, end) into the calling thread's buffer when
// it closes — nesting is recovered at export/profile time from interval
// containment, which keeps the hot path to two clock reads and one
// push_back.
#pragma once

#include "obs/registry.hpp"
#include "obs/request_context.hpp"

namespace hpcem::obs {

/// Scope guard measuring one span on the current thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(NameId name) {
    if (enabled()) {
      tb_ = &thread_buffer();
      name_ = name;
      begin_ = next_stamp(*tb_);
    }
  }
  ~ScopedSpan() {
    if (tb_ != nullptr) {
      tb_->spans.push_back({name_, begin_, next_stamp(*tb_)});
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ThreadBuffer* tb_ = nullptr;
  NameId name_{};
  std::uint64_t begin_ = 0;
};

/// Scope guard measuring one *request-scoped* span: like ScopedSpan, but
/// the closed record is additionally appended to the thread's flight ring
/// tagged with the current request id (obs/request_context.hpp).  The
/// serving layer's handlers use this — it is what per-request trace
/// retrieval and postmortems are built from, and the
/// serve-obs-instrumentation lint rule requires it over a bare span.
class RequestSpan {
 public:
  explicit RequestSpan(NameId name) {
    if (enabled()) {
      tb_ = &thread_buffer();
      name_ = name;
      begin_ = next_stamp(*tb_);
    }
  }
  ~RequestSpan() {
    if (tb_ != nullptr) {
      const std::uint64_t end = next_stamp(*tb_);
      tb_->spans.push_back({name_, begin_, end});
      flight_append(*tb_, FlightKind::kSpan, name_, current_request(),
                    begin_, end);
    }
  }
  RequestSpan(const RequestSpan&) = delete;
  RequestSpan& operator=(const RequestSpan&) = delete;

 private:
  ThreadBuffer* tb_ = nullptr;
  NameId name_{};
  std::uint64_t begin_ = 0;
};

}  // namespace hpcem::obs

#define HPCEM_OBS_CONCAT_IMPL(a, b) a##b
#define HPCEM_OBS_CONCAT(a, b) HPCEM_OBS_CONCAT_IMPL(a, b)

#ifdef HPCEM_OBS_DISABLE
#define HPCEM_OBS_SPAN(name_literal) ((void)0)
#define HPCEM_OBS_REQUEST_SPAN(name_literal) ((void)0)
#else
/// Open a span named `name_literal` for the rest of the enclosing scope.
#define HPCEM_OBS_SPAN(name_literal)                                     \
  static const ::hpcem::obs::NameId HPCEM_OBS_CONCAT(hpcem_obs_name_,    \
                                                     __LINE__) =         \
      ::hpcem::obs::intern_name(name_literal);                           \
  const ::hpcem::obs::ScopedSpan HPCEM_OBS_CONCAT(                       \
      hpcem_obs_span_, __LINE__){HPCEM_OBS_CONCAT(hpcem_obs_name_,       \
                                                  __LINE__)}
/// Open a request-scoped span (flight-recorded, tagged with the current
/// request id) for the rest of the enclosing scope.
#define HPCEM_OBS_REQUEST_SPAN(name_literal)                             \
  static const ::hpcem::obs::NameId HPCEM_OBS_CONCAT(hpcem_obs_name_,    \
                                                     __LINE__) =         \
      ::hpcem::obs::intern_name(name_literal);                           \
  const ::hpcem::obs::RequestSpan HPCEM_OBS_CONCAT(                      \
      hpcem_obs_rspan_, __LINE__){HPCEM_OBS_CONCAT(hpcem_obs_name_,      \
                                                   __LINE__)}
#endif
