// Typed metrics: counters, gauges and histograms over per-thread shards.
//
// All obs metrics are *integer-valued by design*: shard merging is then
// integer addition (counters, histogram counts/sums) or integer max
// (gauges, histogram min/max) — commutative and associative at the bit
// level, so a merged snapshot is bit-identical for any thread or worker
// count, mirroring the campaign layer's bit-identical merge guarantee.
// Callers scale fractional quantities into an integer unit (nanoseconds,
// sample counts) before recording.
//
// Handles are cheap value types holding a MetricId; the canonical pattern
// is a function-local static at the instrumentation site:
//
//   static obs::Counter samples("telemetry.recorder.samples", "samples");
//   samples.add();
//
// Recording is a no-op (one relaxed load + branch) while collection is
// disabled.
#pragma once

#include <bit>

#include "obs/registry.hpp"

namespace hpcem::obs {

/// Monotonic sum (merged by addition).
class Counter {
 public:
  explicit Counter(std::string_view name, std::string_view unit = "count")
      : id_(register_metric(name, MetricKind::kCounter, unit)) {}

  void add(std::uint64_t n = 1) const {
    if (!enabled()) return;
    ThreadBuffer& tb = thread_buffer();
    if (tb.counters.size() <= id_) tb.counters.resize(id_ + 1, 0);
    tb.counters[id_] += n;
  }

  [[nodiscard]] MetricId id() const { return id_; }

 private:
  MetricId id_;
};

/// Level metric.  Each thread shard keeps the *maximum* value it was ever
/// set to and shards merge by max: a deterministic reduction (a last-write
/// gauge would depend on thread scheduling).  Use for high-water marks and
/// set-once values (worker counts, queue peaks).
class Gauge {
 public:
  explicit Gauge(std::string_view name, std::string_view unit = "value")
      : id_(register_metric(name, MetricKind::kGauge, unit)) {}

  void set(std::uint64_t value) const {
    if (!enabled()) return;
    ThreadBuffer& tb = thread_buffer();
    if (tb.gauges.size() <= id_) tb.gauges.resize(id_ + 1, 0);
    if (value > tb.gauges[id_]) tb.gauges[id_] = value;
  }

  [[nodiscard]] MetricId id() const { return id_; }

 private:
  MetricId id_;
};

/// Log2-bucketed distribution (count/sum/min/max + power-of-two buckets).
class Histogram {
 public:
  explicit Histogram(std::string_view name, std::string_view unit = "ns")
      : id_(register_metric(name, MetricKind::kHistogram, unit)) {}

  void record(std::uint64_t value) const {
    if (!enabled()) return;
    ThreadBuffer& tb = thread_buffer();
    if (tb.histograms.size() <= id_) tb.histograms.resize(id_ + 1);
    HistogramShard& h = tb.histograms[id_];
    ++h.count;
    h.sum += value;
    if (value < h.min) h.min = value;
    if (value > h.max) h.max = value;
    ++h.buckets[static_cast<std::size_t>(std::bit_width(value))];
  }

  [[nodiscard]] MetricId id() const { return id_; }

 private:
  MetricId id_;
};

/// Measures elapsed time into a histogram: wall nanoseconds, or logical
/// ticks in deterministic mode (still deterministic, still a workload
/// proxy — each tick is one clock read inside the measured scope).
class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram& hist) : hist_(&hist) {
    if (enabled()) {
      tb_ = &thread_buffer();
      begin_ = next_stamp(*tb_);
    }
  }
  ~ScopedTimer() {
    if (tb_ != nullptr) hist_->record(next_stamp(*tb_) - begin_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Histogram* hist_;
  ThreadBuffer* tb_ = nullptr;
  std::uint64_t begin_ = 0;
};

}  // namespace hpcem::obs
