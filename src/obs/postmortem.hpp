// Postmortem export: the flight recorder's crash-dump document.
//
// When the serving front sees a query error or a latency-threshold
// breach, it snapshots every thread's flight ring and writes this
// deterministic JSON artifact — the last kFlightRingSlots records per
// thread, each tagged with the request id it served:
//
//   {"schema": "hpcem.postmortem", "schema_version": 1,
//    "deterministic": <bool>,
//    "trigger": {"reason", "request", "elapsed", "threshold"},
//    "threads": [{"label",
//                 "records": [{"name", "kind", "request",
//                              "begin", "end"}...]}...]}
//
// "kind" is "span" (begin/end stamps) or "instant" (begin = stamp, end =
// the event's auxiliary word).  In deterministic mode the whole document
// is byte-stable for a given request sequence; `hpcem_prof --postmortem`
// renders it.
#pragma once

#include "obs/registry.hpp"
#include "util/json.hpp"

namespace hpcem::obs {

inline constexpr int kPostmortemSchemaVersion = 1;

/// Why a postmortem was dumped.
struct PostmortemTrigger {
  std::string reason;           ///< "query_error" | "latency_threshold"
  std::uint64_t request = 0;    ///< the triggering request id
  std::uint64_t elapsed = 0;    ///< its latency (ns, or ticks)
  std::uint64_t threshold = 0;  ///< configured breach threshold (0 = none)
};

[[nodiscard]] JsonValue postmortem_json(const PostmortemTrigger& trigger,
                                        const FlightSnapshot& snap);

/// Serialize and write the postmortem document to `path` (overwriting).
/// Throws StateError when the file cannot be written.
void write_postmortem_file(const PostmortemTrigger& trigger,
                           const FlightSnapshot& snap,
                           const std::string& path);

}  // namespace hpcem::obs
