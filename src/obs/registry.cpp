#include "obs/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "util/error.hpp"

namespace hpcem::obs {

namespace {

const char* metric_kind_label(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "metric";
}

struct MetricDesc {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::string unit;
};

/// Process-wide collection state.  The mutex guards registration, interning
/// and snapshots; per-thread buffers are written lock-free by their owning
/// thread (snapshots require quiescence — see registry.hpp).
struct Registry {
  std::mutex mu;
  /// deque: interning must not invalidate name_of() references.
  std::deque<std::string> names;  // hpcem: guarded_by(mu)
  // hpcem: guarded_by(mu)
  std::map<std::string, NameId, std::less<>> name_ids;
  std::deque<MetricDesc> metrics;  // hpcem: guarded_by(mu)
  // hpcem: guarded_by(mu)
  std::map<std::string, MetricId, std::less<>> metric_ids;
  /// Owned here so a worker thread's data outlives the thread.
  // hpcem: guarded_by(mu)
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry r;
  return r;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_deterministic(bool on) {
  detail::g_deterministic.store(on, std::memory_order_relaxed);
}

void init_from_env() {
  static const bool once = [] {
    if (env_flag("HPCEM_OBS")) set_enabled(true);
    if (env_flag("HPCEM_OBS_DETERMINISTIC")) set_deterministic(true);
    return true;
  }();
  (void)once;
}

NameId intern_name(std::string_view name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (const auto it = r.name_ids.find(name); it != r.name_ids.end()) {
    return it->second;
  }
  const auto id = static_cast<NameId>(r.names.size());
  r.names.emplace_back(name);
  r.name_ids.emplace(std::string(name), id);
  return id;
}

const std::string& name_of(NameId id) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  HPCEM_ASSERT(id < r.names.size(), "obs::name_of: unknown name id");
  return r.names[id];
}

ThreadBuffer& thread_buffer() {
  thread_local const std::shared_ptr<ThreadBuffer> tls = [] {
    auto buf = std::make_shared<ThreadBuffer>();
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(buf);
    return buf;
  }();
  return *tls;
}

void set_thread_label(std::string_view label) {
  thread_buffer().label.assign(label);
}

MetricId register_metric(std::string_view name, MetricKind kind,
                         std::string_view unit) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  if (const auto it = r.metric_ids.find(name); it != r.metric_ids.end()) {
    const MetricDesc& d = r.metrics[it->second];
    require(d.kind == kind && d.unit == unit,
            "obs::register_metric: '" + std::string(name) +
                "' re-registered as a different " + metric_kind_label(kind));
    return it->second;
  }
  const auto id = static_cast<MetricId>(r.metrics.size());
  r.metrics.push_back({std::string(name), kind, std::string(unit)});
  r.metric_ids.emplace(std::string(name), id);
  return id;
}

TraceSnapshot trace_snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  TraceSnapshot snap;
  snap.deterministic = deterministic();
  for (const auto& buf : r.buffers) {
    if (buf->spans.empty()) continue;
    snap.threads.push_back({buf->label, buf->spans});
  }
  // Deterministic thread order: by label, then by the span sequence itself
  // (names resolved to strings — interning order is execution-dependent).
  const auto span_key = [&r](const SpanRecord& s) {
    return std::tuple<const std::string&, std::uint64_t, std::uint64_t>(
        r.names[s.name], s.begin, s.end);
  };
  std::sort(snap.threads.begin(), snap.threads.end(),
            [&](const ThreadTrace& a, const ThreadTrace& b) {
              if (a.label != b.label) return a.label < b.label;
              return std::lexicographical_compare(
                  a.spans.begin(), a.spans.end(), b.spans.begin(),
                  b.spans.end(),
                  [&](const SpanRecord& x, const SpanRecord& y) {
                    return span_key(x) < span_key(y);
                  });
            });
  return snap;
}

FlightSnapshot flight_snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  FlightSnapshot snap;
  snap.deterministic = deterministic();
  for (const auto& buf : r.buffers) {
    const FlightRing& ring = buf->flight;
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    if (head == 0) continue;
    const std::uint64_t first =
        head > kFlightRingSlots ? head - kFlightRingSlots : 0;
    FlightThreadTrace trace;
    trace.label = buf->label;
    trace.records.reserve(static_cast<std::size_t>(head - first));
    for (std::uint64_t seq = first; seq < head; ++seq) {
      const FlightSlot& slot = ring.slots[seq & (kFlightRingSlots - 1)];
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      if (meta == 0) continue;  // overwritten mid-reset; skip
      FlightRecord rec;
      rec.kind = static_cast<FlightKind>((meta & 0xff) - 1);
      rec.name = r.names[static_cast<NameId>(meta >> 8)];
      rec.request = slot.request.load(std::memory_order_relaxed);
      rec.begin = slot.begin.load(std::memory_order_relaxed);
      rec.end = slot.end.load(std::memory_order_relaxed);
      trace.records.push_back(std::move(rec));
    }
    if (trace.records.empty()) continue;
    snap.threads.push_back(std::move(trace));
  }
  // Deterministic thread order: by label, then by the record sequence
  // itself (ties between identically-labelled threads).
  const auto rec_key = [](const FlightRecord& rec) {
    return std::tuple<const std::string&, std::uint64_t, std::uint64_t,
                      std::uint64_t, int>(rec.name, rec.request, rec.begin,
                                          rec.end,
                                          static_cast<int>(rec.kind));
  };
  std::sort(snap.threads.begin(), snap.threads.end(),
            [&](const FlightThreadTrace& a, const FlightThreadTrace& b) {
              if (a.label != b.label) return a.label < b.label;
              return std::lexicographical_compare(
                  a.records.begin(), a.records.end(), b.records.begin(),
                  b.records.end(),
                  [&](const FlightRecord& x, const FlightRecord& y) {
                    return rec_key(x) < rec_key(y);
                  });
            });
  return snap;
}

MetricsSnapshot metrics_snapshot() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);

  // Fold shards per metric id.  Counters and histograms merge by integer
  // addition, gauges by max: all three folds are commutative and
  // associative at the bit level, so the merged values are identical for
  // any shard count or fold order (the campaign guarantee, mirrored).
  const std::size_t n = r.metrics.size();
  std::vector<std::uint64_t> counters(n, 0);
  std::vector<std::uint64_t> gauges(n, 0);
  std::vector<HistogramShard> hists(n);
  for (const auto& buf : r.buffers) {
    for (std::size_t i = 0; i < buf->counters.size(); ++i) {
      counters[i] += buf->counters[i];
    }
    for (std::size_t i = 0; i < buf->gauges.size(); ++i) {
      gauges[i] = std::max(gauges[i], buf->gauges[i]);
    }
    for (std::size_t i = 0; i < buf->histograms.size(); ++i) {
      merge_shard(hists[i], buf->histograms[i]);
    }
  }

  // Name-sorted output: metric_ids is already a sorted map.
  MetricsSnapshot snap;
  for (const auto& [name, id] : r.metric_ids) {
    const MetricDesc& d = r.metrics[id];
    switch (d.kind) {
      case MetricKind::kCounter:
        snap.counters.push_back({name, d.unit, counters[id]});
        break;
      case MetricKind::kGauge:
        snap.gauges.push_back({name, d.unit, gauges[id]});
        break;
      case MetricKind::kHistogram: {
        const HistogramShard& h = hists[id];
        MetricsSnapshot::HistogramValue v;
        v.name = name;
        v.unit = d.unit;
        v.count = h.count;
        v.sum = h.sum;
        v.min = h.count == 0 ? 0 : h.min;
        v.max = h.max;
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
          if (h.buckets[b] != 0) {
            v.buckets.emplace_back(static_cast<int>(b), h.buckets[b]);
          }
        }
        snap.histograms.push_back(std::move(v));
        break;
      }
    }
  }
  return snap;
}

void reset_collected() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.buffers) {
    buf->tick = 0;
    buf->spans.clear();
    buf->counters.clear();
    buf->gauges.clear();
    buf->histograms.clear();
    for (FlightSlot& slot : buf->flight.slots) {
      slot.meta.store(0, std::memory_order_relaxed);
      slot.request.store(0, std::memory_order_relaxed);
      slot.begin.store(0, std::memory_order_relaxed);
      slot.end.store(0, std::memory_order_relaxed);
    }
    buf->flight.head.store(0, std::memory_order_release);
  }
}

}  // namespace hpcem::obs
