// Request-scoped span context: the deterministic request id the serving
// front assigns to every request, propagated implicitly through the
// layers the request touches (front -> result cache -> artifact store ->
// query engine) via a thread-local.
//
// The id is carried by RequestScope, an RAII guard that saves and
// restores the previous id, so nested scopes (a coalesced waiter
// recording whose evaluation it piggybacked on, an admin command issued
// while serving) compose.  Every flight-recorder record produced while a
// scope is active is tagged with its id, which is what makes per-request
// trace retrieval ({"op":"trace","request":N}) and postmortem filtering
// possible.
//
// Determinism: ids are assigned by the front's monotonic request counter,
// so in deterministic mode a given request stream yields the same
// id-tagged records for any worker count (sequential handling) — the same
// invariance the metrics merge already guarantees.
#pragma once

#include "obs/registry.hpp"

namespace hpcem::obs {

namespace detail {
/// Current request id on this thread; 0 = outside any request.
inline thread_local std::uint64_t t_request = 0;
}  // namespace detail

/// The request id active on this thread (0 when none).
[[nodiscard]] inline std::uint64_t current_request() {
  return detail::t_request;
}

/// RAII request scope: installs `id` as the current request for the
/// enclosing scope, restoring the previous id on exit.
class RequestScope {
 public:
  explicit RequestScope(std::uint64_t id) : prev_(detail::t_request) {
    detail::t_request = id;
  }
  ~RequestScope() { detail::t_request = prev_; }
  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// Record one instant event into the flight ring, tagged with the current
/// request id.  `aux` is a free payload word (a piggybacked-on request id,
/// an elapsed time, ...).  No-op while collection is disabled.
inline void record_event(NameId name, std::uint64_t aux = 0) {
  if (!enabled()) return;
  ThreadBuffer& tb = thread_buffer();
  flight_append(tb, FlightKind::kInstant, name, current_request(),
                next_stamp(tb), aux);
}

}  // namespace hpcem::obs
