// Chrome/Perfetto trace exporter.
//
// Serializes a TraceSnapshot as a Trace Event Format JSON document —
// loadable in chrome://tracing or https://ui.perfetto.dev — with complete
// ("ph":"X") events plus thread_name metadata.  Extra top-level keys
// (schema, deterministic, time_unit, metrics) identify the document to
// hpcem_prof; Chrome ignores them.
//
// Schema v2 optionally embeds the merged metrics snapshot as a "metrics"
// member (the hpcem.obs_metrics document, byte-identical to the artifact
// embedding), so one trace file carries both the span profile and the
// counter/histogram set hpcem_prof's --metric gate reads.
//
// Output is deterministically ordered: threads as ordered by
// trace_snapshot(), events within a thread by (begin, -end, name).  In
// deterministic mode "ts"/"dur" are logical ticks verbatim; otherwise wall
// nanoseconds are exported as microseconds (Chrome's native unit).
#pragma once

#include <string>

#include "obs/registry.hpp"
#include "util/json.hpp"

namespace hpcem::obs {

inline constexpr int kTraceSchemaVersion = 2;

/// The trace document as a JsonValue.  When `metrics` is non-null the
/// snapshot is embedded as the "metrics" member.
[[nodiscard]] JsonValue trace_json(const TraceSnapshot& snap,
                                   const MetricsSnapshot* metrics = nullptr);

/// Serialized trace document (2-space indent, deterministic bytes).
[[nodiscard]] std::string trace_json_text(
    const TraceSnapshot& snap, const MetricsSnapshot* metrics = nullptr);

/// Write the trace document to `path`; throws ParseError on I/O failure.
void write_trace_file(const TraceSnapshot& snap, const std::string& path,
                      const MetricsSnapshot* metrics = nullptr);

}  // namespace hpcem::obs
