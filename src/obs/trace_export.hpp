// Chrome/Perfetto trace exporter.
//
// Serializes a TraceSnapshot as a Trace Event Format JSON document —
// loadable in chrome://tracing or https://ui.perfetto.dev — with complete
// ("ph":"X") events plus thread_name metadata.  Extra top-level keys
// (schema, deterministic, time_unit) identify the document to hpcem_prof;
// Chrome ignores them.
//
// Output is deterministically ordered: threads as ordered by
// trace_snapshot(), events within a thread by (begin, -end, name).  In
// deterministic mode "ts"/"dur" are logical ticks verbatim; otherwise wall
// nanoseconds are exported as microseconds (Chrome's native unit).
#pragma once

#include <string>

#include "obs/registry.hpp"
#include "util/json.hpp"

namespace hpcem::obs {

inline constexpr int kTraceSchemaVersion = 1;

/// The trace document as a JsonValue.
[[nodiscard]] JsonValue trace_json(const TraceSnapshot& snap);

/// Serialized trace document (2-space indent, deterministic bytes).
[[nodiscard]] std::string trace_json_text(const TraceSnapshot& snap);

/// Write the trace document to `path`; throws ParseError on I/O failure.
void write_trace_file(const TraceSnapshot& snap, const std::string& path);

}  // namespace hpcem::obs
