#include "obs/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hpcem::obs {

double histogram_quantile(const MetricsSnapshot::HistogramValue& h,
                          double q) {
  if (h.count == 0) return 0.0;
  // Nearest rank (1-based): the smallest rank whose cumulative count
  // covers q of the distribution.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(h.count))));
  std::uint64_t cum = 0;
  for (const auto& [bit, n] : h.buckets) {
    if (cum + n < rank) {
      cum += n;
      continue;
    }
    // Bucket `bit` holds values v with std::bit_width(v) == bit:
    // bit == 0 -> v == 0, else v in [2^(bit-1), 2^bit - 1].
    const double lo = bit == 0 ? 0.0 : std::ldexp(1.0, bit - 1);
    const double hi = bit == 0 ? 0.0 : std::ldexp(1.0, bit) - 1.0;
    // Midpoint-rank interpolation inside the bucket, clamped to the
    // recorded extremes (which makes a single-sample histogram exact).
    const double f = (static_cast<double>(rank - cum) - 0.5) /
                     static_cast<double>(n);
    const double estimate = lo + f * (hi - lo);
    return std::clamp(estimate, static_cast<double>(h.min),
                      static_cast<double>(h.max));
  }
  return static_cast<double>(h.max);
}

HistogramStats histogram_stats(const MetricsSnapshot::HistogramValue& h) {
  HistogramStats s;
  s.name = h.name;
  s.unit = h.unit;
  s.count = h.count;
  s.sum = h.sum;
  s.min = h.min;
  s.max = h.max;
  if (h.count > 0) {
    s.mean = static_cast<double>(h.sum) / static_cast<double>(h.count);
    s.p50 = histogram_quantile(h, 0.50);
    s.p95 = histogram_quantile(h, 0.95);
    s.p99 = histogram_quantile(h, 0.99);
  }
  return s;
}

StatsSnapshot StatsRegistry::snapshot() {
  const MetricsSnapshot metrics = metrics_snapshot();
  StatsSnapshot snap;
  snap.deterministic = deterministic();
  snap.counters = metrics.counters;
  snap.gauges = metrics.gauges;
  snap.histograms.reserve(metrics.histograms.size());
  for (const auto& h : metrics.histograms) {
    snap.histograms.push_back(histogram_stats(h));
  }
  return snap;
}

JsonValue stats_json(const StatsSnapshot& snap) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hpcem.obs_stats");
  doc.set("schema_version", kStatsSchemaVersion);
  doc.set("deterministic", snap.deterministic);

  JsonValue counters = JsonValue::array();
  for (const auto& c : snap.counters) {
    JsonValue v = JsonValue::object();
    v.set("name", c.name);
    v.set("unit", c.unit);
    v.set("value", static_cast<double>(c.value));
    counters.push_back(std::move(v));
  }
  doc.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::array();
  for (const auto& g : snap.gauges) {
    JsonValue v = JsonValue::object();
    v.set("name", g.name);
    v.set("unit", g.unit);
    v.set("value", static_cast<double>(g.value));
    gauges.push_back(std::move(v));
  }
  doc.set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::array();
  for (const auto& h : snap.histograms) {
    JsonValue v = JsonValue::object();
    v.set("name", h.name);
    v.set("unit", h.unit);
    v.set("count", static_cast<double>(h.count));
    v.set("sum", static_cast<double>(h.sum));
    v.set("min", static_cast<double>(h.min));
    v.set("max", static_cast<double>(h.max));
    v.set("mean", h.mean);
    v.set("p50", h.p50);
    v.set("p95", h.p95);
    v.set("p99", h.p99);
    hists.push_back(std::move(v));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

}  // namespace hpcem::obs
