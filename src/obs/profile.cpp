#include "obs/profile.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>

#include "util/error.hpp"

namespace hpcem::obs {

namespace {

struct OpenSpan {
  std::string name;
  double end = 0.0;
  double dur = 0.0;
  double child_time = 0.0;
};

struct Accum {
  std::uint64_t count = 0;
  double inclusive = 0.0;
  double self = 0.0;
};

struct RawEvent {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
};

void close_span(std::map<std::string, Accum>& by_name, const OpenSpan& s) {
  Accum& a = by_name[s.name];
  ++a.count;
  a.inclusive += s.dur;
  a.self += s.dur - s.child_time;
}

}  // namespace

const ProfileEntry* Profile::find(std::string_view name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Profile profile_trace(const JsonValue& trace_doc) {
  const JsonValue* events = trace_doc.get("traceEvents");
  require(events != nullptr && events->is_array(),
          "profile_trace: document has no traceEvents array");

  Profile profile;
  if (const JsonValue* unit = trace_doc.get("time_unit")) {
    profile.time_unit = unit->as_string();
  }

  // Complete ("X") events grouped by thread.
  std::map<double, std::vector<RawEvent>> by_tid;
  for (const auto& ev : events->as_array()) {
    const JsonValue* ph = ev.get("ph");
    if (ph == nullptr || ph->as_string() != "X") continue;
    const double tid =
        ev.get("tid") != nullptr ? ev.at("tid").as_number() : 0.0;
    by_tid[tid].push_back({ev.at("name").as_string(),
                           ev.at("ts").as_number(),
                           ev.at("dur").as_number()});
  }

  std::map<std::string, Accum> by_name;
  for (auto& [tid, raw] : by_tid) {
    // Parents first: by start time, longest first on ties.
    std::sort(raw.begin(), raw.end(),
              [](const RawEvent& a, const RawEvent& b) {
                return std::tuple(a.ts, b.dur, a.name) <
                       std::tuple(b.ts, a.dur, b.name);
              });
    std::vector<OpenSpan> stack;
    for (const RawEvent& ev : raw) {
      while (!stack.empty() && ev.ts >= stack.back().end) {
        close_span(by_name, stack.back());
        stack.pop_back();
      }
      if (!stack.empty()) stack.back().child_time += ev.dur;
      stack.push_back({ev.name, ev.ts + ev.dur, ev.dur, 0.0});
    }
    while (!stack.empty()) {
      close_span(by_name, stack.back());
      stack.pop_back();
    }
  }

  profile.entries.reserve(by_name.size());
  for (const auto& [name, a] : by_name) {
    profile.entries.push_back({name, a.count, a.inclusive, a.self});
  }
  std::sort(profile.entries.begin(), profile.entries.end(),
            [](const ProfileEntry& a, const ProfileEntry& b) {
              return std::tuple(b.self, a.name) < std::tuple(a.self, b.name);
            });
  return profile;
}

std::vector<ProfileDelta> compare_profiles(const Profile& a,
                                           const Profile& b) {
  require(a.time_unit == b.time_unit,
          "compare_profiles: traces use different time units (" +
              a.time_unit + " vs " + b.time_unit +
              "); compare deterministic runs with deterministic baselines");

  std::map<std::string, ProfileDelta> rows;
  for (const auto& e : a.entries) {
    ProfileDelta& d = rows[e.name];
    d.name = e.name;
    d.count_a = e.count;
    d.self_a = e.self;
    d.inclusive_a = e.inclusive;
  }
  for (const auto& e : b.entries) {
    ProfileDelta& d = rows[e.name];
    d.name = e.name;
    d.count_b = e.count;
    d.self_b = e.self;
    d.inclusive_b = e.inclusive;
  }

  std::vector<ProfileDelta> out;
  out.reserve(rows.size());
  for (auto& [name, d] : rows) {
    if (d.self_a > 0.0) {
      d.self_pct = (d.self_b - d.self_a) / d.self_a * 100.0;
    } else if (d.self_b > 0.0) {
      d.self_pct = std::numeric_limits<double>::infinity();
    }
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileDelta& x, const ProfileDelta& y) {
              return std::tuple(y.self_b, x.name) <
                     std::tuple(x.self_b, y.name);
            });
  return out;
}

}  // namespace hpcem::obs
