#include "obs/postmortem.hpp"

#include <fstream>

#include "util/error.hpp"

namespace hpcem::obs {

namespace {

const char* kind_name(FlightKind kind) {
  return kind == FlightKind::kSpan ? "span" : "instant";
}

}  // namespace

JsonValue postmortem_json(const PostmortemTrigger& trigger,
                          const FlightSnapshot& snap) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hpcem.postmortem");
  doc.set("schema_version", kPostmortemSchemaVersion);
  doc.set("deterministic", snap.deterministic);

  JsonValue t = JsonValue::object();
  t.set("reason", trigger.reason);
  t.set("request", static_cast<double>(trigger.request));
  t.set("elapsed", static_cast<double>(trigger.elapsed));
  t.set("threshold", static_cast<double>(trigger.threshold));
  doc.set("trigger", std::move(t));

  JsonValue threads = JsonValue::array();
  for (const FlightThreadTrace& thread : snap.threads) {
    JsonValue o = JsonValue::object();
    o.set("label", thread.label);
    JsonValue records = JsonValue::array();
    for (const FlightRecord& rec : thread.records) {
      JsonValue r = JsonValue::object();
      r.set("name", rec.name);
      r.set("kind", kind_name(rec.kind));
      r.set("request", static_cast<double>(rec.request));
      r.set("begin", static_cast<double>(rec.begin));
      r.set("end", static_cast<double>(rec.end));
      records.push_back(std::move(r));
    }
    o.set("records", std::move(records));
    threads.push_back(std::move(o));
  }
  doc.set("threads", std::move(threads));
  return doc;
}

void write_postmortem_file(const PostmortemTrigger& trigger,
                           const FlightSnapshot& snap,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require_state(static_cast<bool>(out),
                "obs: cannot write postmortem file: " + path);
  out << postmortem_json(trigger, snap).dump(2) << '\n';
  require_state(static_cast<bool>(out),
                "obs: postmortem write failed: " + path);
}

}  // namespace hpcem::obs
