// Metrics exporter: the "obs" section embedded in run-artifact JSON v2.
//
// A MetricsSnapshot serializes to a deterministic, name-ordered document:
//
//   {"schema": "hpcem.obs_metrics", "schema_version": 1,
//    "deterministic": <bool>,
//    "counters":   [{"name", "unit", "value"}...],
//    "gauges":     [{"name", "unit", "value"}...],
//    "histograms": [{"name", "unit", "count", "sum", "min", "max",
//                    "buckets": [{"bit", "count"}...]}...]}
//
// The same bytes for the same collected data, whatever thread or worker
// count produced it (see obs/metrics.hpp for why the merge is exact).
#pragma once

#include "obs/registry.hpp"
#include "util/json.hpp"

namespace hpcem::obs {

inline constexpr int kMetricsSchemaVersion = 1;

[[nodiscard]] JsonValue metrics_json(const MetricsSnapshot& snap);

/// Parse a metrics section back into a snapshot (hpcem_prof's reader).
/// Throws ParseError on malformed input.
[[nodiscard]] MetricsSnapshot metrics_from_json(const JsonValue& v);

/// Prometheus text exposition (format version 0.0.4) of a merged
/// snapshot, so a running service can be scraped.  Metric names are
/// prefixed "hpcem_" with non-alphanumeric characters mapped to '_'
/// (serve.cache.hit -> hpcem_serve_cache_hit_total); counters gain the
/// conventional "_total" suffix and histograms emit cumulative
/// "_bucket{le=...}" lines at their occupied log2 upper bounds plus
/// "+Inf", "_sum" and "_count".  Deterministic: name-ordered input in,
/// the same bytes out.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snap);

}  // namespace hpcem::obs
