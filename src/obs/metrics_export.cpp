#include "obs/metrics_export.hpp"

#include "util/error.hpp"

namespace hpcem::obs {

namespace {

/// "serve.cache.hit" -> "hpcem_serve_cache_hit" (Prometheus name charset
/// is [a-zA-Z0-9_:]; we map everything else to '_').
std::string prometheus_name(const std::string& name) {
  std::string out = "hpcem_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

void help_and_type(std::string& out, const std::string& pname,
                   const std::string& unit, const char* type) {
  out += "# HELP " + pname + " unit: " + (unit.empty() ? "none" : unit) +
         "\n";
  out += "# TYPE " + pname + " " + type + "\n";
}

}  // namespace

JsonValue metrics_json(const MetricsSnapshot& snap) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hpcem.obs_metrics");
  doc.set("schema_version", kMetricsSchemaVersion);
  doc.set("deterministic", deterministic());

  JsonValue counters = JsonValue::array();
  for (const auto& c : snap.counters) {
    JsonValue v = JsonValue::object();
    v.set("name", c.name);
    v.set("unit", c.unit);
    v.set("value", static_cast<double>(c.value));
    counters.push_back(std::move(v));
  }
  doc.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::array();
  for (const auto& g : snap.gauges) {
    JsonValue v = JsonValue::object();
    v.set("name", g.name);
    v.set("unit", g.unit);
    v.set("value", static_cast<double>(g.value));
    gauges.push_back(std::move(v));
  }
  doc.set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::array();
  for (const auto& h : snap.histograms) {
    JsonValue v = JsonValue::object();
    v.set("name", h.name);
    v.set("unit", h.unit);
    v.set("count", static_cast<double>(h.count));
    v.set("sum", static_cast<double>(h.sum));
    v.set("min", static_cast<double>(h.min));
    v.set("max", static_cast<double>(h.max));
    JsonValue buckets = JsonValue::array();
    for (const auto& [bit, count] : h.buckets) {
      JsonValue b = JsonValue::object();
      b.set("bit", bit);
      b.set("count", static_cast<double>(count));
      buckets.push_back(std::move(b));
    }
    v.set("buckets", std::move(buckets));
    hists.push_back(std::move(v));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

MetricsSnapshot metrics_from_json(const JsonValue& v) {
  require(v.at("schema").as_string() == "hpcem.obs_metrics",
          "obs::metrics_from_json: not an obs-metrics document");
  const int version = static_cast<int>(v.at("schema_version").as_number());
  require(version == kMetricsSchemaVersion,
          "obs::metrics_from_json: unsupported schema version " +
              std::to_string(version));

  MetricsSnapshot snap;
  for (const auto& c : v.at("counters").as_array()) {
    snap.counters.push_back(
        {c.at("name").as_string(), c.at("unit").as_string(),
         static_cast<std::uint64_t>(c.at("value").as_number())});
  }
  for (const auto& g : v.at("gauges").as_array()) {
    snap.gauges.push_back(
        {g.at("name").as_string(), g.at("unit").as_string(),
         static_cast<std::uint64_t>(g.at("value").as_number())});
  }
  for (const auto& h : v.at("histograms").as_array()) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = h.at("name").as_string();
    hv.unit = h.at("unit").as_string();
    hv.count = static_cast<std::uint64_t>(h.at("count").as_number());
    hv.sum = static_cast<std::uint64_t>(h.at("sum").as_number());
    hv.min = static_cast<std::uint64_t>(h.at("min").as_number());
    hv.max = static_cast<std::uint64_t>(h.at("max").as_number());
    for (const auto& b : h.at("buckets").as_array()) {
      hv.buckets.emplace_back(
          static_cast<int>(b.at("bit").as_number()),
          static_cast<std::uint64_t>(b.at("count").as_number()));
    }
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string pname = prometheus_name(c.name) + "_total";
    help_and_type(out, pname, c.unit, "counter");
    out += pname + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string pname = prometheus_name(g.name);
    help_and_type(out, pname, g.unit, "gauge");
    out += pname + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string pname = prometheus_name(h.name);
    help_and_type(out, pname, h.unit, "histogram");
    std::uint64_t cum = 0;
    for (const auto& [bit, count] : h.buckets) {
      cum += count;
      // Log2 bucket `bit` holds values <= 2^bit - 1 (bit 0 holds only 0).
      const std::uint64_t upper =
          bit == 0 ? 0
                   : (bit >= 64 ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << bit) - 1);
      out += pname + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += pname + "_sum " + std::to_string(h.sum) + "\n";
    out += pname + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace hpcem::obs
