#include "obs/metrics_export.hpp"

#include "util/error.hpp"

namespace hpcem::obs {

JsonValue metrics_json(const MetricsSnapshot& snap) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "hpcem.obs_metrics");
  doc.set("schema_version", kMetricsSchemaVersion);
  doc.set("deterministic", deterministic());

  JsonValue counters = JsonValue::array();
  for (const auto& c : snap.counters) {
    JsonValue v = JsonValue::object();
    v.set("name", c.name);
    v.set("unit", c.unit);
    v.set("value", static_cast<double>(c.value));
    counters.push_back(std::move(v));
  }
  doc.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::array();
  for (const auto& g : snap.gauges) {
    JsonValue v = JsonValue::object();
    v.set("name", g.name);
    v.set("unit", g.unit);
    v.set("value", static_cast<double>(g.value));
    gauges.push_back(std::move(v));
  }
  doc.set("gauges", std::move(gauges));

  JsonValue hists = JsonValue::array();
  for (const auto& h : snap.histograms) {
    JsonValue v = JsonValue::object();
    v.set("name", h.name);
    v.set("unit", h.unit);
    v.set("count", static_cast<double>(h.count));
    v.set("sum", static_cast<double>(h.sum));
    v.set("min", static_cast<double>(h.min));
    v.set("max", static_cast<double>(h.max));
    JsonValue buckets = JsonValue::array();
    for (const auto& [bit, count] : h.buckets) {
      JsonValue b = JsonValue::object();
      b.set("bit", bit);
      b.set("count", static_cast<double>(count));
      buckets.push_back(std::move(b));
    }
    v.set("buckets", std::move(buckets));
    hists.push_back(std::move(v));
  }
  doc.set("histograms", std::move(hists));
  return doc;
}

MetricsSnapshot metrics_from_json(const JsonValue& v) {
  require(v.at("schema").as_string() == "hpcem.obs_metrics",
          "obs::metrics_from_json: not an obs-metrics document");
  const int version = static_cast<int>(v.at("schema_version").as_number());
  require(version == kMetricsSchemaVersion,
          "obs::metrics_from_json: unsupported schema version " +
              std::to_string(version));

  MetricsSnapshot snap;
  for (const auto& c : v.at("counters").as_array()) {
    snap.counters.push_back(
        {c.at("name").as_string(), c.at("unit").as_string(),
         static_cast<std::uint64_t>(c.at("value").as_number())});
  }
  for (const auto& g : v.at("gauges").as_array()) {
    snap.gauges.push_back(
        {g.at("name").as_string(), g.at("unit").as_string(),
         static_cast<std::uint64_t>(g.at("value").as_number())});
  }
  for (const auto& h : v.at("histograms").as_array()) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = h.at("name").as_string();
    hv.unit = h.at("unit").as_string();
    hv.count = static_cast<std::uint64_t>(h.at("count").as_number());
    hv.sum = static_cast<std::uint64_t>(h.at("sum").as_number());
    hv.min = static_cast<std::uint64_t>(h.at("min").as_number());
    hv.max = static_cast<std::uint64_t>(h.at("max").as_number());
    for (const auto& b : h.at("buckets").as_array()) {
      hv.buckets.emplace_back(
          static_cast<int>(b.at("bit").as_number()),
          static_cast<std::uint64_t>(b.at("count").as_number()));
    }
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

}  // namespace hpcem::obs
