#include "grid/demand_response.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

DemandResponseSchedule::DemandResponseSchedule(
    std::vector<GridStressEvent> events)
    : events_(std::move(events)) {
  std::sort(events_.begin(), events_.end(),
            [](const GridStressEvent& a, const GridStressEvent& b) {
              return a.start < b.start;
            });
  validate();
}

void DemandResponseSchedule::add(GridStressEvent event) {
  // Validate on a copy so a rejected event leaves the schedule unchanged.
  std::vector<GridStressEvent> candidate = events_;
  candidate.push_back(event);
  std::sort(candidate.begin(), candidate.end(),
            [](const GridStressEvent& a, const GridStressEvent& b) {
              return a.start < b.start;
            });
  DemandResponseSchedule trial;
  trial.events_ = std::move(candidate);
  trial.validate();
  events_ = std::move(trial.events_);
}

void DemandResponseSchedule::validate() const {
  for (const auto& e : events_) {
    require(e.end > e.start,
            "DemandResponseSchedule: event must have positive duration");
    require(e.cabinet_cap.w() > 0.0,
            "DemandResponseSchedule: cap must be positive");
  }
  for (std::size_t i = 1; i < events_.size(); ++i) {
    require(events_[i - 1].end <= events_[i].start,
            "DemandResponseSchedule: events must not overlap");
  }
}

std::optional<GridStressEvent> DemandResponseSchedule::active_at(
    SimTime t) const {
  for (const auto& e : events_) {
    if (e.active_at(t)) return e;
    if (e.start > t) break;  // events are time-ordered
  }
  return std::nullopt;
}

const PolicyOption& choose_policy_for_cap(
    const std::vector<PolicyOption>& options, Power cap) {
  require(!options.empty(), "choose_policy_for_cap: no options");
  const PolicyOption* best_fitting = nullptr;
  const PolicyOption* lowest_power = &options.front();
  for (const auto& opt : options) {
    if (opt.predicted_cabinet < lowest_power->predicted_cabinet) {
      lowest_power = &opt;
    }
    if (opt.predicted_cabinet <= cap) {
      if (best_fitting == nullptr ||
          opt.mean_slowdown < best_fitting->mean_slowdown) {
        best_fitting = &opt;
      }
    }
  }
  return best_fitting != nullptr ? *best_fitting : *lowest_power;
}

}  // namespace hpcem
