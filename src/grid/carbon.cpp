#include "grid/carbon.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace hpcem {

EmissionsRegime classify_regime(CarbonIntensity ci) {
  require(ci.gkwh() >= 0.0, "classify_regime: intensity must be >= 0");
  if (ci.gkwh() < 30.0) return EmissionsRegime::kEmbodiedDominated;
  if (ci.gkwh() <= 100.0) return EmissionsRegime::kBalanced;
  return EmissionsRegime::kOperationalDominated;
}

std::string to_string(EmissionsRegime r) {
  switch (r) {
    case EmissionsRegime::kEmbodiedDominated:
      return "embodied-dominated (<30 gCO2/kWh)";
    case EmissionsRegime::kBalanced:
      return "balanced (30-100 gCO2/kWh)";
    case EmissionsRegime::kOperationalDominated:
      return "operational-dominated (>100 gCO2/kWh)";
  }
  return "unknown";
}

TimeSeries synthetic_carbon_intensity(const CarbonIntensityParams& params,
                                      SimTime start, SimTime end, Rng rng) {
  require(end > start, "synthetic_carbon_intensity: end must follow start");
  require(params.step.sec() > 0.0,
          "synthetic_carbon_intensity: step must be positive");
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  TimeSeries out("gCO2/kWh");
  double weather = 0.0;
  const double innovation_scale =
      params.weather_sigma *
      std::sqrt(1.0 - params.weather_correlation * params.weather_correlation);
  for (SimTime t = start; t < end; t += params.step) {
    const CivilDate d = date_from_sim_time(t);
    // Seasonal: peak intensity mid-January (doy ~15), trough mid-July.
    const double doy = static_cast<double>(day_of_year(d));
    const double seasonal =
        params.seasonal_amplitude * std::cos(kTwoPi * (doy - 15.0) / 365.25);
    // Diurnal: trough ~04:00, peak ~18:00.
    const double hour = seconds_into_day(t) / 3600.0;
    const double diurnal =
        params.diurnal_amplitude * std::sin(kTwoPi * (hour - 10.0) / 24.0);
    // Weather: AR(1), stationary variance = weather_sigma^2.
    weather = params.weather_correlation * weather +
              rng.normal(0.0, innovation_scale);
    const double value = std::max(
        params.floor_g_per_kwh,
        params.mean_g_per_kwh + seasonal + diurnal + weather);
    out.append(t, value);
  }
  return out;
}

CarbonIntensitySeries::CarbonIntensitySeries(TimeSeries series)
    : series_(std::move(series)) {
  require(!series_.empty(), "CarbonIntensitySeries: empty series");
}

CarbonIntensity CarbonIntensitySeries::at(SimTime t) const {
  return CarbonIntensity::g_per_kwh(series_.value_at(t));
}

EmissionsRegime CarbonIntensitySeries::regime_at(SimTime t) const {
  return classify_regime(at(t));
}

CarbonIntensity CarbonIntensitySeries::mean(SimTime a, SimTime b) const {
  return CarbonIntensity::g_per_kwh(series_.mean_over(a, b));
}

CarbonMass CarbonIntensitySeries::emissions_of(
    const TimeSeries& power_kw) const {
  require(power_kw.size() >= 2,
          "CarbonIntensitySeries::emissions_of: need >= 2 power samples");
  double grams = 0.0;
  for (std::size_t i = 1; i < power_kw.size(); ++i) {
    const auto& prev = power_kw[i - 1];
    const auto& cur = power_kw[i];
    const double dt_h = (cur.time - prev.time).hrs();
    const double kwh = 0.5 * (prev.value + cur.value) * dt_h;
    const SimTime mid = prev.time + (cur.time - prev.time) / 2.0;
    grams += kwh * at(mid).gkwh();
  }
  return CarbonMass::grams(grams);
}

Price PriceModel::at(SimTime t) const {
  const CivilDate d = date_from_sim_time(t);
  const bool winter = d.month >= 11 || d.month <= 2;
  return winter ? Price::gbp_per_kwh(base.gbp_kwh() * winter_multiplier)
                : base;
}

Cost PriceModel::cost_of(const TimeSeries& power_kw) const {
  require(power_kw.size() >= 2, "PriceModel::cost_of: need >= 2 samples");
  double gbp = 0.0;
  for (std::size_t i = 1; i < power_kw.size(); ++i) {
    const auto& prev = power_kw[i - 1];
    const auto& cur = power_kw[i];
    const double dt_h = (cur.time - prev.time).hrs();
    const double kwh = 0.5 * (prev.value + cur.value) * dt_h;
    const SimTime mid = prev.time + (cur.time - prev.time) / 2.0;
    gbp += kwh * at(mid).gbp_kwh();
  }
  return Cost::gbp(gbp);
}

}  // namespace hpcem
