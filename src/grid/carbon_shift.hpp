// Carbon-aware temporal shifting of deferrable work.
//
// The paper frames facilities as grid citizens whose emissions depend on
// *when* electricity is drawn (§2-§3).  A natural extension of its
// operating levers: defer flexible jobs into low-carbon windows (overnight
// wind, in the UK-shaped model).  The planner evaluates candidate start
// times over a flexibility horizon against a carbon-intensity series and
// picks the window with the lowest mean intensity — the standard
// load-shifting formulation, restricted to the information a batch system
// actually has (job runtime estimate, forecast intensity).
#pragma once

#include <vector>

#include "grid/carbon.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Outcome of planning one deferrable job.
struct ShiftDecision {
  SimTime start;  ///< chosen start (>= earliest)
  CarbonIntensity mean_intensity;        ///< over the chosen run window
  CarbonIntensity immediate_intensity;   ///< had it started at `earliest`
  /// Fractional scope-2 saving vs starting immediately (>= 0).
  double saving_fraction = 0.0;
};

/// Plans deferrable work against an intensity series.
class CarbonShiftPlanner {
 public:
  /// `resolution`: granularity of candidate start times.
  explicit CarbonShiftPlanner(const CarbonIntensitySeries& intensity,
                              Duration resolution = Duration::minutes(30.0));

  /// Mean intensity over [start, start + runtime).
  [[nodiscard]] CarbonIntensity mean_over_run(SimTime start,
                                              Duration runtime) const;

  /// Choose the lowest-carbon start in [earliest, earliest + horizon].
  /// A zero horizon returns the immediate start.
  [[nodiscard]] ShiftDecision plan(SimTime earliest, Duration runtime,
                                   Duration horizon) const;

  /// Aggregate study: scope-2 of a stream of (start, runtime, mean power)
  /// jobs with and without shifting a deferrable fraction by `horizon`.
  struct StudyJob {
    SimTime earliest;
    Duration runtime;
    Power mean_power;
    bool deferrable = true;
  };
  struct StudyResult {
    CarbonMass immediate;
    CarbonMass shifted;
    double saving_fraction = 0.0;
    double mean_delay_hours = 0.0;  ///< over the deferrable jobs
  };
  [[nodiscard]] StudyResult study(const std::vector<StudyJob>& jobs,
                                  Duration horizon) const;

 private:
  const CarbonIntensitySeries* intensity_;
  Duration resolution_;
};

}  // namespace hpcem
