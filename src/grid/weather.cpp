#include "grid/weather.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace hpcem {

TimeSeries synthetic_site_temperature(const WeatherParams& params,
                                      SimTime start, SimTime end, Rng rng) {
  require(end > start, "synthetic_site_temperature: end must follow start");
  require(params.step.sec() > 0.0,
          "synthetic_site_temperature: step must be positive");
  constexpr double kTwoPi = 2.0 * std::numbers::pi;

  TimeSeries out("degC");
  double weather = 0.0;
  const double innovation =
      params.weather_sigma *
      std::sqrt(1.0 -
                params.weather_correlation * params.weather_correlation);
  for (SimTime t = start; t < end; t += params.step) {
    const double doy =
        static_cast<double>(day_of_year(date_from_sim_time(t)));
    // Warmest around mid-July (doy ~196), coldest mid-January.
    const double seasonal =
        params.seasonal_amplitude *
        std::cos(kTwoPi * (doy - 196.0) / 365.25);
    const double hour = seconds_into_day(t) / 3600.0;
    // Warmest mid-afternoon (~15:00).
    const double diurnal =
        params.diurnal_amplitude *
        std::cos(kTwoPi * (hour - 15.0) / 24.0);
    weather = params.weather_correlation * weather +
              rng.normal(0.0, innovation);
    out.append(t, params.annual_mean_c + seasonal + diurnal + weather);
  }
  return out;
}

}  // namespace hpcem
