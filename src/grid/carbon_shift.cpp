#include "grid/carbon_shift.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

CarbonShiftPlanner::CarbonShiftPlanner(const CarbonIntensitySeries& intensity,
                                       Duration resolution)
    : intensity_(&intensity), resolution_(resolution) {
  require(resolution.sec() > 0.0,
          "CarbonShiftPlanner: resolution must be positive");
}

CarbonIntensity CarbonShiftPlanner::mean_over_run(SimTime start,
                                                  Duration runtime) const {
  require(runtime.sec() > 0.0,
          "CarbonShiftPlanner: runtime must be positive");
  // Sample the series across the run at half-resolution steps; cheap and
  // adequate for the half-hourly series the grid module produces.
  const Duration step = resolution_ / 2.0;
  double sum = 0.0;
  std::size_t n = 0;
  for (SimTime t = start; t < start + runtime; t += step) {
    sum += intensity_->at(t).gkwh();
    ++n;
  }
  HPCEM_ASSERT(n > 0, "mean_over_run sampled nothing");
  return CarbonIntensity::g_per_kwh(sum / static_cast<double>(n));
}

ShiftDecision CarbonShiftPlanner::plan(SimTime earliest, Duration runtime,
                                       Duration horizon) const {
  require(horizon.sec() >= 0.0,
          "CarbonShiftPlanner: horizon must be non-negative");
  ShiftDecision d;
  d.immediate_intensity = mean_over_run(earliest, runtime);
  d.start = earliest;
  d.mean_intensity = d.immediate_intensity;
  for (SimTime cand = earliest; cand <= earliest + horizon;
       cand += resolution_) {
    const CarbonIntensity ci = mean_over_run(cand, runtime);
    if (ci < d.mean_intensity) {
      d.mean_intensity = ci;
      d.start = cand;
    }
  }
  d.saving_fraction =
      1.0 - d.mean_intensity.gkwh() / d.immediate_intensity.gkwh();
  return d;
}

CarbonShiftPlanner::StudyResult CarbonShiftPlanner::study(
    const std::vector<StudyJob>& jobs, Duration horizon) const {
  require(!jobs.empty(), "CarbonShiftPlanner::study: no jobs");
  StudyResult r;
  double delay_sum_h = 0.0;
  std::size_t deferrable = 0;
  for (const auto& j : jobs) {
    const Energy e = j.mean_power * j.runtime;
    const CarbonIntensity now_ci = mean_over_run(j.earliest, j.runtime);
    r.immediate += e * now_ci;
    if (j.deferrable) {
      const ShiftDecision d = plan(j.earliest, j.runtime, horizon);
      r.shifted += e * d.mean_intensity;
      delay_sum_h += (d.start - j.earliest).hrs();
      ++deferrable;
    } else {
      r.shifted += e * now_ci;
    }
  }
  r.saving_fraction = 1.0 - r.shifted.g() / r.immediate.g();
  r.mean_delay_hours =
      deferrable > 0 ? delay_sum_h / static_cast<double>(deferrable) : 0.0;
  return r;
}

}  // namespace hpcem
