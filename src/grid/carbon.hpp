// Electricity-grid carbon intensity model.
//
// The paper's §2 emissions framework is parameterised by the grid's carbon
// intensity (gCO2/kWh) and splits into three regimes: very low (<30), where
// embodied (scope-3) emissions dominate and one should optimise application
// output; moderate (30-100), where scope 2 and 3 balance; and high (>100),
// where operational (scope-2) emissions dominate and energy efficiency
// wins even at some performance cost.
//
// Since real half-hourly UK grid data is not shipped with the paper, the
// synthetic generator produces a UK-shaped series: a seasonal term (higher
// intensity in winter), a diurnal term (overnight wind/low demand vs
// evening peak), and an AR(1) weather process for multi-day wind
// variability — enough structure to exercise any intensity-aware policy.
#pragma once

#include "telemetry/timeseries.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace hpcem {

/// §2 regimes for the scope-2/scope-3 balance.
enum class EmissionsRegime {
  kEmbodiedDominated,   ///< < 30 gCO2/kWh: optimise output per node-hour
  kBalanced,            ///< 30-100 gCO2/kWh: balance energy and output
  kOperationalDominated ///< > 100 gCO2/kWh: optimise energy efficiency
};

/// Classify a carbon intensity into the paper's regimes.
[[nodiscard]] EmissionsRegime classify_regime(CarbonIntensity ci);

[[nodiscard]] std::string to_string(EmissionsRegime r);

/// Parameters of the synthetic UK-shaped intensity series.
struct CarbonIntensityParams {
  double mean_g_per_kwh = 200.0;       ///< annual mean (UK ~2022)
  double seasonal_amplitude = 60.0;    ///< winter-summer swing
  double diurnal_amplitude = 40.0;     ///< overnight vs evening swing
  double weather_sigma = 45.0;         ///< AR(1) innovation scale
  double weather_correlation = 0.97;   ///< per-step AR(1) coefficient
  Duration step = Duration::minutes(30.0);
  double floor_g_per_kwh = 15.0;       ///< never below (nuclear baseload)
};

/// Generate a synthetic intensity series over [start, end).
[[nodiscard]] TimeSeries synthetic_carbon_intensity(
    const CarbonIntensityParams& params, SimTime start, SimTime end,
    Rng rng);

/// Wrap an intensity series with interpolation and regime queries.
class CarbonIntensitySeries {
 public:
  explicit CarbonIntensitySeries(TimeSeries series);

  /// Intensity at an instant (interpolated, clamped at the ends).
  [[nodiscard]] CarbonIntensity at(SimTime t) const;
  [[nodiscard]] EmissionsRegime regime_at(SimTime t) const;

  /// Mean intensity over a window.
  [[nodiscard]] CarbonIntensity mean(SimTime a, SimTime b) const;

  /// Scope-2 emissions of a power series (kW channel) against this
  /// intensity series, integrated sample-by-sample.
  [[nodiscard]] CarbonMass emissions_of(const TimeSeries& power_kw) const;

  [[nodiscard]] const TimeSeries& series() const { return series_; }

 private:
  TimeSeries series_;
};

/// Electricity price model: a flat base price with a winter-stress
/// multiplier (the Winter 2022/23 context of the paper's work).
struct PriceModel {
  Price base = Price::gbp_per_kwh(0.25);
  double winter_multiplier = 1.5;  ///< applied in Nov-Feb

  [[nodiscard]] Price at(SimTime t) const;
  [[nodiscard]] Cost cost_of(const TimeSeries& power_kw) const;
};

}  // namespace hpcem
