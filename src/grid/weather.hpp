// Synthetic outdoor weather for the hosting site.
//
// Cooling overhead depends on outdoor conditions: ARCHER2's hosting uses
// evaporative cooling whose efficiency tracks the (wet-bulb) temperature.
// This generator produces an Edinburgh-shaped air temperature series —
// seasonal swing around a ~9 °C annual mean, diurnal cycle, AR(1) weather
// systems — for the cooling model to consume.
#pragma once

#include "telemetry/timeseries.hpp"
#include "util/rng.hpp"

namespace hpcem {

/// Parameters of the synthetic site temperature series (degrees Celsius).
struct WeatherParams {
  double annual_mean_c = 9.0;       ///< Edinburgh-like
  double seasonal_amplitude = 6.5;  ///< summer/winter swing
  double diurnal_amplitude = 3.0;
  double weather_sigma = 3.0;       ///< AR(1) weather-system scale
  double weather_correlation = 0.98;
  Duration step = Duration::hours(1.0);
};

/// Generate an outdoor temperature series over [start, end).
[[nodiscard]] TimeSeries synthetic_site_temperature(
    const WeatherParams& params, SimTime start, SimTime end, Rng rng);

}  // namespace hpcem
