// Grid demand-response: "good grid citizen" behaviour (paper §3).
//
// The paper's work was done in the Winter 2022/23 context of possible UK
// power shortages: a facility that can shed hundreds of kW on request frees
// grid capacity for critical infrastructure.  This module models stress
// windows and a power-cap policy that chooses the strongest operating
// policy satisfying the cap, preferring the least performance-damaging
// lever first (BIOS mode, then frequency) — the same ordering the paper's
// two changes follow.
#pragma once

#include <optional>
#include <vector>

#include "util/sim_time.hpp"
#include "util/units.hpp"
#include "workload/policy.hpp"

namespace hpcem {

/// One grid stress window with the cap requested of the facility.
struct GridStressEvent {
  SimTime start;
  SimTime end;
  Power cabinet_cap;  ///< maximum cabinet draw requested during the window

  [[nodiscard]] bool active_at(SimTime t) const {
    return t >= start && t < end;
  }
};

/// Calendar of stress events (non-overlapping, time-ordered).
class DemandResponseSchedule {
 public:
  DemandResponseSchedule() = default;
  explicit DemandResponseSchedule(std::vector<GridStressEvent> events);

  void add(GridStressEvent event);

  [[nodiscard]] std::optional<GridStressEvent> active_at(SimTime t) const;
  [[nodiscard]] const std::vector<GridStressEvent>& events() const {
    return events_;
  }

 private:
  void validate() const;
  std::vector<GridStressEvent> events_;
};

/// A candidate operating policy with its predicted steady-state cabinet
/// draw (computed by the caller from its facility model).
struct PolicyOption {
  OperatingPolicy policy;
  Power predicted_cabinet;
  /// Mix-average expected slowdown vs the baseline policy (0 = none).
  double mean_slowdown = 0.0;
};

/// Choose the least-damaging policy meeting `cap`: among options whose
/// predicted draw fits, the one with the smallest mean slowdown; if none
/// fits, the lowest-power option (best effort).  `options` must be
/// non-empty.
[[nodiscard]] const PolicyOption& choose_policy_for_cap(
    const std::vector<PolicyOption>& options, Power cap);

}  // namespace hpcem
