// Lifetime emissions model: scope-2 vs scope-3 balance (paper §2).
//
// The paper's emissions framework: a service's lifetime emissions are the
// embodied (scope-3) emissions of manufacture/shipping/decommissioning plus
// the operational (scope-2) emissions of its electricity.  Which one
// dominates depends on the grid's carbon intensity, and that balance
// dictates operational strategy:
//   * scope-3 dominated  -> maximise output per node-hour (performance);
//   * balanced           -> trade performance and energy efficiency;
//   * scope-2 dominated  -> maximise output per kWh (energy efficiency),
//                           even at some performance cost.
//
// Default embodied total: ~10 ktCO2e over a 6-year service life — a
// DRI-scoping-style estimate (~1.3 tCO2e per dual-socket node plus fabric,
// storage and plant).  With ARCHER2's measured ~3.2 MW draw this places the
// scope2 == scope3 crossover near 55 gCO2/kWh, inside the paper's
// "balanced" 30-100 band, which is the consistency the model must exhibit.
#pragma once

#include <string>
#include <vector>

#include "grid/carbon.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Embodied-emissions parameters.
struct EmbodiedParams {
  CarbonMass total = CarbonMass::tonnes(10000.0);
  double lifetime_years = 6.0;

  [[nodiscard]] CarbonMass annual() const {
    return total / lifetime_years;
  }

  friend bool operator==(const EmbodiedParams&,
                         const EmbodiedParams&) = default;
};

/// Strategy recommendation derived from the scope balance.
enum class OperationalStrategy {
  kMaximisePerformance,  ///< scope-3 dominated
  kBalance,              ///< comparable scopes
  kMaximiseEnergyEfficiency,  ///< scope-2 dominated
};

[[nodiscard]] std::string to_string(OperationalStrategy s);

/// One row of a scenario sweep over carbon intensity.
struct EmissionsScenario {
  CarbonIntensity intensity;
  CarbonMass annual_scope2;
  CarbonMass annual_scope3;
  double scope2_share = 0.0;  ///< scope2 / (scope2 + scope3)
  EmissionsRegime regime = EmissionsRegime::kBalanced;
  OperationalStrategy strategy = OperationalStrategy::kBalance;
};

/// Scope-2/scope-3 lifetime emissions model for a facility.
class EmissionsModel {
 public:
  EmissionsModel(EmbodiedParams embodied, Power mean_facility_power);

  [[nodiscard]] const EmbodiedParams& embodied() const { return embodied_; }
  [[nodiscard]] Power mean_power() const { return mean_power_; }

  /// Annual operational emissions at a given intensity.
  [[nodiscard]] CarbonMass annual_scope2(CarbonIntensity ci) const;
  /// Annual share of embodied emissions.
  [[nodiscard]] CarbonMass annual_scope3() const;
  /// scope2 / (scope2 + scope3) at a given intensity.
  [[nodiscard]] double scope2_share(CarbonIntensity ci) const;

  /// Intensity at which scope 2 equals scope 3.
  [[nodiscard]] CarbonIntensity crossover_intensity() const;

  /// §2 strategy recommendation at an intensity, thresholded on the
  /// scope-2 share: <1/3 performance, >2/3 energy efficiency, else balance.
  [[nodiscard]] OperationalStrategy recommend(CarbonIntensity ci) const;

  /// Evaluate one scenario row.
  [[nodiscard]] EmissionsScenario scenario(CarbonIntensity ci) const;

  /// Sweep rows over a list of intensities.
  [[nodiscard]] std::vector<EmissionsScenario> sweep(
      const std::vector<double>& intensities_g_per_kwh) const;

  /// Lifetime totals for a constant intensity: embodied + lifetime scope-2.
  [[nodiscard]] CarbonMass lifetime_total(CarbonIntensity ci) const;

  /// Emissions per node-hour delivered: the efficiency currency of §2.
  /// `node_hours_per_year` is the machine's delivered capacity.
  [[nodiscard]] double grams_per_node_hour(CarbonIntensity ci,
                                           double node_hours_per_year) const;

 private:
  EmbodiedParams embodied_;
  Power mean_power_;
};

}  // namespace hpcem
