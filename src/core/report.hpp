// Report rendering: the paper's tables and figures as terminal text.
//
// Every reproduction harness in bench/ formats its output through these
// functions so EXPERIMENTS.md, the examples and the benches agree on
// layout.  Rows carry the paper's published values next to the model's, so
// the comparison is visible without a copy of the paper at hand.
#pragma once

#include <string>
#include <vector>

#include "core/efficiency.hpp"
#include "core/emissions.hpp"
#include "core/facility.hpp"
#include "core/run_artifact.hpp"
#include "core/scenario.hpp"
#include "power/facility_power.hpp"

namespace hpcem {

/// Table 1: hardware summary.
[[nodiscard]] std::string render_hardware_summary(const Facility& facility);

/// Table 2: per-component idle/loaded power and shares, with the paper's
/// published values alongside.
[[nodiscard]] std::string render_component_table(
    const std::vector<ComponentPowerRow>& rows);

/// Tables 3/4: benchmark comparisons, model vs paper.
[[nodiscard]] std::string render_benchmark_table(
    const std::vector<BenchmarkComparison>& rows, const std::string& title);

/// Figures 1-3: ASCII cabinet-power timeline with mean reference lines and
/// month tick labels, plus the recovered change point.
[[nodiscard]] std::string render_timeline(const TimelineResult& result,
                                          const std::string& title);

/// §2: emissions scenario sweep table.
[[nodiscard]] std::string render_emissions_sweep(
    const std::vector<EmissionsScenario>& rows);

/// §5: conclusions summary, model vs paper headline numbers.
[[nodiscard]] std::string render_conclusions(
    const ScenarioRunner::Conclusions& c);

/// Frequency sweep table for one application (examples/advisor).
[[nodiscard]] std::string render_frequency_sweep(
    const std::string& app, const std::vector<FrequencyPoint>& sweep);

/// Run-artifact summary: headline numbers, change points and per-channel
/// aggregates as text (the human view of the JSON artifact).
[[nodiscard]] std::string render_run_artifact(const RunArtifact& artifact);

}  // namespace hpcem
