// Declarative facility assembly: one ScenarioSpec -> a ready-to-run
// simulator.
//
// Every reproduction harness used to hand-assemble the same ARCHER2
// configuration (inventory, power models, workload mix, scheduler
// discipline) before tweaking one knob.  `ScenarioSpec` is the single
// declarative description of a simulated campaign — which machine, which
// window, which operating policy, which mid-window changes, which plant
// extras — and `FacilityAssembly` turns a spec into the canonical
// configuration, composition (sim/composition.hpp) and armed simulator.
// The campaign layer (sim/campaign.hpp) fans specs out over a thread pool
// via `run_campaign` below.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/emissions.hpp"
#include "core/facility.hpp"
#include "sim/campaign.hpp"
#include "telemetry/changepoint.hpp"
#include "telemetry/timeseries.hpp"

namespace hpcem {

/// A policy rollout at an instant (the paper's BIOS/frequency changes).
struct PolicyChange {
  SimTime at{};
  OperatingPolicy policy{};

  friend bool operator==(const PolicyChange&, const PolicyChange&) = default;
};

/// A maintenance reservation: job starts blocked in [block_from, end).
struct MaintenanceWindow {
  SimTime block_from{};
  SimTime end{};

  friend bool operator==(const MaintenanceWindow&,
                         const MaintenanceWindow&) = default;
};

/// Grid carbon-intensity context a scenario is priced against: a constant
/// or a piecewise-linear breakpoint curve ((epoch s, gCO2/kWh), strictly
/// time-sorted, clamped outside its span).  Mirrors the serve layer's
/// IntensitySpec; the simulator itself does not consume it — it rides on
/// the spec so emissions pricing (serve regimes/whatif) and the committed
/// scenario files speak one language.
struct GridIntensitySeries {
  std::optional<CarbonIntensity> constant;
  std::vector<std::pair<double, double>> points;

  friend bool operator==(const GridIntensitySeries&,
                         const GridIntensitySeries&) = default;
};

/// Which calibrated machine model a spec runs on.
enum class MachineModel {
  kArcher2,  ///< the full 5,860-node flagship
  kTestbed,  ///< 512 nodes, same physics (CI and experimentation)
  kMicro,    ///< 64 nodes (campaign fan-out benchmarks, fast tests)
};

/// Declarative description of one simulated measurement campaign.
struct ScenarioSpec {
  std::string name = "scenario";
  MachineModel machine = MachineModel::kArcher2;

  /// Measurement window [window_start, window_end).
  SimTime window_start{};
  SimTime window_end{};
  /// Steady-state pre-roll simulated before the window opens.
  Duration warmup = Duration::days(25.0);

  /// Default seed for single runs (campaigns derive per-task streams).
  std::uint64_t seed = 0x5EED;

  /// Operating policy at simulation start.
  OperatingPolicy policy = OperatingPolicy::baseline();
  /// Scheduled rollouts.  Pre-window changes arm the policy at the window
  /// start (latest wins); changes at or after window_end are ignored.
  std::vector<PolicyChange> changes;
  std::vector<MaintenanceWindow> maintenance;

  /// Scheduler discipline.
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  PriorityWeights weights{};

  /// Simulator overrides; nullopt keeps the machine defaults.
  std::optional<Duration> sample_interval;
  std::optional<double> metering_noise_sigma;
  std::optional<double> offered_load;
  std::optional<double> user_turbo_pin_fraction;
  /// Memory-bounded telemetry retention: per-channel raw-sample cap for
  /// long campaigns (aggregates stay exact; raw samples are decimated).
  std::optional<std::size_t> telemetry_max_raw_samples;

  /// Optional plant components appended to the standard composition
  /// (outside the cabinet metering boundary; extra telemetry channels).
  bool model_cdus = false;
  bool model_filesystems = false;
  /// When set, adds a PUE-style cooling overhead source at this constant
  /// outdoor temperature (degC).
  std::optional<double> cooling_outdoor_c;
  /// Idle-node suspension lever (disabled by default, as on ARCHER2).
  IdlePowerPolicy idle_policy{};

  /// Emissions-pricing context (not consumed by the simulator): the grid
  /// intensity curve and scope-3 parameters serve regimes/whatif price
  /// this scenario against.  Carried so a scenario file is the complete
  /// description of a campaign *and* its emissions question.
  std::optional<GridIntensitySeries> grid;
  std::optional<EmbodiedParams> scope3;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  /// First scheduled change strictly inside the window, if any (the
  /// before/after split instant for analysis).
  [[nodiscard]] std::optional<SimTime> first_change_in_window() const;

  /// The paper's three measurement campaigns (Figures 1-3) on the
  /// flagship machine, loaded from the committed scenario library
  /// (scenarios/figure1.json etc. via core/scenario_library.hpp).
  [[nodiscard]] static ScenarioSpec figure1();
  [[nodiscard]] static ScenarioSpec figure2();
  [[nodiscard]] static ScenarioSpec figure3();
  /// The canonical steady-state baseline window (same as figure1).
  [[nodiscard]] static ScenarioSpec archer2_baseline();
};

/// Result of one scenario run.
struct TimelineResult {
  /// Cabinet power over the measurement window (kW channel).
  TimeSeries cabinet_kw;
  /// Mean utilisation over the window.
  double mean_utilisation = 0.0;
  /// Window mean (whole window).
  double mean_kw = 0.0;
  /// Means before/after the scheduled change (equal to mean_kw when the
  /// scenario has no change).
  double mean_before_kw = 0.0;
  double mean_after_kw = 0.0;
  /// Change point recovered from the data by least-squares segmentation.
  std::optional<TimedStepChange> detected;
  /// When the operational change was actually applied (if any).
  std::optional<SimTime> change_time;
  SimTime window_start;
  SimTime window_end;
};

/// Builds the canonical configuration and simulators for one spec.
///
/// Immutable after construction, so a const assembly may be shared across
/// campaign worker threads; every make_simulator() call produces a fresh
/// shared-nothing simulator.
class FacilityAssembly {
 public:
  /// Assemble the machine named by spec.machine.
  explicit FacilityAssembly(ScenarioSpec spec);

  /// Assemble over an existing machine model (what-if studies, custom
  /// facilities).  The facility must outlive the assembly.
  FacilityAssembly(const Facility& facility, ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }
  [[nodiscard]] const Facility& facility() const { return *facility_; }

  /// The simulator configuration for this spec at a given seed.
  [[nodiscard]] FacilitySimConfig sim_config(std::uint64_t seed) const;

  /// The component list for this spec: the standard cabinet-boundary
  /// breakdown plus any plant extras the spec asks for.
  [[nodiscard]] SimComposition composition(
      const FacilitySimConfig& config) const;

  /// A ready-to-run simulator: configuration built, policy set, changes
  /// and maintenance armed.  Call sim->run(spec window - warmup, end), or
  /// use run_simulator()/run() below.
  [[nodiscard]] std::unique_ptr<FacilitySimulator> make_simulator() const;
  [[nodiscard]] std::unique_ptr<FacilitySimulator> make_simulator(
      std::uint64_t seed) const;

  /// Build and run to completion (warmup + window); returns the simulator
  /// for telemetry/job-record access.
  [[nodiscard]] std::unique_ptr<FacilitySimulator> run_simulator() const;
  [[nodiscard]] std::unique_ptr<FacilitySimulator> run_simulator(
      std::uint64_t seed) const;

  /// Build, run and analyse the measurement window.
  [[nodiscard]] TimelineResult run() const;
  [[nodiscard]] TimelineResult run(std::uint64_t seed) const;

 private:
  ScenarioSpec spec_;
  std::shared_ptr<const Facility> owned_;  ///< null when external
  const Facility* facility_;
};

/// Window analysis on a finished run: slice the cabinet channel, compute
/// window/before/after means and recover the changepoint from the data
/// alone — the same analysis an operator would run on real cabinet
/// telemetry.
[[nodiscard]] TimelineResult analyze_timeline(const FacilitySimulator& sim,
                                              const ScenarioSpec& spec);

/// Bind a spec-built assembly into a campaign scenario (sim/campaign.hpp).
/// The returned factory shares the assembly immutably across workers.
[[nodiscard]] CampaignScenario make_campaign_scenario(
    std::shared_ptr<const FacilityAssembly> assembly);

/// Assemble every spec and execute the campaign on a worker pool.
/// Merged results are bit-identical for any worker count.
[[nodiscard]] CampaignResult run_campaign(
    const std::vector<ScenarioSpec>& specs,
    const CampaignConfig& config = {});

}  // namespace hpcem
