#include "core/tco.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

TcoModel::TcoModel(TcoParams params) : params_(params) {
  require(params_.capital.pounds() > 0.0,
          "TcoModel: capital must be positive");
  require(params_.lifetime_years > 0.0,
          "TcoModel: lifetime must be positive");
  require(params_.mean_facility_power.w() > 0.0,
          "TcoModel: mean power must be positive");
  require(params_.annual_support_fraction >= 0.0,
          "TcoModel: support fraction must be non-negative");
}

Energy TcoModel::lifetime_energy() const {
  return params_.mean_facility_power *
         Duration::days(365.25 * params_.lifetime_years);
}

Cost TcoModel::lifetime_electricity(Price price) const {
  require(price.gbp_kwh() >= 0.0,
          "TcoModel: price must be non-negative");
  return lifetime_energy() * price;
}

Cost TcoModel::lifetime_support() const {
  return Cost::gbp(params_.capital.pounds() *
                   params_.annual_support_fraction *
                   params_.lifetime_years);
}

Cost TcoModel::lifetime_total(Price price) const {
  return params_.capital + lifetime_support() +
         lifetime_electricity(price);
}

Price TcoModel::breakeven_price() const {
  return Price::gbp_per_kwh(params_.capital.pounds() /
                            lifetime_energy().to_kwh());
}

Cost TcoModel::saving_value(Power reduction, Price price,
                            double remaining_years) const {
  require(reduction.w() >= 0.0, "TcoModel: reduction must be >= 0");
  require(remaining_years >= 0.0,
          "TcoModel: remaining_years must be >= 0");
  return reduction * Duration::days(365.25 * remaining_years) * price;
}

TcoScenario TcoModel::scenario(Price price) const {
  TcoScenario s;
  s.price = price;
  s.lifetime_electricity = lifetime_electricity(price);
  s.lifetime_support = lifetime_support();
  s.lifetime_total = lifetime_total(price);
  s.electricity_share =
      s.lifetime_electricity.pounds() / s.lifetime_total.pounds();
  return s;
}

std::vector<TcoScenario> TcoModel::sweep(
    const std::vector<double>& prices_gbp_per_kwh) const {
  std::vector<TcoScenario> out;
  out.reserve(prices_gbp_per_kwh.size());
  for (double p : prices_gbp_per_kwh) {
    out.push_back(scenario(Price::gbp_per_kwh(p)));
  }
  return out;
}

std::string TcoModel::render(
    const std::vector<double>& prices_gbp_per_kwh) const {
  TextTable t({"Price (GBP/kWh)", "Lifetime electricity (GBP M)",
               "Capital (GBP M)", "Support (GBP M)", "Total (GBP M)",
               "Electricity share"},
              {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight});
  for (const auto& s : sweep(prices_gbp_per_kwh)) {
    t.add_row({TextTable::num(s.price.gbp_kwh(), 2),
               TextTable::num(s.lifetime_electricity.pounds() / 1e6, 1),
               TextTable::num(params_.capital.pounds() / 1e6, 1),
               TextTable::num(s.lifetime_support.pounds() / 1e6, 1),
               TextTable::num(s.lifetime_total.pounds() / 1e6, 1),
               TextTable::pct(s.electricity_share, 0)});
  }
  std::ostringstream os;
  os << "Lifetime cost of ownership (" << params_.lifetime_years
     << "-year life, " << TextTable::num(
            params_.mean_facility_power.mw(), 2)
     << " MW mean draw)\n"
     << t.str() << "Electricity matches capital at "
     << TextTable::num(breakeven_price().gbp_kwh(), 3) << " GBP/kWh.\n";
  return os.str();
}

}  // namespace hpcem
