// Scope-3 (embodied) emissions audit.
//
// The paper defers a detailed embodied audit to future work but states the
// framework: scope-3 emissions come from manufacture, shipping and
// decommissioning of the hardware, and their balance against scope-2
// decides the operating strategy (§2).  This module implements the audit
// machinery that analysis needs: a per-component inventory with per-phase
// (manufacture/transport/decommission) footprints, aggregation, and
// amortisation over the service life, producing the EmbodiedParams the
// EmissionsModel consumes.
//
// Default footprints are DRI-scoping-style estimates (order-of-magnitude
// literature values, not vendor LCAs): a dual-socket 512 GB compute node
// ~1.3 tCO2e to manufacture, a switch ~0.35 t, HDD storage ~25 t/PB,
// NVMe ~45 t/PB, a cabinet ~2 t of fabricated steel/copper, transport ~3%
// and decommissioning ~2% of manufacture.  They combine to ~10 ktCO2e for
// the ARCHER2 configuration, which places the scope-2/scope-3 crossover
// inside the paper's 30-100 gCO2/kWh "balanced" band — the consistency
// check `tests/core/test_embodied_audit.cpp` enforces.
#pragma once

#include <string>
#include <vector>

#include "core/emissions.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Lifecycle phase of an embodied-emissions entry.
enum class LifecyclePhase { kManufacture, kTransport, kDecommission };

[[nodiscard]] std::string to_string(LifecyclePhase p);

/// One audited component class.
struct EmbodiedComponent {
  std::string name;
  std::size_t count = 0;
  CarbonMass manufacture_each;
  CarbonMass transport_each;
  CarbonMass decommission_each;

  [[nodiscard]] CarbonMass total_each() const {
    return manufacture_each + transport_each + decommission_each;
  }
  [[nodiscard]] CarbonMass total() const {
    return total_each() * static_cast<double>(count);
  }
};

/// A complete embodied audit for a facility.
class EmbodiedAudit {
 public:
  /// The ARCHER2 configuration with the default footprints above.
  static EmbodiedAudit archer2();

  EmbodiedAudit() = default;

  void add(EmbodiedComponent component);

  [[nodiscard]] const std::vector<EmbodiedComponent>& components() const {
    return components_;
  }

  /// Grand total across components and phases.
  [[nodiscard]] CarbonMass total() const;
  /// Total for one lifecycle phase.
  [[nodiscard]] CarbonMass phase_total(LifecyclePhase phase) const;
  /// Share of the grand total carried by one component class.
  [[nodiscard]] double share_of(const std::string& component_name) const;

  /// Uniform amortisation over the service life (the EmissionsModel
  /// convention).
  [[nodiscard]] EmbodiedParams amortise(double lifetime_years) const;

  /// Embodied grams attributable to one delivered node-hour, given the
  /// machine's node count, lifetime and utilisation.  This is the floor
  /// under the per-node-hour footprint that no energy efficiency can
  /// remove — the reason §2 says low-carbon grids favour maximising
  /// output per node-hour.
  [[nodiscard]] double grams_per_node_hour(std::size_t nodes,
                                           double lifetime_years,
                                           double utilisation) const;

  /// Render the audit as a table (for benches and EXPERIMENTS.md).
  [[nodiscard]] std::string render() const;

 private:
  std::vector<EmbodiedComponent> components_;
};

}  // namespace hpcem
