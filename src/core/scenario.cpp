#include "core/scenario.hpp"

#include <span>

#include "telemetry/seasonal.hpp"

#include "util/error.hpp"

namespace hpcem {

ScenarioRunner::ScenarioRunner(const Facility& facility, std::uint64_t seed)
    : facility_(&facility), seed_(seed) {}

TimelineResult ScenarioRunner::run_campaign(
    SimTime start, SimTime end, const OperatingPolicy& before,
    std::optional<SimTime> change,
    std::optional<OperatingPolicy> after) const {
  require(end > start, "run_campaign: end must follow start");
  require(change.has_value() == after.has_value(),
          "run_campaign: change time and after-policy go together");
  if (change) {
    require(*change > start && *change < end,
            "run_campaign: change must fall inside the window");
  }

  auto sim = facility_->make_simulator(seed_);
  sim->set_policy(before);
  if (change) sim->schedule_policy_change(*change, *after);

  const SimTime sim_start = start - warmup_;
  sim->run(sim_start, end);

  TimelineResult r;
  r.window_start = start;
  r.window_end = end;
  r.change_time = change;
  r.cabinet_kw =
      sim->telemetry().channel(channels::kCabinetKw).slice(start, end);
  require_state(r.cabinet_kw.size() >= 16,
                "run_campaign: window produced too few samples");
  r.mean_kw = r.cabinet_kw.mean();
  r.mean_utilisation = sim->mean_utilisation(start, end);
  if (change) {
    r.mean_before_kw = r.cabinet_kw.mean_over(start, *change);
    r.mean_after_kw = r.cabinet_kw.mean_over(*change, end);
  } else {
    r.mean_before_kw = r.mean_kw;
    r.mean_after_kw = r.mean_kw;
  }
  // Recover the step from the data alone (min segment: one day of
  // samples).  For a campaign with a known rollout the exact single-step
  // segmentation is appropriate; for a no-change window use the penalised
  // multi-step detector so pure noise reports no step at all.
  if (change) {
    r.detected = detect_single_step(r.cabinet_kw, 48);
  } else {
    // The half-hourly series is dominated by the weekly submission cycle
    // and slow queue dynamics, both of which fool a raw step detector.
    // Deseasonalise, average to daily means (which decorrelates the
    // scheduler noise), then ask for a step that clears a stiff penalty —
    // a no-change window should report nothing.
    TimeSeries for_detection = r.cabinet_kw;
    if (r.cabinet_kw.span().day() >= 14.0) {
      for_detection =
          deseasonalise(r.cabinet_kw, decompose_weekly(r.cabinet_kw))
              .resample(Duration::days(1.0));
    }
    const auto vals = for_detection.values();
    const auto steps =
        detect_steps(std::span<const double>(vals), 7, /*penalty=*/12.0);
    if (!steps.empty()) {
      const SimTime at = for_detection[steps.front().index].time;
      TimedStepChange sc;
      sc.time = at;
      sc.mean_before = r.cabinet_kw.mean_over(start, at);
      sc.mean_after = r.cabinet_kw.mean_over(at, end);
      r.detected = sc;
    }
  }
  return r;
}

TimelineResult ScenarioRunner::figure1() const {
  return run_campaign(sim_time_from_date({2021, 12, 1}),
                      sim_time_from_date({2022, 5, 1}),
                      OperatingPolicy::baseline(), std::nullopt,
                      std::nullopt);
}

TimelineResult ScenarioRunner::figure2() const {
  return run_campaign(sim_time_from_date({2022, 4, 1}),
                      sim_time_from_date({2022, 6, 1}),
                      OperatingPolicy::baseline(),
                      sim_time_from_date({2022, 5, 9}),
                      OperatingPolicy::performance_determinism());
}

TimelineResult ScenarioRunner::figure3() const {
  return run_campaign(sim_time_from_date({2022, 11, 1}),
                      sim_time_from_date({2023, 1, 1}),
                      OperatingPolicy::performance_determinism(),
                      sim_time_from_date({2022, 12, 1}),
                      OperatingPolicy::low_frequency_default());
}

ScenarioRunner::Conclusions ScenarioRunner::conclusions() const {
  const TimelineResult f1 = figure1();
  const TimelineResult f2 = figure2();
  const TimelineResult f3 = figure3();

  Conclusions c;
  c.baseline_kw = f1.mean_kw;
  c.after_bios_kw = f2.mean_after_kw;
  c.after_freq_kw = f3.mean_after_kw;
  c.bios_saving_kw = c.baseline_kw - c.after_bios_kw;
  c.bios_saving_fraction = c.bios_saving_kw / c.baseline_kw;
  c.freq_saving_kw = c.after_bios_kw - c.after_freq_kw;
  c.freq_saving_fraction = c.freq_saving_kw / c.baseline_kw;
  c.total_saving_kw = c.baseline_kw - c.after_freq_kw;
  c.total_saving_fraction = c.total_saving_kw / c.baseline_kw;
  return c;
}

}  // namespace hpcem
