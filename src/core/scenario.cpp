#include "core/scenario.hpp"

#include <utility>

#include "util/error.hpp"

namespace hpcem {

ScenarioRunner::ScenarioRunner(const Facility& facility, std::uint64_t seed)
    : facility_(&facility), seed_(seed) {}

TimelineResult ScenarioRunner::run_spec(ScenarioSpec spec) const {
  spec.seed = seed_;
  spec.warmup = warmup_;
  return FacilityAssembly(*facility_, std::move(spec)).run();
}

TimelineResult ScenarioRunner::run_campaign(
    SimTime start, SimTime end, const OperatingPolicy& before,
    std::optional<SimTime> change,
    std::optional<OperatingPolicy> after) const {
  require(end > start, "run_campaign: end must follow start");
  require(change.has_value() == after.has_value(),
          "run_campaign: change time and after-policy go together");
  if (change) {
    require(*change > start && *change < end,
            "run_campaign: change must fall inside the window");
  }

  ScenarioSpec spec;
  spec.name = "campaign";
  spec.window_start = start;
  spec.window_end = end;
  spec.policy = before;
  if (change) spec.changes.push_back({*change, *after});
  return run_spec(std::move(spec));
}

TimelineResult ScenarioRunner::figure1() const {
  return run_spec(ScenarioSpec::figure1());
}

TimelineResult ScenarioRunner::figure2() const {
  return run_spec(ScenarioSpec::figure2());
}

TimelineResult ScenarioRunner::figure3() const {
  return run_spec(ScenarioSpec::figure3());
}

ScenarioRunner::Conclusions ScenarioRunner::conclusions() const {
  const TimelineResult f1 = figure1();
  const TimelineResult f2 = figure2();
  const TimelineResult f3 = figure3();

  Conclusions c;
  c.baseline_kw = f1.mean_kw;
  c.after_bios_kw = f2.mean_after_kw;
  c.after_freq_kw = f3.mean_after_kw;
  c.bios_saving_kw = c.baseline_kw - c.after_bios_kw;
  c.bios_saving_fraction = c.bios_saving_kw / c.baseline_kw;
  c.freq_saving_kw = c.after_bios_kw - c.after_freq_kw;
  c.freq_saving_fraction = c.freq_saving_kw / c.baseline_kw;
  c.total_saving_kw = c.baseline_kw - c.after_freq_kw;
  c.total_saving_fraction = c.total_saving_kw / c.baseline_kw;
  return c;
}

}  // namespace hpcem
