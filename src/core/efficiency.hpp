// Application efficiency analysis: the harness behind Tables 3 and 4.
//
// For a benchmark application and two operating points (policy A as the
// reference, policy B as the candidate) the analyzer produces the paper's
// two columns — the performance ratio perf(B)/perf(A) and compute-node
// energy ratio energy(B)/energy(A) — plus throughput-per-kWh metrics, and
// can sweep the available P-states to recommend a per-application setting
// (§4.2: "users were strongly encouraged to benchmark the effect of CPU
// frequency ... and choose an appropriate setting").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workload/catalog.hpp"
#include "workload/policy.hpp"

namespace hpcem {

/// One benchmark comparison row (the layout of Tables 3/4).
struct BenchmarkComparison {
  std::string app;
  std::size_t nodes = 0;
  double perf_ratio = 0.0;    ///< perf(candidate) / perf(reference)
  double energy_ratio = 0.0;  ///< node energy(candidate) / (reference)
  /// Published values when the catalogue carries them for this table.
  std::optional<PaperReference> paper;
};

/// One row of a frequency sweep for a single application.
struct FrequencyPoint {
  PState pstate;
  double perf_ratio = 0.0;      ///< vs turbo reference
  double energy_ratio = 0.0;    ///< vs turbo reference
  double node_power_w = 0.0;
  /// Work per kWh relative to the turbo reference (>1 = more efficient).
  double output_per_kwh_ratio = 0.0;
};

/// Operating point: BIOS mode + P-state (what a benchmark runs under).
struct OperatingPoint {
  DeterminismMode mode = DeterminismMode::kPowerDeterminism;
  PState pstate = pstates::kHighTurbo;
};

/// Efficiency analysis over a catalogue.
class EfficiencyAnalyzer {
 public:
  explicit EfficiencyAnalyzer(const AppCatalog& catalog);

  /// Compare one application between two operating points.
  [[nodiscard]] BenchmarkComparison compare(
      const std::string& app, std::size_t nodes, OperatingPoint reference,
      OperatingPoint candidate, std::optional<int> paper_table) const;

  /// Table 3 reproduction: every catalogue entry with Table-3 data,
  /// power determinism (reference) vs performance determinism (candidate),
  /// both at 2.25 GHz + turbo.
  [[nodiscard]] std::vector<BenchmarkComparison> table3() const;

  /// Table 4 reproduction: every catalogue entry with Table-4 data,
  /// 2.25 GHz + turbo (reference) vs 2.0 GHz (candidate), both under
  /// performance determinism.
  [[nodiscard]] std::vector<BenchmarkComparison> table4() const;

  /// Sweep the machine's P-states for one application.
  [[nodiscard]] std::vector<FrequencyPoint> frequency_sweep(
      const std::string& app,
      DeterminismMode mode = DeterminismMode::kPerformanceDeterminism) const;

  /// The P-state minimising energy-to-solution for an application, with an
  /// optional cap on acceptable slowdown vs turbo (nullopt = no cap).
  [[nodiscard]] PState recommend_pstate(
      const std::string& app,
      std::optional<double> max_slowdown = std::nullopt,
      DeterminismMode mode = DeterminismMode::kPerformanceDeterminism) const;

 private:
  const AppCatalog* catalog_;
};

}  // namespace hpcem
