#include "core/energy.hpp"

#include "util/error.hpp"

namespace hpcem {

EnergyAccountant::EnergyAccountant(PriceModel price,
                                   CarbonIntensitySeries intensity)
    : price_(price), intensity_(std::move(intensity)) {}

EnergyAccount EnergyAccountant::account(const TimeSeries& power_kw) const {
  require(power_kw.size() >= 2, "EnergyAccountant: need >= 2 samples");
  EnergyAccount a;
  a.span = power_kw.span();
  a.energy = Energy::kilojoules(power_kw.integrate());  // kW * s = kJ
  a.mean_power = a.energy / a.span;
  a.cost = price_.cost_of(power_kw);
  a.scope2 = intensity_.emissions_of(power_kw);
  return a;
}

EnergyAccount EnergyAccountant::account(const TimeSeries& power_kw, SimTime a,
                                        SimTime b) const {
  return account(power_kw.slice(a, b));
}

EnergyAccount EnergyAccountant::annualise(Power mean_power) const {
  require(mean_power.w() >= 0.0,
          "EnergyAccountant::annualise: power must be >= 0");
  EnergyAccount a;
  a.span = Duration::days(365.25);
  a.mean_power = mean_power;
  a.energy = mean_power * a.span;
  a.cost = a.energy * price_.base;
  const CarbonIntensity mean_ci =
      intensity_.mean(intensity_.series().start_time(),
                      intensity_.series().end_time() + Duration::seconds(1));
  a.scope2 = a.energy * mean_ci;
  return a;
}

}  // namespace hpcem
