#include "core/assembly.hpp"

#include <span>
#include <utility>

#include "core/scenario_library.hpp"
#include "telemetry/seasonal.hpp"

#include "util/error.hpp"

namespace hpcem {

namespace {

Facility build_machine(MachineModel machine) {
  switch (machine) {
    case MachineModel::kArcher2:
      return Facility::archer2();
    case MachineModel::kTestbed:
      return Facility::testbed();
    case MachineModel::kMicro:
      return Facility::micro();
  }
  throw InvalidArgument("FacilityAssembly: unknown machine model");
}

void validate(const ScenarioSpec& spec) {
  require(spec.window_end > spec.window_start,
          "ScenarioSpec '" + spec.name + "': window end must follow start");
  require(spec.warmup.sec() >= 0.0,
          "ScenarioSpec '" + spec.name + "': warmup must be non-negative");
  for (const auto& window : spec.maintenance) {
    require(window.end > window.block_from,
            "ScenarioSpec '" + spec.name +
                "': maintenance end must follow block_from");
  }
  if (spec.sample_interval) {
    require(spec.sample_interval->sec() > 0.0,
            "ScenarioSpec '" + spec.name +
                "': sample interval must be positive");
  }
  if (spec.metering_noise_sigma) {
    require(*spec.metering_noise_sigma >= 0.0,
            "ScenarioSpec '" + spec.name +
                "': metering noise sigma must be non-negative");
  }
  if (spec.offered_load) {
    require(*spec.offered_load > 0.0,
            "ScenarioSpec '" + spec.name +
                "': offered load must be positive");
  }
  if (spec.user_turbo_pin_fraction) {
    require(*spec.user_turbo_pin_fraction >= 0.0 &&
                *spec.user_turbo_pin_fraction <= 1.0,
            "ScenarioSpec '" + spec.name +
                "': turbo pin fraction must be in [0,1]");
  }
  if (spec.telemetry_max_raw_samples) {
    require(*spec.telemetry_max_raw_samples >= 2,
            "ScenarioSpec '" + spec.name +
                "': telemetry retention cap must be >= 2");
  }
}

}  // namespace

std::optional<SimTime> ScenarioSpec::first_change_in_window() const {
  std::optional<SimTime> first;
  for (const auto& change : changes) {
    if (change.at > window_start && change.at < window_end) {
      if (!first || change.at < *first) first = change.at;
    }
  }
  return first;
}

// The paper campaigns live as data in the committed scenario library;
// these accessors are thin loads so every existing call site keeps
// working while scenarios/*.json is the single source of truth.
ScenarioSpec ScenarioSpec::figure1() { return load_named_scenario("figure1"); }

ScenarioSpec ScenarioSpec::figure2() { return load_named_scenario("figure2"); }

ScenarioSpec ScenarioSpec::figure3() { return load_named_scenario("figure3"); }

ScenarioSpec ScenarioSpec::archer2_baseline() {
  return load_named_scenario("archer2-baseline");
}

FacilityAssembly::FacilityAssembly(ScenarioSpec spec)
    : spec_(std::move(spec)),
      owned_(std::make_shared<const Facility>(build_machine(spec_.machine))),
      facility_(owned_.get()) {
  validate(spec_);
}

FacilityAssembly::FacilityAssembly(const Facility& facility,
                                   ScenarioSpec spec)
    : spec_(std::move(spec)), owned_(nullptr), facility_(&facility) {
  validate(spec_);
}

FacilitySimConfig FacilityAssembly::sim_config(std::uint64_t seed) const {
  FacilitySimConfig cfg = facility_->sim_config(seed);
  cfg.sched_discipline = spec_.discipline;
  cfg.sched_weights = spec_.weights;
  if (spec_.sample_interval) cfg.sample_interval = *spec_.sample_interval;
  if (spec_.metering_noise_sigma) {
    cfg.metering_noise_sigma = *spec_.metering_noise_sigma;
  }
  if (spec_.offered_load) cfg.gen.offered_load = *spec_.offered_load;
  if (spec_.user_turbo_pin_fraction) {
    cfg.gen.user_turbo_pin_fraction = *spec_.user_turbo_pin_fraction;
  }
  if (spec_.telemetry_max_raw_samples) {
    cfg.telemetry_max_raw_samples = *spec_.telemetry_max_raw_samples;
  }
  return cfg;
}

SimComposition FacilityAssembly::composition(
    const FacilitySimConfig& config) const {
  SimComposition c;
  c.sources.push_back(std::make_unique<NodeFleetSource>(
      config.node_params, spec_.idle_policy));
  c.sources.push_back(std::make_unique<SwitchFabricSource>(
      config.switch_model, config.inventory.switches));
  c.sources.push_back(std::make_unique<CabinetOverheadSource>(
      config.cabinet_model, config.inventory.cabinets));
  if (spec_.model_cdus) {
    c.sources.push_back(std::make_unique<CduSource>(
        CduPowerModel{}, config.inventory.cdus));
  }
  if (spec_.model_filesystems) {
    c.sources.push_back(std::make_unique<FilesystemSource>(
        FilesystemPowerModel{}, config.inventory.filesystems));
  }
  if (spec_.cooling_outdoor_c) {
    // Ordered last so the amplified total includes every upstream source.
    c.sources.push_back(std::make_unique<CoolingOverheadSource>(
        CoolingModel{}, *spec_.cooling_outdoor_c));
  }
  c.probes.push_back(std::make_unique<UtilisationProbe>());
  c.probes.push_back(std::make_unique<QueueStateProbe>());
  return c;
}

std::unique_ptr<FacilitySimulator> FacilityAssembly::make_simulator() const {
  return make_simulator(spec_.seed);
}

std::unique_ptr<FacilitySimulator> FacilityAssembly::make_simulator(
    std::uint64_t seed) const {
  const FacilitySimConfig cfg = sim_config(seed);
  auto sim = std::make_unique<FacilitySimulator>(facility_->catalog(), cfg,
                                                 composition(cfg));
  sim->set_policy(spec_.policy);
  for (const auto& change : spec_.changes) {
    sim->schedule_policy_change(change.at, change.policy);
  }
  for (const auto& window : spec_.maintenance) {
    sim->schedule_maintenance(window.block_from, window.end);
  }
  return sim;
}

std::unique_ptr<FacilitySimulator> FacilityAssembly::run_simulator() const {
  return run_simulator(spec_.seed);
}

std::unique_ptr<FacilitySimulator> FacilityAssembly::run_simulator(
    std::uint64_t seed) const {
  auto sim = make_simulator(seed);
  sim->run(spec_.window_start - spec_.warmup, spec_.window_end);
  return sim;
}

TimelineResult FacilityAssembly::run() const { return run(spec_.seed); }

TimelineResult FacilityAssembly::run(std::uint64_t seed) const {
  const auto sim = run_simulator(seed);
  return analyze_timeline(*sim, spec_);
}

TimelineResult analyze_timeline(const FacilitySimulator& sim,
                                const ScenarioSpec& spec) {
  const SimTime start = spec.window_start;
  const SimTime end = spec.window_end;
  const std::optional<SimTime> change = spec.first_change_in_window();

  TimelineResult r;
  r.window_start = start;
  r.window_end = end;
  r.change_time = change;
  r.cabinet_kw =
      sim.telemetry().series(sim.cabinet_channel()).slice(start, end);
  require_state(r.cabinet_kw.size() >= 16,
                "analyze_timeline: window produced too few samples");
  r.mean_kw = r.cabinet_kw.mean();
  r.mean_utilisation = sim.mean_utilisation(start, end);
  if (change) {
    r.mean_before_kw = r.cabinet_kw.mean_over(start, *change);
    r.mean_after_kw = r.cabinet_kw.mean_over(*change, end);
  } else {
    r.mean_before_kw = r.mean_kw;
    r.mean_after_kw = r.mean_kw;
  }
  // Recover the step from the data alone (min segment: one day of
  // samples).  For a campaign with a known rollout the exact single-step
  // segmentation is appropriate; for a no-change window use the penalised
  // multi-step detector so pure noise reports no step at all.
  if (change) {
    r.detected = detect_single_step(r.cabinet_kw, 48);
  } else {
    // The half-hourly series is dominated by the weekly submission cycle
    // and slow queue dynamics, both of which fool a raw step detector.
    // Deseasonalise, average to daily means (which decorrelates the
    // scheduler noise), then ask for a step that clears a stiff penalty —
    // a no-change window should report nothing.
    TimeSeries for_detection = r.cabinet_kw;
    if (r.cabinet_kw.span().day() >= 14.0) {
      for_detection =
          deseasonalise(r.cabinet_kw, decompose_weekly(r.cabinet_kw))
              .resample(Duration::days(1.0));
    }
    const auto vals = for_detection.values();
    const auto steps =
        detect_steps(std::span<const double>(vals), 7, /*penalty=*/12.0);
    if (!steps.empty()) {
      const SimTime at = for_detection[steps.front().index].time;
      TimedStepChange sc;
      sc.time = at;
      sc.mean_before = r.cabinet_kw.mean_over(start, at);
      sc.mean_after = r.cabinet_kw.mean_over(at, end);
      r.detected = sc;
    }
  }
  return r;
}

CampaignScenario make_campaign_scenario(
    std::shared_ptr<const FacilityAssembly> assembly) {
  require(assembly != nullptr, "make_campaign_scenario: null assembly");
  const ScenarioSpec& spec = assembly->spec();
  CampaignScenario scenario;
  scenario.name = spec.name;
  scenario.window_start = spec.window_start;
  scenario.window_end = spec.window_end;
  scenario.warmup = spec.warmup;
  scenario.split_at = spec.first_change_in_window();
  scenario.build = [assembly](std::uint64_t seed) {
    return assembly->make_simulator(seed);
  };
  return scenario;
}

CampaignResult run_campaign(const std::vector<ScenarioSpec>& specs,
                            const CampaignConfig& config) {
  require(!specs.empty(), "run_campaign: no scenarios");
  std::vector<CampaignScenario> scenarios;
  scenarios.reserve(specs.size());
  for (const auto& spec : specs) {
    scenarios.push_back(make_campaign_scenario(
        std::make_shared<const FacilityAssembly>(spec)));
  }
  return CampaignRunner(config).run(scenarios);
}

}  // namespace hpcem
