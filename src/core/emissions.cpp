#include "core/emissions.hpp"

#include "util/error.hpp"

namespace hpcem {

std::string to_string(OperationalStrategy s) {
  switch (s) {
    case OperationalStrategy::kMaximisePerformance:
      return "maximise application performance";
    case OperationalStrategy::kBalance:
      return "balance performance and energy efficiency";
    case OperationalStrategy::kMaximiseEnergyEfficiency:
      return "maximise energy efficiency";
  }
  return "unknown";
}

EmissionsModel::EmissionsModel(EmbodiedParams embodied,
                               Power mean_facility_power)
    : embodied_(embodied), mean_power_(mean_facility_power) {
  require(embodied_.total.g() > 0.0,
          "EmissionsModel: embodied total must be positive");
  require(embodied_.lifetime_years > 0.0,
          "EmissionsModel: lifetime must be positive");
  require(mean_power_.w() > 0.0,
          "EmissionsModel: mean power must be positive");
}

CarbonMass EmissionsModel::annual_scope2(CarbonIntensity ci) const {
  require(ci.gkwh() >= 0.0, "annual_scope2: intensity must be >= 0");
  const Energy annual_energy = mean_power_ * Duration::days(365.25);
  return annual_energy * ci;
}

CarbonMass EmissionsModel::annual_scope3() const { return embodied_.annual(); }

double EmissionsModel::scope2_share(CarbonIntensity ci) const {
  const double s2 = annual_scope2(ci).g();
  const double s3 = annual_scope3().g();
  return s2 / (s2 + s3);
}

CarbonIntensity EmissionsModel::crossover_intensity() const {
  const Energy annual_energy = mean_power_ * Duration::days(365.25);
  return CarbonIntensity::g_per_kwh(annual_scope3().g() /
                                    annual_energy.to_kwh());
}

OperationalStrategy EmissionsModel::recommend(CarbonIntensity ci) const {
  const double share = scope2_share(ci);
  if (share < 1.0 / 3.0) return OperationalStrategy::kMaximisePerformance;
  if (share > 2.0 / 3.0) {
    return OperationalStrategy::kMaximiseEnergyEfficiency;
  }
  return OperationalStrategy::kBalance;
}

EmissionsScenario EmissionsModel::scenario(CarbonIntensity ci) const {
  EmissionsScenario s;
  s.intensity = ci;
  s.annual_scope2 = annual_scope2(ci);
  s.annual_scope3 = annual_scope3();
  s.scope2_share = scope2_share(ci);
  s.regime = classify_regime(ci);
  s.strategy = recommend(ci);
  return s;
}

std::vector<EmissionsScenario> EmissionsModel::sweep(
    const std::vector<double>& intensities_g_per_kwh) const {
  std::vector<EmissionsScenario> out;
  out.reserve(intensities_g_per_kwh.size());
  for (double g : intensities_g_per_kwh) {
    out.push_back(scenario(CarbonIntensity::g_per_kwh(g)));
  }
  return out;
}

CarbonMass EmissionsModel::lifetime_total(CarbonIntensity ci) const {
  return embodied_.total + annual_scope2(ci) * embodied_.lifetime_years;
}

double EmissionsModel::grams_per_node_hour(
    CarbonIntensity ci, double node_hours_per_year) const {
  require(node_hours_per_year > 0.0,
          "grams_per_node_hour: capacity must be positive");
  const double annual_g = annual_scope2(ci).g() + annual_scope3().g();
  return annual_g / node_hours_per_year;
}

}  // namespace hpcem
