#include "core/embodied_audit.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

std::string to_string(LifecyclePhase p) {
  switch (p) {
    case LifecyclePhase::kManufacture:
      return "manufacture";
    case LifecyclePhase::kTransport:
      return "transport";
    case LifecyclePhase::kDecommission:
      return "decommission";
  }
  return "unknown";
}

namespace {

EmbodiedComponent component(std::string name, std::size_t count,
                            double manufacture_kg_each) {
  EmbodiedComponent c;
  c.name = std::move(name);
  c.count = count;
  c.manufacture_each = CarbonMass::kilograms(manufacture_kg_each);
  // Transport ~3% and decommissioning ~2% of manufacture: both are small
  // against fab emissions for electronics.
  c.transport_each = CarbonMass::kilograms(manufacture_kg_each * 0.03);
  c.decommission_each = CarbonMass::kilograms(manufacture_kg_each * 0.02);
  return c;
}

}  // namespace

EmbodiedAudit EmbodiedAudit::archer2() {
  EmbodiedAudit audit;
  // Counts from Table 1; footprints per the header comment.
  audit.add(component("Compute nodes (2x EPYC, 256-512 GB)", 5860, 1300.0));
  audit.add(component("Slingshot switches", 768, 350.0));
  audit.add(component("ClusterStor L300 HDD storage (13.6 PB)", 1,
                      13.6 * 25000.0));
  audit.add(component("ClusterStor E1000 NVMe storage (1 PB)", 1, 45000.0));
  audit.add(component("NetApp storage (1 PB)", 1, 30000.0));
  audit.add(component("Compute cabinets", 23, 2000.0));
  audit.add(component("Coolant distribution units", 6, 1500.0));
  return audit;
}

void EmbodiedAudit::add(EmbodiedComponent c) {
  require(!c.name.empty(), "EmbodiedAudit::add: component needs a name");
  require(c.count > 0, "EmbodiedAudit::add: count must be positive");
  require(c.manufacture_each.g() >= 0.0 && c.transport_each.g() >= 0.0 &&
              c.decommission_each.g() >= 0.0,
          "EmbodiedAudit::add: footprints must be non-negative");
  components_.push_back(std::move(c));
}

CarbonMass EmbodiedAudit::total() const {
  CarbonMass t;
  for (const auto& c : components_) t += c.total();
  return t;
}

CarbonMass EmbodiedAudit::phase_total(LifecyclePhase phase) const {
  CarbonMass t;
  for (const auto& c : components_) {
    switch (phase) {
      case LifecyclePhase::kManufacture:
        t += c.manufacture_each * static_cast<double>(c.count);
        break;
      case LifecyclePhase::kTransport:
        t += c.transport_each * static_cast<double>(c.count);
        break;
      case LifecyclePhase::kDecommission:
        t += c.decommission_each * static_cast<double>(c.count);
        break;
    }
  }
  return t;
}

double EmbodiedAudit::share_of(const std::string& component_name) const {
  const double grand = total().g();
  require_state(grand > 0.0, "EmbodiedAudit::share_of: empty audit");
  for (const auto& c : components_) {
    if (c.name == component_name) return c.total().g() / grand;
  }
  throw InvalidArgument("EmbodiedAudit::share_of: no such component: " +
                        component_name);
}

EmbodiedParams EmbodiedAudit::amortise(double lifetime_years) const {
  require(lifetime_years > 0.0,
          "EmbodiedAudit::amortise: lifetime must be positive");
  EmbodiedParams p;
  p.total = total();
  p.lifetime_years = lifetime_years;
  return p;
}

double EmbodiedAudit::grams_per_node_hour(std::size_t nodes,
                                          double lifetime_years,
                                          double utilisation) const {
  require(nodes > 0, "grams_per_node_hour: nodes must be positive");
  require(lifetime_years > 0.0,
          "grams_per_node_hour: lifetime must be positive");
  require(utilisation > 0.0 && utilisation <= 1.0,
          "grams_per_node_hour: utilisation must be in (0, 1]");
  const double delivered_node_hours = static_cast<double>(nodes) *
                                      utilisation * 24.0 * 365.25 *
                                      lifetime_years;
  return total().g() / delivered_node_hours;
}

std::string EmbodiedAudit::render() const {
  TextTable t({"Component", "Count", "Manufacture (t)", "Transport (t)",
               "Decommission (t)", "Total (t)", "Share"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight, Align::kRight});
  const double grand = total().g();
  for (const auto& c : components_) {
    const double n = static_cast<double>(c.count);
    t.add_row({c.name, std::to_string(c.count),
               TextTable::grouped(c.manufacture_each.t() * n),
               TextTable::grouped(c.transport_each.t() * n),
               TextTable::grouped(c.decommission_each.t() * n),
               TextTable::grouped(c.total().t()),
               grand > 0.0 ? TextTable::pct(c.total().g() / grand, 1)
                           : "-"});
  }
  t.add_rule();
  t.add_row({"Total", "",
             TextTable::grouped(phase_total(LifecyclePhase::kManufacture).t()),
             TextTable::grouped(phase_total(LifecyclePhase::kTransport).t()),
             TextTable::grouped(
                 phase_total(LifecyclePhase::kDecommission).t()),
             TextTable::grouped(total().t()), "100.0%"});
  std::ostringstream os;
  os << "Scope-3 embodied emissions audit\n" << t.str();
  return os.str();
}

}  // namespace hpcem
