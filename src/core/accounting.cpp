#include "core/accounting.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

double UsageBreakdown::area_share(const std::string& area) const {
  const auto it = by_area.find(area);
  if (it == by_area.end() || total.node_hours <= 0.0) return 0.0;
  return it->second.node_hours / total.node_hours;
}

UsageBreakdown account_usage(const std::vector<JobRecord>& records,
                             const AppCatalog& catalog,
                             CarbonIntensity intensity) {
  require(!records.empty(), "account_usage: no records");
  require(intensity.gkwh() >= 0.0,
          "account_usage: intensity must be >= 0");
  UsageBreakdown b;
  for (const auto& r : records) {
    const std::string area =
        catalog.contains(r.spec.app)
            ? to_string(catalog.at(r.spec.app).spec().area)
            : std::string("(unknown)");
    const CarbonMass scope2 = r.node_energy * intensity;
    for (UsageBucket* bucket :
         {&b.by_area[area], &b.by_app[r.spec.app], &b.total}) {
      bucket->jobs += 1;
      bucket->node_hours += r.node_hours();
      bucket->energy += r.node_energy;
      bucket->scope2 += scope2;
    }
  }
  return b;
}

std::string render_usage_breakdown(const UsageBreakdown& b) {
  std::vector<std::pair<std::string, const UsageBucket*>> areas;
  areas.reserve(b.by_area.size());
  for (const auto& [name, bucket] : b.by_area) {
    areas.emplace_back(name, &bucket);
  }
  std::sort(areas.begin(), areas.end(), [](const auto& x, const auto& y) {
    return x.second->node_hours > y.second->node_hours;
  });

  TextTable t({"Research area", "Jobs", "Node-hours", "Share",
               "Energy (MWh)", "Mean node draw (W)", "Scope 2 (t)"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight, Align::kRight});
  for (const auto& [name, bucket] : areas) {
    t.add_row({name, TextTable::grouped(static_cast<double>(bucket->jobs)),
               TextTable::grouped(bucket->node_hours),
               TextTable::pct(bucket->node_hours / b.total.node_hours, 1),
               TextTable::num(bucket->energy.to_mwh(), 1),
               TextTable::num(bucket->mean_node_w(), 0),
               TextTable::num(bucket->scope2.t(), 2)});
  }
  t.add_rule();
  t.add_row({"Total", TextTable::grouped(static_cast<double>(b.total.jobs)),
             TextTable::grouped(b.total.node_hours), "100.0%",
             TextTable::num(b.total.energy.to_mwh(), 1),
             TextTable::num(b.total.mean_node_w(), 0),
             TextTable::num(b.total.scope2.t(), 2)});
  std::ostringstream os;
  os << "Usage and energy by research area\n" << t.str();
  return os.str();
}

}  // namespace hpcem
