// Declarative JSON scenario-spec format: the data-file face of
// `ScenarioSpec` (see docs/SCENARIO_SCHEMA.md for the field reference).
//
// A scenario file is a strict, versioned JSON document (comments allowed)
// that fully describes one simulated campaign — machine, measurement
// window, operating policy and rollouts, scheduler discipline, simulator
// overrides, plant extras, and the grid-intensity / scope-3 context used
// by the emissions pricing layers.  `scenario_from_json` validates every
// member (unknown keys, wrong types and out-of-range values are rejected
// with a one-line `spec: $.path: ...` error) and `scenario_to_json`
// renders the canonical form; the two are exact inverses:
//
//   scenario_from_json(scenario_to_json(s)) == s          (struct identity)
//   save_scenario(parse_scenario(text)) is a fixed point   (text identity)
//
// Campaigns reference many specs through a *manifest* document, consumed
// by `hpcem_sim --campaign` and `load_campaign_manifest` below.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/assembly.hpp"
#include "sim/campaign.hpp"
#include "util/json.hpp"

namespace hpcem {

/// Version written by `scenario_to_json` and accepted by
/// `scenario_from_json`.
inline constexpr int kScenarioSpecVersion = 1;

/// Canonical JSON document for a spec: fixed member order, named policies
/// collapsed to their names, times rendered as ISO date-times when exact
/// (epoch seconds otherwise), optional sections omitted at their defaults.
[[nodiscard]] JsonValue scenario_to_json(const ScenarioSpec& spec);

/// `scenario_to_json(...).dump(2)`: the canonical on-disk rendering.
[[nodiscard]] std::string save_scenario(const ScenarioSpec& spec);

/// Parse and validate one spec document.  Throws ParseError with a
/// one-line `spec: $.path: ...` message on any schema violation.
[[nodiscard]] ScenarioSpec scenario_from_json(const JsonValue& v);

/// Parse spec text (// and /* */ comments allowed) and validate.
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text);

/// Load and validate a spec file.  Errors name the file:
/// `spec: <path>: $.seed: ...`.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

/// Write `save_scenario(spec)` to a file.  Throws ParseError on I/O
/// failure.
void save_scenario_file(const ScenarioSpec& spec, const std::string& path);

/// The spec language's emissions-context fragment: the `grid` and
/// `scope3` sections alone.  This is what `hpcem_serve` whatif/regimes
/// requests accept as an inline spec override (`"spec": {...}`), so a
/// serve what-if is phrased in exactly the language of the committed
/// scenario files.
struct SpecOverrides {
  std::optional<GridIntensitySeries> grid;
  std::optional<EmbodiedParams> scope3;
};
[[nodiscard]] SpecOverrides spec_overrides_from_json(const JsonValue& v);

/// A campaign manifest: many spec files plus the runner settings.
/// Spec paths resolve relative to the manifest file's directory.
struct CampaignManifest {
  std::vector<ScenarioSpec> specs;
  /// Resolved spec file paths, parallel to `specs`.
  std::vector<std::string> spec_files;
  CampaignConfig config;
};

/// Version accepted in a manifest's `manifest_version` member.
inline constexpr int kCampaignManifestVersion = 1;

/// Load and validate a manifest and every spec it references.
[[nodiscard]] CampaignManifest load_campaign_manifest(
    const std::string& path);

}  // namespace hpcem
