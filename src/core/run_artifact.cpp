#include "core/run_artifact.hpp"

#include <fstream>
#include <utility>

#include "obs/metrics_export.hpp"
#include "obs/registry.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace hpcem {

namespace {

constexpr const char* kSchemaName = "hpcem.run_artifact";

JsonValue time_json(SimTime t) {
  JsonValue v = JsonValue::object();
  v.set("epoch_s", t.sec());
  v.set("iso", iso_date_time(t));
  return v;
}

SimTime time_from_json(const JsonValue& v) {
  return SimTime(v.at("epoch_s").as_number());
}

JsonValue channel_json(const ChannelAggregate& c) {
  JsonValue v = JsonValue::object();
  v.set("name", c.name);
  v.set("unit", c.unit);
  v.set("samples", c.samples);
  v.set("mean", c.mean);
  v.set("min", c.min);
  v.set("max", c.max);
  v.set("integral", c.integral);
  v.set("first_time", time_json(c.first_time));
  v.set("last_time", time_json(c.last_time));
  // v3: parallel times/values arrays, written only when the producer opted
  // into carrying the raw samples (aggregate-only artifacts keep the v1/v2
  // channel shape).
  if (!c.series.empty()) {
    JsonValue times = JsonValue::array();
    JsonValue values = JsonValue::array();
    for (const Sample& s : c.series) {
      times.push_back(s.time.sec());
      values.push_back(s.value);
    }
    JsonValue series = JsonValue::object();
    series.set("times", std::move(times));
    series.set("values", std::move(values));
    v.set("series", std::move(series));
  }
  return v;
}

ChannelAggregate channel_from_json(const JsonValue& v) {
  ChannelAggregate c;
  c.name = v.at("name").as_string();
  c.unit = v.at("unit").as_string();
  c.samples = static_cast<std::size_t>(v.at("samples").as_number());
  c.mean = v.at("mean").as_number();
  c.min = v.at("min").as_number();
  c.max = v.at("max").as_number();
  c.integral = v.at("integral").as_number();
  c.first_time = time_from_json(v.at("first_time"));
  c.last_time = time_from_json(v.at("last_time"));
  // Optional from v3 on.
  if (const JsonValue* series = v.get("series")) {
    const auto& times = series->at("times").as_array();
    const auto& values = series->at("values").as_array();
    require(times.size() == values.size(),
            "RunArtifact: channel '" + c.name +
                "' series times/values length mismatch");
    c.series.reserve(times.size());
    SimTime prev{};
    for (std::size_t i = 0; i < times.size(); ++i) {
      const SimTime t(times[i].as_number());
      require(i == 0 || t >= prev,
              "RunArtifact: channel '" + c.name +
                  "' series times must be non-decreasing");
      c.series.push_back({t, values[i].as_number()});
      prev = t;
    }
  }
  return c;
}

JsonValue change_point_json(const ArtifactChangePoint& cp) {
  JsonValue v = JsonValue::object();
  v.set("at", time_json(cp.at));
  v.set("mean_before_kw", cp.mean_before_kw);
  v.set("mean_after_kw", cp.mean_after_kw);
  v.set("detected", cp.detected);
  return v;
}

ArtifactChangePoint change_point_from_json(const JsonValue& v) {
  ArtifactChangePoint cp;
  cp.at = time_from_json(v.at("at"));
  cp.mean_before_kw = v.at("mean_before_kw").as_number();
  cp.mean_after_kw = v.at("mean_after_kw").as_number();
  cp.detected = v.at("detected").as_bool();
  return cp;
}

}  // namespace

JsonValue RunArtifact::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("schema", kSchemaName);
  v.set("schema_version", kSchemaVersion);
  v.set("scenario", scenario);
  v.set("source", source);
  v.set("machine", machine);
  v.set("window_start", time_json(window_start));
  v.set("window_end", time_json(window_end));
  v.set("replicates", replicates);

  JsonValue h = JsonValue::object();
  h.set("mean_kw", headline.mean_kw);
  h.set("mean_before_kw", headline.mean_before_kw);
  h.set("mean_after_kw", headline.mean_after_kw);
  h.set("mean_utilisation", headline.mean_utilisation);
  h.set("window_energy_kwh", headline.window_energy_kwh);
  h.set("completed_jobs", headline.completed_jobs);
  v.set("headline", std::move(h));

  JsonValue cps = JsonValue::array();
  for (const auto& cp : change_points) cps.push_back(change_point_json(cp));
  v.set("change_points", std::move(cps));

  JsonValue chans = JsonValue::array();
  for (const auto& c : channels) chans.push_back(channel_json(c));
  v.set("channels", std::move(chans));
  // v2: the obs member is written only when metrics were collected, so a
  // run with collection off serializes to the same bytes as before
  // (modulo the version bump).
  if (!obs.is_null()) v.set("obs", obs);
  return v;
}

std::string RunArtifact::to_json_text() const { return to_json().dump(2); }

std::string RunArtifact::to_csv() const {
  CsvWriter w({"channel", "unit", "samples", "mean", "min", "max",
               "integral", "first_time", "last_time"});
  for (const auto& c : channels) {
    w.add_row({c.name, c.unit, std::to_string(c.samples),
               json_number(c.mean), json_number(c.min), json_number(c.max),
               json_number(c.integral), iso_date_time(c.first_time),
               iso_date_time(c.last_time)});
  }
  return w.str();
}

RunArtifact RunArtifact::from_json(const JsonValue& v) {
  require(v.at("schema").as_string() == kSchemaName,
          "RunArtifact: not a run-artifact document");
  const int version =
      static_cast<int>(v.at("schema_version").as_number());
  require(version >= kMinSchemaVersion && version <= kSchemaVersion,
          "RunArtifact: unsupported schema version " +
              std::to_string(version));

  RunArtifact a;
  a.scenario = v.at("scenario").as_string();
  a.source = v.at("source").as_string();
  a.machine = v.at("machine").as_string();
  a.window_start = time_from_json(v.at("window_start"));
  a.window_end = time_from_json(v.at("window_end"));
  a.replicates = static_cast<std::size_t>(v.at("replicates").as_number());

  const JsonValue& h = v.at("headline");
  a.headline.mean_kw = h.at("mean_kw").as_number();
  a.headline.mean_before_kw = h.at("mean_before_kw").as_number();
  a.headline.mean_after_kw = h.at("mean_after_kw").as_number();
  a.headline.mean_utilisation = h.at("mean_utilisation").as_number();
  a.headline.window_energy_kwh = h.at("window_energy_kwh").as_number();
  a.headline.completed_jobs = h.at("completed_jobs").as_number();

  for (const auto& cp : v.at("change_points").as_array()) {
    a.change_points.push_back(change_point_from_json(cp));
  }
  for (const auto& c : v.at("channels").as_array()) {
    a.channels.push_back(channel_from_json(c));
  }
  // Optional from v2 on; absent in v1 documents and in runs that did not
  // collect metrics.
  if (const JsonValue* o = v.get("obs")) {
    (void)obs::metrics_from_json(*o);  // validate before carrying it along
    a.obs = *o;
  }
  return a;
}

RunArtifact RunArtifact::from_json_text(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

ChannelAggregate aggregate_channel(const std::string& name,
                                   const TimeSeries& series,
                                   bool include_series) {
  ChannelAggregate c;
  c.name = name;
  c.unit = series.unit();
  c.samples = series.total_appended();
  if (c.samples > 0) {
    c.mean = series.mean();
    c.min = series.value_min();
    c.max = series.value_max();
    c.integral = series.integrate();
    c.first_time = series.start_time();
    c.last_time = series.end_time();
  }
  if (include_series) {
    const auto samples = series.samples();
    c.series.assign(samples.begin(), samples.end());
  }
  return c;
}

std::vector<ChannelAggregate> aggregate_channels(const Recorder& recorder,
                                                 bool include_series) {
  std::vector<ChannelAggregate> out;
  const auto names = recorder.channel_names();
  out.reserve(names.size());
  for (const auto& name : names) {
    out.push_back(
        aggregate_channel(name, recorder.channel(name), include_series));
  }
  return out;
}

JsonValue collected_obs_metrics() {
  if (!obs::enabled()) return JsonValue();
  return obs::metrics_json(obs::metrics_snapshot());
}

std::string machine_label(MachineModel machine) {
  switch (machine) {
    case MachineModel::kArcher2: return "archer2";
    case MachineModel::kTestbed: return "testbed";
    case MachineModel::kMicro: return "micro";
  }
  return "unknown";
}

RunArtifact make_run_artifact(const FacilitySimulator& sim,
                              const ScenarioSpec& spec,
                              const TimelineResult& result) {
  RunArtifact a;
  a.scenario = spec.name;
  a.source = "simulation";
  a.machine = machine_label(spec.machine);
  a.window_start = result.window_start;
  a.window_end = result.window_end;
  a.replicates = 1;

  a.headline.mean_kw = result.mean_kw;
  a.headline.mean_before_kw = result.mean_before_kw;
  a.headline.mean_after_kw = result.mean_after_kw;
  a.headline.mean_utilisation = result.mean_utilisation;
  a.headline.window_energy_kwh = result.cabinet_kw.integrate() / 3600.0;
  std::size_t in_window = 0;
  for (const auto& r : sim.completed()) {
    if (r.end_time >= result.window_start && r.end_time < result.window_end) {
      ++in_window;
    }
  }
  a.headline.completed_jobs = static_cast<double>(in_window);

  if (result.change_time) {
    a.change_points.push_back({*result.change_time, result.mean_before_kw,
                               result.mean_after_kw, /*detected=*/false});
  }
  if (result.detected) {
    a.change_points.push_back({result.detected->time,
                               result.detected->mean_before,
                               result.detected->mean_after,
                               /*detected=*/true});
  }
  a.channels = aggregate_channels(sim.telemetry());
  a.obs = collected_obs_metrics();
  return a;
}

RunArtifact make_run_artifact(const ScenarioOutcome& outcome,
                              const ScenarioSpec& spec) {
  RunArtifact a;
  a.scenario = outcome.name;
  a.source = "campaign";
  a.machine = machine_label(spec.machine);
  a.window_start = spec.window_start;
  a.window_end = spec.window_end;
  a.replicates = outcome.replicates;

  a.headline.mean_kw = outcome.mean_kw.mean();
  a.headline.mean_before_kw = outcome.mean_before_kw.mean();
  a.headline.mean_after_kw = outcome.mean_after_kw.mean();
  a.headline.mean_utilisation = outcome.mean_utilisation.mean();
  a.headline.window_energy_kwh = outcome.window_energy_kwh.mean();
  a.headline.completed_jobs = outcome.completed_jobs.mean();

  if (const auto split = spec.first_change_in_window()) {
    a.change_points.push_back({*split, a.headline.mean_before_kw,
                               a.headline.mean_after_kw,
                               /*detected=*/false});
  }
  a.obs = collected_obs_metrics();
  return a;
}

RunArtifact run_spec_artifact(const FacilityAssembly& assembly) {
  return run_spec_artifact(assembly, assembly.spec().seed);
}

RunArtifact run_spec_artifact(const FacilityAssembly& assembly,
                              std::uint64_t seed) {
  const auto sim = assembly.run_simulator(seed);
  const TimelineResult result = analyze_timeline(*sim, assembly.spec());
  return make_run_artifact(*sim, assembly.spec(), result);
}

std::vector<RunArtifact> make_campaign_artifacts(
    const CampaignResult& result, const std::vector<ScenarioSpec>& specs) {
  require(result.scenarios.size() == specs.size(),
          "make_campaign_artifacts: result/spec count mismatch");
  std::vector<RunArtifact> out;
  out.reserve(result.scenarios.size());
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    out.push_back(make_run_artifact(result.scenarios[i], specs[i]));
  }
  return out;
}

std::string write_artifact_files(const RunArtifact& artifact,
                                 const std::string& basename) {
  const auto write = [](const std::string& path,
                        const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    out << content;
    if (!out) throw ParseError("write_artifact_files: cannot write " + path);
  };
  const std::string json_path = basename + ".artifact.json";
  write(json_path, artifact.to_json_text());
  if (!artifact.channels.empty()) {
    write(basename + ".aggregates.csv", artifact.to_csv());
  }
  return json_path;
}

}  // namespace hpcem
