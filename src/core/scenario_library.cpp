#include "core/scenario_library.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>

#include "core/spec_io.hpp"

#ifndef HPCEM_SCENARIO_DIR
#define HPCEM_SCENARIO_DIR "scenarios"
#endif

namespace hpcem {

std::string scenario_library_dir() {
  if (const char* env = std::getenv("HPCEM_SCENARIO_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  return HPCEM_SCENARIO_DIR;
}

ScenarioSpec load_named_scenario(const std::string& name) {
  return load_scenario_file(scenario_library_dir() + "/" + name + ".json");
}

std::vector<std::string> list_scenario_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace hpcem
