// Per-research-area energy accounting.
//
// The paper's companion work (HPC-JEEP, reference [3]) broke ARCHER2's
// energy down by application and research community.  This module does the
// same over the simulator's accounting records: node-hours, compute-node
// energy, mean draw and scope-2 emissions per science area and per
// application — the view a service needs to attribute its footprint to
// its user communities.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "grid/carbon.hpp"
#include "workload/catalog.hpp"
#include "workload/jobs.hpp"

namespace hpcem {

/// Aggregate usage of one group (area or application).
struct UsageBucket {
  std::size_t jobs = 0;
  double node_hours = 0.0;
  Energy energy;
  CarbonMass scope2;

  [[nodiscard]] double mean_node_w() const {
    return node_hours > 0.0 ? energy.to_kwh() / node_hours * 1000.0 : 0.0;
  }
};

/// Energy accounting broken down by community.
struct UsageBreakdown {
  std::map<std::string, UsageBucket> by_area;
  std::map<std::string, UsageBucket> by_app;
  UsageBucket total;

  /// Node-hour share of one area (0 when absent).
  [[nodiscard]] double area_share(const std::string& area) const;
};

/// Aggregate records against the catalogue's area labels at a flat carbon
/// intensity.  Unknown applications are grouped under "(unknown)".
[[nodiscard]] UsageBreakdown account_usage(
    const std::vector<JobRecord>& records, const AppCatalog& catalog,
    CarbonIntensity intensity);

/// Render the per-area table (node-hour descending).
[[nodiscard]] std::string render_usage_breakdown(const UsageBreakdown& b);

}  // namespace hpcem
