// Service-level metrics from completed-job accounting records.
//
// The paper's operational decisions trade power against service quality;
// this module computes the quality side from the simulator's (or a real
// system's sacct-like) records: wait times, bounded slowdown, delivered
// node-hours, energy per node-hour and the per-P-state breakdown that
// shows a policy rollout in the accounting data.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"
#include "workload/jobs.hpp"

namespace hpcem {

/// Aggregate service metrics over a set of completed jobs.
struct ServiceMetrics {
  std::size_t jobs = 0;
  double delivered_node_hours = 0.0;
  Energy node_energy;
  /// Compute-node kWh per delivered node-hour (the paper's efficiency
  /// currency when scope 2 dominates).
  double kwh_per_node_hour = 0.0;
  Summary wait_hours;
  /// Bounded slowdown: (wait + runtime) / max(runtime, 10 min), the
  /// standard scheduling service metric.
  Summary bounded_slowdown;
  /// Node-hour share by the P-state jobs actually ran at.
  std::map<std::string, double> node_hour_share_by_pstate;
};

/// Compute metrics over records; throws InvalidArgument on empty input.
[[nodiscard]] ServiceMetrics compute_service_metrics(
    const std::vector<JobRecord>& records);

/// Render as a table for reports.
[[nodiscard]] std::string render_service_metrics(const ServiceMetrics& m);

}  // namespace hpcem
