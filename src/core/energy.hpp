// Energy accounting over telemetry: kWh, cost and simple projections.
#pragma once

#include "grid/carbon.hpp"
#include "telemetry/timeseries.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Result of accounting a power series over a window.
struct EnergyAccount {
  Duration span;
  Energy energy;
  Power mean_power;
  Cost cost;
  CarbonMass scope2;
};

/// Integrates power telemetry into energy, cost and scope-2 emissions.
class EnergyAccountant {
 public:
  EnergyAccountant(PriceModel price, CarbonIntensitySeries intensity);

  /// Account a kW-valued power channel over its full span.
  [[nodiscard]] EnergyAccount account(const TimeSeries& power_kw) const;

  /// Account over a sub-window [a, b).
  [[nodiscard]] EnergyAccount account(const TimeSeries& power_kw, SimTime a,
                                      SimTime b) const;

  /// Annualised projection from a mean power draw at the series' mean
  /// carbon intensity and base price (planning estimate).
  [[nodiscard]] EnergyAccount annualise(Power mean_power) const;

  [[nodiscard]] const CarbonIntensitySeries& intensity() const {
    return intensity_;
  }
  [[nodiscard]] const PriceModel& price() const { return price_; }

 private:
  PriceModel price_;
  CarbonIntensitySeries intensity_;
};

}  // namespace hpcem
