#include "core/report.hpp"

#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/text_table.hpp"

namespace hpcem {

std::string render_hardware_summary(const Facility& facility) {
  TextTable t({"Item", "Value"});
  for (const auto& row : facility.hardware_summary()) {
    t.add_row({row.item, row.value});
  }
  std::ostringstream os;
  os << "Table 1: " << facility.name() << " hardware summary\n" << t.str();
  return os.str();
}

std::string render_component_table(
    const std::vector<ComponentPowerRow>& rows) {
  TextTable t({"Component", "Count", "Idle (kW) [each]",
               "Loaded (kW) [each]", "Idle total (kW)", "Loaded total (kW)",
               "Approx. %"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight, Align::kRight});
  Power idle_total = Power::watts(0.0);
  Power loaded_total = Power::watts(0.0);
  for (const auto& r : rows) {
    t.add_row({r.component, std::to_string(r.count),
               TextTable::num(r.idle_each.kw(), 2),
               TextTable::num(r.loaded_each.kw(), 2),
               TextTable::grouped(r.idle_total.kw()),
               TextTable::grouped(r.loaded_total.kw()),
               TextTable::pct(r.loaded_share, 0)});
    idle_total += r.idle_total;
    loaded_total += r.loaded_total;
  }
  t.add_rule();
  t.add_row({"Total", "", "", "", TextTable::grouped(idle_total.kw()),
             TextTable::grouped(loaded_total.kw()), ""});
  std::ostringstream os;
  os << "Table 2: per-component power draw (model)\n"
     << t.str()
     << "Paper totals: idle 1,800 kW, loaded 3,500 kW; node share 86%, "
        "interconnect 6%, cabinet overheads 6%, CDUs 3%, file systems 1%.\n";
  return os.str();
}

std::string render_benchmark_table(
    const std::vector<BenchmarkComparison>& rows, const std::string& title) {
  TextTable t({"Application benchmark", "Nodes", "Perf. ratio (model)",
               "Perf. ratio (paper)", "Energy ratio (model)",
               "Energy ratio (paper)"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight});
  for (const auto& r : rows) {
    t.add_row({r.app, std::to_string(r.nodes),
               TextTable::num(r.perf_ratio, 2),
               r.paper ? TextTable::num(r.paper->perf_ratio, 2) : "-",
               TextTable::num(r.energy_ratio, 2),
               r.paper ? TextTable::num(r.paper->energy_ratio, 2) : "-"});
  }
  std::ostringstream os;
  os << title << '\n' << t.str();
  return os.str();
}

std::string render_timeline(const TimelineResult& result,
                            const std::string& title) {
  AsciiPlotOptions opts;
  opts.title = title;
  opts.y_label = "compute cabinet power, kW";
  opts.width = 96;
  opts.height = 18;
  if (result.change_time) {
    opts.reference_lines = {result.mean_before_kw, result.mean_after_kw};
  } else {
    opts.reference_lines = {result.mean_kw};
  }
  // Month labels across the window.
  CivilDate d = date_from_sim_time(result.window_start);
  const CivilDate end_d = date_from_sim_time(result.window_end);
  d.day = 1;
  while (CivilDate{d.year, d.month, 1} <= end_d) {
    opts.x_ticks.push_back(month_year_label(d));
    if (++d.month > 12) {
      d.month = 1;
      ++d.year;
    }
  }

  std::ostringstream os;
  os << ascii_plot(result.cabinet_kw.values(), opts);
  os << "window mean: " << TextTable::grouped(result.mean_kw) << " kW"
     << " | mean utilisation: "
     << TextTable::pct(result.mean_utilisation, 1) << '\n';
  if (result.change_time) {
    os << "policy change applied " << iso_date_time(*result.change_time)
       << ": mean " << TextTable::grouped(result.mean_before_kw)
       << " kW before -> " << TextTable::grouped(result.mean_after_kw)
       << " kW after\n";
  }
  if (result.detected) {
    os << "changepoint recovered from telemetry at "
       << iso_date_time(result.detected->time) << ": "
       << TextTable::grouped(result.detected->mean_before) << " kW -> "
       << TextTable::grouped(result.detected->mean_after) << " kW\n";
  }
  return os.str();
}

std::string render_emissions_sweep(
    const std::vector<EmissionsScenario>& rows) {
  TextTable t({"Intensity (gCO2/kWh)", "Scope 2 (t/yr)", "Scope 3 (t/yr)",
               "Scope-2 share", "Regime", "Recommended strategy"},
              {Align::kRight, Align::kRight, Align::kRight, Align::kRight,
               Align::kLeft, Align::kLeft});
  for (const auto& r : rows) {
    t.add_row({TextTable::num(r.intensity.gkwh(), 0),
               TextTable::grouped(r.annual_scope2.t()),
               TextTable::grouped(r.annual_scope3.t()),
               TextTable::pct(r.scope2_share, 0), to_string(r.regime),
               to_string(r.strategy)});
  }
  std::ostringstream os;
  os << "Emissions regimes (paper section 2)\n" << t.str();
  return os.str();
}

std::string render_conclusions(const ScenarioRunner::Conclusions& c) {
  TextTable t({"Quantity", "Model", "Paper"},
              {Align::kLeft, Align::kRight, Align::kRight});
  t.add_row({"Baseline cabinet power (kW)",
             TextTable::grouped(c.baseline_kw), "3,220"});
  t.add_row({"After BIOS change (kW)", TextTable::grouped(c.after_bios_kw),
             "3,010"});
  t.add_row({"After frequency change (kW)",
             TextTable::grouped(c.after_freq_kw), "2,530"});
  t.add_row({"BIOS change saving (kW)", TextTable::grouped(c.bios_saving_kw),
             "210"});
  t.add_row({"BIOS change saving (%)",
             TextTable::pct(c.bios_saving_fraction, 1), "6.5%"});
  t.add_row({"Frequency change saving (kW)",
             TextTable::grouped(c.freq_saving_kw), "480"});
  t.add_row({"Frequency change saving (%)",
             TextTable::pct(c.freq_saving_fraction, 1), "15%"});
  t.add_row({"Total saving (kW)", TextTable::grouped(c.total_saving_kw),
             "690"});
  t.add_row({"Total saving (%)", TextTable::pct(c.total_saving_fraction, 1),
             "21%"});
  std::ostringstream os;
  os << "Conclusions summary (paper section 5)\n" << t.str();
  return os.str();
}

std::string render_frequency_sweep(const std::string& app,
                                   const std::vector<FrequencyPoint>& sweep) {
  TextTable t({"P-state", "Perf. ratio", "Energy ratio", "Node power (W)",
               "Output/kWh ratio"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight});
  for (const auto& p : sweep) {
    t.add_row({to_string(p.pstate), TextTable::num(p.perf_ratio, 3),
               TextTable::num(p.energy_ratio, 3),
               TextTable::num(p.node_power_w, 0),
               TextTable::num(p.output_per_kwh_ratio, 3)});
  }
  std::ostringstream os;
  os << "Frequency sweep: " << app << '\n' << t.str();
  return os.str();
}

std::string render_run_artifact(const RunArtifact& artifact) {
  std::ostringstream os;
  os << "Run artifact: " << artifact.scenario << " (" << artifact.source;
  if (!artifact.machine.empty()) os << ", " << artifact.machine;
  os << ")\n"
     << "window " << iso_date_time(artifact.window_start) << " .. "
     << iso_date_time(artifact.window_end) << " | replicates "
     << artifact.replicates << '\n'
     << "mean " << TextTable::grouped(artifact.headline.mean_kw)
     << " kW | before " << TextTable::grouped(artifact.headline.mean_before_kw)
     << " | after " << TextTable::grouped(artifact.headline.mean_after_kw)
     << " | utilisation "
     << TextTable::pct(artifact.headline.mean_utilisation, 1) << " | energy "
     << TextTable::grouped(artifact.headline.window_energy_kwh) << " kWh\n";
  for (const auto& cp : artifact.change_points) {
    os << (cp.detected ? "detected" : "scheduled") << " change at "
       << iso_date_time(cp.at) << ": "
       << TextTable::grouped(cp.mean_before_kw) << " kW -> "
       << TextTable::grouped(cp.mean_after_kw) << " kW\n";
  }
  if (!artifact.channels.empty()) {
    TextTable t({"Channel", "Unit", "Samples", "Mean", "Min", "Max"},
                {Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                 Align::kRight, Align::kRight});
    for (const auto& c : artifact.channels) {
      t.add_row({c.name, c.unit, std::to_string(c.samples),
                 TextTable::num(c.mean, 3), TextTable::num(c.min, 3),
                 TextTable::num(c.max, 3)});
    }
    os << t.str();
  }
  return os.str();
}

}  // namespace hpcem
