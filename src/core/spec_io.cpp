#include "core/spec_io.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>

#include "power/pstate.hpp"
#include "util/error.hpp"

namespace hpcem {

namespace {

// ---------------------------------------------------------------------------
// Diagnostics.  Every schema violation is one line: `spec: $.path: why`.

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw ParseError("spec: " + path + ": " + why);
}

std::string type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "a bool";
    case JsonValue::Type::kNumber: return "a number";
    case JsonValue::Type::kString: return "a string";
    case JsonValue::Type::kArray: return "an array";
    case JsonValue::Type::kObject: return "an object";
  }
  return "a value";
}

const JsonValue::Object& expect_object(const JsonValue& v,
                                       const std::string& path) {
  if (!v.is_object()) {
    fail(path, "expected an object, got " + type_name(v.type()));
  }
  return v.as_object();
}

const JsonValue::Array& expect_array(const JsonValue& v,
                                     const std::string& path) {
  if (!v.is_array()) {
    fail(path, "expected an array, got " + type_name(v.type()));
  }
  return v.as_array();
}

double expect_number(const JsonValue& v, const std::string& path) {
  if (!v.is_number()) {
    fail(path, "expected a number, got " + type_name(v.type()));
  }
  return v.as_number();
}

bool expect_bool(const JsonValue& v, const std::string& path) {
  if (!v.is_bool()) {
    fail(path, "expected a bool, got " + type_name(v.type()));
  }
  return v.as_bool();
}

const std::string& expect_string(const JsonValue& v,
                                 const std::string& path) {
  if (!v.is_string()) {
    fail(path, "expected a string, got " + type_name(v.type()));
  }
  return v.as_string();
}

/// Reject any member not in `known`; the error names the first stray key
/// in document order so the diagnostic is stable.
void reject_unknown(const JsonValue::Object& obj, const std::string& path,
                    std::initializer_list<std::string_view> known) {
  for (const auto& [key, value] : obj) {
    bool ok = false;
    for (const auto& k : known) {
      if (key == k) {
        ok = true;
        break;
      }
    }
    if (!ok) fail(path + "." + key, "unknown member");
  }
}

// ---------------------------------------------------------------------------
// Scalar codecs.

/// Non-negative integer exactly representable in a double.
std::uint64_t expect_integer(const JsonValue& v, const std::string& path,
                             double max_exclusive) {
  const double n = expect_number(v, path);
  if (!(n >= 0.0) || n >= max_exclusive || std::floor(n) != n) {
    fail(path, "must be an integer in [0, 2^53)");
  }
  return static_cast<std::uint64_t>(n);
}

std::string render_hms(SimTime t) {
  const CivilDate d = date_from_sim_time(t);
  const double into = seconds_into_day(t);
  const int h = static_cast<int>(into / 3600.0);
  const int m = static_cast<int>((into - h * 3600.0) / 60.0);
  const int s = static_cast<int>(into - h * 3600.0 - m * 60.0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s %02d:%02d:%02d", iso_date(d).c_str(),
                h, m, s);
  return buf;
}

/// Render an instant as the shortest ISO date-time that parses back to
/// exactly this value; fall back to raw epoch seconds otherwise, so every
/// representable time round-trips bit-exactly.
JsonValue time_to_json(SimTime t) {
  const CivilDate d = date_from_sim_time(t);
  if (sim_time_from_date(d) == t) return JsonValue(iso_date(d));
  if (const std::string hm = iso_date_time(t);
      parse_date_time(hm) == std::optional<SimTime>(t)) {
    return JsonValue(hm);
  }
  if (const std::string hms = render_hms(t);
      parse_date_time(hms) == std::optional<SimTime>(t)) {
    return JsonValue(hms);
  }
  return JsonValue(t.sec());
}

SimTime time_from_json(const JsonValue& v, const std::string& path) {
  if (v.is_string()) {
    const auto t = parse_date_time(v.as_string());
    if (!t) fail(path, "bad date-time '" + v.as_string() + "'");
    return *t;
  }
  if (v.is_number()) return SimTime(v.as_number());
  fail(path, "expected a date-time string or epoch seconds, got " +
                 type_name(v.type()));
}

/// Emit a duration under `<key>_days` when the day count is exact, else
/// under `<key>_s` (raw seconds always round-trip).
void set_duration(JsonValue& obj, const std::string& key, Duration d) {
  if (Duration::days(d.day()).sec() == d.sec()) {
    obj.set(key + "_days", JsonValue(d.day()));
  } else {
    obj.set(key + "_s", JsonValue(d.sec()));
  }
}

std::string machine_name(MachineModel m) {
  switch (m) {
    case MachineModel::kArcher2: return "archer2";
    case MachineModel::kTestbed: return "testbed";
    case MachineModel::kMicro: return "micro";
  }
  return "archer2";
}

MachineModel machine_from_json(const JsonValue& v, const std::string& path) {
  const std::string& s = expect_string(v, path);
  if (s == "archer2") return MachineModel::kArcher2;
  if (s == "testbed") return MachineModel::kTestbed;
  if (s == "micro") return MachineModel::kMicro;
  fail(path, "unknown machine '" + s + "' (archer2 | testbed | micro)");
}

// ---------------------------------------------------------------------------
// Policy codec.  The three service policies collapse to their paper names;
// anything else is spelled out as an explicit object.

JsonValue policy_to_json(const OperatingPolicy& p) {
  if (p == OperatingPolicy::baseline()) return JsonValue("baseline");
  if (p == OperatingPolicy::performance_determinism()) {
    return JsonValue("perfdet");
  }
  if (p == OperatingPolicy::low_frequency_default()) {
    return JsonValue("lowfreq");
  }
  JsonValue o = JsonValue::object();
  o.set("bios", p.bios_mode == DeterminismMode::kPowerDeterminism
                    ? "power"
                    : "performance");
  o.set("default_ghz", p.default_pstate.nominal.to_ghz());
  o.set("turbo", p.default_pstate.turbo);
  o.set("auto_revert", p.auto_revert_enabled);
  o.set("revert_threshold", p.revert_threshold);
  return o;
}

OperatingPolicy policy_from_json(const JsonValue& v,
                                 const std::string& path) {
  if (v.is_string()) {
    const std::string& s = v.as_string();
    if (s == "baseline") return OperatingPolicy::baseline();
    if (s == "perfdet") return OperatingPolicy::performance_determinism();
    if (s == "lowfreq") return OperatingPolicy::low_frequency_default();
    fail(path, "unknown policy '" + s + "' (baseline | perfdet | lowfreq)");
  }
  const auto& obj = expect_object(v, path);
  reject_unknown(obj, path,
                 {"bios", "default_ghz", "turbo", "auto_revert",
                  "revert_threshold"});
  OperatingPolicy p;
  const JsonValue* bios = v.get("bios");
  if (!bios) fail(path + ".bios", "missing required member");
  const std::string& mode = expect_string(*bios, path + ".bios");
  if (mode == "power") {
    p.bios_mode = DeterminismMode::kPowerDeterminism;
  } else if (mode == "performance") {
    p.bios_mode = DeterminismMode::kPerformanceDeterminism;
  } else {
    fail(path + ".bios",
         "unknown BIOS mode '" + mode + "' (power | performance)");
  }
  const JsonValue* ghz = v.get("default_ghz");
  if (!ghz) fail(path + ".default_ghz", "missing required member");
  p.default_pstate.nominal =
      Frequency::ghz(expect_number(*ghz, path + ".default_ghz"));
  if (const JsonValue* t = v.get("turbo")) {
    p.default_pstate.turbo = expect_bool(*t, path + ".turbo");
  } else {
    p.default_pstate.turbo = false;
  }
  if (!is_valid_pstate(p.default_pstate)) {
    fail(path + ".default_ghz",
         "not an ARCHER2 p-state (1.5 | 2.0 | 2.25; turbo only at 2.25)");
  }
  if (const JsonValue* a = v.get("auto_revert")) {
    p.auto_revert_enabled = expect_bool(*a, path + ".auto_revert");
  }
  if (const JsonValue* r = v.get("revert_threshold")) {
    p.revert_threshold = expect_number(*r, path + ".revert_threshold");
    if (!(p.revert_threshold >= 0.0)) {
      fail(path + ".revert_threshold", "must be non-negative");
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// Scheduler codec.

JsonValue weights_to_json(const PriorityWeights& w) {
  JsonValue o = JsonValue::object();
  o.set("standard", w.standard);
  o.set("short_qos", w.short_qos);
  o.set("largescale", w.largescale);
  o.set("lowpriority", w.lowpriority);
  o.set("per_wait_hour", w.per_wait_hour);
  o.set("per_node", w.per_node);
  return o;
}

PriorityWeights weights_from_json(const JsonValue& v,
                                  const std::string& path) {
  const auto& obj = expect_object(v, path);
  reject_unknown(obj, path,
                 {"standard", "short_qos", "largescale", "lowpriority",
                  "per_wait_hour", "per_node"});
  PriorityWeights w;
  const auto member = [&](const char* key, double& out) {
    if (const JsonValue* m = v.get(key)) {
      out = expect_number(*m, path + "." + key);
    }
  };
  member("standard", w.standard);
  member("short_qos", w.short_qos);
  member("largescale", w.largescale);
  member("lowpriority", w.lowpriority);
  member("per_wait_hour", w.per_wait_hour);
  member("per_node", w.per_node);
  return w;
}

// ---------------------------------------------------------------------------
// Plant / idle codec.

JsonValue idle_to_json(const IdlePowerPolicy& p) {
  JsonValue o = JsonValue::object();
  o.set("suspend_enabled", p.suspend_enabled);
  o.set("suspended_w", p.suspended.w());
  o.set("suspendable_fraction", p.suspendable_fraction);
  if (Duration::minutes(p.wake_latency.min()).sec() ==
      p.wake_latency.sec()) {
    o.set("wake_latency_min", p.wake_latency.min());
  } else {
    o.set("wake_latency_s", p.wake_latency.sec());
  }
  return o;
}

IdlePowerPolicy idle_from_json(const JsonValue& v, const std::string& path) {
  const auto& obj = expect_object(v, path);
  reject_unknown(obj, path,
                 {"suspend_enabled", "suspended_w", "suspendable_fraction",
                  "wake_latency_min", "wake_latency_s"});
  IdlePowerPolicy p;
  const JsonValue* enabled = v.get("suspend_enabled");
  if (!enabled) fail(path + ".suspend_enabled", "missing required member");
  p.suspend_enabled = expect_bool(*enabled, path + ".suspend_enabled");
  if (const JsonValue* w = v.get("suspended_w")) {
    const double watts = expect_number(*w, path + ".suspended_w");
    if (!(watts >= 0.0)) fail(path + ".suspended_w", "must be non-negative");
    p.suspended = Power::watts(watts);
  }
  if (const JsonValue* f = v.get("suspendable_fraction")) {
    p.suspendable_fraction =
        expect_number(*f, path + ".suspendable_fraction");
    if (!(p.suspendable_fraction >= 0.0 && p.suspendable_fraction <= 1.0)) {
      fail(path + ".suspendable_fraction", "must be in [0,1]");
    }
  }
  if (v.get("wake_latency_min") && v.get("wake_latency_s")) {
    fail(path + ".wake_latency_min", "conflicts with wake_latency_s");
  }
  if (const JsonValue* m = v.get("wake_latency_min")) {
    const double mins = expect_number(*m, path + ".wake_latency_min");
    if (!(mins >= 0.0)) {
      fail(path + ".wake_latency_min", "must be non-negative");
    }
    p.wake_latency = Duration::minutes(mins);
  }
  if (const JsonValue* s = v.get("wake_latency_s")) {
    const double sec = expect_number(*s, path + ".wake_latency_s");
    if (!(sec >= 0.0)) fail(path + ".wake_latency_s", "must be non-negative");
    p.wake_latency = Duration::seconds(sec);
  }
  return p;
}

// ---------------------------------------------------------------------------
// Grid / scope-3 codec (shared with the serve inline-override fragment).

JsonValue grid_to_json(const GridIntensitySeries& g) {
  JsonValue o = JsonValue::object();
  if (g.constant) {
    o.set("constant_g_per_kwh", g.constant->gkwh());
  } else {
    JsonValue pts = JsonValue::array();
    for (const auto& [t, gkwh] : g.points) {
      JsonValue pt = JsonValue::array();
      pt.push_back(JsonValue(t));
      pt.push_back(JsonValue(gkwh));
      pts.push_back(std::move(pt));
    }
    o.set("points", std::move(pts));
  }
  return o;
}

GridIntensitySeries grid_from_json(const JsonValue& v,
                                   const std::string& path) {
  const auto& obj = expect_object(v, path);
  reject_unknown(obj, path, {"constant_g_per_kwh", "points"});
  const JsonValue* constant = v.get("constant_g_per_kwh");
  const JsonValue* points = v.get("points");
  if (static_cast<bool>(constant) == static_cast<bool>(points)) {
    fail(path, "exactly one of constant_g_per_kwh or points is required");
  }
  GridIntensitySeries g;
  if (constant) {
    const double gkwh =
        expect_number(*constant, path + ".constant_g_per_kwh");
    if (!(gkwh >= 0.0)) {
      fail(path + ".constant_g_per_kwh", "must be non-negative");
    }
    g.constant = CarbonIntensity::g_per_kwh(gkwh);
    return g;
  }
  const auto& arr = expect_array(*points, path + ".points");
  if (arr.empty()) fail(path + ".points", "must not be empty");
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const std::string at = path + ".points[" + std::to_string(i) + "]";
    const auto& pair = expect_array(arr[i], at);
    if (pair.size() != 2) {
      fail(at, "expected a [time, g_per_kwh] pair");
    }
    const double t = pair[0].is_string()
                         ? time_from_json(pair[0], at + "[0]").sec()
                         : expect_number(pair[0], at + "[0]");
    const double gkwh = expect_number(pair[1], at + "[1]");
    if (!(gkwh >= 0.0)) fail(at + "[1]", "must be non-negative");
    if (!g.points.empty() && t <= g.points.back().first) {
      fail(at + "[0]", "breakpoints must be strictly time-sorted");
    }
    g.points.emplace_back(t, gkwh);
  }
  return g;
}

JsonValue scope3_to_json(const EmbodiedParams& e) {
  JsonValue o = JsonValue::object();
  o.set("total_tonnes", e.total.t());
  o.set("lifetime_years", e.lifetime_years);
  return o;
}

EmbodiedParams scope3_from_json(const JsonValue& v, const std::string& path) {
  const auto& obj = expect_object(v, path);
  reject_unknown(obj, path, {"total_tonnes", "lifetime_years"});
  const JsonValue* total = v.get("total_tonnes");
  if (!total) fail(path + ".total_tonnes", "missing required member");
  const JsonValue* life = v.get("lifetime_years");
  if (!life) fail(path + ".lifetime_years", "missing required member");
  EmbodiedParams e;
  const double tonnes = expect_number(*total, path + ".total_tonnes");
  if (!(tonnes > 0.0)) fail(path + ".total_tonnes", "must be positive");
  e.total = CarbonMass::tonnes(tonnes);
  e.lifetime_years = expect_number(*life, path + ".lifetime_years");
  if (!(e.lifetime_years > 0.0)) {
    fail(path + ".lifetime_years", "must be positive");
  }
  return e;
}

// ---------------------------------------------------------------------------
// Duration members: exactly one of <key>_days / <key>_s, or neither.

std::optional<Duration> duration_from_json(const JsonValue& parent,
                                           const std::string& path,
                                           const std::string& key) {
  const JsonValue* days = parent.get(key + "_days");
  const JsonValue* secs = parent.get(key + "_s");
  if (days && secs) {
    fail(path + "." + key + "_days", "conflicts with " + key + "_s");
  }
  if (days) {
    return Duration::days(
        expect_number(*days, path + "." + key + "_days"));
  }
  if (secs) {
    return Duration::seconds(
        expect_number(*secs, path + "." + key + "_s"));
  }
  return std::nullopt;
}

}  // namespace

// ---------------------------------------------------------------------------
// Spec -> JSON.

JsonValue scenario_to_json(const ScenarioSpec& spec) {
  JsonValue o = JsonValue::object();
  o.set("spec_version", kScenarioSpecVersion);
  o.set("name", spec.name);
  o.set("machine", machine_name(spec.machine));

  JsonValue window = JsonValue::object();
  window.set("start", time_to_json(spec.window_start));
  window.set("end", time_to_json(spec.window_end));
  o.set("window", std::move(window));

  set_duration(o, "warmup", spec.warmup);
  o.set("seed", JsonValue(static_cast<double>(spec.seed)));
  o.set("policy", policy_to_json(spec.policy));

  if (!spec.changes.empty()) {
    JsonValue changes = JsonValue::array();
    for (const auto& c : spec.changes) {
      JsonValue e = JsonValue::object();
      e.set("at", time_to_json(c.at));
      e.set("policy", policy_to_json(c.policy));
      changes.push_back(std::move(e));
    }
    o.set("changes", std::move(changes));
  }

  if (!spec.maintenance.empty()) {
    JsonValue windows = JsonValue::array();
    for (const auto& m : spec.maintenance) {
      JsonValue e = JsonValue::object();
      e.set("block_from", time_to_json(m.block_from));
      e.set("end", time_to_json(m.end));
      windows.push_back(std::move(e));
    }
    o.set("maintenance", std::move(windows));
  }

  if (spec.discipline != QueueDiscipline::kFifo ||
      !(spec.weights == PriorityWeights{})) {
    JsonValue sched = JsonValue::object();
    sched.set("discipline", spec.discipline == QueueDiscipline::kFifo
                                ? "fifo"
                                : "priority");
    if (!(spec.weights == PriorityWeights{})) {
      sched.set("weights", weights_to_json(spec.weights));
    }
    o.set("scheduler", std::move(sched));
  }

  if (spec.sample_interval || spec.metering_noise_sigma ||
      spec.offered_load || spec.user_turbo_pin_fraction ||
      spec.telemetry_max_raw_samples) {
    JsonValue ov = JsonValue::object();
    if (spec.sample_interval) {
      ov.set("sample_interval_s", spec.sample_interval->sec());
    }
    if (spec.metering_noise_sigma) {
      ov.set("metering_noise_sigma", *spec.metering_noise_sigma);
    }
    if (spec.offered_load) ov.set("offered_load", *spec.offered_load);
    if (spec.user_turbo_pin_fraction) {
      ov.set("user_turbo_pin_fraction", *spec.user_turbo_pin_fraction);
    }
    if (spec.telemetry_max_raw_samples) {
      ov.set("telemetry_max_raw_samples", *spec.telemetry_max_raw_samples);
    }
    o.set("overrides", std::move(ov));
  }

  if (spec.model_cdus || spec.model_filesystems || spec.cooling_outdoor_c ||
      !(spec.idle_policy == IdlePowerPolicy{})) {
    JsonValue plant = JsonValue::object();
    if (spec.model_cdus) plant.set("model_cdus", true);
    if (spec.model_filesystems) plant.set("model_filesystems", true);
    if (spec.cooling_outdoor_c) {
      plant.set("cooling_outdoor_c", *spec.cooling_outdoor_c);
    }
    if (!(spec.idle_policy == IdlePowerPolicy{})) {
      plant.set("idle", idle_to_json(spec.idle_policy));
    }
    o.set("plant", std::move(plant));
  }

  if (spec.grid) o.set("grid", grid_to_json(*spec.grid));
  if (spec.scope3) o.set("scope3", scope3_to_json(*spec.scope3));
  return o;
}

std::string save_scenario(const ScenarioSpec& spec) {
  return scenario_to_json(spec).dump(2) + "\n";
}

// ---------------------------------------------------------------------------
// JSON -> spec.

ScenarioSpec scenario_from_json(const JsonValue& v) {
  const auto& obj = expect_object(v, "$");

  const JsonValue* version = v.get("spec_version");
  if (!version) fail("$.spec_version", "missing required member");
  const double ver = expect_number(*version, "$.spec_version");
  if (ver != static_cast<double>(kScenarioSpecVersion)) {
    fail("$.spec_version", "unsupported version " + json_number(ver) +
                               " (expected " +
                               std::to_string(kScenarioSpecVersion) + ")");
  }

  reject_unknown(obj, "$",
                 {"spec_version", "name", "machine", "window",
                  "warmup_days", "warmup_s", "seed", "policy", "changes",
                  "maintenance", "scheduler", "overrides", "plant", "grid",
                  "scope3"});

  ScenarioSpec spec;

  const JsonValue* name = v.get("name");
  if (!name) fail("$.name", "missing required member");
  spec.name = expect_string(*name, "$.name");
  if (spec.name.empty()) fail("$.name", "must not be empty");

  const JsonValue* machine = v.get("machine");
  if (!machine) fail("$.machine", "missing required member");
  spec.machine = machine_from_json(*machine, "$.machine");

  const JsonValue* window = v.get("window");
  if (!window) fail("$.window", "missing required member");
  const auto& wobj = expect_object(*window, "$.window");
  reject_unknown(wobj, "$.window", {"start", "end"});
  const JsonValue* start = window->get("start");
  if (!start) fail("$.window.start", "missing required member");
  const JsonValue* end = window->get("end");
  if (!end) fail("$.window.end", "missing required member");
  spec.window_start = time_from_json(*start, "$.window.start");
  spec.window_end = time_from_json(*end, "$.window.end");
  if (!(spec.window_end > spec.window_start)) {
    fail("$.window", "end must follow start");
  }

  if (const auto warmup = duration_from_json(v, "$", "warmup")) {
    if (!(warmup->sec() >= 0.0)) {
      fail("$.warmup_days", "must be non-negative");
    }
    spec.warmup = *warmup;
  }

  if (const JsonValue* seed = v.get("seed")) {
    spec.seed = expect_integer(*seed, "$.seed", 9007199254740992.0);
  }

  if (const JsonValue* policy = v.get("policy")) {
    spec.policy = policy_from_json(*policy, "$.policy");
  }

  if (const JsonValue* changes = v.get("changes")) {
    const auto& arr = expect_array(*changes, "$.changes");
    for (std::size_t i = 0; i < arr.size(); ++i) {
      const std::string at = "$.changes[" + std::to_string(i) + "]";
      const auto& cobj = expect_object(arr[i], at);
      reject_unknown(cobj, at, {"at", "policy"});
      const JsonValue* when = arr[i].get("at");
      if (!when) fail(at + ".at", "missing required member");
      const JsonValue* cp = arr[i].get("policy");
      if (!cp) fail(at + ".policy", "missing required member");
      PolicyChange change;
      change.at = time_from_json(*when, at + ".at");
      change.policy = policy_from_json(*cp, at + ".policy");
      spec.changes.push_back(change);
    }
  }

  if (const JsonValue* maintenance = v.get("maintenance")) {
    const auto& arr = expect_array(*maintenance, "$.maintenance");
    for (std::size_t i = 0; i < arr.size(); ++i) {
      const std::string at = "$.maintenance[" + std::to_string(i) + "]";
      const auto& mobj = expect_object(arr[i], at);
      reject_unknown(mobj, at, {"block_from", "end"});
      const JsonValue* from = arr[i].get("block_from");
      if (!from) fail(at + ".block_from", "missing required member");
      const JsonValue* mend = arr[i].get("end");
      if (!mend) fail(at + ".end", "missing required member");
      MaintenanceWindow w;
      w.block_from = time_from_json(*from, at + ".block_from");
      w.end = time_from_json(*mend, at + ".end");
      if (!(w.end > w.block_from)) {
        fail(at, "end must follow block_from");
      }
      spec.maintenance.push_back(w);
    }
  }

  if (const JsonValue* sched = v.get("scheduler")) {
    const auto& sobj = expect_object(*sched, "$.scheduler");
    reject_unknown(sobj, "$.scheduler", {"discipline", "weights"});
    const JsonValue* disc = sched->get("discipline");
    if (!disc) fail("$.scheduler.discipline", "missing required member");
    const std::string& d = expect_string(*disc, "$.scheduler.discipline");
    if (d == "fifo") {
      spec.discipline = QueueDiscipline::kFifo;
    } else if (d == "priority") {
      spec.discipline = QueueDiscipline::kPriority;
    } else {
      fail("$.scheduler.discipline",
           "unknown discipline '" + d + "' (fifo | priority)");
    }
    if (const JsonValue* w = sched->get("weights")) {
      spec.weights = weights_from_json(*w, "$.scheduler.weights");
    }
  }

  if (const JsonValue* ov = v.get("overrides")) {
    const auto& oobj = expect_object(*ov, "$.overrides");
    reject_unknown(oobj, "$.overrides",
                   {"sample_interval_s", "metering_noise_sigma",
                    "offered_load", "user_turbo_pin_fraction",
                    "telemetry_max_raw_samples"});
    if (const JsonValue* s = ov->get("sample_interval_s")) {
      const double sec =
          expect_number(*s, "$.overrides.sample_interval_s");
      if (!(sec > 0.0)) {
        fail("$.overrides.sample_interval_s", "must be positive");
      }
      spec.sample_interval = Duration::seconds(sec);
    }
    if (const JsonValue* s = ov->get("metering_noise_sigma")) {
      const double sigma =
          expect_number(*s, "$.overrides.metering_noise_sigma");
      if (!(sigma >= 0.0)) {
        fail("$.overrides.metering_noise_sigma", "must be non-negative");
      }
      spec.metering_noise_sigma = sigma;
    }
    if (const JsonValue* s = ov->get("offered_load")) {
      const double load = expect_number(*s, "$.overrides.offered_load");
      if (!(load > 0.0)) fail("$.overrides.offered_load", "must be positive");
      spec.offered_load = load;
    }
    if (const JsonValue* s = ov->get("user_turbo_pin_fraction")) {
      const double f =
          expect_number(*s, "$.overrides.user_turbo_pin_fraction");
      if (!(f >= 0.0 && f <= 1.0)) {
        fail("$.overrides.user_turbo_pin_fraction", "must be in [0,1]");
      }
      spec.user_turbo_pin_fraction = f;
    }
    if (const JsonValue* s = ov->get("telemetry_max_raw_samples")) {
      const std::uint64_t cap = expect_integer(
          *s, "$.overrides.telemetry_max_raw_samples", 9007199254740992.0);
      if (cap < 2) {
        fail("$.overrides.telemetry_max_raw_samples", "must be >= 2");
      }
      spec.telemetry_max_raw_samples = static_cast<std::size_t>(cap);
    }
  }

  if (const JsonValue* plant = v.get("plant")) {
    const auto& pobj = expect_object(*plant, "$.plant");
    reject_unknown(pobj, "$.plant",
                   {"model_cdus", "model_filesystems", "cooling_outdoor_c",
                    "idle"});
    if (const JsonValue* c = plant->get("model_cdus")) {
      spec.model_cdus = expect_bool(*c, "$.plant.model_cdus");
    }
    if (const JsonValue* f = plant->get("model_filesystems")) {
      spec.model_filesystems = expect_bool(*f, "$.plant.model_filesystems");
    }
    if (const JsonValue* c = plant->get("cooling_outdoor_c")) {
      spec.cooling_outdoor_c =
          expect_number(*c, "$.plant.cooling_outdoor_c");
    }
    if (const JsonValue* idle = plant->get("idle")) {
      spec.idle_policy = idle_from_json(*idle, "$.plant.idle");
    }
  }

  if (const JsonValue* grid = v.get("grid")) {
    spec.grid = grid_from_json(*grid, "$.grid");
  }
  if (const JsonValue* scope3 = v.get("scope3")) {
    spec.scope3 = scope3_from_json(*scope3, "$.scope3");
  }
  return spec;
}

ScenarioSpec parse_scenario(std::string_view text) {
  JsonValue doc;
  try {
    doc = JsonValue::parse(text, JsonParseOptions{.allow_comments = true});
  } catch (const ParseError& e) {
    throw ParseError(std::string("spec: ") + e.what());
  }
  return scenario_from_json(doc);
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("spec: " + path + ": cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_scenario(buf.str());
  } catch (const ParseError& e) {
    // "spec: $.x: why" -> "spec: <path>: $.x: why"
    const std::string what = e.what();
    const std::string prefix = "spec: ";
    if (what.rfind(prefix, 0) == 0) {
      throw ParseError("spec: " + path + ": " + what.substr(prefix.size()));
    }
    throw;
  }
}

void save_scenario_file(const ScenarioSpec& spec, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw ParseError("spec: " + path + ": cannot open for writing");
  out << save_scenario(spec);
  if (!out) throw ParseError("spec: " + path + ": write failed");
}

// ---------------------------------------------------------------------------
// The serve inline-override fragment: grid + scope3 only, rooted at
// `$.spec` (the request member it arrives under).

SpecOverrides spec_overrides_from_json(const JsonValue& v) {
  const auto& obj = expect_object(v, "$.spec");
  reject_unknown(obj, "$.spec", {"grid", "scope3"});
  SpecOverrides out;
  if (const JsonValue* grid = v.get("grid")) {
    out.grid = grid_from_json(*grid, "$.spec.grid");
  }
  if (const JsonValue* scope3 = v.get("scope3")) {
    out.scope3 = scope3_from_json(*scope3, "$.spec.scope3");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Campaign manifests.

namespace {

[[noreturn]] void fail_manifest(const std::string& path,
                                const std::string& why) {
  throw ParseError("manifest: " + path + ": " + why);
}

}  // namespace

CampaignManifest load_campaign_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail_manifest(path, "cannot open file");
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue doc;
  try {
    doc = JsonValue::parse(buf.str(),
                           JsonParseOptions{.allow_comments = true});
  } catch (const ParseError& e) {
    fail_manifest(path, e.what());
  }
  if (!doc.is_object()) fail_manifest(path, "$: expected an object");
  reject_unknown(doc.as_object(), "manifest: " + path + ": $",
                 {"manifest_version", "specs", "workers",
                  "seeds_per_scenario", "campaign_seed"});

  const JsonValue* version = doc.get("manifest_version");
  if (!version) fail_manifest(path, "$.manifest_version: missing required member");
  if (!version->is_number() ||
      version->as_number() != static_cast<double>(kCampaignManifestVersion)) {
    fail_manifest(path, "$.manifest_version: unsupported version (expected " +
                            std::to_string(kCampaignManifestVersion) + ")");
  }

  const JsonValue* specs = doc.get("specs");
  if (!specs) fail_manifest(path, "$.specs: missing required member");
  if (!specs->is_array() || specs->as_array().empty()) {
    fail_manifest(path, "$.specs: expected a non-empty array of spec paths");
  }

  CampaignManifest manifest;
  if (const JsonValue* w = doc.get("workers")) {
    manifest.config.workers = static_cast<std::size_t>(expect_integer(
        *w, "manifest: " + path + ": $.workers", 9007199254740992.0));
  }
  if (const JsonValue* s = doc.get("seeds_per_scenario")) {
    const std::uint64_t n = expect_integer(
        *s, "manifest: " + path + ": $.seeds_per_scenario",
        9007199254740992.0);
    if (n < 1) {
      fail_manifest(path, "$.seeds_per_scenario: must be >= 1");
    }
    manifest.config.seeds_per_scenario = static_cast<std::size_t>(n);
  }
  if (const JsonValue* s = doc.get("campaign_seed")) {
    manifest.config.campaign_seed = expect_integer(
        *s, "manifest: " + path + ": $.campaign_seed", 9007199254740992.0);
  }

  const std::filesystem::path base =
      std::filesystem::path(path).parent_path();
  const auto& arr = specs->as_array();
  for (std::size_t i = 0; i < arr.size(); ++i) {
    if (!arr[i].is_string()) {
      fail_manifest(path, "$.specs[" + std::to_string(i) +
                              "]: expected a spec file path");
    }
    const std::filesystem::path ref(arr[i].as_string());
    const std::string resolved =
        ref.is_absolute() ? ref.string() : (base / ref).string();
    manifest.specs.push_back(load_scenario_file(resolved));
    manifest.spec_files.push_back(resolved);
  }
  return manifest;
}

}  // namespace hpcem
