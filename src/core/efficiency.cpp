#include "core/efficiency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

EfficiencyAnalyzer::EfficiencyAnalyzer(const AppCatalog& catalog)
    : catalog_(&catalog) {}

BenchmarkComparison EfficiencyAnalyzer::compare(
    const std::string& app_name, std::size_t nodes, OperatingPoint reference,
    OperatingPoint candidate, std::optional<int> paper_table) const {
  const ApplicationModel& app = catalog_->at(app_name);
  BenchmarkComparison row;
  row.app = app_name;
  row.nodes = nodes;
  row.perf_ratio = app.perf_ratio(candidate.mode, candidate.pstate,
                                  reference.mode, reference.pstate);
  row.energy_ratio = app.energy_ratio(candidate.mode, candidate.pstate,
                                      reference.mode, reference.pstate);
  if (paper_table) row.paper = catalog_->reference(app_name, *paper_table);
  return row;
}

std::vector<BenchmarkComparison> EfficiencyAnalyzer::table3() const {
  const OperatingPoint reference{DeterminismMode::kPowerDeterminism,
                                 pstates::kHighTurbo};
  const OperatingPoint candidate{DeterminismMode::kPerformanceDeterminism,
                                 pstates::kHighTurbo};
  std::vector<BenchmarkComparison> rows;
  for (const auto* app : catalog_->benchmarks_for_table(3)) {
    const auto ref = catalog_->reference(app->name(), 3);
    HPCEM_ASSERT(ref.has_value(), "table-3 benchmark without reference");
    rows.push_back(
        compare(app->name(), ref->nodes, reference, candidate, 3));
  }
  return rows;
}

std::vector<BenchmarkComparison> EfficiencyAnalyzer::table4() const {
  const OperatingPoint reference{DeterminismMode::kPerformanceDeterminism,
                                 pstates::kHighTurbo};
  const OperatingPoint candidate{DeterminismMode::kPerformanceDeterminism,
                                 pstates::kMid};
  std::vector<BenchmarkComparison> rows;
  for (const auto* app : catalog_->benchmarks_for_table(4)) {
    const auto ref = catalog_->reference(app->name(), 4);
    HPCEM_ASSERT(ref.has_value(), "table-4 benchmark without reference");
    rows.push_back(
        compare(app->name(), ref->nodes, reference, candidate, 4));
  }
  return rows;
}

std::vector<FrequencyPoint> EfficiencyAnalyzer::frequency_sweep(
    const std::string& app_name, DeterminismMode mode) const {
  const ApplicationModel& app = catalog_->at(app_name);
  const PState reference = pstates::kHighTurbo;
  const PState candidates[] = {pstates::kLow, pstates::kMid,
                               pstates::kHighNoTurbo, pstates::kHighTurbo};
  std::vector<FrequencyPoint> out;
  for (const PState& ps : candidates) {
    FrequencyPoint p;
    p.pstate = ps;
    p.perf_ratio = app.perf_ratio(mode, ps, mode, reference);
    p.energy_ratio = app.energy_ratio(mode, ps, mode, reference);
    p.node_power_w = app.node_draw(mode, ps).w();
    // Work per kWh scales as 1/energy-to-solution.
    p.output_per_kwh_ratio = 1.0 / p.energy_ratio;
    out.push_back(p);
  }
  return out;
}

PState EfficiencyAnalyzer::recommend_pstate(
    const std::string& app_name, std::optional<double> max_slowdown,
    DeterminismMode mode) const {
  const auto sweep = frequency_sweep(app_name, mode);
  const FrequencyPoint* best = nullptr;
  for (const auto& p : sweep) {
    if (max_slowdown && (1.0 / p.perf_ratio - 1.0) > *max_slowdown) continue;
    if (best == nullptr || p.energy_ratio < best->energy_ratio) best = &p;
  }
  require_state(best != nullptr,
                "recommend_pstate: no P-state satisfies the slowdown cap");
  return best->pstate;
}

}  // namespace hpcem
