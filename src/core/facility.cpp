#include "core/facility.hpp"

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

Facility Facility::archer2() {
  FacilityInventory inventory;   // defaults are the ARCHER2 counts
  NodePowerParams node_params;   // defaults are the ARCHER2 calibration
  DragonflyParams fabric;        // defaults give the 768-switch dragonfly
  WorkloadGenParams gen;
  gen.offered_load = 0.91;       // yields the >90% utilisation of §3.2
  gen.weekend_factor = 0.75;
  return Facility("ARCHER2", inventory, node_params, fabric, gen);
}

Facility Facility::testbed() {
  FacilityInventory inventory;
  inventory.compute_nodes = 512;
  inventory.switches = 64;
  inventory.cabinets = 2;
  inventory.cdus = 1;
  inventory.filesystems = 1;
  DragonflyParams fabric;
  fabric.groups = 8;
  fabric.switches_per_group = 8;
  fabric.nodes_per_switch = 8;
  WorkloadGenParams gen;
  gen.offered_load = 0.91;
  gen.max_job_nodes = 128;
  return Facility("hpcem-testbed", inventory, NodePowerParams{}, fabric,
                  gen);
}

Facility Facility::micro() {
  FacilityInventory inventory;
  inventory.compute_nodes = 64;
  inventory.switches = 16;
  inventory.cabinets = 1;
  inventory.cdus = 1;
  inventory.filesystems = 1;
  DragonflyParams fabric;
  fabric.groups = 4;
  fabric.switches_per_group = 4;
  fabric.nodes_per_switch = 4;
  WorkloadGenParams gen;
  gen.offered_load = 0.91;
  gen.max_job_nodes = 16;
  return Facility("hpcem-micro", inventory, NodePowerParams{}, fabric,
                  gen);
}

Facility::Facility(std::string name, FacilityInventory inventory,
                   NodePowerParams node_params,
                   DragonflyParams fabric_params,
                   WorkloadGenParams gen_params)
    : name_(std::move(name)),
      inventory_(inventory),
      node_params_(node_params),
      gen_params_(gen_params),
      catalog_(AppCatalog::archer2(node_params)) {
  fabric_ = std::make_unique<Dragonfly>(fabric_params,
                                        inventory_.compute_nodes);
  require(fabric_->params().total_switches() == inventory_.switches,
          "Facility: fabric switch count must match the inventory");

  // Fleet-average dynamic profile for whole-machine estimates.
  DynamicPowerProfile fleet;
  fleet.core_w = catalog_.mix_average(
      [](const ApplicationModel& a) { return a.profile().core_w; });
  fleet.uncore_w = catalog_.mix_average(
      [](const ApplicationModel& a) { return a.profile().uncore_w; });
  power_model_ = std::make_unique<FacilityPowerModel>(
      inventory_, node_params_, fleet);
}

FacilitySimConfig Facility::sim_config(std::uint64_t seed) const {
  FacilitySimConfig cfg;
  cfg.inventory = inventory_;
  cfg.node_params = node_params_;
  cfg.gen = gen_params_;
  cfg.seed = seed;
  return cfg;
}

std::unique_ptr<FacilitySimulator> Facility::make_simulator(
    std::uint64_t seed) const {
  return std::make_unique<FacilitySimulator>(catalog_, sim_config(seed));
}

std::vector<HardwareSummaryRow> Facility::hardware_summary() const {
  std::vector<HardwareSummaryRow> rows;
  rows.push_back({"Compute nodes",
                  TextTable::grouped(static_cast<double>(
                      inventory_.compute_nodes)) +
                      " nodes (" +
                      TextTable::grouped(static_cast<double>(
                          inventory_.total_cores())) +
                      " compute cores)"});
  rows.push_back({"Processors per node",
                  "2x AMD EPYC 64-core, 2.25 GHz (2x " +
                      std::to_string(inventory_.cores_per_node / 2) +
                      " cores)"});
  rows.push_back({"Memory per node", "256/512 GB DDR4 RAM"});
  rows.push_back({"Interconnect NICs per node", "2x Slingshot 10"});
  rows.push_back(
      {"Slingshot switches",
       TextTable::grouped(static_cast<double>(inventory_.switches)) +
           " switches, dragonfly topology (" +
           std::to_string(fabric_->params().groups) + " groups x " +
           std::to_string(fabric_->params().switches_per_group) +
           " switches)"});
  rows.push_back({"Storage",
                  "1 PB NetApp, 13.6 PB ClusterStor L300 (HDD), 1 PB "
                  "ClusterStor E1000 (NVMe) — " +
                      std::to_string(inventory_.filesystems) +
                      " file systems"});
  rows.push_back({"Cabinets",
                  std::to_string(inventory_.cabinets) +
                      " compute cabinets, " +
                      std::to_string(inventory_.cdus) + " CDUs"});
  return rows;
}

Power Facility::predicted_cabinet_power(const OperatingPolicy& policy,
                                        double utilisation) const {
  require(utilisation >= 0.0 && utilisation <= 1.0,
          "Facility::predicted_cabinet_power: utilisation in [0,1]");
  // Mix-weighted busy-node draw, honouring the per-application auto-revert.
  const double busy_node_w =
      catalog_.mix_average([&](const ApplicationModel& app) {
        JobSpec probe;  // no user override
        const PState ps = policy.resolve_pstate(app, probe);
        return app.node_draw(policy.bios_mode, ps).w();
      });
  const auto n = static_cast<double>(inventory_.compute_nodes);
  const double busy = n * utilisation;
  const double idle = n - busy;
  Power nodes = Power::watts(busy * busy_node_w) +
                node_params_.idle * idle;
  return power_model_->cabinet_power(nodes, utilisation);
}

double Facility::mean_slowdown(const OperatingPolicy& policy) const {
  const OperatingPolicy base = OperatingPolicy::baseline();
  return catalog_.mix_average([&](const ApplicationModel& app) {
    JobSpec probe;
    const PState ps = policy.resolve_pstate(app, probe);
    const PState ps_base = base.resolve_pstate(app, probe);
    const double t_new = app.time_factor(policy.bios_mode, ps);
    const double t_base = app.time_factor(base.bios_mode, ps_base);
    return t_new / t_base - 1.0;
  });
}

}  // namespace hpcem
