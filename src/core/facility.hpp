// Facility assembly: the ARCHER2 configuration in one place.
//
// `Facility` wires every substrate together — hardware inventory (Table 1),
// node/plant power models (Table 2), the application catalogue, the
// dragonfly fabric and default simulation settings — so that examples,
// tests and reproduction harnesses all start from the same calibrated
// machine and differ only in policy and scenario.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interconnect/dragonfly.hpp"
#include "power/facility_power.hpp"
#include "sim/facility_sim.hpp"
#include "workload/catalog.hpp"
#include "workload/policy.hpp"

namespace hpcem {

/// A row of the Table 1 hardware summary.
struct HardwareSummaryRow {
  std::string item;
  std::string value;
};

/// The modelled machine.
class Facility {
 public:
  /// The ARCHER2 configuration (HPE Cray EX, 5,860 nodes, 750,080 cores).
  static Facility archer2();

  /// A 512-node test machine with the same node physics and catalogue:
  /// 8 dragonfly groups x 8 switches x 8 ports, 2 cabinets.  Simulations
  /// run ~10x faster; per-node behaviour is identical to archer2(), so it
  /// is the right target for experimentation and CI.
  static Facility testbed();

  /// A 64-node micro machine (4 groups x 4 switches x 4 ports, 1 cabinet)
  /// for campaign fan-out benchmarks and fast unit tests: cheap enough
  /// that dozens of shared-nothing simulators run side by side.
  static Facility micro();

  /// Custom machines (smaller test systems, what-if studies).
  Facility(std::string name, FacilityInventory inventory,
           NodePowerParams node_params, DragonflyParams fabric_params,
           WorkloadGenParams gen_params);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FacilityInventory& inventory() const {
    return inventory_;
  }
  [[nodiscard]] const NodePowerParams& node_params() const {
    return node_params_;
  }
  [[nodiscard]] const AppCatalog& catalog() const { return catalog_; }
  [[nodiscard]] const Dragonfly& fabric() const { return *fabric_; }

  /// Aggregate power model with the production-mix average node profile.
  [[nodiscard]] const FacilityPowerModel& power_model() const {
    return *power_model_;
  }

  /// Default simulator configuration for this machine.
  [[nodiscard]] FacilitySimConfig sim_config(std::uint64_t seed) const;

  /// Build a ready-to-run simulator.
  [[nodiscard]] std::unique_ptr<FacilitySimulator> make_simulator(
      std::uint64_t seed) const;

  /// Table 1 reproduction: the hardware summary rows.
  [[nodiscard]] std::vector<HardwareSummaryRow> hardware_summary() const;

  /// Predicted steady-state cabinet power under a policy at a given
  /// utilisation (analytic, no simulation): production-mix-weighted node
  /// draw plus fabric and cabinet overheads.  This is the planning estimate
  /// an operator would use before rolling out a change.
  [[nodiscard]] Power predicted_cabinet_power(const OperatingPolicy& policy,
                                              double utilisation) const;

  /// Mix-average expected slowdown of a policy vs the baseline policy.
  [[nodiscard]] double mean_slowdown(const OperatingPolicy& policy) const;

 private:
  std::string name_;
  FacilityInventory inventory_;
  NodePowerParams node_params_;
  WorkloadGenParams gen_params_;
  AppCatalog catalog_;
  std::unique_ptr<Dragonfly> fabric_;
  std::unique_ptr<FacilityPowerModel> power_model_;
};

}  // namespace hpcem
