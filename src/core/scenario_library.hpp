// The committed scenario library: named spec files under `scenarios/`.
//
// The paper's campaigns (figures 1-3, the serve baselines, the ablation
// sweeps) live as data files, not C++; `load_named_scenario("figure1")`
// is the one sanctioned way code picks them up.  The directory resolves
// at build time to the source tree's `scenarios/` and may be redirected
// at run time with the HPCEM_SCENARIO_DIR environment variable (CI and
// installed trees).
#pragma once

#include <string>
#include <vector>

#include "core/assembly.hpp"

namespace hpcem {

/// The active scenario directory: $HPCEM_SCENARIO_DIR if set, else the
/// compile-time default (the source tree's `scenarios/`).
[[nodiscard]] std::string scenario_library_dir();

/// Load and validate `<scenario_library_dir()>/<name>.json`.
[[nodiscard]] ScenarioSpec load_named_scenario(const std::string& name);

/// Every `*.json` spec file directly under `dir`, sorted by path
/// (campaign manifests live in subdirectories and are not listed).
[[nodiscard]] std::vector<std::string> list_scenario_files(
    const std::string& dir);

}  // namespace hpcem
