#include "core/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

ServiceMetrics compute_service_metrics(
    const std::vector<JobRecord>& records) {
  require(!records.empty(), "compute_service_metrics: no records");
  ServiceMetrics m;
  m.jobs = records.size();

  std::vector<double> waits;
  std::vector<double> slowdowns;
  waits.reserve(records.size());
  slowdowns.reserve(records.size());
  constexpr double kMinRuntimeSec = 600.0;  // bounded-slowdown floor

  for (const auto& r : records) {
    const double nh = r.node_hours();
    m.delivered_node_hours += nh;
    m.node_energy += r.node_energy;
    waits.push_back(r.wait_time().hrs());
    const double runtime = r.runtime().sec();
    const double wait = r.wait_time().sec();
    slowdowns.push_back((wait + runtime) /
                        std::max(runtime, kMinRuntimeSec));
    m.node_hour_share_by_pstate[to_string(r.pstate)] += nh;
  }
  for (auto& [label, nh] : m.node_hour_share_by_pstate) {
    nh /= m.delivered_node_hours;
  }
  m.kwh_per_node_hour = m.node_energy.to_kwh() / m.delivered_node_hours;
  m.wait_hours = summarize(waits);
  m.bounded_slowdown = summarize(slowdowns);
  return m;
}

std::string render_service_metrics(const ServiceMetrics& m) {
  TextTable t({"Metric", "Value"}, {Align::kLeft, Align::kRight});
  t.add_row({"jobs completed",
             TextTable::grouped(static_cast<double>(m.jobs))});
  t.add_row({"delivered node-hours",
             TextTable::grouped(m.delivered_node_hours)});
  t.add_row({"compute-node energy",
             TextTable::num(m.node_energy.to_mwh(), 2) + " MWh"});
  t.add_row({"kWh per delivered node-hour",
             TextTable::num(m.kwh_per_node_hour, 3)});
  t.add_row({"median wait", TextTable::num(m.wait_hours.median, 2) + " h"});
  t.add_row({"p95 wait", TextTable::num(m.wait_hours.p95, 2) + " h"});
  t.add_row({"median bounded slowdown",
             TextTable::num(m.bounded_slowdown.median, 2)});
  t.add_row({"p95 bounded slowdown",
             TextTable::num(m.bounded_slowdown.p95, 2)});
  for (const auto& [label, share] : m.node_hour_share_by_pstate) {
    t.add_row({"node-hours at " + label, TextTable::pct(share, 1)});
  }
  std::ostringstream os;
  os << "Service metrics\n" << t.str();
  return os.str();
}

}  // namespace hpcem
