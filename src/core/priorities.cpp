#include "core/priorities.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

std::string to_string(ServiceObjective o) {
  switch (o) {
    case ServiceObjective::kMaximisePerformance:
      return "maximise performance";
    case ServiceObjective::kMinimiseEnergy:
      return "minimise energy per output";
    case ServiceObjective::kMinimiseEmissions:
      return "minimise emissions per output";
    case ServiceObjective::kMinimiseCost:
      return "minimise cost per output";
    case ServiceObjective::kBalanced:
      return "balanced";
  }
  return "unknown";
}

PriorityAdvisor::PriorityAdvisor(const Facility& facility,
                                 double utilisation, EmbodiedParams embodied)
    : facility_(&facility), utilisation_(utilisation), embodied_(embodied) {
  require(utilisation > 0.0 && utilisation <= 1.0,
          "PriorityAdvisor: utilisation must be in (0, 1]");
}

std::vector<PolicyEvaluation> PriorityAdvisor::evaluate(
    CarbonIntensity intensity, Price price) const {
  require(intensity.gkwh() >= 0.0,
          "PriorityAdvisor::evaluate: intensity must be >= 0");

  OperatingPolicy low_no_revert = OperatingPolicy::low_frequency_default();
  low_no_revert.auto_revert_enabled = false;
  OperatingPolicy floor = low_no_revert;
  floor.default_pstate = pstates::kLow;
  const std::vector<std::pair<std::string, OperatingPolicy>> levers = {
      {"power determinism, turbo (baseline)", OperatingPolicy::baseline()},
      {"performance determinism, turbo",
       OperatingPolicy::performance_determinism()},
      {"2.0 GHz default, >10% revert",
       OperatingPolicy::low_frequency_default()},
      {"2.0 GHz default, no revert", low_no_revert},
      {"1.5 GHz default, no revert", floor},
  };

  const double nodes =
      static_cast<double>(facility_->inventory().compute_nodes);
  // Hourly scope-3 share: the embodied clock ticks whether or not the
  // machine computes, so it divides by wall-clock output.
  const double scope3_g_per_hour =
      embodied_.annual().g() / (24.0 * 365.25);

  std::vector<PolicyEvaluation> out;
  for (const auto& [label, policy] : levers) {
    PolicyEvaluation e;
    e.label = label;
    e.policy = policy;
    e.cabinet = facility_->predicted_cabinet_power(policy, utilisation_);
    e.mean_slowdown = facility_->mean_slowdown(policy);
    e.output_per_hour = nodes * utilisation_ / (1.0 + e.mean_slowdown);
    const Energy hourly = e.cabinet * Duration::hours(1.0);
    e.kwh_per_output = hourly.to_kwh() / e.output_per_hour;
    e.gco2_per_output =
        ((hourly * intensity).g() + scope3_g_per_hour) / e.output_per_hour;
    e.gbp_per_output = (hourly * price).pounds() / e.output_per_hour;
    out.push_back(std::move(e));
  }
  return out;
}

const PolicyEvaluation& PriorityAdvisor::recommend(
    ServiceObjective objective,
    const std::vector<PolicyEvaluation>& evaluations) const {
  require(!evaluations.empty(), "PriorityAdvisor::recommend: no levers");
  auto best_by = [&](auto key) -> const PolicyEvaluation& {
    return *std::min_element(
        evaluations.begin(), evaluations.end(),
        [&](const PolicyEvaluation& a, const PolicyEvaluation& b) {
          return key(a) < key(b);
        });
  };
  switch (objective) {
    case ServiceObjective::kMaximisePerformance:
      return best_by(
          [](const PolicyEvaluation& e) { return -e.output_per_hour; });
    case ServiceObjective::kMinimiseEnergy:
      return best_by(
          [](const PolicyEvaluation& e) { return e.kwh_per_output; });
    case ServiceObjective::kMinimiseEmissions:
      return best_by(
          [](const PolicyEvaluation& e) { return e.gco2_per_output; });
    case ServiceObjective::kMinimiseCost:
      return best_by(
          [](const PolicyEvaluation& e) { return e.gbp_per_output; });
    case ServiceObjective::kBalanced:
      // Energy efficiency with a linear slowdown penalty: a lever must buy
      // each percent of slowdown with at least a percent of energy.
      return best_by([](const PolicyEvaluation& e) {
        return e.kwh_per_output * (1.0 + e.mean_slowdown);
      });
  }
  return evaluations.front();
}

std::string PriorityAdvisor::render(CarbonIntensity intensity,
                                    Price price) const {
  const auto evals = evaluate(intensity, price);
  TextTable t({"Lever", "Cabinet (kW)", "Slowdown", "Output/h",
               "kWh/output", "gCO2/output", "GBP/output"},
              {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
               Align::kRight, Align::kRight, Align::kRight});
  for (const auto& e : evals) {
    t.add_row({e.label, TextTable::grouped(e.cabinet.kw()),
               TextTable::pct(e.mean_slowdown, 1),
               TextTable::grouped(e.output_per_hour),
               TextTable::num(e.kwh_per_output, 3),
               TextTable::num(e.gco2_per_output, 1),
               TextTable::num(e.gbp_per_output, 3)});
  }
  std::ostringstream os;
  os << "Operating levers at " << TextTable::pct(utilisation_, 0)
     << " utilisation, " << intensity.gkwh() << " gCO2/kWh, GBP "
     << price.gbp_kwh() << "/kWh\n"
     << t.str() << '\n';
  for (ServiceObjective o :
       {ServiceObjective::kMaximisePerformance,
        ServiceObjective::kMinimiseEnergy,
        ServiceObjective::kMinimiseEmissions,
        ServiceObjective::kMinimiseCost, ServiceObjective::kBalanced}) {
    os << "  " << to_string(o) << " -> " << recommend(o, evals).label
       << '\n';
  }
  return os.str();
}

}  // namespace hpcem
