// Total cost of ownership: capital vs lifetime electricity.
//
// The paper's introduction: "Historically, the cost of large scale HPC
// systems was dominated by the capital cost with the operational
// electricity costs a small component.  This is no longer true, with
// lifetime electricity costs now matching or even exceeding the capital
// costs ... in many countries."  This module quantifies that claim for
// the modelled facility: lifetime energy spend vs capital outlay, the
// electricity price at which they cross, and what the paper's operational
// savings are worth in money over the service life.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace hpcem {

/// Cost-model parameters.
struct TcoParams {
  /// Capital cost of the machine (ARCHER2's published contract was
  /// GBP ~79M; the default is that order).
  Cost capital = Cost::gbp(79e6);
  double lifetime_years = 6.0;
  /// Mean total facility draw (IT x PUE).
  Power mean_facility_power = Power::megawatts(3.58);
  /// Annual maintenance/support as a fraction of capital.
  double annual_support_fraction = 0.05;
};

/// One row of the price sweep.
struct TcoScenario {
  Price price;
  Cost lifetime_electricity;
  Cost lifetime_support;
  Cost lifetime_total;
  /// Electricity as a share of the lifetime total.
  double electricity_share = 0.0;
};

/// Capital/operational cost model for a facility.
class TcoModel {
 public:
  explicit TcoModel(TcoParams params);

  [[nodiscard]] const TcoParams& params() const { return params_; }

  [[nodiscard]] Energy lifetime_energy() const;
  [[nodiscard]] Cost lifetime_electricity(Price price) const;
  [[nodiscard]] Cost lifetime_support() const;
  [[nodiscard]] Cost lifetime_total(Price price) const;

  /// Electricity price at which lifetime electricity equals capital —
  /// the paper's "matching" point.
  [[nodiscard]] Price breakeven_price() const;

  /// Money saved over the remaining lifetime by a power reduction.
  [[nodiscard]] Cost saving_value(Power reduction, Price price,
                                  double remaining_years) const;

  [[nodiscard]] TcoScenario scenario(Price price) const;
  [[nodiscard]] std::vector<TcoScenario> sweep(
      const std::vector<double>& prices_gbp_per_kwh) const;

  [[nodiscard]] std::string render(
      const std::vector<double>& prices_gbp_per_kwh) const;

 private:
  TcoParams params_;
};

}  // namespace hpcem
