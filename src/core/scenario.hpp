// Canned facility scenarios reproducing the paper's measurement campaigns.
//
// Three timelines, matching Figures 1-3:
//  * Figure 1: Dec 2021 - Apr 2022, baseline policy (power determinism,
//    2.25 GHz + turbo).  Published mean: 3,220 kW.
//  * Figure 2: Apr - May 2022 with the BIOS change to performance
//    determinism rolling out mid-May.  Published means: 3,220 -> 3,010 kW.
//  * Figure 3: Nov - Dec 2022 with the default-frequency change to 2.0 GHz
//    (plus the >10%-slowdown auto-revert) at the start of December.
//    Published means: 3,010 -> 2,530 kW.
//
// Each scenario pre-rolls the simulator for a warm-up period so the machine
// is at steady-state utilisation when the measurement window opens, then
// reports window means and the change point recovered from the telemetry
// itself — the same analysis an operator would run on real cabinet data.
#pragma once

#include <optional>

#include "core/facility.hpp"
#include "telemetry/changepoint.hpp"
#include "telemetry/timeseries.hpp"

namespace hpcem {

/// Result of one scenario run.
struct TimelineResult {
  /// Cabinet power over the measurement window (kW channel).
  TimeSeries cabinet_kw;
  /// Mean utilisation over the window.
  double mean_utilisation = 0.0;
  /// Window mean (whole window).
  double mean_kw = 0.0;
  /// Means before/after the scheduled change (equal to mean_kw when the
  /// scenario has no change).
  double mean_before_kw = 0.0;
  double mean_after_kw = 0.0;
  /// Change point recovered from the data by least-squares segmentation.
  std::optional<TimedStepChange> detected;
  /// When the operational change was actually applied (if any).
  std::optional<SimTime> change_time;
  SimTime window_start;
  SimTime window_end;
};

/// Runs the paper's three measurement campaigns on a facility model.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const Facility& facility,
                          std::uint64_t seed = 0x5EED);

  /// Days of steady-state pre-roll before each measurement window.
  void set_warmup(Duration warmup) { warmup_ = warmup; }

  [[nodiscard]] TimelineResult figure1() const;
  [[nodiscard]] TimelineResult figure2() const;
  [[nodiscard]] TimelineResult figure3() const;

  /// A generic campaign: simulate [start, end) under `before`, switching to
  /// `after` at `change` (pass nullopt for a no-change campaign).
  [[nodiscard]] TimelineResult run_campaign(
      SimTime start, SimTime end, const OperatingPolicy& before,
      std::optional<SimTime> change,
      std::optional<OperatingPolicy> after) const;

  /// §5 conclusions: the three means and the derived savings.
  struct Conclusions {
    double baseline_kw = 0.0;
    double after_bios_kw = 0.0;
    double after_freq_kw = 0.0;
    double bios_saving_kw = 0.0;
    double bios_saving_fraction = 0.0;
    double freq_saving_kw = 0.0;
    double freq_saving_fraction = 0.0;  ///< vs the original baseline
    double total_saving_kw = 0.0;
    double total_saving_fraction = 0.0;
  };
  [[nodiscard]] Conclusions conclusions() const;

 private:
  const Facility* facility_;
  std::uint64_t seed_;
  Duration warmup_ = Duration::days(25.0);
};

}  // namespace hpcem
