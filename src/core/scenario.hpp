// Canned facility scenarios reproducing the paper's measurement campaigns.
//
// Three timelines, matching Figures 1-3:
//  * Figure 1: Dec 2021 - Apr 2022, baseline policy (power determinism,
//    2.25 GHz + turbo).  Published mean: 3,220 kW.
//  * Figure 2: Apr - May 2022 with the BIOS change to performance
//    determinism rolling out mid-May.  Published means: 3,220 -> 3,010 kW.
//  * Figure 3: Nov - Dec 2022 with the default-frequency change to 2.0 GHz
//    (plus the >10%-slowdown auto-revert) at the start of December.
//    Published means: 3,010 -> 2,530 kW.
//
// `ScenarioRunner` is a thin convenience facade over the declarative
// assembly layer (core/assembly.hpp): each campaign is a `ScenarioSpec`
// bound to this runner's facility, seed and warm-up, assembled and analysed
// by `FacilityAssembly`.  `TimelineResult` lives in assembly.hpp.
#pragma once

#include <optional>

#include "core/assembly.hpp"
#include "core/facility.hpp"

namespace hpcem {

/// Runs the paper's three measurement campaigns on a facility model.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const Facility& facility,
                          std::uint64_t seed = 0x5EED);

  /// Days of steady-state pre-roll before each measurement window.
  void set_warmup(Duration warmup) { warmup_ = warmup; }

  [[nodiscard]] TimelineResult figure1() const;
  [[nodiscard]] TimelineResult figure2() const;
  [[nodiscard]] TimelineResult figure3() const;

  /// A generic campaign: simulate [start, end) under `before`, switching to
  /// `after` at `change` (pass nullopt for a no-change campaign).
  [[nodiscard]] TimelineResult run_campaign(
      SimTime start, SimTime end, const OperatingPolicy& before,
      std::optional<SimTime> change,
      std::optional<OperatingPolicy> after) const;

  /// §5 conclusions: the three means and the derived savings.
  struct Conclusions {
    double baseline_kw = 0.0;
    double after_bios_kw = 0.0;
    double after_freq_kw = 0.0;
    double bios_saving_kw = 0.0;
    double bios_saving_fraction = 0.0;
    double freq_saving_kw = 0.0;
    double freq_saving_fraction = 0.0;  ///< vs the original baseline
    double total_saving_kw = 0.0;
    double total_saving_fraction = 0.0;
  };
  [[nodiscard]] Conclusions conclusions() const;

 private:
  /// Bind a canned spec to this runner's facility/seed/warmup and run it.
  [[nodiscard]] TimelineResult run_spec(ScenarioSpec spec) const;

  const Facility* facility_;
  std::uint64_t seed_;
  Duration warmup_ = Duration::days(25.0);
};

}  // namespace hpcem
