// Shared run-artifact layer: one structured, machine-readable record of a
// run, emitted identically by every bench and tool.
//
// The paper's analysis is a comparison exercise — sim vs published, sim vs
// real telemetry, policy A vs policy B — and comparisons need artifacts
// with one schema, not N hand-rolled text formats.  A `RunArtifact`
// captures what a run *was* (scenario name, machine, measurement window),
// what it *measured* (per-channel streaming aggregates: count, mean,
// min/max, trapezoidal time integral) and what it *concluded* (headline
// numbers, change points), serialized as deterministic JSON plus a
// long-format CSV.  Two artifacts with the same schema diff cleanly, which
// makes "did the replay match the meter?" a file diff.
//
// Producers: `FacilityAssembly` / the figure benches (simulation runs),
// `CampaignRunner` results via `make_campaign_artifacts`, `hpcem_replay`
// (trace replays) and `hpcem_analyze` (real telemetry CSVs).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/assembly.hpp"
#include "sim/campaign.hpp"
#include "telemetry/recorder.hpp"
#include "util/json.hpp"

namespace hpcem {

/// Streaming aggregate of one telemetry channel: the exact online
/// accumulators a TimeSeries maintains at append time.
struct ChannelAggregate {
  std::string name;
  std::string unit;
  /// Samples ever appended (survives retention decimation).
  std::size_t samples = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Trapezoidal time integral, unit-seconds (kW channel -> kW s).
  double integral = 0.0;
  SimTime first_time{};
  SimTime last_time{};
  /// v3: the channel's retained raw samples, time-ordered.  Optional —
  /// empty means "aggregates only" (the v1/v2 shape).  Carrying the series
  /// lets the serving layer (src/serve) answer sub-window and what-if
  /// queries without re-running the producer.
  std::vector<Sample> series;
};

/// One operational level shift: scheduled (the known rollout instant) or
/// detected (recovered from the data by segmentation).
struct ArtifactChangePoint {
  SimTime at{};
  double mean_before_kw = 0.0;
  double mean_after_kw = 0.0;
  /// True when recovered from the telemetry alone, false for the
  /// scheduled rollout record.
  bool detected = false;
};

/// The headline numbers every figure/campaign reports.
struct RunHeadline {
  double mean_kw = 0.0;
  double mean_before_kw = 0.0;
  double mean_after_kw = 0.0;
  double mean_utilisation = 0.0;
  double window_energy_kwh = 0.0;
  double completed_jobs = 0.0;  ///< replicate mean for campaigns
};

/// Structured record of one run (or one merged campaign scenario).
///
/// Schema history:
///   v1 — scenario/source/machine/window, headline, change points, channel
///        aggregates.
///   v2 — adds the optional "obs" member: an hpcem.obs_metrics document
///        (see obs/metrics_export.hpp) with the run's runtime counters,
///        gauges and histograms.  v1 documents still parse (obs stays
///        null); v2 readers must treat a missing "obs" as "not collected".
///   v3 — channel objects may carry an optional "series" member (parallel
///        "times"/"values" arrays of the retained raw samples) so the
///        serving layer can answer windowed and what-if queries.  v1/v2
///        documents still parse (series stays empty); readers must treat a
///        missing "series" as "aggregates only".
struct RunArtifact {
  static constexpr int kSchemaVersion = 3;
  static constexpr int kMinSchemaVersion = 1;

  std::string scenario = "run";
  /// Producer: "simulation" | "campaign" | "trace-replay" | "telemetry-csv".
  std::string source = "simulation";
  /// Machine model label ("archer2", ...); empty when not applicable.
  std::string machine;
  SimTime window_start{};
  SimTime window_end{};
  /// Merged replicate count (1 for single runs).
  std::size_t replicates = 1;

  RunHeadline headline;
  std::vector<ArtifactChangePoint> change_points;
  /// Whole-run channel aggregates (empty for merged campaign artifacts,
  /// whose per-channel streams live in the per-replicate runs).
  std::vector<ChannelAggregate> channels;
  /// Runtime observability metrics (hpcem.obs_metrics document), or null
  /// when collection was off / the document predates v2.
  JsonValue obs;

  /// Deterministic JSON (insertion-ordered members, shortest round-trip
  /// numbers): equal artifacts serialize to equal bytes.
  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] std::string to_json_text() const;
  /// Long-format CSV of the channel aggregates:
  /// channel,unit,samples,mean,min,max,integral,first_time,last_time.
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] static RunArtifact from_json(const JsonValue& v);
  [[nodiscard]] static RunArtifact from_json_text(std::string_view text);
};

/// Exact streaming aggregate of one series.  With `include_series` the
/// aggregate also carries the retained raw samples (the v3 "series"
/// member), making the artifact ingestible for sub-window serving queries.
[[nodiscard]] ChannelAggregate aggregate_channel(const std::string& name,
                                                 const TimeSeries& series,
                                                 bool include_series = false);

/// Aggregates of every channel in a recorder, in name order.
[[nodiscard]] std::vector<ChannelAggregate> aggregate_channels(
    const Recorder& recorder, bool include_series = false);

/// Human-readable machine label for a spec's machine model.
[[nodiscard]] std::string machine_label(MachineModel machine);

/// The process's merged obs metrics as an artifact "obs" member: an
/// hpcem.obs_metrics document when collection is enabled, null otherwise.
/// Producers call this once, at artifact-assembly time.
[[nodiscard]] JsonValue collected_obs_metrics();

/// Artifact of a finished single run: headline and change points from the
/// window analysis, channel aggregates over the whole simulated span
/// (warmup included — the aggregates describe the stream, the headline
/// describes the window).
[[nodiscard]] RunArtifact make_run_artifact(const FacilitySimulator& sim,
                                            const ScenarioSpec& spec,
                                            const TimelineResult& result);

/// Artifact of one merged campaign scenario (replicate-mean headline, no
/// per-channel streams).
[[nodiscard]] RunArtifact make_run_artifact(const ScenarioOutcome& outcome,
                                            const ScenarioSpec& spec);

/// One artifact per campaign scenario, in campaign order.  `specs` must be
/// the spec list the campaign ran (matched by index).
[[nodiscard]] std::vector<RunArtifact> make_campaign_artifacts(
    const CampaignResult& result, const std::vector<ScenarioSpec>& specs);

/// Run an assembled spec end-to-end (simulate, analyse, package): the
/// one-call producer the figure benches use.
[[nodiscard]] RunArtifact run_spec_artifact(const FacilityAssembly& assembly);
[[nodiscard]] RunArtifact run_spec_artifact(const FacilityAssembly& assembly,
                                            std::uint64_t seed);

/// Write `<basename>.artifact.json` (and, when the artifact carries channel
/// aggregates, `<basename>.aggregates.csv`); returns the JSON path.
/// Throws ParseError on I/O failure.
std::string write_artifact_files(const RunArtifact& artifact,
                                 const std::string& basename);

}  // namespace hpcem
