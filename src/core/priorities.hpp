// Service-priority decision support (paper §5).
//
// "To make correct choices about service operations ... services must have
// a clear understanding of their priorities.  For example, is the goal to
// maximise energy efficiency, to maximise emissions efficiency, to
// minimise running costs, to maximise application performance, or to
// achieve a balance ...?"  This module turns that paragraph into code: it
// evaluates the standard operating-lever set against each objective and
// recommends a policy, making the §2 regime logic actionable — on a clean
// grid the recommendation flips from energy-saving to output-maximising
// exactly as the paper argues.
#pragma once

#include <string>
#include <vector>

#include "core/emissions.hpp"
#include "core/facility.hpp"
#include "grid/carbon.hpp"

namespace hpcem {

/// What the service is optimising for.
enum class ServiceObjective {
  kMaximisePerformance,      ///< most science output per wall-clock hour
  kMinimiseEnergy,           ///< least kWh per unit of science output
  kMinimiseEmissions,        ///< least gCO2e per unit (incl. scope 3)
  kMinimiseCost,             ///< least GBP per unit
  kBalanced,                 ///< energy efficiency, lightly penalising slowdown
};

[[nodiscard]] std::string to_string(ServiceObjective o);

/// One operating lever evaluated at fixed utilisation.
struct PolicyEvaluation {
  std::string label;
  OperatingPolicy policy;
  Power cabinet;             ///< predicted steady-state cabinet draw
  double mean_slowdown = 0;  ///< mix-average vs the baseline policy
  /// Reference node-hours of science delivered per wall-clock hour
  /// (slowdown discounts delivered node-hours into reference output).
  double output_per_hour = 0;
  double kwh_per_output = 0;     ///< energy efficiency (lower better)
  double gco2_per_output = 0;    ///< emissions efficiency incl. scope 3
  double gbp_per_output = 0;     ///< cost efficiency
};

/// Evaluates the lever set and recommends per objective.
class PriorityAdvisor {
 public:
  /// `embodied`: amortised scope-3 (for the emissions objective).
  PriorityAdvisor(const Facility& facility, double utilisation,
                  EmbodiedParams embodied = {});

  /// Evaluate the standard lever set (baseline, performance determinism,
  /// 2.0 GHz with revert, 2.0 GHz without revert, 1.5 GHz floor) under a
  /// grid condition.
  [[nodiscard]] std::vector<PolicyEvaluation> evaluate(
      CarbonIntensity intensity, Price price) const;

  /// The winning lever for an objective under a grid condition.
  [[nodiscard]] const PolicyEvaluation& recommend(
      ServiceObjective objective,
      const std::vector<PolicyEvaluation>& evaluations) const;

  /// Render the evaluation matrix plus per-objective recommendations.
  [[nodiscard]] std::string render(CarbonIntensity intensity,
                                   Price price) const;

 private:
  const Facility* facility_;
  double utilisation_;
  EmbodiedParams embodied_;
};

}  // namespace hpcem
