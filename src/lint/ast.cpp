#include "lint/ast.hpp"

#include <cctype>
#include <map>

namespace hpcem::lint {
namespace {

using Tokens = std::vector<Token>;

constexpr std::size_t kNpos = FileAst::npos;

/// Index of the next non-comment, non-preprocessor token after `i`;
/// toks.size() when none remains.
std::size_t next_code(const Tokens& toks, std::size_t i) {
  ++i;
  while (i < toks.size() && (toks[i].kind == TokenKind::kComment ||
                             toks[i].kind == TokenKind::kPreprocessor)) {
    ++i;
  }
  return i;
}

/// Index of the previous non-comment, non-preprocessor token before `i`;
/// toks.size() when none exists.
std::size_t prev_code(const Tokens& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (toks[i].kind != TokenKind::kComment &&
        toks[i].kind != TokenKind::kPreprocessor) {
      return i;
    }
  }
  return toks.size();
}

bool is_any_of(std::string_view text, std::initializer_list<const char*> set) {
  for (const char* s : set) {
    if (text == s) return true;
  }
  return false;
}

/// Keywords that can never start a declaration statement.
bool is_statement_keyword(std::string_view id) {
  return is_any_of(
      id, {"if",        "else",     "for",      "while",    "do",
           "switch",    "case",     "default",  "return",   "break",
           "continue",  "goto",     "try",      "catch",    "throw",
           "using",     "typedef",  "template", "public",   "private",
           "protected", "friend",   "namespace", "new",     "delete",
           "co_return", "co_await", "co_yield", "operator", "sizeof",
           "extern",    "asm",      "static_assert"});
}

/// Identifiers that cannot be a declared variable's *name* (so `const int;`
/// or a trailing qualifier never masquerades as a declarator).
bool is_reserved_name(std::string_view id) {
  return is_any_of(
      id, {"const",    "constexpr", "volatile", "mutable",  "static",
           "inline",   "auto",      "void",     "bool",     "char",
           "int",      "float",     "double",   "unsigned", "signed",
           "long",     "short",     "noexcept", "override", "final",
           "this",     "nullptr",   "true",     "false",    "class",
           "struct",   "union",     "enum",     "typename", "decltype",
           "thread_local"});
}

/// Keywords rejected as the callee of a function *definition* header.
bool is_non_function_keyword(std::string_view id) {
  return is_statement_keyword(id) ||
         is_any_of(id, {"noexcept", "decltype", "alignof", "alignas",
                        "defined", "assert", "requires"});
}

/// Result of running the declaration-head recogniser over a token slice.
struct DeclHead {
  bool ok = false;
  std::size_t name_token = 0;  ///< absolute token index of the declarator
  std::size_t head_end = 0;    ///< first token past the consumed head
};

/// Recognise `type-tokens name` at the front of [begin, end): a maximal run
/// of identifiers / `::` / balanced `<...>` / `*` / `&` / `&&`, whose last
/// identifier is the declared name, with at least one substantive type
/// token before it.  The token at head_end (if any) is the initializer
/// opener (`=`, `(`, `{`) or separator the caller validates.
DeclHead parse_decl_head(const Tokens& toks, std::size_t begin,
                         std::size_t end) {
  DeclHead head;
  std::size_t last_ident = kNpos;
  std::size_t ident_count = 0;
  bool substantive_before_name = false;
  std::size_t i = begin;
  // Skip leading attributes: [[nodiscard]] etc.
  while (i < end && toks[i].is_punct("[") && i + 1 < end &&
         toks[i + 1].is_punct("[")) {
    int depth = 0;
    do {
      if (toks[i].is_punct("[")) ++depth;
      if (toks[i].is_punct("]")) --depth;
      i = next_code(toks, i);
    } while (i < end && depth > 0);
  }
  const std::size_t first = i;
  while (i < end) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kComment || t.kind == TokenKind::kPreprocessor) {
      ++i;
      continue;
    }
    if (t.kind == TokenKind::kIdentifier) {
      if (i == first && is_statement_keyword(t.text)) return head;
      if (last_ident != kNpos) substantive_before_name = true;
      last_ident = i;
      ++ident_count;
      i = next_code(toks, i);
      continue;
    }
    if (t.is_punct("::")) {
      i = next_code(toks, i);
      continue;
    }
    if (t.is_punct("<")) {
      // Balanced template argument list; bail (not a declaration) when the
      // angles do not close inside the slice — it was a comparison.
      int depth = 1;
      std::size_t j = next_code(toks, i);
      while (j < end && depth > 0) {
        if (toks[j].is_punct("<")) ++depth;
        if (toks[j].is_punct(">")) --depth;
        if (toks[j].is_punct(";") || toks[j].is_punct("{")) return head;
        j = next_code(toks, j);
      }
      if (depth != 0) return head;
      if (last_ident != kNpos) substantive_before_name = true;
      i = j;
      continue;
    }
    if (t.is_punct("*") || t.is_punct("&") || t.is_punct("&&")) {
      if (last_ident != kNpos) substantive_before_name = true;
      i = next_code(toks, i);
      continue;
    }
    break;  // head ends at the first token outside the type grammar
  }
  if (last_ident == kNpos || !substantive_before_name) return head;
  if (is_reserved_name(toks[last_ident].text)) return head;
  head.ok = true;
  head.name_token = last_ident;
  head.head_end = i;
  return head;
}

/// Space-joined spelling of the non-comment tokens in [begin, end),
/// excluding index `skip`.
std::string join_tokens(const Tokens& toks, std::size_t begin, std::size_t end,
                        std::size_t skip) {
  std::string out;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (i == skip) continue;
    if (toks[i].kind == TokenKind::kComment ||
        toks[i].kind == TokenKind::kPreprocessor) {
      continue;
    }
    if (!out.empty()) out += ' ';
    out += toks[i].text;
  }
  return out;
}

/// Parse one parameter slice [begin, end) (no top-level commas) into a
/// VarDecl.  Unnamed/unparseable parameters yield an empty name so call
/// arguments keep their positional alignment.
VarDecl parse_param(const Tokens& toks, std::size_t begin, std::size_t end) {
  VarDecl param;
  param.is_param = true;
  // Cut a default argument off at the top-level '='.
  std::size_t cut = end;
  int depth = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = toks[i];
    if (t.is_punct("(") || t.is_punct("{") || t.is_punct("[")) ++depth;
    if (t.is_punct(")") || t.is_punct("}") || t.is_punct("]")) --depth;
    if (depth == 0 && t.is_punct("=")) {
      cut = i;
      break;
    }
  }
  const DeclHead head = parse_decl_head(toks, begin, cut);
  if (head.ok && head.head_end >= cut) {
    param.name = toks[head.name_token].text;
    param.name_token = head.name_token;
    param.type_text = join_tokens(toks, begin, cut, head.name_token);
  } else {
    param.type_text = join_tokens(toks, begin, cut, kNpos);
  }
  return param;
}

/// A function-definition candidate recognised at an open paren.
struct FunctionCandidate {
  bool ok = false;
  FunctionDef def;
  std::size_t body_token = 0;  ///< index of the body's '{'
};

/// Try to read `name ( params ) [qualifiers] [-> type] [: init-list] {`
/// around the open paren at `open`.  Only called outside function bodies.
FunctionCandidate parse_function_header(const Tokens& toks, std::size_t open) {
  FunctionCandidate cand;
  const std::size_t name_idx = prev_code(toks, open);
  if (name_idx >= toks.size() ||
      toks[name_idx].kind != TokenKind::kIdentifier ||
      is_non_function_keyword(toks[name_idx].text)) {
    return cand;
  }
  // Reject conversion operators (`operator bool(`).
  const std::size_t before_name = prev_code(toks, name_idx);
  if (before_name < toks.size() &&
      toks[before_name].is_identifier("operator")) {
    return cand;
  }

  // Qualified-name walk: `A::B::name`.
  std::string qualified = toks[name_idx].text;
  std::string class_name;
  std::size_t q = name_idx;
  while (true) {
    const std::size_t colon = prev_code(toks, q);
    if (colon >= toks.size() || !toks[colon].is_punct("::")) break;
    const std::size_t seg = prev_code(toks, colon);
    if (seg >= toks.size() || toks[seg].kind != TokenKind::kIdentifier) break;
    if (class_name.empty()) class_name = toks[seg].text;
    qualified = toks[seg].text + "::" + qualified;
    q = seg;
  }
  std::string fn_name = toks[name_idx].text;
  const std::size_t tilde = prev_code(toks, q);
  if (tilde < toks.size() && toks[tilde].is_punct("~")) {
    fn_name = "~" + fn_name;
    qualified = "~" + qualified;
  }

  // Match the parameter list's parens.
  int depth = 1;
  std::size_t close = open;
  while (depth > 0) {
    close = next_code(toks, close);
    if (close >= toks.size()) return cand;
    if (toks[close].is_punct("(")) ++depth;
    if (toks[close].is_punct(")")) --depth;
  }

  // Walk the post-parameter grammar to the body '{' (or bail).  Bounded so
  // a pathological header cannot stall the pass.
  std::size_t j = next_code(toks, close);
  std::size_t body = kNpos;
  for (std::size_t steps = 0; j < toks.size() && steps < 512; ++steps) {
    const Token& t = toks[j];
    if (t.kind == TokenKind::kIdentifier &&
        is_any_of(t.text, {"const", "override", "final", "mutable", "try"})) {
      j = next_code(toks, j);
      continue;
    }
    if (t.is_identifier("noexcept")) {
      j = next_code(toks, j);
      if (j < toks.size() && toks[j].is_punct("(")) {
        int d = 1;
        while (d > 0) {
          j = next_code(toks, j);
          if (j >= toks.size()) return cand;
          if (toks[j].is_punct("(")) ++d;
          if (toks[j].is_punct(")")) --d;
        }
        j = next_code(toks, j);
      }
      continue;
    }
    if (t.is_punct("&") || t.is_punct("&&")) {
      j = next_code(toks, j);
      continue;
    }
    if (t.is_punct("->")) {  // trailing return type
      j = next_code(toks, j);
      int angle = 0;
      while (j < toks.size()) {
        const Token& r = toks[j];
        if (r.is_punct("<")) ++angle;
        if (r.is_punct(">")) --angle;
        if (angle == 0 && (r.is_punct("{") || r.is_punct(";"))) break;
        if (r.is_punct("}")) return cand;
        j = next_code(toks, j);
      }
      continue;
    }
    if (t.is_punct(":")) {  // constructor member-init list
      j = next_code(toks, j);
      while (j < toks.size()) {
        // member name (possibly qualified/templated base)
        while (j < toks.size() &&
               (toks[j].kind == TokenKind::kIdentifier ||
                toks[j].is_punct("::"))) {
          j = next_code(toks, j);
        }
        if (j < toks.size() && toks[j].is_punct("<")) {
          int d = 1;
          while (d > 0) {
            j = next_code(toks, j);
            if (j >= toks.size()) return cand;
            if (toks[j].is_punct("<")) ++d;
            if (toks[j].is_punct(">")) --d;
          }
          j = next_code(toks, j);
        }
        if (j >= toks.size() ||
            (!toks[j].is_punct("(") && !toks[j].is_punct("{"))) {
          return cand;
        }
        const bool paren = toks[j].is_punct("(");
        int d = 1;
        while (d > 0) {
          j = next_code(toks, j);
          if (j >= toks.size()) return cand;
          if (toks[j].is_punct(paren ? "(" : "{")) ++d;
          if (toks[j].is_punct(paren ? ")" : "}")) --d;
        }
        j = next_code(toks, j);
        if (j < toks.size() && toks[j].is_punct(",")) {
          j = next_code(toks, j);
          continue;
        }
        break;
      }
      continue;  // expect the body '{' next
    }
    if (t.is_punct("[")) {  // attribute
      int d = 0;
      do {
        if (toks[j].is_punct("[")) ++d;
        if (toks[j].is_punct("]")) --d;
        j = next_code(toks, j);
        if (j >= toks.size()) return cand;
      } while (d > 0);
      continue;
    }
    if (t.is_punct("{")) {
      body = j;
      break;
    }
    return cand;  // ';', '=', ',' ... — a declaration, not a definition
  }
  if (body == kNpos) return cand;

  // Split the parameter list on top-level commas.
  std::vector<VarDecl> params;
  std::size_t start = next_code(toks, open);
  int pdepth = 0;
  int angle = 0;
  for (std::size_t k = start; k <= close; ++k) {
    const Token& t = toks[k];
    const bool at_end = k == close;
    if (!at_end) {
      if (t.is_punct("(") || t.is_punct("{") || t.is_punct("[")) ++pdepth;
      if (t.is_punct(")") || t.is_punct("}") || t.is_punct("]")) --pdepth;
      if (t.is_punct("<")) ++angle;
      if (t.is_punct(">") && angle > 0) --angle;
    }
    if (at_end || (pdepth == 0 && angle == 0 && t.is_punct(","))) {
      if (k > start) params.push_back(parse_param(toks, start, k));
      start = k + 1;
    }
  }
  if (params.size() == 1 && params[0].name.empty() &&
      params[0].type_text == "void") {
    params.clear();
  }

  cand.ok = true;
  cand.def.name = std::move(fn_name);
  cand.def.qualified_name = std::move(qualified);
  cand.def.class_name = std::move(class_name);
  cand.def.name_token = name_idx;
  cand.def.params_end = close;
  cand.def.params = std::move(params);
  cand.body_token = body;
  return cand;
}

/// A `// hpcem: guarded_by(<mutex>)` annotation found in a comment.
struct Annotation {
  std::size_t line = 0;
  std::string mutex_name;
  std::string raw;
  bool bound = false;
};

std::vector<Annotation> collect_annotations(const Tokens& toks) {
  std::vector<Annotation> out;
  constexpr std::string_view kMarker = "hpcem: guarded_by(";
  for (const Token& t : toks) {
    if (t.kind != TokenKind::kComment) continue;
    const std::size_t at = t.text.find(kMarker);
    if (at == std::string::npos) continue;
    const std::size_t open = at + kMarker.size();
    const std::size_t close = t.text.find(')', open);
    if (close == std::string::npos) continue;
    const std::string name = t.text.substr(open, close - open);
    // Require a plain identifier: prose mentioning the syntax (with a
    // `<mutex>` placeholder, say) is not an annotation.
    if (name.empty() ||
        (!std::isalpha(static_cast<unsigned char>(name[0])) &&
         name[0] != '_')) {
      continue;
    }
    bool ident = true;
    for (const char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        ident = false;
        break;
      }
    }
    if (!ident) continue;
    Annotation a;
    a.line = t.line;
    a.mutex_name = name;
    a.raw = t.text;
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace

std::size_t FileAst::scope_at(std::size_t i) const {
  std::size_t best = 0;
  for (std::size_t s = 1; s < scopes.size(); ++s) {
    const Scope& sc = scopes[s];
    if (sc.begin_token <= i && i <= sc.end_token &&
        sc.begin_token >= scopes[best].begin_token) {
      best = s;
    }
  }
  return best;
}

std::size_t FileAst::enclosing_function_scope(std::size_t scope_index) const {
  std::size_t s = scope_index;
  while (s < scopes.size()) {
    if (scopes[s].kind == ScopeKind::kFunction) return s;
    if (s == 0) break;  // reached the file scope
    s = scopes[s].parent;
  }
  return npos;
}

const FunctionDef* FileAst::function_of_scope(std::size_t scope_index) const {
  for (const FunctionDef& f : functions) {
    if (f.body_scope == scope_index) return &f;
  }
  return nullptr;
}

const VarDecl* FileAst::lookup_var(const FunctionDef& function,
                                   std::string_view name) const {
  for (const VarDecl& p : function.params) {
    if (!p.name.empty() && p.name == name) return &p;
  }
  for (const VarDecl& l : locals) {
    if (l.name != name) continue;
    // In scope iff the local's scope chain passes through the body scope.
    std::size_t s = l.scope;
    while (true) {
      if (s == function.body_scope) return &l;
      if (s == 0) break;
      s = scopes[s].parent;
    }
  }
  return nullptr;
}

FileAst parse_ast(const std::vector<Token>& toks) {
  FileAst ast;
  Scope file_scope;
  file_scope.kind = ScopeKind::kFile;
  file_scope.parent = 0;
  file_scope.begin_token = 0;
  file_scope.end_token = toks.size();
  ast.scopes.push_back(file_scope);

  std::vector<Annotation> annotations = collect_annotations(toks);
  // body '{' token index -> index into ast.functions
  std::map<std::size_t, std::size_t> function_body_at;

  std::vector<std::size_t> stack{0};
  std::size_t stmt_start = 0;

  auto current = [&]() -> const Scope& { return ast.scopes[stack.back()]; };
  auto in_function = [&] {
    return ast.enclosing_function_scope(stack.back()) != FileAst::npos;
  };

  // Bind a field declaration ending at `semi` (class scope only) to a
  // guarded_by annotation on the declaration's first line, its name's
  // line, or the line directly above either (multi-line declarations put
  // the name several lines below the type).
  auto try_field = [&](std::size_t semi) {
    const DeclHead head = parse_decl_head(toks, stmt_start, semi);
    if (!head.ok) return;
    const Token& brk =
        head.head_end < semi ? toks[head.head_end] : toks[semi];
    if (!brk.is_punct("=") && !brk.is_punct("{") && !brk.is_punct(";")) {
      return;  // method declarations break at '(' and are not fields
    }
    const std::size_t line = toks[head.name_token].line;
    std::size_t decl_first = stmt_start;
    while (decl_first < semi &&
           (toks[decl_first].kind == TokenKind::kComment ||
            toks[decl_first].kind == TokenKind::kPreprocessor)) {
      ++decl_first;
    }
    const std::size_t first_line =
        decl_first < semi ? toks[decl_first].line : line;
    for (Annotation& a : annotations) {
      if (a.bound) continue;
      const bool near = a.line == line || a.line + 1 == line ||
                        a.line == first_line || a.line + 1 == first_line;
      if (!near) continue;
      GuardedField f;
      f.name = toks[head.name_token].text;
      f.class_name = current().name;
      f.mutex_name = a.mutex_name;
      f.name_token = head.name_token;
      f.line = line;
      ast.guarded_fields.push_back(std::move(f));
      a.bound = true;
      return;
    }
  };

  auto try_local = [&](std::size_t boundary) {
    const DeclHead head = parse_decl_head(toks, stmt_start, boundary);
    if (!head.ok) return;
    const bool at_slice_end = head.head_end >= boundary;
    if (!at_slice_end) {
      const Token& brk = toks[head.head_end];
      if (!brk.is_punct("=") && !brk.is_punct("(") && !brk.is_punct("{") &&
          !brk.is_punct(",")) {
        return;
      }
    }
    VarDecl local;
    local.name = toks[head.name_token].text;
    local.type_text = join_tokens(toks, stmt_start, head.name_token, kNpos);
    local.name_token = head.name_token;
    local.scope = stack.back();
    ast.locals.push_back(std::move(local));
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kComment || t.kind == TokenKind::kPreprocessor) {
      continue;
    }

    if (t.is_punct("{")) {
      if (current().kind == ScopeKind::kClass) {
        // `struct S { int x{0}; };` — brace init is part of the statement.
      } else if (in_function()) {
        try_local(i);
      }
      Scope sc;
      sc.begin_token = i;
      sc.end_token = toks.size();
      sc.parent = stack.back();
      const auto fb = function_body_at.find(i);
      if (fb != function_body_at.end()) {
        sc.kind = ScopeKind::kFunction;
        sc.name = ast.functions[fb->second].name;
      } else {
        // Classify by the declaration window behind the brace.
        std::size_t first = toks.size();
        std::size_t back = i;
        for (std::size_t steps = 0; steps < 64; ++steps) {
          const std::size_t p = prev_code(toks, back);
          if (p >= toks.size()) break;
          const Token& bt = toks[p];
          if (bt.kind == TokenKind::kPunct &&
              is_any_of(bt.text,
                        {";", "{", "}", "(", ")", "=", "[", "]", ","})) {
            break;
          }
          first = p;
          back = p;
        }
        // Find the declaring keyword anywhere in the window, not just at
        // its start: access specifiers (`private: struct S {`) and
        // template headers (`template <typename T> struct S {`) legally
        // precede it.
        std::size_t kw = toks.size();
        for (std::size_t p = first; p < i && p < toks.size();
             p = next_code(toks, p)) {
          if (toks[p].is_identifier("namespace") ||
              toks[p].is_identifier("class") ||
              toks[p].is_identifier("struct") ||
              toks[p].is_identifier("union")) {
            kw = p;
            break;
          }
        }
        if (kw < toks.size() && toks[kw].is_identifier("namespace")) {
          sc.kind = ScopeKind::kNamespace;
          std::string name;
          for (std::size_t p = next_code(toks, kw); p < i;
               p = next_code(toks, p)) {
            if (toks[p].kind == TokenKind::kIdentifier ||
                toks[p].is_punct("::")) {
              name += toks[p].text;
            }
          }
          sc.name = std::move(name);
        } else if (kw < toks.size()) {
          sc.kind = ScopeKind::kClass;
          const std::size_t n = next_code(toks, kw);
          if (n < i && toks[n].kind == TokenKind::kIdentifier) {
            sc.name = toks[n].text;
          }
        } else {
          sc.kind = ScopeKind::kBlock;
        }
      }
      ast.scopes.push_back(sc);
      const std::size_t scope_idx = ast.scopes.size() - 1;
      stack.push_back(scope_idx);
      if (fb != function_body_at.end()) {
        ast.functions[fb->second].body_scope = scope_idx;
      }
      stmt_start = i + 1;
      continue;
    }

    if (t.is_punct("}")) {
      if (stack.size() > 1) {
        ast.scopes[stack.back()].end_token = i;
        stack.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }

    if (t.is_punct(";")) {
      if (current().kind == ScopeKind::kClass) {
        try_field(i);
      } else if (in_function()) {
        try_local(i);
      }
      stmt_start = i + 1;
      continue;
    }

    // Access specifiers (`public:`) would otherwise glue onto the next
    // field's statement and make its head start with a keyword.
    if (t.is_punct(":") && current().kind == ScopeKind::kClass) {
      stmt_start = i + 1;
      continue;
    }

    if (t.is_punct("(") && current().kind != ScopeKind::kFunction &&
        current().kind != ScopeKind::kBlock) {
      FunctionCandidate cand = parse_function_header(toks, i);
      if (cand.ok && !function_body_at.contains(cand.body_token)) {
        if (cand.def.class_name.empty() &&
            current().kind == ScopeKind::kClass) {
          cand.def.class_name = current().name;
          cand.def.qualified_name =
              current().name + "::" + cand.def.qualified_name;
        }
        ast.functions.push_back(std::move(cand.def));
        function_body_at[cand.body_token] = ast.functions.size() - 1;
      }
    }
  }

  for (Annotation& a : annotations) {
    if (!a.bound) {
      ast.unbound_annotations.emplace_back(a.line, a.raw);
    }
  }
  return ast;
}

}  // namespace hpcem::lint
