// Per-function unit dataflow for the units-flow lint rule.
//
// The paper's accounting arithmetic lives in suffix-named quantities
// (`power_kw`, `energy_kwh`, `intensity_gco2_per_kwh`, ...).  This pass
// assigns each such name a *dimension* (power, energy, duration, carbon
// mass, carbon intensity, cost, price, frequency), evaluates expression
// dimensions through a small precedence parser, and tracks locals through
// assignments so that e.g.
//
//     double energy_kwh = node_power_kw;            // power used as energy
//     total_gco2 += intensity_gco2_per_kwh * draw_kw;  // intensity x power
//     sum_kwh += cost_gbp;                          // mixed-unit accumulation
//
// are all findings.  Dimensions are checked at the *kind* level (power vs
// energy), not the scale level (kW vs MW), except for the additive
// scale-tag check on bare identifiers (`a_w + b_kw`).  Anything the parser
// cannot model evaluates to Unknown, which propagates silently — the rule
// must never guess.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/ast.hpp"
#include "lint/lexer.hpp"

namespace hpcem::lint {

class SymbolIndex;

enum class UnitKind {
  kUnknown,  ///< not a unit-carrying expression; propagates silently
  kScalar,   ///< dimensionless (numbers, ratios); identity under *
  kPower,
  kEnergy,
  kDuration,
  kCarbonMass,
  kCarbonIntensity,
  kCost,
  kPrice,  ///< cost per energy (gbp/kWh)
  kFrequency,
};

/// Human-readable dimension name ("power", "energy", ...).
[[nodiscard]] const char* unit_kind_name(UnitKind kind);

/// Dimension implied by an identifier's unit suffix (`_kw` -> kPower,
/// `_gco2_per_kwh` -> kCarbonIntensity, ...); kUnknown when the name
/// carries none.
[[nodiscard]] UnitKind unit_of_identifier(std::string_view name);

/// The literal suffix that matched in unit_of_identifier ("_kw"), empty
/// when none did.  Used for the additive scale-tag check.
[[nodiscard]] std::string_view unit_suffix_of(std::string_view name);

/// Dimension algebra.  Returns the result dimension; sets *error and a
/// message for combinations that are dimensionally wrong no matter the
/// scale (intensity x power, price x power, energy + power, ...).
[[nodiscard]] UnitKind unit_multiply(UnitKind a, UnitKind b);
[[nodiscard]] UnitKind unit_divide(UnitKind a, UnitKind b);

/// True when the two dimensions must not be added/compared (both known,
/// both dimensioned, and different).
[[nodiscard]] bool units_conflict(UnitKind a, UnitKind b);

/// One units-flow violation inside a function body.
struct UnitFinding {
  std::size_t token = 0;  ///< anchor token index
  std::string message;
};

/// Run the unit dataflow over one function body.  `symbols` (optional)
/// enables call-argument checking against the callee's parameter names.
void analyze_function_units(const std::vector<Token>& toks, const FileAst& ast,
                            const FunctionDef& fn, const SymbolIndex* symbols,
                            std::vector<UnitFinding>& out);

}  // namespace hpcem::lint
