// Scope/declaration parser for the semantic lint rules.
//
// `parse_ast` turns the token stream from lint/lexer.hpp into a tree of
// brace-matched scopes (namespaces, classes, function bodies, plain blocks)
// plus the declarations the dataflow rules key off: function definitions
// with their parameter lists, local variables with their spelled type, and
// class fields carrying a `// hpcem: guarded_by(<mutex>)` annotation.
//
// Like the lexer, this is not a conforming C++ parser and never tries to
// be: it aims to recover *scope structure and names* well enough that the
// units-flow, determinism-flow and lock-discipline rules see through
// statements, and it must degrade gracefully (skip, never throw) on any
// construct it does not model (templates with dependent syntax, macros
// expanding to declarations, expression edge cases).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.hpp"

namespace hpcem::lint {

enum class ScopeKind {
  kFile,       ///< the whole translation unit (always scopes[0])
  kNamespace,  ///< namespace x { ... }
  kClass,      ///< class/struct body
  kFunction,   ///< a function definition's body
  kBlock,      ///< any other brace-matched region (if/for bodies, lambdas,
               ///< init lists we do not model further)
};

/// One brace-matched region of the file.
struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;            ///< namespace/class/function name; "" else
  std::size_t parent = 0;      ///< index into FileAst::scopes (self for 0)
  std::size_t begin_token = 0; ///< index of the opening '{' (0 for kFile)
  std::size_t end_token = 0;   ///< index of the matching '}' (token count
                               ///< when unterminated / kFile)
};

/// A named value declaration: function parameter or local variable.
struct VarDecl {
  std::string name;
  std::string type_text;   ///< spelled type tokens, space-joined
  std::size_t name_token = 0;
  std::size_t scope = 0;   ///< owning scope index
  bool is_param = false;
};

/// A function definition (declarations without bodies are not recorded).
struct FunctionDef {
  std::string name;            ///< last declarator segment ("submit")
  std::string qualified_name;  ///< as spelled ("ServeFront::submit")
  std::string class_name;      ///< enclosing or spelled class ("" if free)
  std::size_t name_token = 0;
  std::size_t params_end = 0;  ///< index of the ')' closing the param list
  std::size_t body_scope = 0;  ///< index of its kFunction scope
  std::vector<VarDecl> params;
};

/// A class field annotated `// hpcem: guarded_by(<mutex>)`.
struct GuardedField {
  std::string name;
  std::string class_name;
  std::string mutex_name;   ///< the annotation's argument
  std::size_t name_token = 0;
  std::size_t line = 0;     ///< line of the field declaration
};

/// Parsed structure of one file.  Token indices refer to the vector the
/// AST was built from.
struct FileAst {
  std::vector<Scope> scopes;          ///< scopes[0] is the file scope
  std::vector<FunctionDef> functions; ///< in definition order
  std::vector<VarDecl> locals;        ///< locals only (params live on defs)
  std::vector<GuardedField> guarded_fields;
  /// guarded_by annotation lines that bound to no field declaration —
  /// surfaced by lock-discipline so a typo cannot silently disable a
  /// guarantee.  (line, raw comment text)
  std::vector<std::pair<std::size_t, std::string>> unbound_annotations;

  /// Innermost scope containing token index `i` (0 = file scope).
  [[nodiscard]] std::size_t scope_at(std::size_t i) const;

  /// Innermost enclosing kFunction scope of `scope_index`, or npos.
  [[nodiscard]] std::size_t enclosing_function_scope(
      std::size_t scope_index) const;

  /// The FunctionDef whose body scope is `scope_index`, or nullptr.
  [[nodiscard]] const FunctionDef* function_of_scope(
      std::size_t scope_index) const;

  /// All VarDecls (params + locals) visible inside `function`, by name;
  /// nullptr when the name is not declared in it.
  [[nodiscard]] const VarDecl* lookup_var(const FunctionDef& function,
                                          std::string_view name) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Parse the scope/declaration structure of a lexed file.  Never throws on
/// malformed input.
[[nodiscard]] FileAst parse_ast(const std::vector<Token>& tokens);

}  // namespace hpcem::lint
