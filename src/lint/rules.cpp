// Built-in rule catalogue for hpcem_lint.
//
// Every rule here enforces an invariant the compiler cannot: determinism of
// simulation output, dimension hygiene at API boundaries, and the error-
// handling conventions the reproduction's bit-identical guarantees rest on.
// Rules work on the token stream from lint/lexer.hpp, so comments, strings
// and preprocessor text never produce false positives.
#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>

#include "lint/rule.hpp"

namespace hpcem::lint {
namespace {

using Tokens = std::vector<Token>;

/// Read the qualified name whose last segment starts at `i`, walking
/// *backwards* over `ident :: ident :: ...`.  Returns e.g.
/// "std::chrono::system_clock" for the token index of "system_clock".
std::string qualified_prefix(const Tokens& toks, std::size_t i) {
  std::string name = toks[i].text;
  while (i >= 2 && toks[i - 1].is_punct("::") &&
         toks[i - 2].kind == TokenKind::kIdentifier) {
    name = toks[i - 2].text + "::" + name;
    i -= 2;
  }
  return name;
}

/// True when the identifier at `i` is qualified by `::` on its left (so a
/// user-defined `rand()` member is not the C library's).
bool has_left_qualifier(const Tokens& toks, std::size_t i) {
  return i >= 1 && toks[i - 1].is_punct("::");
}

/// Index of the next token after `i` skipping comments; toks.size() at end.
std::size_t next_code(const Tokens& toks, std::size_t i) {
  ++i;
  while (i < toks.size() && toks[i].kind == TokenKind::kComment) ++i;
  return i;
}

/// Index of the previous non-comment token before `i`; npos-like
/// toks.size() when none exists.
std::size_t prev_code(const Tokens& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (toks[i].kind != TokenKind::kComment) return i;
  }
  return toks.size();
}

void emit(std::vector<Diagnostic>& out, std::string_view rule,
          const FileContext& file, const Token& tok, std::string message) {
  out.push_back(Diagnostic{std::string(rule), file.path, tok.line, tok.column,
                           std::move(message)});
}

// ---------------------------------------------------------------------------
// Rule: no-wall-clock
// ---------------------------------------------------------------------------
// Simulation state must never depend on the host's clock: wall-clock reads
// make runs unreproducible and break the bit-identical campaign merges.
class NoWallClockRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "no-wall-clock";
  }
  [[nodiscard]] std::string_view description() const override {
    return "ban wall-clock reads (system_clock/steady_clock::now, "
           "clock_gettime, __TIME__/__DATE__) that break reproducibility";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    static constexpr std::array kClocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static constexpr std::array kFunctions = {"clock_gettime", "gettimeofday",
                                              "timespec_get"};
    static constexpr std::array kMacros = {"__TIME__", "__DATE__",
                                           "__TIMESTAMP__"};
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      for (const char* clock : kClocks) {
        if (t.text != clock) continue;
        // Only the ::now() read is banned; naming the type (e.g. in a
        // duration_cast alias) is harmless.
        const std::size_t j = next_code(toks, i);
        const std::size_t k = j < toks.size() ? next_code(toks, j) : j;
        if (j < toks.size() && toks[j].is_punct("::") && k < toks.size() &&
            toks[k].is_identifier("now")) {
          emit(out, name(), file, t,
               qualified_prefix(toks, i) +
                   "::now() reads the wall clock; simulation code must "
                   "derive time from SimTime/the engine only");
        }
      }
      for (const char* fn : kFunctions) {
        if (t.text == fn) {
          const std::size_t j = next_code(toks, i);
          if (j < toks.size() && toks[j].is_punct("(")) {
            emit(out, name(), file, t,
                 t.text + "() reads the wall clock; simulation code must "
                          "derive time from SimTime/the engine only");
          }
        }
      }
      for (const char* macro : kMacros) {
        if (t.text == macro) {
          emit(out, name(), file, t,
               t.text + " bakes build time into the binary, breaking "
                        "byte-identical reproduction outputs");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: no-unseeded-random
// ---------------------------------------------------------------------------
// All stochastic draws must flow through an explicitly-seeded hpcem::Rng.
class NoUnseededRandomRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "no-unseeded-random";
  }
  [[nodiscard]] std::string_view description() const override {
    return "ban std::rand/random_device and default-constructed <random> "
           "engines; randomness must come from an explicitly-seeded "
           "hpcem::Rng";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    static constexpr std::array kEngines = {
        "mt19937",      "mt19937_64",   "minstd_rand",
        "minstd_rand0", "ranlux24",     "ranlux48",
        "knuth_b",      "default_random_engine"};
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "rand" || t.text == "srand") {
        // Match the C library function only: `rand(`/`std::rand(`, not a
        // member or a differently-qualified name.
        const std::size_t j = next_code(toks, i);
        const bool call = j < toks.size() && toks[j].is_punct("(");
        const std::size_t p = prev_code(toks, i);
        const bool member =
            p < toks.size() && (toks[p].is_punct(".") || toks[p].is_punct(
                                                             "->"));
        const bool qualified = has_left_qualifier(toks, i);
        const bool std_qualified =
            qualified && qualified_prefix(toks, i) == "std::" + t.text;
        if (call && !member && (!qualified || std_qualified)) {
          emit(out, name(), file, t,
               t.text + "() is unseeded global state; draw from an "
                        "explicitly-seeded hpcem::Rng instead");
        }
        continue;
      }
      if (t.text == "random_device") {
        emit(out, name(), file, t,
             "std::random_device is non-deterministic; seeds must be "
             "explicit so runs are reproducible");
        continue;
      }
      for (const char* engine : kEngines) {
        if (t.text != engine) continue;
        // Default construction (`std::mt19937 g;` / `g{}` / `g()`) hides
        // the seed.  Construction with arguments is explicitly seeded and
        // passes.
        const std::size_t j = next_code(toks, i);
        if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
          continue;  // type mention (template arg, using-alias): fine
        }
        const std::size_t k = next_code(toks, j);
        if (k >= toks.size()) continue;
        const bool plain_decl = toks[k].is_punct(";");
        const std::size_t l = next_code(toks, k);
        const bool empty_ctor =
            l < toks.size() &&
            ((toks[k].is_punct("{") && toks[l].is_punct("}")) ||
             (toks[k].is_punct("(") && toks[l].is_punct(")")));
        if (plain_decl || empty_ctor) {
          emit(out, name(), file, toks[j],
               "std::" + t.text + " " + toks[j].text +
                   " is default-constructed (implementation-defined seed); "
                   "seed it explicitly or use hpcem::Rng");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: ordered-output
// ---------------------------------------------------------------------------
// Iterating an unordered container on a path that writes artifacts makes
// the output depend on hash-table layout — byte-identical figures forbid it.
class OrderedOutputRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "ordered-output";
  }
  [[nodiscard]] std::string_view description() const override {
    return "flag range-for over unordered containers in files that write "
           "CSV/JSON/artifacts (hash order leaks into output)";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    if (!writes_output(file)) return;
    const Tokens& toks = file.tokens;
    const std::set<std::string> unordered_names = unordered_decls(toks);
    if (unordered_names.empty()) return;

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!toks[i].is_identifier("for")) continue;
      std::size_t j = next_code(toks, i);
      if (j >= toks.size() || !toks[j].is_punct("(")) continue;
      // Find the range-for ':' at parenthesis depth 1, then the matching
      // close paren; every identifier in between is the range expression.
      int depth = 1;
      std::size_t colon = 0;
      for (std::size_t k = j + 1; k < toks.size() && depth > 0; ++k) {
        if (toks[k].is_punct("(")) ++depth;
        if (toks[k].is_punct(")")) --depth;
        if (depth == 1 && toks[k].is_punct(":")) {
          colon = k;
          break;
        }
        if (toks[k].is_punct(";")) break;  // classic for loop
      }
      if (colon == 0) continue;
      depth = 1;
      for (std::size_t k = colon + 1; k < toks.size() && depth > 0; ++k) {
        if (toks[k].is_punct("(")) ++depth;
        if (toks[k].is_punct(")")) {
          --depth;
          continue;
        }
        if (toks[k].kind == TokenKind::kIdentifier &&
            unordered_names.contains(toks[k].text)) {
          emit(out, name(), file, toks[k],
               "range-for over unordered container '" + toks[k].text +
                   "' in an artifact-writing file; iterate a sorted copy "
                   "or an ordered container so output is deterministic");
          break;
        }
      }
    }
  }

 private:
  /// Heuristic: the file writes artifacts when it touches the CSV/JSON/
  /// artifact layers or opens file streams.
  static bool writes_output(const FileContext& file) {
    for (const Token& t : file.tokens) {
      if (t.kind == TokenKind::kPreprocessor) {
        if (t.text.find("util/csv.hpp") != std::string::npos ||
            t.text.find("util/json.hpp") != std::string::npos ||
            t.text.find("core/run_artifact.hpp") != std::string::npos ||
            t.text.find("<fstream>") != std::string::npos) {
          return true;
        }
      }
      if (t.kind == TokenKind::kIdentifier && t.text == "ofstream") {
        return true;
      }
    }
    return false;
  }

  /// Names declared with an unordered container type in this file (local
  /// variables, members, parameters — anything `unordered_xxx<...> name`).
  static std::set<std::string> unordered_decls(const Tokens& toks) {
    std::set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string& id = toks[i].text;
      if (id != "unordered_map" && id != "unordered_set" &&
          id != "unordered_multimap" && id != "unordered_multiset") {
        continue;
      }
      std::size_t j = next_code(toks, i);
      if (j >= toks.size() || !toks[j].is_punct("<")) continue;
      int depth = 1;
      while (depth > 0) {
        j = next_code(toks, j);
        if (j >= toks.size()) break;
        if (toks[j].is_punct("<")) ++depth;
        if (toks[j].is_punct(">")) --depth;
      }
      if (depth != 0) continue;
      j = next_code(toks, j);
      // Skip reference/pointer declarators: `const unordered_map<..>& m`.
      while (j < toks.size() &&
             (toks[j].is_punct("&") || toks[j].is_punct("*"))) {
        j = next_code(toks, j);
      }
      if (j < toks.size() && toks[j].kind == TokenKind::kIdentifier) {
        names.insert(toks[j].text);
      }
    }
    return names;
  }
};

// ---------------------------------------------------------------------------
// Rule: units-vocabulary
// ---------------------------------------------------------------------------
// A public signature taking `double power_kw` instead of hpcem::Power throws
// away the dimension check that units.hpp exists to provide.
class UnitsVocabularyRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "units-vocabulary";
  }
  [[nodiscard]] std::string_view description() const override {
    return "flag public-header parameters of raw double whose names carry a "
           "unit suffix (_w/_kwh/_ghz/_gco2/_gbp...); use the units.hpp "
           "vocabulary type";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    if (!file.is_public_header()) return;
    const Tokens& toks = file.tokens;
    int paren_depth = 0;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.is_punct("(")) ++paren_depth;
      if (t.is_punct(")")) --paren_depth;
      if (paren_depth <= 0) continue;  // members/locals are not API surface
      if (!t.is_identifier("double") && !t.is_identifier("float")) continue;
      const std::size_t j = next_code(toks, i);
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
        continue;
      }
      const std::size_t k = next_code(toks, j);
      const bool param_like =
          k < toks.size() && (toks[k].is_punct(",") || toks[k].is_punct(")") ||
                              toks[k].is_punct("="));
      if (!param_like) continue;
      if (const char* type = dimension_type(toks[j].text)) {
        emit(out, name(), file, toks[j],
             "parameter '" + toks[j].text + "' is a raw " + t.text +
                 " carrying a unit suffix; take hpcem::" + type +
                 " (util/units.hpp) so the dimension is type-checked");
      }
    }
  }

 private:
  /// Maps a unit-suffixed parameter name to the vocabulary type it should
  /// use; nullptr when the name carries no dimension.
  static const char* dimension_type(const std::string& id) {
    if (id.find("gco2") != std::string::npos) {
      // _gco2 / _gco2e → mass; _gco2_per_kwh / _gco2kwh → intensity.
      // Checked before the suffix table so *_gco2_per_kwh is not taken
      // for a plain energy-in-kWh parameter.
      return id.find("kwh") != std::string::npos ? "CarbonIntensity"
                                                 : "CarbonMass";
    }
    static const std::map<std::string, const char*> kSuffixes = {
        {"_w", "Power"},          {"_kw", "Power"},
        {"_mw", "Power"},         {"_watts", "Power"},
        {"_kilowatts", "Power"},  {"_megawatts", "Power"},
        {"_j", "Energy"},         {"_joules", "Energy"},
        {"_kwh", "Energy"},       {"_mwh", "Energy"},
        {"_hz", "Frequency"},     {"_mhz", "Frequency"},
        {"_ghz", "Frequency"},    {"_gbp", "Cost"},
        {"_pounds", "Cost"},      {"_g_per_kwh", "CarbonIntensity"},
        {"_gbp_per_kwh", "Price"}};
    for (const auto& [suffix, type] : kSuffixes) {
      if (id.size() > suffix.size() &&
          id.compare(id.size() - suffix.size(), suffix.size(), suffix) == 0) {
        return type;
      }
    }
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// Rule: no-naked-new
// ---------------------------------------------------------------------------
class NoNakedNewRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "no-naked-new";
  }
  [[nodiscard]] std::string_view description() const override {
    return "ban naked new/delete; ownership goes through "
           "unique_ptr/make_unique or containers";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text != "new" && t.text != "delete") continue;
      const std::size_t p = prev_code(toks, i);
      if (p < toks.size()) {
        // `operator new` / `operator delete` overloads and `= delete` /
        // `= default`-adjacent declarations are not ownership bugs.
        if (toks[p].is_identifier("operator")) continue;
        if (t.text == "delete" && toks[p].is_punct("=")) continue;
      }
      emit(out, name(), file, t,
           "naked '" + t.text +
               "'; manage ownership with std::unique_ptr/std::make_unique "
               "or a container");
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: no-swallowed-catch
// ---------------------------------------------------------------------------
class NoSwallowedCatchRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "no-swallowed-catch";
  }
  [[nodiscard]] std::string_view description() const override {
    return "flag catch (...) blocks that neither rethrow nor capture the "
           "exception (silently swallowing failures corrupts results)";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_identifier("catch")) continue;
      std::size_t j = next_code(toks, i);
      if (j >= toks.size() || !toks[j].is_punct("(")) continue;
      // catch (...) — the lexer fuses the ellipsis into one '...' token.
      std::size_t k = next_code(toks, j);
      if (k >= toks.size() || !toks[k].is_punct("...")) continue;
      k = next_code(toks, k);
      if (k >= toks.size() || !toks[k].is_punct(")")) continue;
      std::size_t body = next_code(toks, k);
      if (body >= toks.size() || !toks[body].is_punct("{")) continue;
      // Scan the brace-matched body for evidence the exception is handled.
      static constexpr std::array kHandles = {
          "throw",     "rethrow_exception", "current_exception",
          "exception", "abort",             "terminate",
          "exit"};
      int depth = 1;
      bool handled = false;
      std::size_t b = body;
      while (depth > 0) {
        b = next_code(toks, b);
        if (b >= toks.size()) break;
        if (toks[b].is_punct("{")) ++depth;
        if (toks[b].is_punct("}")) --depth;
        if (toks[b].kind == TokenKind::kIdentifier) {
          for (const char* h : kHandles) {
            if (toks[b].text == h) handled = true;
          }
        }
      }
      if (!handled) {
        emit(out, name(), file, toks[i],
             "catch (...) swallows the exception; rethrow, capture "
             "std::current_exception(), or fail loudly");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: nodiscard-accessor
// ---------------------------------------------------------------------------
// In public headers a nullary const accessor whose body is `{ return …; }`
// has no effect other than its value; dropping that value is always a bug.
class NodiscardAccessorRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "nodiscard-accessor";
  }
  [[nodiscard]] std::string_view description() const override {
    return "require [[nodiscard]] on nullary const `{ return ...; }` "
           "accessors in public (src/) headers";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    if (!file.is_public_header()) return;
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
      // Match: `( ) const [noexcept] { return`
      if (!toks[i].is_punct("(")) continue;
      std::size_t j = next_code(toks, i);
      if (j >= toks.size() || !toks[j].is_punct(")")) continue;
      j = next_code(toks, j);
      if (j >= toks.size() || !toks[j].is_identifier("const")) continue;
      j = next_code(toks, j);
      if (j < toks.size() && toks[j].is_identifier("noexcept")) {
        j = next_code(toks, j);
      }
      if (j >= toks.size() || !toks[j].is_punct("{")) continue;
      const std::size_t ret = next_code(toks, j);
      if (ret >= toks.size() || !toks[ret].is_identifier("return")) continue;

      // Walk back over the declarator: name, then return type, stopping at
      // a declaration boundary.  Reject operators and void returns; accept
      // when [[nodiscard]] appears anywhere in the stretch.
      const std::size_t name_idx = prev_code(toks, i);
      if (name_idx >= toks.size() ||
          toks[name_idx].kind != TokenKind::kIdentifier) {
        continue;  // conversion operators, lambdas — out of scope
      }
      bool has_nodiscard = false;
      bool is_void = false;
      bool is_operator = false;
      std::size_t b = name_idx;
      while (b > 0) {
        b = prev_code(toks, b);
        if (b >= toks.size()) break;
        const Token& bt = toks[b];
        if (bt.is_punct(";") || bt.is_punct("{") || bt.is_punct("}") ||
            bt.is_punct(":") || bt.is_punct(",") || bt.is_punct(")")) {
          break;
        }
        if (bt.is_identifier("nodiscard")) has_nodiscard = true;
        if (bt.is_identifier("void")) is_void = true;
        if (bt.is_identifier("operator")) is_operator = true;
      }
      if (!has_nodiscard && !is_void && !is_operator) {
        emit(out, name(), file, toks[name_idx],
             "accessor '" + toks[name_idx].text +
                 "()' returns a value and has no side effects; mark it "
                 "[[nodiscard]]");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: header-pragma-once
// ---------------------------------------------------------------------------
class HeaderPragmaOnceRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "header-pragma-once";
  }
  [[nodiscard]] std::string_view description() const override {
    return "every header starts with #pragma once (before any code)";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    if (!file.is_header()) return;
    for (const Token& t : file.tokens) {
      if (t.kind == TokenKind::kComment) continue;
      if (t.kind == TokenKind::kPreprocessor &&
          collapse(t.text).rfind("#pragma once", 0) == 0) {
        return;
      }
      emit(out, name(), file, t,
           "header does not start with #pragma once (found " +
               (t.kind == TokenKind::kPreprocessor ? "'" + t.text + "'"
                                                   : "code") +
               " first)");
      return;
    }
    Token eof;
    emit(out, name(), file, eof, "header has no #pragma once");
  }

 private:
  /// Normalise runs of whitespace so `#  pragma   once` still matches.
  static std::string collapse(const std::string& s) {
    std::string out;
    bool in_space = false;
    for (char ch : s) {
      if (ch == ' ' || ch == '\t') {
        in_space = true;
        continue;
      }
      if (in_space && !out.empty()) out += ' ';
      in_space = false;
      out += ch;
    }
    return out;
  }
};

// ---------------------------------------------------------------------------
// Rule: no-include-cycle
// ---------------------------------------------------------------------------
class NoIncludeCycleRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "no-include-cycle";
  }
  [[nodiscard]] std::string_view description() const override {
    return "the project include graph (quoted includes under src/) must be "
           "acyclic";
  }
  void check_project(const std::vector<FileContext>& files,
                     std::vector<Diagnostic>& out) const override {
    // Quoted includes resolve against src/ (the include root every target
    // uses); build edges only between files we actually lexed.
    std::map<std::string, std::vector<std::string>> graph;
    std::set<std::string> known;
    for (const FileContext& f : files) known.insert(f.path);
    for (const FileContext& f : files) {
      for (const Token& t : f.tokens) {
        if (t.kind != TokenKind::kPreprocessor) continue;
        const std::string target = quoted_include(t.text);
        if (target.empty()) continue;
        const std::string resolved = "src/" + target;
        if (known.contains(resolved)) graph[f.path].push_back(resolved);
      }
    }
    // Iterative DFS with colouring; report each cycle once, anchored at its
    // lexicographically-smallest member so output is deterministic.
    std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    for (const FileContext& f : files) {
      dfs(f.path, graph, colour, stack, reported, out);
    }
  }

 private:
  static std::string quoted_include(const std::string& directive) {
    if (directive.find("include") == std::string::npos) return {};
    const std::size_t open = directive.find('"');
    if (open == std::string::npos) return {};
    const std::size_t close = directive.find('"', open + 1);
    if (close == std::string::npos) return {};
    return directive.substr(open + 1, close - open - 1);
  }

  void dfs(const std::string& node,
           const std::map<std::string, std::vector<std::string>>& graph,
           std::map<std::string, int>& colour,
           std::vector<std::string>& stack, std::set<std::string>& reported,
           std::vector<Diagnostic>& out) const {
    if (colour[node] != 0) return;
    colour[node] = 1;
    stack.push_back(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const std::string& next : it->second) {
        if (colour[next] == 1) {
          report_cycle(next, stack, reported, out);
        } else if (colour[next] == 0) {
          dfs(next, graph, colour, stack, reported, out);
        }
      }
    }
    stack.pop_back();
    colour[node] = 2;
  }

  void report_cycle(const std::string& entry,
                    const std::vector<std::string>& stack,
                    std::set<std::string>& reported,
                    std::vector<Diagnostic>& out) const {
    const auto begin =
        std::find(stack.begin(), stack.end(), entry);
    std::vector<std::string> cycle(begin, stack.end());
    const std::string anchor = *std::min_element(cycle.begin(), cycle.end());
    std::ostringstream path;
    // Rotate so the anchor leads: a cycle found from two start points still
    // serialises (and dedupes) identically.
    const auto a = std::find(cycle.begin(), cycle.end(), anchor);
    for (auto p = a; p != cycle.end(); ++p) path << *p << " -> ";
    for (auto p = cycle.begin(); p != a; ++p) path << *p << " -> ";
    path << anchor;
    if (!reported.insert(path.str()).second) return;
    out.push_back(Diagnostic{std::string(name()), anchor, 0, 0,
                             "include cycle: " + path.str()});
  }
};

// ---------------------------------------------------------------------------
// Rule: serve-obs-instrumentation
// ---------------------------------------------------------------------------
// The serving layer is the one subsystem whose latency is a product surface,
// so its obs hooks are part of the contract: dashboards and the CI smoke
// job key on these exact instrument names.  A rename (or a refactor that
// drops one) must fail lint, not silently blank a panel.
class ServeObsInstrumentationRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "serve-obs-instrumentation";
  }
  [[nodiscard]] std::string_view description() const override {
    return "src/serve must keep its contractual obs instruments: the "
           "serve.cache.hit/serve.cache.miss/serve.queue.depth counters "
           "and gauges, plus a *request-scoped* span "
           "(HPCEM_OBS_REQUEST_SPAN) in every request/query handler — a "
           "bare HPCEM_OBS_SPAN drops the record from request traces and "
           "postmortems";
  }
  void check_project(const std::vector<FileContext>& files,
                     std::vector<Diagnostic>& out) const override {
    static constexpr std::array kRequired = {
        "serve.request", "serve.cache.hit", "serve.cache.miss",
        "serve.queue.depth"};
    // Handler spans must be request-scoped: only the literal macro
    // invocation HPCEM_OBS_REQUEST_SPAN("<name>") counts, so the record
    // lands in the flight ring tagged with the current request id.
    static constexpr std::array kRequestSpans = {
        "serve.request",        "serve.query.list",
        "serve.query.window_aggregate", "serve.query.regimes",
        "serve.query.compare",  "serve.query.whatif"};
    std::string anchor;
    std::set<std::string> declared;
    std::set<std::string> request_spanned;
    for (const FileContext& f : files) {
      if (!f.in_dir("src/serve/")) continue;
      if (anchor.empty() || f.path < anchor) anchor = f.path;
      const Tokens& toks = f.tokens;
      for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind == TokenKind::kString || t.kind == TokenKind::kRawString) {
          for (const char* required : kRequired) {
            // Exact quoted spelling: "serve.request.ns" must not satisfy
            // the "serve.request" span requirement.
            if (t.text == '"' + std::string(required) + '"') {
              declared.insert(required);
            }
          }
          continue;
        }
        if (!t.is_identifier("HPCEM_OBS_REQUEST_SPAN")) continue;
        const std::size_t j = next_code(toks, i);
        const std::size_t k = j < toks.size() ? next_code(toks, j) : j;
        if (j >= toks.size() || !toks[j].is_punct("(") || k >= toks.size() ||
            toks[k].kind != TokenKind::kString) {
          continue;
        }
        for (const char* span : kRequestSpans) {
          if (toks[k].text == '"' + std::string(span) + '"') {
            request_spanned.insert(span);
          }
        }
      }
    }
    if (anchor.empty()) return;  // no serving layer in this tree
    for (const char* required : kRequired) {
      if (declared.contains(required)) continue;
      out.push_back(Diagnostic{
          std::string(name()), anchor, 0, 0,
          "src/serve never declares the obs instrument \"" +
              std::string(required) +
              "\"; the serving layer's spans/counters are contractual "
              "(see DESIGN.md, serving layer)"});
    }
    for (const char* span : kRequestSpans) {
      if (request_spanned.contains(span)) continue;
      out.push_back(Diagnostic{
          std::string(name()), anchor, 0, 0,
          "src/serve never opens the request-scoped span "
          "HPCEM_OBS_REQUEST_SPAN(\"" +
              std::string(span) +
              "\"); handler spans must be request-scoped so they appear "
              "in request traces and postmortems (a bare HPCEM_OBS_SPAN "
              "does not count)"});
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: scenario-in-data
// ---------------------------------------------------------------------------
// Scenarios are data, not code: every harness under bench/ and tools/ must
// take its `ScenarioSpec` from the committed library (scenarios/*.json via
// load_named_scenario / load_scenario_file / parse_scenario /
// scenario_from_json, or the core figure factories that wrap them).  A
// hard-coded literal assembly in a harness silently forks the scenario's
// source of truth away from the schema-checked files.
class ScenarioInDataRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "scenario-in-data";
  }
  [[nodiscard]] std::string_view description() const override {
    return "bench/ and tools/ must load ScenarioSpec from the committed "
           "scenario library, not assemble literals in C++";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    if (!file.in_dir("bench/") && !file.in_dir("tools/")) return;
    static constexpr std::array kLoaders = {
        "load_named_scenario", "load_scenario_file", "parse_scenario",
        "scenario_from_json",  "figure1",            "figure2",
        "figure3",             "archer2_baseline"};
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!toks[i].is_identifier("ScenarioSpec")) continue;
      // Only declarations: `ScenarioSpec name ...`.  Qualified uses
      // (ScenarioSpec::...), template arguments (<ScenarioSpec>) and
      // reference/pointer parameters (ScenarioSpec& spec) are fine — they
      // consume a spec, they do not assemble one.
      const std::size_t j = next_code(toks, i);
      if (j >= toks.size() || toks[j].kind != TokenKind::kIdentifier) {
        continue;
      }
      // Scan the initializer up to the terminating ';' for a sanctioned
      // loader call; `ScenarioSpec spec;` (default-construct, then
      // member-by-member literal assembly) has none by construction.
      bool sanctioned = false;
      int depth = 0;
      for (std::size_t k = next_code(toks, j); k < toks.size();
           k = next_code(toks, k)) {
        const Token& t = toks[k];
        if (depth == 0 && (t.is_punct(";") || t.is_punct(","))) break;
        if (t.is_punct("(") || t.is_punct("{") || t.is_punct("[")) ++depth;
        if (t.is_punct(")") || t.is_punct("}") || t.is_punct("]")) --depth;
        if (t.kind == TokenKind::kIdentifier &&
            std::find(kLoaders.begin(), kLoaders.end(), t.text) !=
                kLoaders.end()) {
          sanctioned = true;
          break;
        }
      }
      if (!sanctioned) {
        emit(out, name(), file, toks[i],
             "ScenarioSpec '" + toks[j].text +
                 "' is assembled in C++; scenarios are data — load it "
                 "from the committed library (load_named_scenario, "
                 "--spec; see docs/SCENARIO_SCHEMA.md)");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: binary-io-hygiene
// ---------------------------------------------------------------------------
// Byte reinterpretation is confined to src/colstore's bounds-checked codec
// (colstore/bytes.hpp): a raw memcpy out of a file buffer or a
// reinterpret_cast over its bytes anywhere else bypasses the one place
// where truncation and corruption are checked, and is exactly how a
// malformed shard becomes an out-of-range read instead of a ParseError.
class BinaryIoHygieneRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "binary-io-hygiene";
  }
  [[nodiscard]] std::string_view description() const override {
    return "ban raw memcpy/memmove byte copies and reinterpret_cast "
           "punning outside src/colstore's bounds-checked codec "
           "(colstore/bytes.hpp); decode bytes through ByteReader";
  }
  void check_file(const FileContext& file,
                  std::vector<Diagnostic>& out) const override {
    // The codec itself is the sanctioned home of these constructs.
    if (file.in_dir("src/colstore/")) return;
    const Tokens& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier) continue;
      if (t.text == "memcpy" || t.text == "memmove") {
        const std::size_t j = next_code(toks, i);
        if (j < toks.size() && toks[j].is_punct("(")) {
          emit(out, name(), file, t,
               "raw " + t.text +
                   "() byte copy; binary decoding belongs in "
                   "src/colstore's bounds-checked ByteReader/ByteWriter "
                   "(colstore/bytes.hpp)");
        }
      } else if (t.text == "reinterpret_cast") {
        emit(out, name(), file, t,
             "reinterpret_cast punning; use std::bit_cast for value "
             "reinterpretation or src/colstore's checked codec for byte "
             "buffers (colstore/bytes.hpp)");
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> default_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NoWallClockRule>());
  rules.push_back(std::make_unique<NoUnseededRandomRule>());
  rules.push_back(std::make_unique<OrderedOutputRule>());
  rules.push_back(std::make_unique<UnitsVocabularyRule>());
  rules.push_back(std::make_unique<NoNakedNewRule>());
  rules.push_back(std::make_unique<NoSwallowedCatchRule>());
  rules.push_back(std::make_unique<NodiscardAccessorRule>());
  rules.push_back(std::make_unique<HeaderPragmaOnceRule>());
  rules.push_back(std::make_unique<NoIncludeCycleRule>());
  rules.push_back(std::make_unique<ServeObsInstrumentationRule>());
  rules.push_back(std::make_unique<ScenarioInDataRule>());
  rules.push_back(std::make_unique<BinaryIoHygieneRule>());
  for (auto& rule : semantic_rules()) rules.push_back(std::move(rule));
  return rules;
}

}  // namespace hpcem::lint
