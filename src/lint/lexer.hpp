// Lightweight C++ tokenizer for the hpcem_lint static-analysis pass.
//
// The lexer does not aim to be a conforming C++ preprocessor/lexer; it aims
// to classify source text well enough that rules never mistake the inside of
// a comment, string literal, raw string or preprocessor directive for code.
// That is the precision boundary that grep-style linting lacks and that the
// determinism/units rules need (a `system_clock` mentioned in a comment is
// fine; one in code is not).
//
// Guarantees:
//   - line/column positions are 1-based and survive line continuations,
//   - `//` and `/* */` comments become Comment tokens (retained, because
//     suppression annotations live in comments),
//   - ordinary strings (with escapes and u8/u/U/L prefixes), raw strings
//     (`R"delim(...)delim"`) and char literals become single tokens,
//   - a preprocessor directive (with backslash continuations spliced)
//     becomes one Preprocessor token holding the directive text,
//   - `::` is fused into a single punctuator so rules can match qualified
//     names by walking alternating Identifier / `::` tokens,
//   - common multi-char operators (`->`, `==`, `+=`, `&&`, `...`, ...) are
//     fused so rules and the scope parser see them as one token; `<<`/`>>`
//     stay split so template-angle depth can be counted per character.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace hpcem::lint {

enum class TokenKind {
  kIdentifier,    ///< identifiers and keywords (rules match by spelling)
  kNumber,        ///< pp-number: 0x1f, 1'000, 3.5e-2, 1.0_kWh suffix included
  kString,        ///< "..." including encoding prefix, escapes intact
  kRawString,     ///< R"tag(...)tag" including prefix
  kCharLiteral,   ///< 'x' including escapes
  kComment,       ///< // to end of line, or /* ... */ (text includes markers)
  kPreprocessor,  ///< whole directive, continuations spliced, '#' included
  kPunct,         ///< punctuator; `::`/`->`/`==`/... fused, `<<`/`>>` split
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;         ///< exact source spelling (spliced for directives)
  std::size_t line = 1;     ///< 1-based line of the first character
  std::size_t column = 1;   ///< 1-based column of the first character

  [[nodiscard]] bool is_identifier(std::string_view s) const {
    return kind == TokenKind::kIdentifier && text == s;
  }
  [[nodiscard]] bool is_punct(std::string_view s) const {
    return kind == TokenKind::kPunct && text == s;
  }
};

/// Tokenize a C++ translation unit.  Never throws on malformed input: an
/// unterminated comment/string simply yields a token running to the end of
/// the buffer (lint must degrade gracefully on code that does not compile).
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace hpcem::lint
