#include "lint/config.hpp"

#include <sstream>

#include "util/error.hpp"

namespace hpcem::lint {

bool glob_match(std::string_view glob, std::string_view path) {
  // Classic iterative wildcard match with single-star backtracking.
  std::size_t g = 0, p = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (p < path.size()) {
    if (g < glob.size() && (glob[g] == '?' || glob[g] == path[p])) {
      ++g;
      ++p;
    } else if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = p;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      p = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

bool LintConfig::rule_disabled(std::string_view rule) const {
  for (const std::string& r : disabled_rules) {
    if (r == rule) return true;
  }
  return false;
}

bool LintConfig::rule_selected(std::string_view rule) const {
  if (only_rules.empty()) return true;
  for (const std::string& r : only_rules) {
    if (r == rule) return true;
  }
  return false;
}

bool LintConfig::allowed(std::string_view rule, std::string_view path) const {
  for (const Allow& a : allows) {
    if (a.rule == rule && glob_match(a.glob, path)) return true;
  }
  return false;
}

bool LintConfig::excluded(std::string_view path) const {
  for (const std::string& g : excludes) {
    if (glob_match(g, path)) return true;
  }
  return false;
}

namespace {
/// Malformed config is external input: report it as a ParseError.
void check(bool cond, const std::string& msg) {
  if (!cond) throw ParseError(msg);
}
}  // namespace

LintConfig parse_config(std::string_view text) {
  LintConfig config;
  std::istringstream in{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string directive;
    if (!(fields >> directive)) continue;  // blank / comment-only line
    const std::string where = " (.hpcemlint line " + std::to_string(lineno) +
                              ")";
    if (directive == "disable") {
      std::string rule, extra;
      check(static_cast<bool>(fields >> rule),
            "disable needs a rule name" + where);
      check(!(fields >> extra), "disable takes one field" + where);
      config.disabled_rules.push_back(rule);
    } else if (directive == "allow") {
      std::string rule, glob, extra;
      check(static_cast<bool>(fields >> rule >> glob),
            "allow needs a rule name and a path glob" + where);
      check(!(fields >> extra), "allow takes two fields" + where);
      config.allows.push_back({rule, glob});
    } else if (directive == "exclude") {
      std::string glob, extra;
      check(static_cast<bool>(fields >> glob),
            "exclude needs a path glob" + where);
      check(!(fields >> extra), "exclude takes one field" + where);
      config.excludes.push_back(glob);
    } else {
      throw ParseError("unknown .hpcemlint directive '" + directive + "'" +
                       where);
    }
  }
  return config;
}

}  // namespace hpcem::lint
