#include "lint/dataflow.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>

#include "lint/symbols.hpp"

namespace hpcem::lint {
namespace {

using Tokens = std::vector<Token>;

std::size_t next_code(const Tokens& toks, std::size_t i) {
  ++i;
  while (i < toks.size() && (toks[i].kind == TokenKind::kComment ||
                             toks[i].kind == TokenKind::kPreprocessor)) {
    ++i;
  }
  return i;
}

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

struct SuffixRule {
  std::string_view suffix;
  UnitKind kind;
};

// Ordered longest-specificity-first; checked with exact ends-with so `draw`
// never matches `_w` and `power_min` never reads as minutes.
constexpr std::array<SuffixRule, 27> kSuffixes = {{
    {"_gbp_per_kwh", UnitKind::kPrice},
    {"_per_kwh", UnitKind::kPrice},
    {"_kilowatts", UnitKind::kPower},
    {"_megawatts", UnitKind::kPower},
    {"_watts", UnitKind::kPower},
    {"_joules", UnitKind::kEnergy},
    {"_kwh", UnitKind::kEnergy},
    {"_mwh", UnitKind::kEnergy},
    {"_wh", UnitKind::kEnergy},
    {"_kw", UnitKind::kPower},
    {"_mw", UnitKind::kPower},
    {"_w", UnitKind::kPower},
    {"_j", UnitKind::kEnergy},
    {"_seconds", UnitKind::kDuration},
    {"_secs", UnitKind::kDuration},
    {"_sec", UnitKind::kDuration},
    {"_hours", UnitKind::kDuration},
    {"_hrs", UnitKind::kDuration},
    {"_hr", UnitKind::kDuration},
    {"_ns", UnitKind::kDuration},
    {"_ms", UnitKind::kDuration},
    {"_s", UnitKind::kDuration},
    {"_h", UnitKind::kDuration},
    {"_ghz", UnitKind::kFrequency},
    {"_mhz", UnitKind::kFrequency},
    {"_hz", UnitKind::kFrequency},
    {"_gbp", UnitKind::kCost},
}};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() > suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

const char* unit_kind_name(UnitKind kind) {
  switch (kind) {
    case UnitKind::kUnknown: return "unknown";
    case UnitKind::kScalar: return "scalar";
    case UnitKind::kPower: return "power";
    case UnitKind::kEnergy: return "energy";
    case UnitKind::kDuration: return "duration";
    case UnitKind::kCarbonMass: return "carbon mass";
    case UnitKind::kCarbonIntensity: return "carbon intensity";
    case UnitKind::kCost: return "cost";
    case UnitKind::kPrice: return "price";
    case UnitKind::kFrequency: return "frequency";
  }
  return "unknown";
}

UnitKind unit_of_identifier(std::string_view name) {
  const std::string low = lowercase(name);
  if (low.find("gco2") != std::string::npos) {
    // _gco2 / _gco2e -> mass; _gco2_per_kwh and friends -> intensity.
    return low.find("kwh") != std::string::npos ? UnitKind::kCarbonIntensity
                                                : UnitKind::kCarbonMass;
  }
  // Mass per energy is a carbon intensity (g_per_kwh, kg_per_kwh); only
  // money per energy (_gbp_per_kwh, plain _per_kwh) stays a price.
  if (low == "g_per_kwh" || ends_with(low, "g_per_kwh")) {
    return UnitKind::kCarbonIntensity;
  }
  for (const SuffixRule& r : kSuffixes) {
    if (ends_with(low, r.suffix)) return r.kind;
  }
  return UnitKind::kUnknown;
}

std::string_view unit_suffix_of(std::string_view name) {
  const std::string low = lowercase(name);
  if (low.find("gco2") != std::string::npos) return {};
  for (const SuffixRule& r : kSuffixes) {
    if (ends_with(low, r.suffix)) return r.suffix;
  }
  return {};
}

UnitKind unit_multiply(UnitKind a, UnitKind b) {
  using U = UnitKind;
  if (a == U::kUnknown || b == U::kUnknown) return U::kUnknown;
  if (a == U::kScalar) return b;
  if (b == U::kScalar) return a;
  auto pair = [&](U x, U y) {
    return (a == x && b == y) || (a == y && b == x);
  };
  if (pair(U::kPower, U::kDuration)) return U::kEnergy;
  if (pair(U::kCarbonIntensity, U::kEnergy)) return U::kCarbonMass;
  if (pair(U::kPrice, U::kEnergy)) return U::kCost;
  if (pair(U::kFrequency, U::kDuration)) return U::kScalar;
  return U::kUnknown;
}

UnitKind unit_divide(UnitKind a, UnitKind b) {
  using U = UnitKind;
  if (a == U::kUnknown || b == U::kUnknown) return U::kUnknown;
  if (b == U::kScalar) return a;
  if (a == b) return U::kScalar;
  if (a == U::kEnergy && b == U::kDuration) return U::kPower;
  if (a == U::kEnergy && b == U::kPower) return U::kDuration;
  if (a == U::kCarbonMass && b == U::kEnergy) return U::kCarbonIntensity;
  if (a == U::kCarbonMass && b == U::kCarbonIntensity) return U::kEnergy;
  if (a == U::kCost && b == U::kEnergy) return U::kPrice;
  if (a == U::kCost && b == U::kPrice) return U::kEnergy;
  return U::kUnknown;
}

bool units_conflict(UnitKind a, UnitKind b) {
  return a != UnitKind::kUnknown && b != UnitKind::kUnknown &&
         a != UnitKind::kScalar && b != UnitKind::kScalar && a != b;
}

namespace {

/// The dimension (plus scale tag + anchor) of a sub-expression.
struct Value {
  UnitKind kind = UnitKind::kUnknown;
  std::string_view suffix;   ///< scale tag when a bare suffixed name
  std::size_t token = 0;     ///< anchor token
  std::string bare_name;     ///< set when the expression is one identifier
};

/// Names whose calls pass their first dimensioned argument through.
bool is_passthrough_callee(std::string_view name) {
  static constexpr std::array<std::string_view, 12> kNames = {
      "static_cast", "min",   "max",   "abs",  "clamp",  "move",
      "round",       "floor", "ceil",  "fabs", "double", "float"};
  return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
}

/// Precedence-climbing dimension evaluator over a token slice.  Anything
/// outside its grammar evaluates to Unknown; it must always make progress.
class UnitEvaluator {
 public:
  UnitEvaluator(const Tokens& toks, const SymbolIndex* symbols,
                std::map<std::string, UnitKind, std::less<>>& var_units,
                std::vector<UnitFinding>& out)
      : toks_(toks), symbols_(symbols), var_units_(var_units), out_(out) {}

  /// Evaluate [begin, end); visits trailing sub-expressions (ternaries,
  /// comma operators) so their findings still fire, but returns the first
  /// expression's value.
  Value evaluate(std::size_t begin, std::size_t end) {
    pos_ = begin;
    end_ = end;
    const Value first = parse_expr();
    while (pos_ < end_) {
      const std::size_t before = pos_;
      parse_expr();
      if (pos_ == before) ++pos_;  // unparseable token: step over it
    }
    return first;
  }

  void emit(std::size_t token, std::string message) {
    out_.push_back(UnitFinding{token, std::move(message)});
  }

 private:
  Value parse_expr() {
    Value lhs = parse_additive();
    if (pos_ >= end_) return lhs;
    const Token& t = toks_[pos_];
    static constexpr std::array<std::string_view, 6> kCompare = {
        "<", ">", "<=", ">=", "==", "!="};
    if (t.kind == TokenKind::kPunct &&
        std::find(kCompare.begin(), kCompare.end(), t.text) !=
            kCompare.end()) {
      // `<<`/`>>` lex as two tokens: a stream/shift, not a comparison.
      const std::size_t n = next_code(toks_, pos_);
      if ((t.text == "<" || t.text == ">") && n < end_ &&
          toks_[n].is_punct(t.text)) {
        pos_ = end_;  // stream expression: nothing more to learn
        return Value{};
      }
      const std::size_t op = pos_;
      pos_ = n;
      const Value rhs = parse_additive();
      if (units_conflict(lhs.kind, rhs.kind)) {
        emit(op, std::string("comparison mixes ") +
                     unit_kind_name(lhs.kind) + " and " +
                     unit_kind_name(rhs.kind));
      }
      Value v;
      v.kind = UnitKind::kScalar;
      v.token = lhs.token;
      return v;
    }
    return lhs;
  }

  Value parse_additive() {
    Value v = parse_mul();
    while (pos_ < end_ && (toks_[pos_].is_punct("+") ||
                           toks_[pos_].is_punct("-"))) {
      const std::size_t op = pos_;
      pos_ = next_code(toks_, pos_);
      const Value r = parse_mul();
      if (units_conflict(v.kind, r.kind)) {
        emit(op, std::string("mixed-unit accumulation: ") +
                     unit_kind_name(v.kind) + " + " +
                     unit_kind_name(r.kind));
        v.kind = UnitKind::kUnknown;
        v.suffix = {};
        continue;
      }
      if (v.kind == r.kind && !v.suffix.empty() && !r.suffix.empty() &&
          v.suffix != r.suffix) {
        emit(op, std::string("mixed-scale accumulation: '") +
                     std::string(v.suffix) + "' + '" + std::string(r.suffix) +
                     "' on the same dimension");
        v.suffix = {};
        continue;
      }
      if (v.kind == UnitKind::kScalar || v.kind == UnitKind::kUnknown) {
        v.kind = r.kind == UnitKind::kUnknown ? v.kind : r.kind;
        v.suffix = r.suffix;
      } else if (r.suffix != v.suffix) {
        v.suffix = {};
      }
      v.bare_name.clear();
    }
    return v;
  }

  Value parse_mul() {
    Value v = parse_unary();
    while (pos_ < end_ &&
           (toks_[pos_].is_punct("*") || toks_[pos_].is_punct("/") ||
            toks_[pos_].is_punct("%"))) {
      const std::size_t op = pos_;
      const bool mul = toks_[pos_].is_punct("*");
      const bool div = toks_[pos_].is_punct("/");
      pos_ = next_code(toks_, pos_);
      const Value r = parse_unary();
      if (mul) {
        check_multiply_errors(op, v.kind, r.kind);
        v.kind = unit_multiply(v.kind, r.kind);
      } else if (div) {
        v.kind = unit_divide(v.kind, r.kind);
      } else {
        v.kind = UnitKind::kUnknown;
      }
      v.suffix = {};
      v.bare_name.clear();
    }
    return v;
  }

  void check_multiply_errors(std::size_t op, UnitKind a, UnitKind b) {
    auto pair = [&](UnitKind x, UnitKind y) {
      return (a == x && b == y) || (a == y && b == x);
    };
    if (pair(UnitKind::kCarbonIntensity, UnitKind::kPower)) {
      emit(op,
           "carbon intensity applied to power instead of energy; multiply "
           "the power by a duration to get energy first");
    } else if (pair(UnitKind::kPrice, UnitKind::kPower)) {
      emit(op,
           "price (per kWh) applied to power instead of energy; multiply "
           "the power by a duration to get energy first");
    }
  }

  Value parse_unary() {
    while (pos_ < end_ &&
           (toks_[pos_].is_punct("-") || toks_[pos_].is_punct("+") ||
            toks_[pos_].is_punct("!") || toks_[pos_].is_punct("~") ||
            toks_[pos_].is_punct("&") || toks_[pos_].is_punct("*"))) {
      pos_ = next_code(toks_, pos_);
    }
    return parse_postfix();
  }

  Value parse_postfix() {
    Value v;
    if (pos_ >= end_) return v;
    const Token& t = toks_[pos_];
    v.token = pos_;

    if (t.kind == TokenKind::kNumber) {
      const UnitKind udl = unit_of_identifier(t.text);
      v.kind = udl == UnitKind::kUnknown ? UnitKind::kScalar : udl;
      pos_ = next_code(toks_, pos_);
      return v;
    }
    if (t.kind == TokenKind::kString || t.kind == TokenKind::kRawString ||
        t.kind == TokenKind::kCharLiteral) {
      pos_ = next_code(toks_, pos_);
      return v;
    }
    if (t.is_punct("(")) {
      const std::size_t close = matching(pos_, "(", ")");
      if (close >= end_) {
        pos_ = end_;
        return v;
      }
      v = eval_sub(next_code(toks_, pos_), close);
      pos_ = next_code(toks_, close);
      return parse_postfix_tail(v);
    }
    if (t.is_punct("{") || t.is_punct("[")) {
      const std::size_t close =
          matching(pos_, t.text == "{" ? "{" : "[", t.text == "{" ? "}" : "]");
      pos_ = close >= end_ ? end_ : next_code(toks_, close);
      return v;
    }
    if (t.kind != TokenKind::kIdentifier) {
      pos_ = next_code(toks_, pos_);
      return v;
    }

    // Identifier chain: `a::b`, `x.y`, `p->q`, calls, indexing.  The
    // chain's dimension is updated at each segment: a suffixed name sets
    // it, a call resets it to the callee's own suffix (except passthrough
    // members like `.count()`/`.load()` which keep the receiver's).
    std::string last_name = t.text;
    UnitKind chain_kind = unit_of_identifier(last_name);
    std::string_view chain_suffix = unit_suffix_of(last_name);
    bool is_bare = true;  // a single plain identifier, nothing else
    pos_ = next_code(toks_, pos_);
    while (pos_ < end_) {
      const Token& n = toks_[pos_];
      if (n.is_punct("::") || n.is_punct(".") || n.is_punct("->")) {
        const std::size_t id = next_code(toks_, pos_);
        if (id >= end_ || toks_[id].kind != TokenKind::kIdentifier) break;
        last_name = toks_[id].text;
        const UnitKind named = unit_of_identifier(last_name);
        if (named != UnitKind::kUnknown) {
          chain_kind = named;
          chain_suffix = unit_suffix_of(last_name);
        }
        is_bare = false;
        pos_ = next_code(toks_, id);
        continue;
      }
      if (n.is_punct("<")) {
        // Template argument list only when the balanced angles are followed
        // by '('; otherwise this is a comparison for parse_expr.
        const std::size_t close = matching(pos_, "<", ">");
        if (close >= end_) break;
        const std::size_t after = next_code(toks_, close);
        if (after >= end_ || !toks_[after].is_punct("(")) break;
        is_bare = false;
        pos_ = after;
        continue;
      }
      if (n.is_punct("(")) {
        const std::size_t close = matching(pos_, "(", ")");
        if (close >= end_) {
          pos_ = end_;
          break;
        }
        const Value call = eval_call(last_name, pos_, close);
        pos_ = next_code(toks_, close);
        is_bare = false;
        if (call.kind != UnitKind::kUnknown) {
          chain_kind = call.kind;
          chain_suffix = unit_suffix_of(last_name);
        } else if (!is_passthrough_member(last_name)) {
          chain_kind = UnitKind::kUnknown;
          chain_suffix = {};
        }
        continue;
      }
      if (n.is_punct("[")) {
        const std::size_t close = matching(pos_, "[", "]");
        if (close >= end_) {
          pos_ = end_;
          break;
        }
        eval_sub(next_code(toks_, pos_), close);
        pos_ = next_code(toks_, close);
        is_bare = false;
        continue;
      }
      break;
    }

    v.kind = chain_kind;
    v.suffix = chain_suffix;
    if (is_bare) {
      v.bare_name = last_name;
      if (v.kind == UnitKind::kUnknown) {
        const auto it = var_units_.find(last_name);
        if (it != var_units_.end()) v.kind = it->second;
      }
    }
    return v;
  }

  /// Member calls that yield the receiver's own quantity.
  static bool is_passthrough_member(std::string_view name) {
    static constexpr std::array<std::string_view, 8> kNames = {
        "count", "value", "get", "load", "back", "front", "at", "top"};
    return std::find(kNames.begin(), kNames.end(), name) != kNames.end();
  }

  /// Postfix continuation after a parenthesised primary: `(x).count()` etc.
  Value parse_postfix_tail(Value v) {
    while (pos_ < end_ && (toks_[pos_].is_punct(".") ||
                           toks_[pos_].is_punct("->"))) {
      const std::size_t id = next_code(toks_, pos_);
      if (id >= end_ || toks_[id].kind != TokenKind::kIdentifier) break;
      const UnitKind named = unit_of_identifier(toks_[id].text);
      if (named != UnitKind::kUnknown) {
        v.kind = named;
        v.suffix = unit_suffix_of(toks_[id].text);
      }
      pos_ = next_code(toks_, id);
      if (pos_ < end_ && toks_[pos_].is_punct("(")) {
        const std::size_t close = matching(pos_, "(", ")");
        if (close >= end_) {
          pos_ = end_;
          break;
        }
        pos_ = next_code(toks_, close);
      }
    }
    v.bare_name.clear();
    return v;
  }

  /// Evaluate the arguments of `callee(args...)` ('(' at `open`), check
  /// them against the callee's parameter names, and return the call's
  /// dimension (from the callee name's own suffix).
  Value eval_call(const std::string& callee, std::size_t open,
                  std::size_t close) {
    std::vector<Value> args;
    std::size_t start = next_code(toks_, open);
    int depth = 0;
    int angle = 0;
    for (std::size_t k = start; k <= close && k < toks_.size(); ++k) {
      const Token& t = toks_[k];
      const bool at_end = k == close;
      if (!at_end) {
        if (t.is_punct("(") || t.is_punct("{") || t.is_punct("[")) ++depth;
        if (t.is_punct(")") || t.is_punct("}") || t.is_punct("]")) --depth;
        if (t.is_punct("<")) ++angle;
        if (t.is_punct(">") && angle > 0) --angle;
      }
      if (at_end || (depth == 0 && angle == 0 && t.is_punct(","))) {
        if (k > start) args.push_back(eval_sub(start, k));
        start = next_code(toks_, k);
      }
    }

    Value result;
    result.token = open;
    if (is_passthrough_callee(callee)) {
      for (const Value& a : args) {
        if (a.kind != UnitKind::kUnknown && a.kind != UnitKind::kScalar) {
          result.kind = a.kind;
          break;
        }
      }
      return result;
    }
    result.kind = unit_of_identifier(callee);

    if (symbols_ != nullptr) check_call_args(callee, args);
    return result;
  }

  void check_call_args(const std::string& callee,
                       const std::vector<Value>& args) {
    const std::vector<std::size_t> cands = symbols_->by_name(callee);
    if (cands.empty() || cands.size() > 4) return;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i].kind == UnitKind::kUnknown ||
          args[i].kind == UnitKind::kScalar) {
        continue;
      }
      UnitKind expected = UnitKind::kUnknown;
      std::string param_name;
      bool agree = true;
      for (const std::size_t c : cands) {
        const SymbolFunction& f = symbols_->functions()[c];
        if (i >= f.param_names.size()) {
          agree = false;
          break;
        }
        const UnitKind k = unit_of_identifier(f.param_names[i]);
        if (k == UnitKind::kUnknown) {
          agree = false;
          break;
        }
        if (expected == UnitKind::kUnknown) {
          expected = k;
          param_name = f.param_names[i];
        } else if (expected != k) {
          agree = false;
          break;
        }
      }
      if (!agree || expected == UnitKind::kUnknown) continue;
      if (units_conflict(expected, args[i].kind)) {
        emit(args[i].token,
             "argument " + std::to_string(i + 1) + " of '" + callee +
                 "' is parameter '" + param_name + "' (" +
                 unit_kind_name(expected) + ") but receives a " +
                 unit_kind_name(args[i].kind) + " expression");
      }
    }
  }

  /// Evaluate a sub-slice with saved/restored cursor state.
  Value eval_sub(std::size_t begin, std::size_t end) {
    const std::size_t sp = pos_;
    const std::size_t se = end_;
    const Value v = evaluate(begin, end);
    pos_ = sp;
    end_ = se;
    return v;
  }

  /// Index of the punct closing the one at `i` within the slice; end_ when
  /// unbalanced.
  std::size_t matching(std::size_t i, std::string_view open,
                       std::string_view close) {
    int depth = 0;
    for (std::size_t k = i; k < end_; k = next_code(toks_, k)) {
      if (toks_[k].is_punct(open)) ++depth;
      if (toks_[k].is_punct(close)) {
        --depth;
        if (depth == 0) return k;
      }
    }
    return end_;
  }

  const Tokens& toks_;
  const SymbolIndex* symbols_;
  std::map<std::string, UnitKind, std::less<>>& var_units_;
  std::vector<UnitFinding>& out_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

}  // namespace

void analyze_function_units(const std::vector<Token>& toks, const FileAst& ast,
                            const FunctionDef& fn, const SymbolIndex* symbols,
                            std::vector<UnitFinding>& out) {
  if (fn.body_scope == 0 || fn.body_scope >= ast.scopes.size()) return;
  const Scope& body = ast.scopes[fn.body_scope];

  std::map<std::string, UnitKind, std::less<>> var_units;
  // Locals declared anywhere inside the body, keyed by declarator token.
  std::map<std::size_t, const VarDecl*> local_at;
  for (const VarDecl& l : ast.locals) {
    if (l.name_token > body.begin_token && l.name_token < body.end_token) {
      local_at[l.name_token] = &l;
    }
  }

  UnitEvaluator eval(toks, symbols, var_units, out);
  // `draw_at_ghz`-style names describe a *parameter* with the trailing
  // suffix ("the draw, at this frequency"), not the return value; only a
  // directly-suffixed name pins the return dimension.
  UnitKind fn_unit = unit_of_identifier(fn.name);
  {
    const std::string_view sfx = unit_suffix_of(fn.name);
    if (!sfx.empty() && fn.name.size() > sfx.size() + 3) {
      const std::string_view stem(fn.name.data(),
                                  fn.name.size() - sfx.size());
      if (stem.size() >= 3 &&
          stem.substr(stem.size() - 3) == "_at") {
        fn_unit = UnitKind::kUnknown;
      }
    }
  }

  static constexpr std::array<std::string_view, 5> kAssignOps = {
      "=", "+=", "-=", "*=", "/="};

  std::size_t stmt_start = body.begin_token + 1;
  for (std::size_t i = body.begin_token + 1;
       i < body.end_token && i < toks.size(); ++i) {
    const Token& t = toks[i];
    const bool boundary =
        t.is_punct(";") || t.is_punct("{") || t.is_punct("}");
    if (!boundary) continue;
    const std::size_t s = stmt_start;
    const std::size_t e = i;
    stmt_start = i + 1;
    // Skip comment-only / empty statements.
    std::size_t first = s;
    while (first < e && (toks[first].kind == TokenKind::kComment ||
                         toks[first].kind == TokenKind::kPreprocessor)) {
      ++first;
    }
    if (first >= e) continue;

    if (toks[first].kind == TokenKind::kIdentifier) {
      const std::string& kw = toks[first].text;
      if (kw == "return") {
        const Value v = eval.evaluate(next_code(toks, first), e);
        if (units_conflict(fn_unit, v.kind)) {
          eval.emit(first, "function '" + fn.name + "' is named with a " +
                               std::string(unit_kind_name(fn_unit)) +
                               " suffix but returns a " +
                               unit_kind_name(v.kind) + " expression");
        }
        continue;
      }
      if (kw == "if" || kw == "while" || kw == "switch") {
        eval.evaluate(next_code(toks, first), e);
        continue;
      }
      if (kw == "for" || kw == "do" || kw == "else" || kw == "case" ||
          kw == "break" || kw == "continue" || kw == "using" ||
          kw == "goto" || kw == "default" || kw == "try" || kw == "catch") {
        continue;
      }
    }

    // Local declaration with `=` initializer?
    const VarDecl* decl = nullptr;
    for (std::size_t k = first; k < e; ++k) {
      const auto it = local_at.find(k);
      if (it != local_at.end()) {
        decl = it->second;
        break;
      }
    }
    if (decl != nullptr) {
      const std::size_t eq = next_code(toks, decl->name_token);
      if (eq < e && toks[eq].is_punct("=")) {
        const Value rhs = eval.evaluate(next_code(toks, eq), e);
        const UnitKind declared = unit_of_identifier(decl->name);
        if (units_conflict(declared, rhs.kind)) {
          if (declared == UnitKind::kEnergy && rhs.kind == UnitKind::kPower) {
            eval.emit(decl->name_token,
                      "power used as energy without a duration multiply in "
                      "the initializer of '" + decl->name + "'");
          } else {
            eval.emit(decl->name_token,
                      "'" + decl->name + "' (" + unit_kind_name(declared) +
                          ") is initialized from a " +
                          unit_kind_name(rhs.kind) + " expression");
          }
        } else if (declared == UnitKind::kUnknown &&
                   rhs.kind != UnitKind::kUnknown &&
                   rhs.kind != UnitKind::kScalar) {
          var_units[decl->name] = rhs.kind;  // def-use propagation
        }
      }
      continue;
    }

    // Assignment statement?  Find a top-level assignment operator.
    std::size_t op = e;
    int depth = 0;
    for (std::size_t k = first; k < e; ++k) {
      const Token& a = toks[k];
      if (a.is_punct("(") || a.is_punct("[")) ++depth;
      if (a.is_punct(")") || a.is_punct("]")) --depth;
      if (depth == 0 && a.kind == TokenKind::kPunct &&
          std::find(kAssignOps.begin(), kAssignOps.end(), a.text) !=
              kAssignOps.end()) {
        op = k;
        break;
      }
    }
    if (op < e) {
      const Value lhs = eval.evaluate(first, op);
      const Value rhs = eval.evaluate(next_code(toks, op), e);
      const std::string& opt = toks[op].text;
      if (opt == "=" || opt == "+=" || opt == "-=") {
        if (units_conflict(lhs.kind, rhs.kind)) {
          if (opt == "=") {
            if (lhs.kind == UnitKind::kEnergy &&
                rhs.kind == UnitKind::kPower) {
              eval.emit(op,
                        "power used as energy without a duration multiply "
                        "in assignment");
            } else {
              eval.emit(op, std::string("assignment of a ") +
                                unit_kind_name(rhs.kind) +
                                " expression to a " +
                                unit_kind_name(lhs.kind) + " target");
            }
          } else {
            eval.emit(op, std::string("mixed-unit accumulation: ") +
                              unit_kind_name(lhs.kind) + " " + opt + " " +
                              unit_kind_name(rhs.kind));
          }
        } else if (lhs.kind == rhs.kind && !lhs.suffix.empty() &&
                   !rhs.suffix.empty() && lhs.suffix != rhs.suffix &&
                   opt != "=") {
          eval.emit(op, std::string("mixed-scale accumulation: '") +
                            std::string(lhs.suffix) + "' " + opt + " '" +
                            std::string(rhs.suffix) + "'");
        }
        if (opt == "=" && !lhs.bare_name.empty() &&
            unit_of_identifier(lhs.bare_name) == UnitKind::kUnknown &&
            rhs.kind != UnitKind::kUnknown &&
            rhs.kind != UnitKind::kScalar) {
          var_units[lhs.bare_name] = rhs.kind;
        }
      } else {  // *= or /=
        const UnitKind result = opt == "*="
                                    ? unit_multiply(lhs.kind, rhs.kind)
                                    : unit_divide(lhs.kind, rhs.kind);
        if (opt == "*=" &&
            ((lhs.kind == UnitKind::kCarbonIntensity &&
              rhs.kind == UnitKind::kPower) ||
             (lhs.kind == UnitKind::kPower &&
              rhs.kind == UnitKind::kCarbonIntensity))) {
          eval.emit(op,
                    "carbon intensity applied to power instead of energy; "
                    "multiply the power by a duration to get energy first");
        } else if (units_conflict(lhs.kind, result)) {
          eval.emit(op, std::string("compound ") + opt +
                            " changes the target's dimension from " +
                            unit_kind_name(lhs.kind) + " to " +
                            unit_kind_name(result));
        }
      }
      continue;
    }

    // Plain expression statement: evaluate for nested findings.
    eval.evaluate(first, e);
  }
}

}  // namespace hpcem::lint
