#include "lint/symbols.hpp"

#include <algorithm>
#include <array>
#include <deque>

namespace hpcem::lint {
namespace {

using Tokens = std::vector<Token>;

std::size_t next_code(const Tokens& toks, std::size_t i) {
  ++i;
  while (i < toks.size() && (toks[i].kind == TokenKind::kComment ||
                             toks[i].kind == TokenKind::kPreprocessor)) {
    ++i;
  }
  return i;
}

std::size_t prev_code(const Tokens& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (toks[i].kind != TokenKind::kComment &&
        toks[i].kind != TokenKind::kPreprocessor) {
      return i;
    }
  }
  return toks.size();
}

bool is_call_keyword(std::string_view id) {
  static constexpr std::array<std::string_view, 18> kKeywords = {
      "if",     "for",      "while",    "switch",        "catch",
      "return", "sizeof",   "alignof",  "decltype",      "noexcept",
      "assert", "defined",  "new",      "delete",        "throw",
      "case",   "operator", "static_assert"};
  return std::find(kKeywords.begin(), kKeywords.end(), id) != kKeywords.end();
}

/// Scan a function's tokens (signature through body) for determinism facts
/// and the sanctioned-source annotation.
void scan_function_facts(const Tokens& toks, std::size_t begin,
                         std::size_t end, SymbolFunction& f) {
  static constexpr std::array<std::string_view, 3> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  static constexpr std::array<std::string_view, 3> kClockFns = {
      "clock_gettime", "gettimeofday", "timespec_get"};
  static constexpr std::array<std::string_view, 3> kMacros = {
      "__TIME__", "__DATE__", "__TIMESTAMP__"};
  static constexpr std::array<std::string_view, 6> kArtifactCalls = {
      "make_run_artifact",      "write_artifact_files",
      "make_campaign_artifacts", "run_spec_artifact",
      "render_response",         "render_error"};

  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kComment) {
      if (t.text.find("hpcem-lint: sanctioned-source(determinism-flow)") !=
          std::string::npos) {
        f.sanctioned_source = true;
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier) continue;

    for (const std::string_view clock : kClocks) {
      if (t.text != clock) continue;
      const std::size_t j = next_code(toks, i);
      const std::size_t k = j < toks.size() ? next_code(toks, j) : j;
      if (j < end && toks[j].is_punct("::") && k < end &&
          toks[k].is_identifier("now")) {
        f.reads_wall_clock = true;
      }
    }
    for (const std::string_view fns : kClockFns) {
      if (t.text == fns) {
        const std::size_t j = next_code(toks, i);
        if (j < end && toks[j].is_punct("(")) f.reads_wall_clock = true;
      }
    }
    for (const std::string_view macro : kMacros) {
      if (t.text == macro) f.reads_wall_clock = true;
    }

    if (t.text == "rand" || t.text == "srand") {
      const std::size_t j = next_code(toks, i);
      const std::size_t p = prev_code(toks, i);
      const bool member =
          p < toks.size() && (toks[p].is_punct(".") || toks[p].is_punct("->"));
      if (j < end && toks[j].is_punct("(") && !member) {
        f.reads_unseeded_random = true;
      }
    }
    if (t.text == "random_device") f.reads_unseeded_random = true;

    if (t.text == "RunArtifact") f.emits_artifact = true;
    for (const std::string_view call : kArtifactCalls) {
      if (t.text == call) {
        const std::size_t j = next_code(toks, i);
        if (j < end && toks[j].is_punct("(")) f.emits_artifact = true;
      }
    }
  }
}

}  // namespace

SymbolIndex SymbolIndex::build(const std::vector<TranslationUnit>& units) {
  SymbolIndex idx;

  // Phase 1: collect every definition with its determinism facts.
  for (std::size_t u = 0; u < units.size(); ++u) {
    const TranslationUnit& tu = units[u];
    if (tu.ast == nullptr || tu.tokens == nullptr || tu.path == nullptr) {
      continue;
    }
    for (std::size_t d = 0; d < tu.ast->functions.size(); ++d) {
      const FunctionDef& def = tu.ast->functions[d];
      if (def.body_scope == 0 || def.body_scope >= tu.ast->scopes.size()) {
        continue;
      }
      SymbolFunction f;
      f.name = def.name;
      f.qualified_name = def.qualified_name;
      f.class_name = def.class_name;
      f.path = *tu.path;
      f.line = def.name_token < tu.tokens->size()
                   ? (*tu.tokens)[def.name_token].line
                   : 0;
      f.unit = u;
      f.def_index = d;
      f.param_names.reserve(def.params.size());
      for (const VarDecl& p : def.params) f.param_names.push_back(p.name);
      const Scope& body = tu.ast->scopes[def.body_scope];
      scan_function_facts(*tu.tokens, def.name_token, body.end_token + 1, f);
      idx.functions_.push_back(std::move(f));
    }
  }
  std::sort(idx.functions_.begin(), idx.functions_.end(),
            [](const SymbolFunction& a, const SymbolFunction& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.qualified_name < b.qualified_name;
            });
  for (std::size_t i = 0; i < idx.functions_.size(); ++i) {
    idx.by_name_.emplace(idx.functions_[i].name, i);
  }

  // Phase 2: resolve call edges inside every body.
  for (SymbolFunction& f : idx.functions_) {
    const TranslationUnit& tu = units[f.unit];
    const Tokens& toks = *tu.tokens;
    const FileAst& ast = *tu.ast;
    const FunctionDef& def = ast.functions[f.def_index];
    const Scope& body = ast.scopes[def.body_scope];

    for (std::size_t i = body.begin_token + 1;
         i < body.end_token && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokenKind::kIdentifier || is_call_keyword(t.text)) {
        continue;
      }
      const std::size_t j = next_code(toks, i);
      if (j >= toks.size() || !toks[j].is_punct("(")) continue;

      std::string receiver_type;
      bool typed_receiver = false;
      const std::size_t p = prev_code(toks, i);
      if (p < toks.size()) {
        if (toks[p].is_punct(".") || toks[p].is_punct("->")) {
          typed_receiver = true;
          const std::size_t r = prev_code(toks, p);
          if (r < toks.size() && toks[r].kind == TokenKind::kIdentifier) {
            if (toks[r].is_identifier("this")) {
              receiver_type = f.class_name;
            } else {
              // Only a *simple* receiver (`recv.call()`): if yet another
              // member access precedes it, leave the type unknown.
              const std::size_t rr = prev_code(toks, r);
              const bool simple =
                  rr >= toks.size() ||
                  (!toks[rr].is_punct(".") && !toks[rr].is_punct("->") &&
                   !toks[rr].is_punct("::"));
              if (simple) {
                if (const VarDecl* var = ast.lookup_var(def, toks[r].text)) {
                  receiver_type = var->type_text;
                }
              }
            }
          }
        } else if (toks[p].is_punct("::")) {
          typed_receiver = true;
          const std::size_t q = prev_code(toks, p);
          if (q < toks.size() && toks[q].kind == TokenKind::kIdentifier &&
              toks[q].text != "std") {
            receiver_type = toks[q].text;
          } else if (q < toks.size() && toks[q].text == "std") {
            continue;  // standard-library call: never a project edge
          }
        }
      }
      const std::vector<std::size_t> targets =
          idx.resolve_call(f, t.text, receiver_type, typed_receiver);
      for (const std::size_t tgt : targets) {
        if (std::find(f.callees.begin(), f.callees.end(), tgt) ==
            f.callees.end()) {
          f.callees.push_back(tgt);
        }
      }
    }
    std::sort(f.callees.begin(), f.callees.end());
  }
  return idx;
}

std::vector<std::size_t> SymbolIndex::by_name(std::string_view name) const {
  std::vector<std::size_t> out;
  const auto [lo, hi] = by_name_.equal_range(name);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> SymbolIndex::resolve_call(
    const SymbolFunction& caller, std::string_view name,
    std::string_view receiver_type, bool typed_receiver) const {
  std::vector<std::size_t> all = by_name(name);
  if (all.empty()) return {};

  // Prefer candidates defined in the caller's own file: anonymous-namespace
  // and static helpers shadow same-named functions in other TUs.
  auto prefer_same_path = [&](std::vector<std::size_t> v) {
    std::vector<std::size_t> same;
    for (const std::size_t i : v) {
      if (functions_[i].path == caller.path) same.push_back(i);
    }
    return same.empty() ? v : same;
  };

  if (typed_receiver) {
    if (!receiver_type.empty()) {
      std::vector<std::size_t> filtered;
      for (const std::size_t i : all) {
        const SymbolFunction& f = functions_[i];
        if (!f.class_name.empty() &&
            receiver_type.find(f.class_name) != std::string_view::npos) {
          filtered.push_back(i);
        }
      }
      if (!filtered.empty()) return filtered;
    }
    // Untyped (or unmatched) receiver: only a project-unique name is safe.
    return all.size() == 1 ? all : std::vector<std::size_t>{};
  }

  // Unqualified call: free functions plus the caller's own class methods.
  std::vector<std::size_t> filtered;
  for (const std::size_t i : all) {
    const SymbolFunction& f = functions_[i];
    if (f.class_name.empty() ||
        (!caller.class_name.empty() && f.class_name == caller.class_name)) {
      filtered.push_back(i);
    }
  }
  if (!filtered.empty()) return prefer_same_path(std::move(filtered));
  return all.size() == 1 ? all : std::vector<std::size_t>{};
}

std::vector<bool> SymbolIndex::taint_closure(
    std::vector<std::size_t>& via) const {
  const std::size_t n = functions_.size();
  std::vector<bool> tainted(n, false);
  via.assign(n, npos);

  // Reverse edges: callee -> callers.
  std::vector<std::vector<std::size_t>> callers(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t c : functions_[i].callees) {
      if (c < n) callers[c].push_back(i);
    }
  }

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < n; ++i) {
    const SymbolFunction& f = functions_[i];
    if ((f.reads_wall_clock || f.reads_unseeded_random) &&
        !f.sanctioned_source) {
      tainted[i] = true;
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    const std::size_t cur = queue.front();
    queue.pop_front();
    for (const std::size_t caller : callers[cur]) {
      if (tainted[caller]) continue;
      tainted[caller] = true;
      via[caller] = cur;
      queue.push_back(caller);
    }
  }
  return tainted;
}

}  // namespace hpcem::lint
