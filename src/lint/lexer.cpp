#include "lint/lexer.hpp"

#include <cctype>

namespace hpcem::lint {
namespace {

/// Cursor over the source buffer that tracks 1-based line/column and hides
/// backslash-newline splices from the token scanners.
class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return col_; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  /// True when the cursor sits on a backslash-newline (or backslash-CRLF)
  /// line continuation.
  [[nodiscard]] bool at_splice() const {
    if (peek() != '\\') return false;
    if (peek(1) == '\n') return true;
    return peek(1) == '\r' && peek(2) == '\n';
  }

  /// Consume a line continuation (assumes at_splice()).
  void skip_splice() {
    advance();                      // backslash
    if (peek() == '\r') advance();  // optional CR
    advance();                      // newline
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Scan a `//` comment to the end of line (honouring splices, as the
/// standard does: a spliced line comment continues).
std::string scan_line_comment(Cursor& c) {
  std::string text;
  while (!c.at_end()) {
    if (c.at_splice()) {
      c.skip_splice();
      continue;
    }
    if (c.peek() == '\n') break;
    text += c.advance();
  }
  return text;
}

std::string scan_block_comment(Cursor& c) {
  std::string text;
  text += c.advance();  // '/'
  text += c.advance();  // '*'
  while (!c.at_end()) {
    if (c.peek() == '*' && c.peek(1) == '/') {
      text += c.advance();
      text += c.advance();
      break;
    }
    text += c.advance();
  }
  return text;
}

/// Scan an ordinary "..." or '...' literal, escapes included.  `quote` has
/// already been consumed into `text`.
void scan_quoted(Cursor& c, char quote, std::string& text) {
  while (!c.at_end()) {
    if (c.at_splice()) {
      c.skip_splice();
      continue;
    }
    const char ch = c.peek();
    if (ch == '\\') {
      text += c.advance();
      if (!c.at_end()) text += c.advance();
      continue;
    }
    if (ch == '\n') break;  // unterminated: stop at the line end
    text += c.advance();
    if (ch == quote) break;
  }
}

/// Scan R"tag(...)tag" after the opening quote was consumed into `text`.
void scan_raw_string(Cursor& c, std::string& text) {
  std::string tag;
  while (!c.at_end() && c.peek() != '(' && c.peek() != '\n' &&
         tag.size() <= 16) {
    tag += c.advance();
  }
  text += tag;
  if (c.peek() != '(') return;  // malformed; give up gracefully
  text += c.advance();
  const std::string close = ")" + tag + "\"";
  std::string window;
  while (!c.at_end()) {
    text += c.advance();
    if (text.size() >= close.size() &&
        text.compare(text.size() - close.size(), close.size(), close) == 0) {
      return;
    }
  }
  (void)window;
}

/// Scan a pp-number: digits, digit separators, dots, exponents with signs,
/// and any trailing identifier characters (suffixes, hex digits, UDLs).
std::string scan_number(Cursor& c) {
  std::string text;
  while (!c.at_end()) {
    if (c.at_splice()) {
      c.skip_splice();
      continue;
    }
    const char ch = c.peek();
    if (is_ident_char(ch) || ch == '.' || ch == '\'') {
      text += c.advance();
      continue;
    }
    if ((ch == '+' || ch == '-') && !text.empty()) {
      const char prev = text.back();
      if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
        text += c.advance();
        continue;
      }
    }
    break;
  }
  return text;
}

/// Scan a whole preprocessor directive ('#' already seen, not consumed).
/// Splices are folded away; comments inside the directive are dropped; a
/// trailing // comment ends it.
std::string scan_preprocessor(Cursor& c) {
  std::string text;
  while (!c.at_end()) {
    if (c.at_splice()) {
      c.skip_splice();
      text += ' ';
      continue;
    }
    const char ch = c.peek();
    if (ch == '\n') break;
    if (ch == '/' && c.peek(1) == '/') break;
    if (ch == '/' && c.peek(1) == '*') {
      scan_block_comment(c);
      text += ' ';
      continue;
    }
    if (ch == '"') {
      std::string lit;
      lit += c.advance();
      scan_quoted(c, '"', lit);
      text += lit;
      continue;
    }
    if (ch == '<' && text.find("include") != std::string::npos) {
      // <...> header name: consume to '>' so a '//' inside a path does not
      // look like a comment.
      while (!c.at_end() && c.peek() != '>' && c.peek() != '\n') {
        text += c.advance();
      }
      if (c.peek() == '>') text += c.advance();
      continue;
    }
    text += c.advance();
  }
  return text;
}

/// True when the identifier is a string-literal encoding prefix.
bool is_encoding_prefix(std::string_view id) {
  return id == "u8" || id == "u" || id == "U" || id == "L" || id == "R" ||
         id == "u8R" || id == "uR" || id == "UR" || id == "LR";
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor c(source);
  bool line_has_token = false;  // directives must be first on their line

  while (!c.at_end()) {
    if (c.at_splice()) {
      c.skip_splice();
      continue;
    }
    const char ch = c.peek();
    if (ch == '\n') {
      c.advance();
      line_has_token = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(ch)) != 0) {
      c.advance();
      continue;
    }

    Token tok;
    tok.line = c.line();
    tok.column = c.column();

    if (ch == '/' && c.peek(1) == '/') {
      tok.kind = TokenKind::kComment;
      tok.text = scan_line_comment(c);
      tokens.push_back(std::move(tok));
      continue;  // newline (if any) resets line_has_token above
    }
    if (ch == '/' && c.peek(1) == '*') {
      tok.kind = TokenKind::kComment;
      tok.text = scan_block_comment(c);
      tokens.push_back(std::move(tok));
      line_has_token = true;
      continue;
    }
    if (ch == '#' && !line_has_token) {
      tok.kind = TokenKind::kPreprocessor;
      tok.text = scan_preprocessor(c);
      tokens.push_back(std::move(tok));
      line_has_token = true;
      continue;
    }
    if (ch == '"') {
      tok.kind = TokenKind::kString;
      tok.text += c.advance();
      scan_quoted(c, '"', tok.text);
      tokens.push_back(std::move(tok));
      line_has_token = true;
      continue;
    }
    if (ch == '\'') {
      tok.kind = TokenKind::kCharLiteral;
      tok.text += c.advance();
      scan_quoted(c, '\'', tok.text);
      tokens.push_back(std::move(tok));
      line_has_token = true;
      continue;
    }
    if (is_ident_start(ch)) {
      std::string id;
      while (!c.at_end()) {
        if (c.at_splice()) {
          c.skip_splice();
          continue;
        }
        if (!is_ident_char(c.peek())) break;
        id += c.advance();
      }
      // Encoding prefix glued to a string/raw-string literal?
      if (c.peek() == '"' && is_encoding_prefix(id)) {
        const bool raw = id.back() == 'R';
        tok.kind = raw ? TokenKind::kRawString : TokenKind::kString;
        tok.text = id;
        tok.text += c.advance();  // opening quote
        if (raw) {
          scan_raw_string(c, tok.text);
        } else {
          scan_quoted(c, '"', tok.text);
        }
      } else if (c.peek() == '\'' && is_encoding_prefix(id) && id != "R") {
        tok.kind = TokenKind::kCharLiteral;
        tok.text = id;
        tok.text += c.advance();
        scan_quoted(c, '\'', tok.text);
      } else {
        tok.kind = TokenKind::kIdentifier;
        tok.text = std::move(id);
      }
      tokens.push_back(std::move(tok));
      line_has_token = true;
      continue;
    }
    if (is_digit(ch) || (ch == '.' && is_digit(c.peek(1)))) {
      tok.kind = TokenKind::kNumber;
      tok.text = scan_number(c);
      tokens.push_back(std::move(tok));
      line_has_token = true;
      continue;
    }
    // Punctuator.  Fuse `::` and the common multi-char operators so rules
    // and the scope parser can match them as single tokens.  `<<`/`>>` are
    // deliberately NOT fused: the parser counts `<`/`>` individually for
    // template-angle depth, and `>>` closing two template levels would
    // otherwise be indistinguishable from a shift.
    tok.kind = TokenKind::kPunct;
    tok.text += c.advance();
    const char first = tok.text[0];
    const char second = c.peek();
    auto fuse = [&] { tok.text += c.advance(); };
    switch (first) {
      case ':':
        if (second == ':') fuse();
        break;
      case '-':
        if (second == '>') {
          fuse();
          if (c.peek() == '*') fuse();  // ->*
        } else if (second == '-' || second == '=') {
          fuse();
        }
        break;
      case '+':
        if (second == '+' || second == '=') fuse();
        break;
      case '=':
      case '!':
      case '*':
      case '/':
      case '%':
      case '^':
        if (second == '=') fuse();
        break;
      case '<':
        if (second == '=') fuse();  // <= (but never <<)
        break;
      case '>':
        if (second == '=') fuse();  // >= (but never >>)
        break;
      case '&':
        if (second == '&' || second == '=') fuse();
        break;
      case '|':
        if (second == '|' || second == '=') fuse();
        break;
      case '.':
        if (second == '.' && c.peek(1) == '.') {
          fuse();
          fuse();  // ...
        }
        break;
      default:
        break;
    }
    tokens.push_back(std::move(tok));
    line_has_token = true;
  }
  return tokens;
}

}  // namespace hpcem::lint
