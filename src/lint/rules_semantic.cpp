// Semantic rule families for hpcem_lint: units-flow, determinism-flow and
// lock-discipline.
//
// Unlike the token-stream rules in rules.cpp, these run on the scope/
// declaration AST (lint/ast.hpp), the per-function unit dataflow
// (lint/dataflow.hpp) and the cross-TU symbol index (lint/symbols.hpp).
// All three are project-scope rules: units-flow needs callee parameter
// names from other files, determinism-flow needs the whole call graph, and
// lock-discipline must see a field's guarded_by annotation (usually in a
// header) from the .cpp files that touch the field.
#include <algorithm>
#include <array>
#include <string>

#include "lint/dataflow.hpp"
#include "lint/rule.hpp"
#include "lint/symbols.hpp"

namespace hpcem::lint {
namespace {

using Tokens = std::vector<Token>;

std::size_t next_code(const Tokens& toks, std::size_t i) {
  ++i;
  while (i < toks.size() && (toks[i].kind == TokenKind::kComment ||
                             toks[i].kind == TokenKind::kPreprocessor)) {
    ++i;
  }
  return i;
}

std::size_t prev_code(const Tokens& toks, std::size_t i) {
  while (i > 0) {
    --i;
    if (toks[i].kind != TokenKind::kComment &&
        toks[i].kind != TokenKind::kPreprocessor) {
      return i;
    }
  }
  return toks.size();
}

/// Assemble the symbol-index view over every file that has an AST.
std::vector<TranslationUnit> translation_units(
    const std::vector<FileContext>& files) {
  std::vector<TranslationUnit> units;
  units.reserve(files.size());
  for (const FileContext& f : files) {
    if (f.ast == nullptr) continue;
    TranslationUnit tu;
    tu.path = &f.path;
    tu.tokens = &f.tokens;
    tu.ast = f.ast.get();
    units.push_back(tu);
  }
  return units;
}

// ---------------------------------------------------------------------------
// Rule: units-flow
// ---------------------------------------------------------------------------
// The paper's accounting arithmetic (kW x h -> kWh, kWh x gCO2/kWh ->
// emissions) is exactly where a silent unit mixup corrupts every downstream
// figure.  units-vocabulary only checks public signatures; this rule tracks
// suffix-named quantities *through* function bodies: initializers,
// assignments, accumulation, returns and call arguments.
class UnitsFlowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "units-flow";
  }
  [[nodiscard]] std::string_view description() const override {
    return "dataflow check on unit-suffixed quantities (_kw/_kwh/_gco2/...): "
           "power used as energy without a duration multiply, intensity "
           "applied to power, mixed-unit accumulation, call-argument "
           "dimension mismatches";
  }
  void check_project(const std::vector<FileContext>& files,
                     std::vector<Diagnostic>& out) const override {
    const std::vector<TranslationUnit> units = translation_units(files);
    const SymbolIndex index = SymbolIndex::build(units);
    for (const FileContext& f : files) {
      if (f.ast == nullptr) continue;
      for (const FunctionDef& fn : f.ast->functions) {
        std::vector<UnitFinding> findings;
        analyze_function_units(f.tokens, *f.ast, fn, &index, findings);
        for (const UnitFinding& u : findings) {
          const Token& t = f.tokens[u.token];
          out.push_back(Diagnostic{std::string(name()), f.path, t.line,
                                   t.column, u.message});
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: determinism-flow
// ---------------------------------------------------------------------------
// no-wall-clock bans direct reads; this rule makes the ban *transitive*: a
// function that emits a RunArtifact or serve response must not (through any
// resolved call chain) depend on a wall-clock or unseeded-RNG read.  The
// one legitimate clock (obs wall_now_ns, behind the .hpcemlint carve-out)
// opts out with `// hpcem-lint: sanctioned-source(determinism-flow)` at its
// definition — the annotation is the audited boundary, and everything built
// on top of it stays clean by construction.
class DeterminismFlowRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "determinism-flow";
  }
  [[nodiscard]] std::string_view description() const override {
    return "artifact/serve-emitting functions must not transitively depend "
           "on wall-clock or unseeded-RNG reads (call-graph taint from "
           "no-wall-clock sources, minus sanctioned-source annotations)";
  }
  void check_project(const std::vector<FileContext>& files,
                     std::vector<Diagnostic>& out) const override {
    const std::vector<TranslationUnit> units = translation_units(files);
    const SymbolIndex index = SymbolIndex::build(units);
    std::vector<std::size_t> via;
    const std::vector<bool> tainted = index.taint_closure(via);
    const std::vector<SymbolFunction>& fns = index.functions();
    for (std::size_t i = 0; i < fns.size(); ++i) {
      if (!tainted[i] || !fns[i].emits_artifact) continue;
      // Witness chain: sink -> ... -> direct source.
      std::string chain = fns[i].qualified_name;
      std::size_t cur = i;
      std::size_t hops = 0;
      while (via[cur] != SymbolIndex::npos && hops < 8) {
        cur = via[cur];
        chain += " -> " + fns[cur].qualified_name;
        ++hops;
      }
      const char* source = fns[cur].reads_unseeded_random
                               ? "an unseeded-RNG read"
                               : "a wall-clock read";
      out.push_back(Diagnostic{
          std::string(name()), fns[i].path, fns[i].line, 1,
          "artifact-emitting function '" + fns[i].qualified_name +
              "' transitively depends on " + source + " (" + chain +
              "); derive the value from SimTime/seeded Rng, or annotate "
              "the source function with '// hpcem-lint: "
              "sanctioned-source(determinism-flow)' and justify it"});
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: lock-discipline
// ---------------------------------------------------------------------------
// Fields annotated `// hpcem: guarded_by(<mutex>)` (serve front/cache, obs
// registry, the campaign thread pool) must only be touched inside a scope
// holding a lock_guard/unique_lock/scoped_lock on that mutex.  TSan sees
// the interleavings the test suite happens to schedule; this sees every
// access path, on every build.
class LockDisciplineRule final : public Rule {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "lock-discipline";
  }
  [[nodiscard]] std::string_view description() const override {
    return "accesses to '// hpcem: guarded_by(<mutex>)' fields must sit in "
           "a scope holding lock_guard/unique_lock/scoped_lock on that "
           "mutex (constructors/destructors of the owning class exempt)";
  }
  void check_project(const std::vector<FileContext>& files,
                     std::vector<Diagnostic>& out) const override {
    // Collect every annotated field (usually declared in headers) and
    // surface annotations that bound to nothing — a typo must fail loudly,
    // not silently drop the guarantee.
    struct Guarded {
      const GuardedField* field;
      const FileContext* file;
    };
    std::vector<Guarded> guarded;
    for (const FileContext& f : files) {
      if (f.ast == nullptr) continue;
      for (const GuardedField& g : f.ast->guarded_fields) {
        guarded.push_back({&g, &f});
      }
      for (const auto& [line, raw] : f.ast->unbound_annotations) {
        out.push_back(Diagnostic{
            std::string(name()), f.path, line, 1,
            "guarded_by annotation did not bind to any field declaration "
            "(typo or unsupported declaration form): " + raw});
      }
    }
    if (guarded.empty()) return;

    for (const FileContext& f : files) {
      if (f.ast == nullptr) continue;
      check_file_uses(f, guarded, out);
    }
  }

 private:
  template <typename GuardedVec>
  void check_file_uses(const FileContext& f, const GuardedVec& guarded,
                       std::vector<Diagnostic>& out) const {
    const Tokens& toks = f.tokens;
    const FileAst& ast = *f.ast;
    for (const FunctionDef& fn : ast.functions) {
      if (fn.body_scope == 0 || fn.body_scope >= ast.scopes.size()) continue;
      const Scope& body = ast.scopes[fn.body_scope];

      // Lock declarations visible in this function, found once.
      struct Lock {
        std::size_t scope;
        std::size_t name_token;
        std::vector<std::string> arg_idents;
      };
      std::vector<Lock> locks;
      for (const VarDecl& l : ast.locals) {
        if (l.name_token <= body.begin_token ||
            l.name_token >= body.end_token) {
          continue;
        }
        if (l.type_text.find("lock_guard") == std::string::npos &&
            l.type_text.find("unique_lock") == std::string::npos &&
            l.type_text.find("scoped_lock") == std::string::npos) {
          continue;
        }
        Lock lock;
        lock.scope = l.scope;
        lock.name_token = l.name_token;
        const std::size_t open = next_code(toks, l.name_token);
        if (open < toks.size() &&
            (toks[open].is_punct("(") || toks[open].is_punct("{"))) {
          const bool paren = toks[open].is_punct("(");
          int depth = 1;
          std::size_t k = open;
          while (depth > 0) {
            k = next_code(toks, k);
            if (k >= toks.size()) break;
            if (toks[k].is_punct(paren ? "(" : "{")) ++depth;
            if (toks[k].is_punct(paren ? ")" : "}")) --depth;
            if (toks[k].kind == TokenKind::kIdentifier) {
              lock.arg_idents.push_back(toks[k].text);
            }
          }
        }
        locks.push_back(std::move(lock));
      }

      for (std::size_t i = body.begin_token + 1;
           i < body.end_token && i < toks.size(); ++i) {
        const Token& t = toks[i];
        if (t.kind != TokenKind::kIdentifier) continue;
        for (const auto& g : guarded) {
          const GuardedField& field = *g.field;
          if (t.text != field.name) continue;
          if (!use_of_field(f, ast, fn, toks, i, field)) continue;
          if (lock_held(ast, locks, i, field.mutex_name)) continue;
          out.push_back(Diagnostic{
              std::string(name()), f.path, t.line, t.column,
              "field '" + field.class_name + "::" + field.name +
                  "' is guarded_by(" + field.mutex_name +
                  ") but this access holds no "
                  "lock_guard/unique_lock/scoped_lock on '" +
                  field.mutex_name + "' (declared " + g.file->path + ":" +
                  std::to_string(field.line) + ")"});
        }
      }
    }
  }

  /// Is the identifier at `i` an access to `field` (rather than an
  /// unrelated name, a declaration, or an exempt constructor use)?
  static bool use_of_field(const FileContext& f, const FileAst& ast,
                           const FunctionDef& fn, const Tokens& toks,
                           std::size_t i, const GuardedField& field) {
    // The declaration itself (same file, same token).
    if (&*f.ast == &ast && i == field.name_token &&
        toks[i].line == field.line) {
      return false;
    }
    // Construction/destruction of the owning object is single-threaded by
    // definition; member-init lists and dtor cleanup are exempt.
    if (fn.class_name == field.class_name &&
        (fn.name == field.class_name || fn.name == "~" + field.class_name)) {
      return false;
    }
    const std::size_t p = prev_code(toks, i);
    if (p < toks.size() &&
        (toks[p].is_punct(".") || toks[p].is_punct("->"))) {
      // Member access: only a *typed* receiver counts, so `other.done`
      // on an unrelated type never fires.
      const std::size_t r = prev_code(toks, p);
      if (r >= toks.size() || toks[r].kind != TokenKind::kIdentifier) {
        return false;
      }
      if (toks[r].is_identifier("this")) {
        return fn.class_name == field.class_name;
      }
      const std::size_t rr = prev_code(toks, r);
      const bool simple = rr >= toks.size() ||
                          (!toks[rr].is_punct(".") &&
                           !toks[rr].is_punct("->") &&
                           !toks[rr].is_punct("::"));
      if (!simple) return false;
      const VarDecl* var = ast.lookup_var(fn, toks[r].text);
      return var != nullptr &&
             var->type_text.find(field.class_name) != std::string::npos;
    }
    if (p < toks.size() && toks[p].is_punct("::")) return false;
    // Bare identifier: a use only inside the owning class's own member
    // functions, and only when no local/param shadows the name.
    if (fn.class_name != field.class_name) return false;
    return ast.lookup_var(fn, toks[i].text) == nullptr;
  }

  /// Does any collected lock on `mutex_name` cover token `i` (declared
  /// before it, in an ancestor scope)?
  template <typename LockVec>
  static bool lock_held(const FileAst& ast, const LockVec& locks,
                        std::size_t i, const std::string& mutex_name) {
    if (locks.empty()) return false;
    const std::size_t use_scope = ast.scope_at(i);
    for (const auto& lock : locks) {
      if (lock.name_token >= i) continue;
      if (std::find(lock.arg_idents.begin(), lock.arg_idents.end(),
                    mutex_name) == lock.arg_idents.end()) {
        continue;
      }
      // The lock's scope must be `use_scope` or one of its ancestors.
      std::size_t s = use_scope;
      while (true) {
        if (s == lock.scope) return true;
        if (s == 0) break;
        s = ast.scopes[s].parent;
      }
    }
    return false;
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> semantic_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<UnitsFlowRule>());
  rules.push_back(std::make_unique<DeterminismFlowRule>());
  rules.push_back(std::make_unique<LockDisciplineRule>());
  return rules;
}

}  // namespace hpcem::lint
