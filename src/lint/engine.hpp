// Lint engine: file collection, rule execution, suppression and config
// filtering, and report formatting.
//
// Suppression syntax (inside any comment):
//   // hpcem-lint: allow(rule-a, rule-b)   — silence those rules
//   // hpcem-lint: allow(all)              — silence every rule
// A suppression applies to the line the comment sits on; when the comment
// is the only thing on its line it applies to the next line instead (the
// annotate-above style).  File-level findings (line 0) are only silenced by
// `.hpcemlint` allow/exclude entries, never by inline comments.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/config.hpp"
#include "lint/rule.hpp"

namespace hpcem::lint {

/// Outcome of a lint run over a set of files.
struct LintReport {
  std::vector<Diagnostic> diagnostics;  ///< sorted, post-filter
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings silenced by comments/config

  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

class LintEngine {
 public:
  /// Engine over the default rule catalogue.
  LintEngine() : LintEngine(default_rules()) {}
  explicit LintEngine(std::vector<std::unique_ptr<Rule>> rules)
      : rules_(std::move(rules)) {}

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const {
    return rules_;
  }
  /// True when `name` names a rule in this engine (config validation).
  [[nodiscard]] bool has_rule(std::string_view name) const;

  /// Queue an in-memory source (tests, stdin).  `path` is the repo-relative
  /// name rules and reports will see.
  void add_source(std::string path, std::string content);

  /// Run every rule over the queued sources and filter through `config`.
  [[nodiscard]] LintReport run(const LintConfig& config) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<FileContext> files_;
};

/// Recursively collect lintable sources (*.cpp, *.hpp, *.h) under each of
/// `dirs` (repo-relative, resolved against `root`), skipping any directory
/// whose name starts with "build" or ".".  Returns sorted repo-relative
/// paths; throws hpcem::InvalidArgument for a path that does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root, const std::vector<std::string>& dirs);

/// Read a file into a string; throws hpcem::InvalidArgument on I/O failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Human-readable report: one `path:line:col: [rule] message` per line plus
/// a trailing summary.
[[nodiscard]] std::string format_text(const LintReport& report);

/// Machine-readable report for CI artifacts: schema
/// {"tool","version","files_scanned","suppressed","diagnostics":[...]}.
[[nodiscard]] std::string format_json(const LintReport& report);

}  // namespace hpcem::lint
