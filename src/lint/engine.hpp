// Lint engine: file collection, rule execution, suppression and config
// filtering, and report formatting.
//
// Suppression syntax (inside any comment):
//   // hpcem-lint: allow(rule-a, rule-b)   — silence those rules
//   // hpcem-lint: allow(all)              — silence every rule
// A suppression applies to the line the comment sits on; when the comment
// is the only thing on its line it applies to the next line instead (the
// annotate-above style).  File-level findings (line 0) are only silenced by
// `.hpcemlint` allow/exclude entries, never by inline comments.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/config.hpp"
#include "lint/rule.hpp"

namespace hpcem::lint {

/// Outcome of a lint run over a set of files.
struct LintReport {
  std::vector<Diagnostic> diagnostics;  ///< sorted, post-filter
  std::size_t files_scanned = 0;
  std::size_t suppressed = 0;  ///< findings silenced by comments/config

  // Analysis throughput (per-file passes measured wall-clock; the result
  // itself stays byte-deterministic for any worker count).
  double analysis_wall_ms = 0.0;
  double files_per_sec = 0.0;
  std::size_t workers = 1;

  [[nodiscard]] bool clean() const { return diagnostics.empty(); }
};

class LintEngine {
 public:
  /// Engine over the default rule catalogue.
  LintEngine() : LintEngine(default_rules()) {}
  explicit LintEngine(std::vector<std::unique_ptr<Rule>> rules)
      : rules_(std::move(rules)) {}

  [[nodiscard]] const std::vector<std::unique_ptr<Rule>>& rules() const {
    return rules_;
  }
  /// True when `name` names a rule in this engine (config validation).
  [[nodiscard]] bool has_rule(std::string_view name) const;

  /// Queue an in-memory source (tests, stdin).  `path` is the repo-relative
  /// name rules and reports will see.
  void add_source(std::string path, std::string content);

  /// Worker threads for the per-file passes (AST parse + per-file rules).
  /// 0 (the default) means one worker per hardware thread, capped at 8.
  void set_workers(std::size_t workers) { workers_ = workers; }

  /// Run every rule over the queued sources and filter through `config`.
  /// Per-file work fans out over the worker pool; diagnostics are merged in
  /// file order and sorted, so the report is identical for any worker
  /// count.
  [[nodiscard]] LintReport run(const LintConfig& config);

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<FileContext> files_;
  std::size_t workers_ = 0;
};

/// Recursively collect lintable sources (*.cpp, *.hpp, *.h) under each of
/// `dirs` (repo-relative, resolved against `root`), skipping any directory
/// whose name starts with "build" or ".".  Returns sorted repo-relative
/// paths; throws hpcem::InvalidArgument for a path that does not exist.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root, const std::vector<std::string>& dirs);

/// Read a file into a string; throws hpcem::InvalidArgument on I/O failure.
[[nodiscard]] std::string read_file(const std::string& path);

/// Human-readable report: one `path:line:col: [rule] message` per line plus
/// a trailing summary.
[[nodiscard]] std::string format_text(const LintReport& report);

/// Machine-readable report for CI artifacts: schema
/// {"tool","version","files_scanned","suppressed","analysis_wall_ms",
///  "files_per_sec","workers","diagnostics":[...]}.
[[nodiscard]] std::string format_json(const LintReport& report);

/// GitHub workflow-command annotations (`::error file=...,line=...::msg`),
/// one per diagnostic, so findings render inline on pull requests.  Emits
/// nothing for a clean report.
[[nodiscard]] std::string format_github(const LintReport& report);

}  // namespace hpcem::lint
