// `.hpcemlint` configuration for hpcem_lint.
//
// Line-oriented format, one directive per line, `#` comments:
//
//   # turn a rule off everywhere
//   disable <rule>
//   # permit a rule's findings in paths matching a glob (* and ? wildcards,
//   # * also crosses '/'):
//   allow <rule> <glob>
//   # skip files entirely:
//   exclude <glob>
//
// Paths are repo-relative with '/' separators, exactly as diagnostics
// print them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hpcem::lint {

struct LintConfig {
  struct Allow {
    std::string rule;
    std::string glob;
  };
  std::vector<std::string> disabled_rules;
  std::vector<Allow> allows;
  std::vector<std::string> excludes;
  /// CLI `--rule=` selection: when non-empty, only these rules run (on top
  /// of `disable` directives).  Not part of the file format.
  std::vector<std::string> only_rules;

  [[nodiscard]] bool rule_disabled(std::string_view rule) const;
  /// True when the rule should run under the `only_rules` selection.
  [[nodiscard]] bool rule_selected(std::string_view rule) const;
  [[nodiscard]] bool allowed(std::string_view rule,
                             std::string_view path) const;
  [[nodiscard]] bool excluded(std::string_view path) const;
};

/// Parse configuration text; throws hpcem::ParseError on a malformed line
/// (unknown directive, missing fields).
[[nodiscard]] LintConfig parse_config(std::string_view text);

/// Glob match with `*` (any run, including '/') and `?` (one char).
[[nodiscard]] bool glob_match(std::string_view glob, std::string_view path);

}  // namespace hpcem::lint
