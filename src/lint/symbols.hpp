// Cross-translation-unit symbol index with an approximate call graph.
//
// Built once per lint run from every file's FileAst, the index gives the
// semantic rules what a single file cannot: which function a call resolves
// to (so units-flow can check arguments against the callee's parameter
// names) and which functions transitively reach a nondeterminism source
// (so determinism-flow can make `no-wall-clock` transitive).
//
// Call resolution is deliberately conservative — over-resolving a call
// would let taint leak across unrelated functions that merely share a
// name.  A call `recv.run()` resolves only to methods of classes named in
// `recv`'s declared type; an unqualified `run()` resolves to free
// functions plus same-class methods; a call through an untyped receiver
// resolves only when the name is unique project-wide.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "lint/ast.hpp"
#include "lint/lexer.hpp"

namespace hpcem::lint {

/// One file's contribution to the index (all pointers outlive the index).
struct TranslationUnit {
  const std::string* path = nullptr;
  const std::vector<Token>* tokens = nullptr;
  const FileAst* ast = nullptr;
};

/// A function definition known to the index.
struct SymbolFunction {
  std::string name;            ///< last declarator segment
  std::string qualified_name;  ///< as spelled at the definition
  std::string class_name;      ///< "" for free functions
  std::string path;
  std::size_t line = 0;
  std::size_t unit = 0;      ///< index into the TranslationUnit vector
  std::size_t def_index = 0; ///< index into that unit's ast->functions
  std::vector<std::string> param_names;  ///< ""-padded to keep positions
  std::vector<std::size_t> callees;      ///< resolved SymbolFunction indices

  // Determinism facts read straight off the body's tokens.
  bool reads_wall_clock = false;
  bool reads_unseeded_random = false;
  bool sanctioned_source = false;  ///< carries a sanctioned-source comment
  bool emits_artifact = false;     ///< touches the RunArtifact/serve sinks
};

class SymbolIndex {
 public:
  /// Build the index over every parsed file.  Functions are ordered by
  /// (path, line) so all downstream iteration is deterministic.
  [[nodiscard]] static SymbolIndex build(
      const std::vector<TranslationUnit>& units);

  [[nodiscard]] const std::vector<SymbolFunction>& functions() const {
    return functions_;
  }

  /// Indices of every function with this (unqualified) name.
  [[nodiscard]] std::vector<std::size_t> by_name(std::string_view name) const;

  /// Resolve a call to `name` made from inside `caller`:
  ///  - `receiver_type` non-empty: methods of classes named in that type,
  ///  - empty with `typed_receiver` false: free functions + methods of the
  ///    caller's own class,
  ///  - `typed_receiver` true but type unknown: unique-name fallback only.
  [[nodiscard]] std::vector<std::size_t> resolve_call(
      const SymbolFunction& caller, std::string_view name,
      std::string_view receiver_type, bool typed_receiver) const;

  /// Functions whose values may depend on a wall-clock or unseeded-RNG
  /// read, directly or through any resolved callee (sanctioned sources
  /// excluded).  `via[i]` is the callee index that tainted function i
  /// (npos for direct sources); useful for witness chains.
  [[nodiscard]] std::vector<bool> taint_closure(
      std::vector<std::size_t>& via) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<SymbolFunction> functions_;
  std::multimap<std::string, std::size_t, std::less<>> by_name_;
};

}  // namespace hpcem::lint
