// Diagnostic record emitted by lint rules.
#pragma once

#include <cstddef>
#include <string>

namespace hpcem::lint {

struct Diagnostic {
  std::string rule;     ///< rule name, e.g. "no-wall-clock"
  std::string path;     ///< repo-relative path of the offending file
  std::size_t line = 0; ///< 1-based; 0 for file-level findings
  std::size_t column = 0;
  std::string message;

  /// Stable ordering for deterministic reports: by path, then position,
  /// then rule name.
  friend bool operator<(const Diagnostic& a, const Diagnostic& b) {
    if (a.path != b.path) return a.path < b.path;
    if (a.line != b.line) return a.line < b.line;
    if (a.column != b.column) return a.column < b.column;
    return a.rule < b.rule;
  }
};

}  // namespace hpcem::lint
