#include "lint/engine.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace hpcem::lint {
namespace {

namespace fs = std::filesystem;

/// Parse `hpcem-lint: allow(a, b)` out of a comment's text; empty result
/// when the comment is not a suppression.  "all" suppresses every rule.
std::vector<std::string> parse_suppression(const std::string& comment) {
  const std::string kMarker = "hpcem-lint:";
  const std::size_t at = comment.find(kMarker);
  if (at == std::string::npos) return {};
  std::size_t pos = at + kMarker.size();
  while (pos < comment.size() && comment[pos] == ' ') ++pos;
  const std::string kAllow = "allow(";
  if (comment.compare(pos, kAllow.size(), kAllow) != 0) return {};
  pos += kAllow.size();
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return {};
  std::vector<std::string> rules;
  std::string current;
  for (std::size_t i = pos; i <= close; ++i) {
    const char c = comment[i];
    if (c == ',' || c == ')') {
      if (!current.empty()) rules.push_back(current);
      current.clear();
      continue;
    }
    if (c != ' ' && c != '\t') current += c;
  }
  return rules;
}

/// Per-file map of line -> rules suppressed on that line ("all" included
/// verbatim).  A comment alone on its line annotates the following line.
std::map<std::size_t, std::set<std::string>> suppressions(
    const FileContext& file) {
  std::map<std::size_t, std::set<std::string>> by_line;
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& t = file.tokens[i];
    if (t.kind != TokenKind::kComment) continue;
    const std::vector<std::string> rules = parse_suppression(t.text);
    if (rules.empty()) continue;
    bool alone = true;
    for (const Token& other : file.tokens) {
      if (&other != &t && other.line == t.line &&
          other.column < t.column) {
        alone = false;
        break;
      }
    }
    const std::size_t target = alone ? t.line + 1 : t.line;
    by_line[target].insert(rules.begin(), rules.end());
  }
  return by_line;
}

bool suppressed_at(
    const std::map<std::size_t, std::set<std::string>>& by_line,
    const Diagnostic& d) {
  const auto it = by_line.find(d.line);
  if (it == by_line.end()) return false;
  return it->second.contains(d.rule) || it->second.contains("all");
}

}  // namespace

bool LintEngine::has_rule(std::string_view name) const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [&](const auto& r) { return r->name() == name; });
}

void LintEngine::add_source(std::string path, std::string content) {
  FileContext ctx;
  ctx.path = std::move(path);
  ctx.tokens = lex(content);
  ctx.content = std::move(content);
  files_.push_back(std::move(ctx));
}

LintReport LintEngine::run(const LintConfig& config) {
  LintReport report;

  // The lint *report* is deterministic; this wall-clock read only feeds the
  // throughput numbers (analysis_wall_ms / files_per_sec), never a finding.
  // hpcem-lint: allow(no-wall-clock)
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<FileContext*> active;
  for (FileContext& f : files_) {
    if (!config.excluded(f.path)) active.push_back(&f);
  }
  report.files_scanned = active.size();

  std::size_t workers = workers_;
  if (workers == 0) {
    workers = std::min<std::size_t>(
        8, std::max<std::size_t>(1, std::thread::hardware_concurrency()));
  }
  report.workers = workers;
  ThreadPool pool(workers);

  // Phase 1 (parallel): attach scope/declaration ASTs.  Each task touches
  // only its own file, so the barrier is the only synchronisation needed.
  for (FileContext* f : active) {
    if (f->ast != nullptr) continue;
    pool.submit([f] {
      f->ast = std::make_shared<const FileAst>(parse_ast(f->tokens));
    });
  }
  pool.wait_idle();

  // Phase 2 (parallel): per-file rules, one diagnostics vector per file so
  // the merge below is a deterministic file-order concatenation.
  std::vector<std::unique_ptr<Rule>> const& rules = rules_;
  std::vector<std::vector<Diagnostic>> per_file(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    pool.submit([&, i] {
      for (const auto& rule : rules) {
        if (config.rule_disabled(rule->name()) ||
            !config.rule_selected(rule->name())) {
          continue;
        }
        rule->check_file(*active[i], per_file[i]);
      }
    });
  }
  pool.wait_idle();

  std::vector<Diagnostic> raw;
  for (std::vector<Diagnostic>& v : per_file) {
    raw.insert(raw.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }

  // Phase 3 (serial): project-scope rules see the same filtered view.
  std::vector<FileContext> project_view;
  project_view.reserve(active.size());
  for (const FileContext* f : active) project_view.push_back(*f);
  for (const auto& rule : rules_) {
    if (config.rule_disabled(rule->name()) ||
        !config.rule_selected(rule->name())) {
      continue;
    }
    rule->check_project(project_view, raw);
  }

  std::map<std::string, std::map<std::size_t, std::set<std::string>>>
      suppression_map;
  for (const FileContext* f : active) {
    suppression_map[f->path] = suppressions(*f);
  }
  for (Diagnostic& d : raw) {
    const bool inline_ok =
        d.line > 0 && suppressed_at(suppression_map[d.path], d);
    const bool config_ok = config.allowed(d.rule, d.path);
    if (inline_ok || config_ok) {
      ++report.suppressed;
      continue;
    }
    report.diagnostics.push_back(std::move(d));
  }
  std::sort(report.diagnostics.begin(), report.diagnostics.end());

  // hpcem-lint: allow(no-wall-clock) — same throughput measurement as t0.
  const auto t1 = std::chrono::steady_clock::now();
  report.analysis_wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  report.files_per_sec =
      report.analysis_wall_ms > 0.0
          ? static_cast<double>(report.files_scanned) /
                (report.analysis_wall_ms / 1000.0)
          : 0.0;
  return report;
}

std::vector<std::string> collect_sources(
    const std::string& root, const std::vector<std::string>& dirs) {
  std::vector<std::string> paths;
  const fs::path base(root);
  for (const std::string& dir : dirs) {
    const fs::path target = base / dir;
    require(fs::exists(target),
            "hpcem_lint: path does not exist: " + target.string());
    if (fs::is_regular_file(target)) {
      paths.push_back(dir);
      continue;
    }
    auto it = fs::recursive_directory_iterator(target);
    for (const fs::directory_entry& entry : it) {
      const std::string name = entry.path().filename().string();
      if (entry.is_directory() &&
          (name.rfind("build", 0) == 0 || name.rfind('.', 0) == 0)) {
        it.disable_recursion_pending();
        continue;
      }
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      paths.push_back(
          fs::relative(entry.path(), base).generic_string());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  return paths;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "hpcem_lint: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string format_text(const LintReport& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics) {
    os << d.path;
    if (d.line > 0) os << ':' << d.line << ':' << d.column;
    os << ": [" << d.rule << "] " << d.message << '\n';
  }
  os << (report.clean() ? "clean" : "FAILED") << ": "
     << report.diagnostics.size() << " finding(s), " << report.suppressed
     << " suppressed, " << report.files_scanned << " file(s) scanned\n";
  return os.str();
}

std::string format_json(const LintReport& report) {
  JsonValue doc = JsonValue::object();
  doc.set("tool", "hpcem_lint");
  doc.set("version", 1);
  doc.set("files_scanned", report.files_scanned);
  doc.set("suppressed", report.suppressed);
  doc.set("analysis_wall_ms", report.analysis_wall_ms);
  doc.set("files_per_sec", report.files_per_sec);
  doc.set("workers", report.workers);
  JsonValue diags = JsonValue::array();
  for (const Diagnostic& d : report.diagnostics) {
    JsonValue entry = JsonValue::object();
    entry.set("rule", d.rule);
    entry.set("path", d.path);
    entry.set("line", d.line);
    entry.set("column", d.column);
    entry.set("message", d.message);
    diags.push_back(std::move(entry));
  }
  doc.set("diagnostics", std::move(diags));
  return doc.dump() + "\n";
}

std::string format_github(const LintReport& report) {
  // Workflow-command data must escape %, CR and LF so a multi-line message
  // cannot smuggle in a second command.
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '%') {
        out += "%25";
      } else if (c == '\r') {
        out += "%0D";
      } else if (c == '\n') {
        out += "%0A";
      } else {
        out += c;
      }
    }
    return out;
  };
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics) {
    os << "::error file=" << escape(d.path);
    if (d.line > 0) {
      os << ",line=" << d.line;
      if (d.column > 0) os << ",col=" << d.column;
    }
    os << ",title=hpcem_lint " << escape(d.rule) << "::" << escape(d.message)
       << '\n';
  }
  return os.str();
}

}  // namespace hpcem::lint
