// Rule interface for the hpcem_lint engine.
//
// A rule sees one fully-lexed file at a time through `FileContext` and
// appends diagnostics; project-scope rules (include cycles) additionally get
// a pass over every file at once.  Rules never filter themselves: the engine
// owns suppression comments, config disables and per-path allowlists, so a
// rule's job is only to report everything it believes is a finding.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/ast.hpp"
#include "lint/diagnostic.hpp"
#include "lint/lexer.hpp"

namespace hpcem::lint {

/// One lexed source file plus the path-derived facts rules key off.
struct FileContext {
  std::string path;           ///< repo-relative, '/'-separated
  std::string content;        ///< raw text (rules rarely need it)
  std::vector<Token> tokens;  ///< from lex(content)
  /// Scope/declaration structure, attached by the engine before any rule
  /// runs (shared so copies of the context stay cheap).
  std::shared_ptr<const FileAst> ast;

  [[nodiscard]] bool is_header() const {
    return ends_with(".hpp") || ends_with(".h");
  }
  /// Public headers live under src/ — the API surface other layers include.
  [[nodiscard]] bool is_public_header() const {
    return is_header() && path.rfind("src/", 0) == 0;
  }
  [[nodiscard]] bool in_dir(std::string_view prefix) const {
    return path.rfind(prefix, 0) == 0;
  }

 private:
  [[nodiscard]] bool ends_with(std::string_view suffix) const {
    return path.size() >= suffix.size() &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  }
};

class Rule {
 public:
  virtual ~Rule() = default;
  /// Stable kebab-case name used in reports, config and suppressions.
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// One-line human description for --list-rules and docs.
  [[nodiscard]] virtual std::string_view description() const = 0;
  /// Per-file pass.
  virtual void check_file(const FileContext& file,
                          std::vector<Diagnostic>& out) const {
    (void)file;
    (void)out;
  }
  /// Whole-project pass (runs once, after every file was lexed).
  virtual void check_project(const std::vector<FileContext>& files,
                             std::vector<Diagnostic>& out) const {
    (void)files;
    (void)out;
  }
};

/// The built-in rule set, in catalogue order.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> default_rules();

/// The semantic rule family (units-flow, determinism-flow, lock-discipline)
/// from rules_semantic.cpp; default_rules() appends these.
[[nodiscard]] std::vector<std::unique_ptr<Rule>> semantic_rules();

}  // namespace hpcem::lint
