// Dragonfly interconnect topology (Slingshot-style, paper Table 1).
//
// ARCHER2's fabric is 768 Slingshot switches in a dragonfly: switches are
// partitioned into groups with all-to-all local connectivity inside a group
// and a near-uniform spread of global links between groups.  The model
// captures what the paper's analysis needs:
//  * the component inventory (switch count feeds the fabric power model);
//  * routing hop counts between nodes, which determine how sensitive an
//    application's communication fraction is to job placement (used by the
//    placement-quality example and ablations).
//
// Geometry defaults reproduce the ARCHER2 scale: 24 groups x 32 switches x
// 8 node ports = 768 switches / 6144 node ports, hosting the 5860 nodes.
#pragma once

#include <cstddef>
#include <vector>

#include "power/plant.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Dragonfly geometry parameters.
struct DragonflyParams {
  std::size_t groups = 24;             ///< g
  std::size_t switches_per_group = 32; ///< a
  std::size_t nodes_per_switch = 8;    ///< p
  std::size_t global_links_per_switch = 1;  ///< h

  [[nodiscard]] std::size_t total_switches() const {
    return groups * switches_per_group;
  }
  [[nodiscard]] std::size_t total_node_ports() const {
    return total_switches() * nodes_per_switch;
  }
  [[nodiscard]] std::size_t global_links_per_group() const {
    return switches_per_group * global_links_per_switch;
  }
};

/// Node and switch identifiers are dense indices.
using NodeId = std::size_t;
using SwitchId = std::size_t;
using GroupId = std::size_t;

/// Immutable dragonfly topology with routing queries.
class Dragonfly {
 public:
  /// Validates feasibility: every group must be able to reach every other
  /// (a*h >= g-1) and the node count must fit the port count.
  explicit Dragonfly(DragonflyParams params, std::size_t node_count);

  [[nodiscard]] const DragonflyParams& params() const { return params_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }

  [[nodiscard]] SwitchId switch_of_node(NodeId n) const;
  [[nodiscard]] GroupId group_of_switch(SwitchId s) const;
  [[nodiscard]] GroupId group_of_node(NodeId n) const;

  /// Groups reachable by the global links of switch `s`, in link order.
  [[nodiscard]] std::vector<GroupId> global_neighbours(SwitchId s) const;

  /// True if some switch in `from` has a global link to `to`.
  [[nodiscard]] bool groups_linked(GroupId from, GroupId to) const;

  /// A switch in `from` carrying a global link towards `to`; throws if the
  /// groups are not directly linked (cannot happen for valid geometries).
  [[nodiscard]] SwitchId gateway_switch(GroupId from, GroupId to) const;

  /// Number of switch-to-switch link traversals on a minimal route
  /// (0 same switch, 1 same group, up to 3 for inter-group l-g-l routes).
  [[nodiscard]] std::size_t min_hops(NodeId a, NodeId b) const;

  /// Mean pairwise min_hops over all distinct node pairs in `nodes`
  /// (the placement-quality metric; lower is better).
  [[nodiscard]] double mean_pairwise_hops(
      const std::vector<NodeId>& nodes) const;

  /// Total number of local (intra-group) switch-to-switch links.
  [[nodiscard]] std::size_t local_link_count() const;
  /// Total number of global (inter-group) links (unidirectional count).
  [[nodiscard]] std::size_t global_link_count() const;

 private:
  /// Group targeted by global link `l` of switch `s` (canonical layout:
  /// links of a group cycle round-robin over the other g-1 groups).
  [[nodiscard]] GroupId link_target(SwitchId s, std::size_t l) const;

  DragonflyParams params_;
  std::size_t node_count_;
};

/// Fabric power: the paper's conclusion notes switch draw is essentially
/// flat (200-250 W) regardless of load, so the fabric is a fixed cost.
class FabricPowerModel {
 public:
  FabricPowerModel(std::size_t switch_count, SwitchPowerModel switch_model);

  [[nodiscard]] Power power(double traffic_load) const;
  [[nodiscard]] std::size_t switch_count() const { return switch_count_; }

 private:
  std::size_t switch_count_;
  SwitchPowerModel switch_model_;
};

}  // namespace hpcem
