#include "interconnect/dragonfly.hpp"

#include "util/error.hpp"

namespace hpcem {

Dragonfly::Dragonfly(DragonflyParams params, std::size_t node_count)
    : params_(params), node_count_(node_count) {
  require(params_.groups >= 2, "Dragonfly: need at least two groups");
  require(params_.switches_per_group >= 1 && params_.nodes_per_switch >= 1 &&
              params_.global_links_per_switch >= 1,
          "Dragonfly: geometry parameters must be positive");
  require(params_.global_links_per_group() >= params_.groups - 1,
          "Dragonfly: not enough global links for all-to-all group "
          "connectivity (need a*h >= g-1)");
  require(node_count_ >= 1 && node_count_ <= params_.total_node_ports(),
          "Dragonfly: node count must fit the available node ports");
}

SwitchId Dragonfly::switch_of_node(NodeId n) const {
  require(n < node_count_, "Dragonfly::switch_of_node: node out of range");
  // Nodes are packed switch-by-switch, the Cray EX cabling order.
  return n / params_.nodes_per_switch;
}

GroupId Dragonfly::group_of_switch(SwitchId s) const {
  require(s < params_.total_switches(),
          "Dragonfly::group_of_switch: switch out of range");
  return s / params_.switches_per_group;
}

GroupId Dragonfly::group_of_node(NodeId n) const {
  return group_of_switch(switch_of_node(n));
}

GroupId Dragonfly::link_target(SwitchId s, std::size_t l) const {
  const GroupId g = group_of_switch(s);
  const std::size_t local_index = s % params_.switches_per_group;
  // Canonical layout: the a*h global links of a group cycle round-robin
  // over the other g-1 groups, so every pair of groups is linked when
  // a*h >= g-1 and the extra links spread evenly.
  const std::size_t link_index =
      local_index * params_.global_links_per_switch + l;
  const std::size_t offset = link_index % (params_.groups - 1);
  return (g + 1 + offset) % params_.groups;
}

std::vector<GroupId> Dragonfly::global_neighbours(SwitchId s) const {
  require(s < params_.total_switches(),
          "Dragonfly::global_neighbours: switch out of range");
  std::vector<GroupId> out;
  out.reserve(params_.global_links_per_switch);
  for (std::size_t l = 0; l < params_.global_links_per_switch; ++l) {
    out.push_back(link_target(s, l));
  }
  return out;
}

bool Dragonfly::groups_linked(GroupId from, GroupId to) const {
  require(from < params_.groups && to < params_.groups,
          "Dragonfly::groups_linked: group out of range");
  if (from == to) return false;
  // With the round-robin layout the first g-1 link indices already cover
  // every other group, so linkage always holds for valid geometries; scan
  // anyway so alternative layouts stay correct.
  const std::size_t base = from * params_.switches_per_group;
  for (std::size_t i = 0; i < params_.switches_per_group; ++i) {
    for (std::size_t l = 0; l < params_.global_links_per_switch; ++l) {
      if (link_target(base + i, l) == to) return true;
    }
  }
  return false;
}

SwitchId Dragonfly::gateway_switch(GroupId from, GroupId to) const {
  require(from < params_.groups && to < params_.groups && from != to,
          "Dragonfly::gateway_switch: bad group pair");
  const std::size_t base = from * params_.switches_per_group;
  for (std::size_t i = 0; i < params_.switches_per_group; ++i) {
    for (std::size_t l = 0; l < params_.global_links_per_switch; ++l) {
      if (link_target(base + i, l) == to) return base + i;
    }
  }
  throw StateError("Dragonfly::gateway_switch: groups not linked");
}

std::size_t Dragonfly::min_hops(NodeId a, NodeId b) const {
  const SwitchId sa = switch_of_node(a);
  const SwitchId sb = switch_of_node(b);
  if (sa == sb) return 0;
  const GroupId ga = group_of_switch(sa);
  const GroupId gb = group_of_switch(sb);
  if (ga == gb) return 1;  // all-to-all local links inside a group

  // Minimal inter-group route: (local to gateway) + global + (local from
  // entry), dropping local legs when the endpoint switch is the gateway.
  const SwitchId out_gw = gateway_switch(ga, gb);
  const SwitchId in_gw = gateway_switch(gb, ga);
  std::size_t hops = 1;  // the global link
  if (out_gw != sa) ++hops;
  if (in_gw != sb) ++hops;
  return hops;
}

double Dragonfly::mean_pairwise_hops(const std::vector<NodeId>& nodes) const {
  require(nodes.size() >= 2,
          "Dragonfly::mean_pairwise_hops: need at least two nodes");
  std::size_t total = 0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      total += min_hops(nodes[i], nodes[j]);
      ++pairs;
    }
  }
  return static_cast<double>(total) / static_cast<double>(pairs);
}

std::size_t Dragonfly::local_link_count() const {
  const std::size_t a = params_.switches_per_group;
  return params_.groups * a * (a - 1) / 2;
}

std::size_t Dragonfly::global_link_count() const {
  return params_.total_switches() * params_.global_links_per_switch;
}

FabricPowerModel::FabricPowerModel(std::size_t switch_count,
                                   SwitchPowerModel switch_model)
    : switch_count_(switch_count), switch_model_(switch_model) {
  require(switch_count_ > 0, "FabricPowerModel: need at least one switch");
}

Power FabricPowerModel::power(double traffic_load) const {
  return switch_model_.power(traffic_load) *
         static_cast<double>(switch_count_);
}

}  // namespace hpcem
