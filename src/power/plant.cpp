#include "power/plant.hpp"

#include "util/error.hpp"

namespace hpcem {

namespace {
void check_load(double load, const char* who) {
  require(load >= 0.0 && load <= 1.0,
          std::string(who) + ": load must be in [0, 1]");
}
}  // namespace

Power SwitchPowerModel::power(double traffic_load) const {
  check_load(traffic_load, "SwitchPowerModel");
  return idle + (loaded - idle) * traffic_load;
}

Power CabinetOverheadModel::power(double compute_load) const {
  check_load(compute_load, "CabinetOverheadModel");
  return idle + (loaded - idle) * compute_load;
}

Power PueModel::facility_power(Power it_power) const {
  require(pue >= 1.0, "PueModel: PUE must be >= 1");
  return it_power * pue;
}

}  // namespace hpcem
