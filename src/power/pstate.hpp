// CPU P-state selection and BIOS determinism modes, as exposed on the
// modelled machine (dual AMD EPYC "Rome"-class nodes, ARCHER2 configuration).
//
// The paper's two operational levers are exactly these:
//  * the per-job CPU frequency cap — ARCHER2 exposes 1.5, 2.0 and 2.25 GHz,
//    and only the 2.25 GHz setting enables turbo boost (§4.2);
//  * the BIOS choice between AMD Power Determinism and Performance
//    Determinism (§4.1, AMD reference [4] of the paper).
#pragma once

#include <string>

#include "util/units.hpp"

namespace hpcem {

/// A selectable CPU frequency cap.  `turbo` may only be enabled at the
/// highest nominal frequency, mirroring the ARCHER2 Slurm interface.
struct PState {
  Frequency nominal;
  bool turbo = false;

  friend bool operator==(const PState&, const PState&) = default;
};

/// The three ARCHER2 P-states.
namespace pstates {
inline constexpr PState kLow{Frequency::ghz(1.5), false};
inline constexpr PState kMid{Frequency::ghz(2.0), false};
inline constexpr PState kHighTurbo{Frequency::ghz(2.25), true};
/// 2.25 GHz with boost disabled (not used operationally on ARCHER2 but
/// useful for ablations separating the cap change from the boost change).
inline constexpr PState kHighNoTurbo{Frequency::ghz(2.25), false};
}  // namespace pstates

/// Validate that a PState is one the modelled hardware can express.
[[nodiscard]] bool is_valid_pstate(const PState& p);

/// Human-readable label, e.g. "2.25 GHz + turbo".
[[nodiscard]] std::string to_string(const PState& p);

/// AMD BIOS determinism setting (paper §4.1).
///
/// Under *power determinism* every part runs to the socket power limit, so
/// better-binned silicon boosts further and draws more; under *performance
/// determinism* all parts are clamped to the reference part's performance,
/// collapsing the per-part power spread downwards at a ~1% performance cost.
enum class DeterminismMode {
  kPowerDeterminism,
  kPerformanceDeterminism,
};

[[nodiscard]] std::string to_string(DeterminismMode m);

}  // namespace hpcem
