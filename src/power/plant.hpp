// Non-compute plant power models: interconnect switches, coolant
// distribution units, file systems and cabinet overheads.
//
// Calibration anchors are Table 2 of the paper plus the conclusion's
// observation that switch draw is "steady at 200-250 W irrespective of
// system load" — i.e. the fabric is, to first order, a fixed cost, which is
// why the paper's efficiency work targets the compute nodes.
#pragma once

#include "util/units.hpp"

namespace hpcem {

/// One Slingshot switch.  Draw is nearly load-independent.
struct SwitchPowerModel {
  Power idle = Power::watts(200.0);
  Power loaded = Power::watts(250.0);

  /// Power at a given traffic load fraction in [0, 1].
  [[nodiscard]] Power power(double traffic_load) const;
};

/// Per-cabinet overhead (rectifiers, fans, cabinet controllers).  Scales
/// weakly with the compute load housed in the cabinet: 6.5 kW floor to
/// 8.7 kW fully loaded (23 cabinets -> 150 kW idle / 200 kW loaded).
struct CabinetOverheadModel {
  Power idle = Power::watts(6500.0);
  Power loaded = Power::watts(8700.0);

  [[nodiscard]] Power power(double compute_load) const;
};

/// Coolant distribution unit: constant 16 kW regardless of load (pumps run
/// continuously; Table 2 lists identical idle and loaded values).
struct CduPowerModel {
  Power draw = Power::watts(16000.0);

  [[nodiscard]] Power power(double /*load*/) const { return draw; }
};

/// One file system (NetApp / ClusterStor): constant 8 kW (Table 2).
struct FilesystemPowerModel {
  Power draw = Power::watts(8000.0);

  [[nodiscard]] Power power(double /*load*/) const { return draw; }
};

/// Power usage effectiveness of the hosting datacentre: total facility
/// power = IT power x PUE.  ARCHER2's ACF hosting is highly efficient
/// (evaporative cooling); the default is representative, not published.
struct PueModel {
  double pue = 1.1;

  [[nodiscard]] Power facility_power(Power it_power) const;
};

}  // namespace hpcem
