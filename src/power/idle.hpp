// Idle-node power management.
//
// The paper's conclusion flags the structural problem: an idle node still
// draws ~50% of a loaded node (230 W vs ~510 W), so energy efficiency
// demands near-100% utilisation.  The complementary lever — not exercised
// on ARCHER2, modelled here as an ablation — is suspending idle nodes to a
// low-power state at the cost of a wake-up latency that hurts scheduler
// responsiveness.  The model quantifies the trade:
//   * fleet idle power as a function of utilisation and policy;
//   * the effective extra wait time jobs see when they land on suspended
//     nodes (wake latency x probability of needing a wake).
#pragma once

#include "util/units.hpp"

namespace hpcem {

/// Suspend policy for idle nodes.
struct IdlePowerPolicy {
  bool suspend_enabled = false;
  /// Draw of a suspended node (S3-like: fans/BMC only).
  Power suspended = Power::watts(45.0);
  /// Fraction of idle nodes eligible for suspension; the rest stay warm as
  /// a responsiveness buffer for incoming jobs.
  double suspendable_fraction = 0.7;
  /// Time to bring a suspended node back to service.
  Duration wake_latency = Duration::minutes(3.0);

  friend bool operator==(const IdlePowerPolicy&,
                         const IdlePowerPolicy&) = default;
};

/// Fleet idle draw for `idle_nodes` idle nodes under a policy.
[[nodiscard]] Power fleet_idle_power(Power idle_each,
                                     const IdlePowerPolicy& policy,
                                     std::size_t idle_nodes);

/// Annualised energy saved by the policy at a given utilisation, for a
/// fleet of `total_nodes`.
[[nodiscard]] Energy annual_idle_saving(Power idle_each,
                                        const IdlePowerPolicy& policy,
                                        std::size_t total_nodes,
                                        double utilisation);

/// Expected extra start latency a job sees: the probability that its
/// allocation must wake suspended nodes times the wake latency.  With a
/// warm buffer of (1 - suspendable_fraction) x idle nodes, jobs needing no
/// more than the buffer start immediately.
[[nodiscard]] Duration expected_extra_start_latency(
    const IdlePowerPolicy& policy, std::size_t idle_nodes,
    std::size_t job_nodes);

}  // namespace hpcem
