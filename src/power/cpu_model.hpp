// DVFS CPU power/frequency model.
//
// Dynamic CMOS power scales as f·V(f)²; the voltage-frequency curve is a
// representative Zen2 fit anchored so that the published ARCHER2
// application measurements are reproducible (see DESIGN.md §3, calibration
// anchors).  The model deliberately separates:
//  * a *core* dynamic component that scales with the core clock (f·V²),
//  * an *uncore* component (memory controllers, DRAM, Infinity Fabric, NIC)
//    that is load- but not clock-sensitive,
// because the paper's Table 4 energy ratios are only explainable with a
// clock-insensitive share — memory-bound codes keep the DRAM subsystem busy
// regardless of core frequency.
#pragma once

#include "power/pstate.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Voltage-frequency curve parameters: V(f) = a + b f + c f² (f in GHz).
/// Defaults are a representative Zen2-class fit through (1.5 GHz, 0.85 V),
/// (2.0 GHz, 0.95 V) and (2.8 GHz, 1.28 V).
struct VfCurve {
  double a = 1.040;
  double b = -0.372;
  double c = 0.1635;

  /// Core voltage at frequency `f`.
  [[nodiscard]] double voltage(Frequency f) const;
};

/// CPU clocking behaviour of one node type.
struct CpuModelParams {
  VfCurve vf{};
  /// Reference all-core boost frequency reached under the 2.25 GHz + turbo
  /// P-state in performance-determinism mode.  The paper observed
  /// applications "typically boost ... to closer to 2.8 GHz".
  Frequency reference_boost = Frequency::ghz(2.8);
  /// Additional boost headroom granted by power-determinism mode (better
  /// silicon runs to the power limit): ~1% extra clock on average, matching
  /// Table 3's <=1% performance delta.
  double power_determinism_boost = 0.01;
};

/// Effective core clock for a P-state and BIOS mode.  App-specific boost
/// behaviour is applied by scaling `app_boost` (the application's achieved
/// all-core boost at reference conditions, typically ~2.8 GHz).
[[nodiscard]] Frequency effective_frequency(const CpuModelParams& params,
                                            const PState& pstate,
                                            DeterminismMode mode,
                                            Frequency app_boost);

/// Dynamic-power scaling factor f·V(f)² normalised to 1.0 at `ref`.
/// The core component of node power is multiplied by this.
[[nodiscard]] double dvfs_factor(const CpuModelParams& params, Frequency f,
                                 Frequency ref);

}  // namespace hpcem
