// Facility-level power aggregation: the component inventory of Table 2.
//
// `FacilityPowerModel` combines the per-component models with the machine's
// component counts and answers the questions the paper's §3 answers: what
// does each subsystem draw idle and loaded, what fraction of the total is
// each, and what does the *compute cabinet* metering boundary (nodes +
// switches + cabinet overheads, ~90% of the system) see — the boundary the
// paper's Figures 1-3 are measured at.
#pragma once

#include <string>
#include <vector>

#include "power/node_model.hpp"
#include "power/plant.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Component counts for the modelled machine (defaults: ARCHER2, Table 1).
struct FacilityInventory {
  std::size_t compute_nodes = 5860;
  std::size_t switches = 768;
  std::size_t cabinets = 23;
  std::size_t cdus = 6;
  std::size_t filesystems = 5;
  std::size_t cores_per_node = 128;  ///< 2x 64-core EPYC

  [[nodiscard]] std::size_t total_cores() const {
    return compute_nodes * cores_per_node;
  }
};

/// One row of the Table 2 reproduction.
struct ComponentPowerRow {
  std::string component;
  std::size_t count = 0;
  Power idle_each;
  Power loaded_each;
  Power idle_total;
  Power loaded_total;
  /// Share of the loaded facility total, as the paper's "Approx. %" column.
  double loaded_share = 0.0;
};

/// Aggregated facility power model.
class FacilityPowerModel {
 public:
  FacilityPowerModel(FacilityInventory inventory, NodePowerParams node_params,
                     DynamicPowerProfile fleet_profile,
                     SwitchPowerModel switch_model = {},
                     CabinetOverheadModel cabinet_model = {},
                     CduPowerModel cdu_model = {},
                     FilesystemPowerModel fs_model = {});

  [[nodiscard]] const FacilityInventory& inventory() const {
    return inventory_;
  }
  [[nodiscard]] const NodePowerParams& node_params() const {
    return node_params_;
  }

  /// Whole-machine power with every node at the given activity.
  [[nodiscard]] Power total_power(const NodeActivity& activity) const;

  /// Idle whole-machine power (all nodes idle, fabric idle).
  [[nodiscard]] Power total_idle_power() const;

  /// Power inside the compute-cabinet metering boundary (nodes + switches +
  /// cabinet overheads) given an already-aggregated node fleet power and a
  /// load factor for the weakly load-dependent plant.
  [[nodiscard]] Power cabinet_power(Power node_fleet_power,
                                    double load_factor) const;

  /// Fraction of the loaded facility total inside the cabinet boundary
  /// (the paper states ~90%).
  [[nodiscard]] double cabinet_share_loaded() const;

  /// Reproduce Table 2: per-component idle/loaded draws and shares, using a
  /// representative fully-loaded node activity.
  [[nodiscard]] std::vector<ComponentPowerRow> component_table(
      const NodeActivity& loaded_activity) const;

  [[nodiscard]] const SwitchPowerModel& switch_model() const {
    return switch_model_;
  }
  [[nodiscard]] const CabinetOverheadModel& cabinet_model() const {
    return cabinet_model_;
  }

 private:
  FacilityInventory inventory_;
  NodePowerParams node_params_;
  /// Fleet-average dynamic profile used for whole-machine estimates.
  DynamicPowerProfile fleet_profile_;
  SwitchPowerModel switch_model_;
  CabinetOverheadModel cabinet_model_;
  CduPowerModel cdu_model_;
  FilesystemPowerModel fs_model_;
};

}  // namespace hpcem
