#include "power/cpu_model.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

double VfCurve::voltage(Frequency f) const {
  const double ghz = f.to_ghz();
  require(ghz > 0.0, "VfCurve::voltage: frequency must be positive");
  const double v = a + b * ghz + c * ghz * ghz;
  HPCEM_ASSERT(v > 0.0, "voltage curve must stay positive over valid range");
  return v;
}

Frequency effective_frequency(const CpuModelParams& params,
                              const PState& pstate, DeterminismMode mode,
                              Frequency app_boost) {
  require(is_valid_pstate(pstate), "effective_frequency: invalid P-state");
  require(app_boost.to_ghz() > 0.0,
          "effective_frequency: app_boost must be positive");
  if (!pstate.turbo) {
    // A fixed frequency cap pins the clock; determinism mode only moves
    // power, not frequency, below the boost ceiling.
    return pstate.nominal;
  }
  // Turbo: the achieved clock is the application's boost level, scaled up
  // slightly under power determinism.
  double ghz = app_boost.to_ghz();
  if (mode == DeterminismMode::kPowerDeterminism) {
    ghz *= 1.0 + params.power_determinism_boost;
  }
  return Frequency::ghz(ghz);
}

double dvfs_factor(const CpuModelParams& params, Frequency f, Frequency ref) {
  require(ref.to_ghz() > 0.0, "dvfs_factor: reference must be positive");
  const double vf = params.vf.voltage(f);
  const double vr = params.vf.voltage(ref);
  return (f.to_ghz() * vf * vf) / (ref.to_ghz() * vr * vr);
}

}  // namespace hpcem
