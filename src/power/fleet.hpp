// Node fleet with persistent per-node silicon quality.
//
// AMD's determinism modes exist because silicon varies part-to-part: under
// *power determinism* every part runs to the socket power limit, so
// better-binned parts boost further and draw more; *performance
// determinism* clamps all parts to the reference part, collapsing the
// power spread downwards (paper §4.1, AMD reference [4]).  `NodeFleet`
// materialises that: each node gets a persistent silicon factor drawn from
// a truncated normal fleet distribution, and the fleet can report the
// node-power distribution under each mode — the mechanism behind the
// fleet-level 210 kW saving.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "power/node_model.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hpcem {

/// Fleet silicon-quality distribution parameters.
struct FleetParams {
  std::size_t node_count = 5860;
  /// Standard deviation of the per-node silicon factor (mean 1.0).
  double silicon_sigma = 0.25;
  /// Truncation bounds (physical binning limits).
  double silicon_min = 0.5;
  double silicon_max = 1.5;
};

/// Structure-of-arrays fleet state: the per-node silicon factors as one
/// flat column, evaluated against hoisted `NodePowerTerms` in a single
/// vectorizable pass (two multiply-adds per node, no per-node validation
/// or DVFS re-derivation).  `powers_into` reproduces a per-node
/// `node_power` loop bit-for-bit — the expression is the same, only the
/// loop-invariant work is hoisted.
struct FleetState {
  std::vector<double> silicon;

  [[nodiscard]] std::size_t size() const { return silicon.size(); }

  /// Batched per-node power: out[i] = terms.watts(silicon[i]).
  /// `out.size()` must equal `size()`.
  void powers_into(const NodePowerTerms& terms, std::span<double> out) const;

  /// Batched fleet total (plain left-to-right sum, matching an
  /// accumulate over a per-node `node_power` loop).
  [[nodiscard]] double total_power_w(const NodePowerTerms& terms) const;
};

/// Immutable fleet of nodes with persistent silicon factors.
class NodeFleet {
 public:
  NodeFleet(FleetParams params, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const { return state_.size(); }
  [[nodiscard]] double silicon_factor(std::size_t node) const;

  /// The structure-of-arrays silicon column (batched evaluation).
  [[nodiscard]] const FleetState& state() const { return state_; }

  /// Fleet statistics of the silicon factor.
  [[nodiscard]] Summary silicon_summary() const;

  /// Mean silicon factor of an arbitrary node subset (what a job sees).
  [[nodiscard]] double mean_silicon(const std::vector<std::size_t>& nodes)
      const;

  /// Per-node power draws for the whole fleet running one activity
  /// (the activity's silicon factor field is overridden per node).
  [[nodiscard]] std::vector<double> node_powers_w(
      const NodePowerParams& node_params, const DynamicPowerProfile& profile,
      NodeActivity activity) const;

  /// Distribution summary of node_powers_w.
  [[nodiscard]] Summary power_summary(const NodePowerParams& node_params,
                                      const DynamicPowerProfile& profile,
                                      const NodeActivity& activity) const;

  /// Fleet-total power for one activity on every node.
  [[nodiscard]] Power total_power(const NodePowerParams& node_params,
                                  const DynamicPowerProfile& profile,
                                  const NodeActivity& activity) const;

 private:
  FleetState state_;
};

}  // namespace hpcem
