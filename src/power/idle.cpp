#include "power/idle.hpp"

#include "util/error.hpp"

namespace hpcem {

namespace {
void validate(const IdlePowerPolicy& p) {
  require(p.suspended.w() >= 0.0,
          "IdlePowerPolicy: suspended draw must be non-negative");
  require(p.suspendable_fraction >= 0.0 && p.suspendable_fraction <= 1.0,
          "IdlePowerPolicy: suspendable_fraction must be in [0, 1]");
  require(p.wake_latency.sec() >= 0.0,
          "IdlePowerPolicy: wake latency must be non-negative");
}
}  // namespace

Power fleet_idle_power(Power idle_each, const IdlePowerPolicy& policy,
                       std::size_t idle_nodes) {
  validate(policy);
  const auto n = static_cast<double>(idle_nodes);
  if (!policy.suspend_enabled) return idle_each * n;
  const double suspended = n * policy.suspendable_fraction;
  const double warm = n - suspended;
  return idle_each * warm + policy.suspended * suspended;
}

Energy annual_idle_saving(Power idle_each, const IdlePowerPolicy& policy,
                          std::size_t total_nodes, double utilisation) {
  validate(policy);
  require(utilisation >= 0.0 && utilisation <= 1.0,
          "annual_idle_saving: utilisation must be in [0, 1]");
  const auto idle_nodes = static_cast<std::size_t>(
      static_cast<double>(total_nodes) * (1.0 - utilisation));
  const Power without =
      idle_each * static_cast<double>(idle_nodes);
  const Power with = fleet_idle_power(idle_each, policy, idle_nodes);
  return (without - with) * Duration::days(365.25);
}

Duration expected_extra_start_latency(const IdlePowerPolicy& policy,
                                      std::size_t idle_nodes,
                                      std::size_t job_nodes) {
  validate(policy);
  require(job_nodes > 0,
          "expected_extra_start_latency: job must need nodes");
  if (!policy.suspend_enabled || idle_nodes == 0) {
    return Duration::seconds(0.0);
  }
  const double warm = static_cast<double>(idle_nodes) *
                      (1.0 - policy.suspendable_fraction);
  // A job fitting inside the warm buffer starts immediately; otherwise it
  // waits one wake cycle (wakes proceed in parallel).
  if (static_cast<double>(job_nodes) <= warm) {
    return Duration::seconds(0.0);
  }
  return policy.wake_latency;
}

}  // namespace hpcem
