#include "power/node_model.hpp"

#include <algorithm>
#include <string>

#include "util/error.hpp"

namespace hpcem {

namespace {

/// dvfs factor of the 2.0 GHz P-state relative to the app boost clock.
double phi_2ghz(const NodePowerParams& params, Frequency app_boost) {
  return dvfs_factor(params.cpu, Frequency::ghz(2.0), app_boost);
}

}  // namespace

DynamicPowerProfile calibrate_dynamic_profile(const NodePowerParams& params,
                                              Power loaded_at_boost,
                                              double power_ratio_at_2ghz,
                                              Frequency app_boost) {
  const double L = loaded_at_boost.w();
  const double S = params.idle.w();
  require(L > S, "calibrate_dynamic_profile: loaded power must exceed idle");
  require(power_ratio_at_2ghz > 0.0 && power_ratio_at_2ghz <= 1.0,
          "calibrate_dynamic_profile: power ratio must be in (0, 1]");
  const double phi = phi_2ghz(params, app_boost);
  require(phi < 1.0,
          "calibrate_dynamic_profile: app boost must exceed 2.0 GHz");

  // core·(1 - phi) = L·(1 - rho)  ;  uncore = L - S - core.
  DynamicPowerProfile p;
  p.core_w = L * (1.0 - power_ratio_at_2ghz) / (1.0 - phi);
  p.uncore_w = L - S - p.core_w;
  if (p.uncore_w < 0.0) {
    throw InvalidArgument(
        "calibrate_dynamic_profile: targets infeasible — loaded power " +
        std::to_string(L) + " W is below the minimum " +
        std::to_string(
            min_feasible_loaded_power(params, power_ratio_at_2ghz, app_boost)
                .w()) +
        " W for power ratio " + std::to_string(power_ratio_at_2ghz));
  }
  return p;
}

Power min_feasible_loaded_power(const NodePowerParams& params,
                                double power_ratio_at_2ghz,
                                Frequency app_boost) {
  require(power_ratio_at_2ghz > 0.0 && power_ratio_at_2ghz <= 1.0,
          "min_feasible_loaded_power: power ratio must be in (0, 1]");
  const double phi = phi_2ghz(params, app_boost);
  require(phi < 1.0,
          "min_feasible_loaded_power: app boost must exceed 2.0 GHz");
  // uncore = 0 at the bound: L - S = L (1 - rho) / (1 - phi).
  const double denom = 1.0 - (1.0 - power_ratio_at_2ghz) / (1.0 - phi);
  require(denom > 0.0,
          "min_feasible_loaded_power: ratio unreachable at any power");
  return Power::watts(params.idle.w() / denom);
}

NodePowerTerms node_power_terms(const NodePowerParams& params,
                                const DynamicPowerProfile& profile,
                                const NodeActivity& activity) {
  require(activity.load >= 0.0 && activity.load <= 1.0,
          "node_power: load must be in [0, 1]");
  require(is_valid_pstate(activity.pstate), "node_power: invalid P-state");

  const Frequency f_eff = effective_frequency(
      params.cpu, activity.pstate, activity.mode, activity.app_boost);
  const double phi = dvfs_factor(params.cpu, f_eff, activity.app_boost);

  NodePowerTerms t;
  t.idle_w = params.idle.w();
  t.load = activity.load;
  t.uncore_w = profile.uncore_w;
  t.core_phi_w = profile.core_w * phi;
  t.uplift = activity.mode == DeterminismMode::kPowerDeterminism
                 ? activity.power_det_uplift
                 : 0.0;
  return t;
}

Power node_power(const NodePowerParams& params,
                 const DynamicPowerProfile& profile,
                 const NodeActivity& activity) {
  require(activity.silicon_factor >= 0.0,
          "node_power: silicon_factor must be non-negative");
  return Power::watts(node_power_terms(params, profile, activity)
                          .watts(activity.silicon_factor));
}

}  // namespace hpcem
