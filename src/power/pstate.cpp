#include "power/pstate.hpp"

namespace hpcem {

bool is_valid_pstate(const PState& p) {
  const double ghz = p.nominal.to_ghz();
  const bool known =
      ghz == 1.5 || ghz == 2.0 || ghz == 2.25;
  if (!known) return false;
  if (p.turbo && ghz != 2.25) return false;
  return true;
}

std::string to_string(const PState& p) {
  std::string s = std::to_string(p.nominal.to_ghz());
  // Trim trailing zeros from the default double rendering.
  while (!s.empty() && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.push_back('0');
  s += " GHz";
  if (p.turbo) s += " + turbo";
  return s;
}

std::string to_string(DeterminismMode m) {
  switch (m) {
    case DeterminismMode::kPowerDeterminism:
      return "power determinism";
    case DeterminismMode::kPerformanceDeterminism:
      return "performance determinism";
  }
  return "unknown";
}

}  // namespace hpcem
