#include "power/fleet.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

void FleetState::powers_into(const NodePowerTerms& terms,
                             std::span<double> out) const {
  require(out.size() == silicon.size(),
          "FleetState::powers_into: output span size mismatch");
  const double* s = silicon.data();
  double* o = out.data();
  const std::size_t n = silicon.size();
  for (std::size_t i = 0; i < n; ++i) o[i] = terms.watts(s[i]);
}

double FleetState::total_power_w(const NodePowerTerms& terms) const {
  double total = 0.0;
  for (double s : silicon) total += terms.watts(s);
  return total;
}

NodeFleet::NodeFleet(FleetParams params, std::uint64_t seed) {
  require(params.node_count > 0, "NodeFleet: need at least one node");
  require(params.silicon_sigma >= 0.0,
          "NodeFleet: silicon_sigma must be non-negative");
  require(params.silicon_min > 0.0 &&
              params.silicon_min <= params.silicon_max,
          "NodeFleet: bad silicon truncation bounds");
  Rng rng(seed);
  state_.silicon.reserve(params.node_count);
  for (std::size_t i = 0; i < params.node_count; ++i) {
    state_.silicon.push_back(
        std::clamp(rng.normal(1.0, params.silicon_sigma), params.silicon_min,
                   params.silicon_max));
  }
}

double NodeFleet::silicon_factor(std::size_t node) const {
  require(node < state_.silicon.size(), "NodeFleet: node index out of range");
  return state_.silicon[node];
}

Summary NodeFleet::silicon_summary() const {
  return summarize(state_.silicon);
}

double NodeFleet::mean_silicon(const std::vector<std::size_t>& nodes) const {
  require(!nodes.empty(), "NodeFleet::mean_silicon: empty node list");
  double sum = 0.0;
  for (std::size_t n : nodes) sum += silicon_factor(n);
  return sum / static_cast<double>(nodes.size());
}

std::vector<double> NodeFleet::node_powers_w(
    const NodePowerParams& node_params, const DynamicPowerProfile& profile,
    NodeActivity activity) const {
  require(activity.silicon_factor >= 0.0,
          "node_power: silicon_factor must be non-negative");
  const NodePowerTerms terms =
      node_power_terms(node_params, profile, activity);
  std::vector<double> out(state_.silicon.size());
  state_.powers_into(terms, out);
  return out;
}

Summary NodeFleet::power_summary(const NodePowerParams& node_params,
                                 const DynamicPowerProfile& profile,
                                 const NodeActivity& activity) const {
  const auto powers = node_powers_w(node_params, profile, activity);
  return summarize(powers);
}

Power NodeFleet::total_power(const NodePowerParams& node_params,
                             const DynamicPowerProfile& profile,
                             const NodeActivity& activity) const {
  require(activity.silicon_factor >= 0.0,
          "node_power: silicon_factor must be non-negative");
  return Power::watts(state_.total_power_w(
      node_power_terms(node_params, profile, activity)));
}

}  // namespace hpcem
