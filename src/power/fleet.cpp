#include "power/fleet.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

NodeFleet::NodeFleet(FleetParams params, std::uint64_t seed) {
  require(params.node_count > 0, "NodeFleet: need at least one node");
  require(params.silicon_sigma >= 0.0,
          "NodeFleet: silicon_sigma must be non-negative");
  require(params.silicon_min > 0.0 &&
              params.silicon_min <= params.silicon_max,
          "NodeFleet: bad silicon truncation bounds");
  Rng rng(seed);
  silicon_.reserve(params.node_count);
  for (std::size_t i = 0; i < params.node_count; ++i) {
    silicon_.push_back(std::clamp(rng.normal(1.0, params.silicon_sigma),
                                  params.silicon_min, params.silicon_max));
  }
}

double NodeFleet::silicon_factor(std::size_t node) const {
  require(node < silicon_.size(), "NodeFleet: node index out of range");
  return silicon_[node];
}

Summary NodeFleet::silicon_summary() const { return summarize(silicon_); }

double NodeFleet::mean_silicon(const std::vector<std::size_t>& nodes) const {
  require(!nodes.empty(), "NodeFleet::mean_silicon: empty node list");
  double sum = 0.0;
  for (std::size_t n : nodes) sum += silicon_factor(n);
  return sum / static_cast<double>(nodes.size());
}

std::vector<double> NodeFleet::node_powers_w(
    const NodePowerParams& node_params, const DynamicPowerProfile& profile,
    NodeActivity activity) const {
  std::vector<double> out;
  out.reserve(silicon_.size());
  for (double s : silicon_) {
    activity.silicon_factor = s;
    out.push_back(node_power(node_params, profile, activity).w());
  }
  return out;
}

Summary NodeFleet::power_summary(const NodePowerParams& node_params,
                                 const DynamicPowerProfile& profile,
                                 const NodeActivity& activity) const {
  const auto powers = node_powers_w(node_params, profile, activity);
  return summarize(powers);
}

Power NodeFleet::total_power(const NodePowerParams& node_params,
                             const DynamicPowerProfile& profile,
                             const NodeActivity& activity) const {
  double total = 0.0;
  for (double w : node_powers_w(node_params, profile, activity)) total += w;
  return Power::watts(total);
}

}  // namespace hpcem
