// Cooling overhead model (PUE as a function of outdoor conditions).
//
// The paper's §3 lists cooling among the practical reasons to cut power
// draw: "Higher power draw by HPC systems lead to higher cooling
// requirements increasing the overheads of running an HPC system."  The
// model: an evaporative-cooled plant runs near-free when the outdoor
// temperature is below a free-cooling threshold; above it, mechanical
// assistance adds overhead per degree.  PUE multiplies IT power into total
// facility power, so every kW saved on the nodes saves PUE kW at the meter
// — the cooling amplification of the paper's levers.
#pragma once

#include "telemetry/timeseries.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Evaporative cooling plant parameters.
struct CoolingParams {
  /// PUE with full free cooling (pumps, fans, distribution losses).
  double base_pue = 1.05;
  /// Outdoor temperature up to which free cooling suffices, degC.
  double free_cooling_max_c = 18.0;
  /// Additional PUE per degree above the free-cooling threshold.
  double pue_per_degree = 0.012;
  /// Hard ceiling (plant design limit).
  double max_pue = 1.35;
};

/// Cooling plant: maps outdoor temperature to PUE and IT power to total.
class CoolingModel {
 public:
  explicit CoolingModel(CoolingParams params = {});

  [[nodiscard]] double pue_at(double outdoor_c) const;
  [[nodiscard]] Power facility_power(Power it_power, double outdoor_c) const;
  /// Overhead (non-IT) power at a given condition.
  [[nodiscard]] Power overhead_power(Power it_power, double outdoor_c) const;

  /// Combine an IT-power series (kW) with a temperature series (degC) into
  /// a total facility power series sampled at the IT series' timestamps.
  [[nodiscard]] TimeSeries facility_series(
      const TimeSeries& it_kw, const TimeSeries& outdoor_c) const;

  /// Mean PUE over a temperature series.
  [[nodiscard]] double mean_pue(const TimeSeries& outdoor_c) const;

  [[nodiscard]] const CoolingParams& params() const { return params_; }

 private:
  CoolingParams params_;
};

}  // namespace hpcem
