#include "power/cooling.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

CoolingModel::CoolingModel(CoolingParams params) : params_(params) {
  require(params_.base_pue >= 1.0, "CoolingModel: base PUE must be >= 1");
  require(params_.max_pue >= params_.base_pue,
          "CoolingModel: max PUE must be >= base PUE");
  require(params_.pue_per_degree >= 0.0,
          "CoolingModel: pue_per_degree must be non-negative");
}

double CoolingModel::pue_at(double outdoor_c) const {
  const double excess = std::max(0.0, outdoor_c - params_.free_cooling_max_c);
  return std::min(params_.max_pue,
                  params_.base_pue + params_.pue_per_degree * excess);
}

Power CoolingModel::facility_power(Power it_power, double outdoor_c) const {
  require(it_power.w() >= 0.0,
          "CoolingModel: IT power must be non-negative");
  return it_power * pue_at(outdoor_c);
}

Power CoolingModel::overhead_power(Power it_power, double outdoor_c) const {
  return facility_power(it_power, outdoor_c) - it_power;
}

TimeSeries CoolingModel::facility_series(const TimeSeries& it_kw,
                                         const TimeSeries& outdoor_c) const {
  require(!it_kw.empty() && !outdoor_c.empty(),
          "CoolingModel::facility_series: empty inputs");
  TimeSeries out(it_kw.unit());
  for (const auto& s : it_kw.samples()) {
    out.append(s.time, s.value * pue_at(outdoor_c.value_at(s.time)));
  }
  return out;
}

double CoolingModel::mean_pue(const TimeSeries& outdoor_c) const {
  require(!outdoor_c.empty(), "CoolingModel::mean_pue: empty series");
  double sum = 0.0;
  for (const auto& s : outdoor_c.samples()) sum += pue_at(s.value);
  return sum / static_cast<double>(outdoor_c.size());
}

}  // namespace hpcem
