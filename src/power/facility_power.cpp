#include "power/facility_power.hpp"

#include "util/error.hpp"

namespace hpcem {

FacilityPowerModel::FacilityPowerModel(FacilityInventory inventory,
                                       NodePowerParams node_params,
                                       DynamicPowerProfile fleet_profile,
                                       SwitchPowerModel switch_model,
                                       CabinetOverheadModel cabinet_model,
                                       CduPowerModel cdu_model,
                                       FilesystemPowerModel fs_model)
    : inventory_(inventory),
      node_params_(node_params),
      fleet_profile_(fleet_profile),
      switch_model_(switch_model),
      cabinet_model_(cabinet_model),
      cdu_model_(cdu_model),
      fs_model_(fs_model) {
  require(inventory_.compute_nodes > 0,
          "FacilityPowerModel: need at least one node");
  require(fleet_profile_.core_w >= 0.0 && fleet_profile_.uncore_w >= 0.0,
          "FacilityPowerModel: dynamic profile must be non-negative");
}

Power FacilityPowerModel::total_power(const NodeActivity& activity) const {
  const Power per_node = node_power(node_params_, fleet_profile_, activity);
  const double load = activity.load;
  Power total = per_node * static_cast<double>(inventory_.compute_nodes);
  total += switch_model_.power(load) *
           static_cast<double>(inventory_.switches);
  total += cabinet_model_.power(load) *
           static_cast<double>(inventory_.cabinets);
  total += cdu_model_.power(load) * static_cast<double>(inventory_.cdus);
  total += fs_model_.power(load) *
           static_cast<double>(inventory_.filesystems);
  return total;
}

Power FacilityPowerModel::total_idle_power() const {
  NodeActivity idle;
  idle.load = 0.0;
  return total_power(idle);
}

Power FacilityPowerModel::cabinet_power(Power node_fleet_power,
                                        double load_factor) const {
  require(load_factor >= 0.0 && load_factor <= 1.0,
          "cabinet_power: load_factor must be in [0, 1]");
  Power total = node_fleet_power;
  total += switch_model_.power(load_factor) *
           static_cast<double>(inventory_.switches);
  total += cabinet_model_.power(load_factor) *
           static_cast<double>(inventory_.cabinets);
  return total;
}

double FacilityPowerModel::cabinet_share_loaded() const {
  NodeActivity loaded;
  loaded.load = 1.0;
  const Power node_fleet =
      node_power(node_params_, fleet_profile_, loaded) *
      static_cast<double>(inventory_.compute_nodes);
  const Power cab = cabinet_power(node_fleet, 1.0);
  return cab / total_power(loaded);
}

std::vector<ComponentPowerRow> FacilityPowerModel::component_table(
    const NodeActivity& loaded_activity) const {
  NodeActivity idle = loaded_activity;
  idle.load = 0.0;

  const Power node_idle = node_power(node_params_, fleet_profile_, idle);
  const Power node_loaded =
      node_power(node_params_, fleet_profile_, loaded_activity);

  std::vector<ComponentPowerRow> rows;
  auto add = [&rows](std::string name, std::size_t count, Power idle_each,
                     Power loaded_each) {
    ComponentPowerRow r;
    r.component = std::move(name);
    r.count = count;
    r.idle_each = idle_each;
    r.loaded_each = loaded_each;
    r.idle_total = idle_each * static_cast<double>(count);
    r.loaded_total = loaded_each * static_cast<double>(count);
    rows.push_back(std::move(r));
  };

  add("Compute nodes", inventory_.compute_nodes, node_idle, node_loaded);
  add("Slingshot interconnect", inventory_.switches, switch_model_.power(0.0),
      switch_model_.power(1.0));
  add("Other cabinet overheads", inventory_.cabinets,
      cabinet_model_.power(0.0), cabinet_model_.power(1.0));
  add("Coolant distribution units", inventory_.cdus, cdu_model_.power(0.0),
      cdu_model_.power(1.0));
  add("File systems", inventory_.filesystems, fs_model_.power(0.0),
      fs_model_.power(1.0));

  Power loaded_total = Power::watts(0.0);
  for (const auto& r : rows) loaded_total += r.loaded_total;
  HPCEM_ASSERT(loaded_total.w() > 0.0, "loaded total must be positive");
  for (auto& r : rows) r.loaded_share = r.loaded_total / loaded_total;
  return rows;
}

}  // namespace hpcem
