// Compute-node power model and its calibration from published measurements.
//
// Node power decomposes as
//
//   P(node) = idle  +  uncore_w · load  +  core_w · load · dvfs(f_eff) · det
//
// where `load` is the fraction of the node busy with user work, `dvfs` is
// the f·V² factor from cpu_model.hpp normalised at the application's boost
// clock, and `det` is the power-determinism uplift (1 + uplift·silicon) that
// disappears under performance determinism.
//
// Calibration: the paper publishes, per application, the loaded node power
// ratio between 2.0 GHz and 2.25 GHz + turbo (derivable from Table 4's
// energy and performance ratios as ratio_P = ratio_E · ratio_perf) and the
// loaded node draw (Table 2: ~0.51 kW fleet average).  Given a target loaded
// power L at boost and a target power ratio rho at 2.0 GHz,
// `calibrate_dynamic_profile` solves the 2x2 system for (core_w, uncore_w):
//
//   idle + uncore + core            = L
//   idle + uncore + core·dvfs(2.0)  = rho · L
//
// and validates feasibility (uncore >= 0), which bounds L from below for
// strongly clock-sensitive codes.
#pragma once

#include "power/cpu_model.hpp"
#include "power/pstate.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Static (always-on) node parameters.  Defaults reproduce Table 2's
/// 0.23 kW idle per node.
struct NodePowerParams {
  Power idle = Power::watts(230.0);
  CpuModelParams cpu{};
};

/// Per-application dynamic power split (watts at full node load, at the
/// application's boost clock, performance-determinism mode).
struct DynamicPowerProfile {
  double core_w = 0.0;    ///< scales with f·V(f)²
  double uncore_w = 0.0;  ///< clock-insensitive (DRAM, fabric, NIC)

  [[nodiscard]] double total_w() const { return core_w + uncore_w; }
};

/// Solve for the dynamic profile matching a loaded power target and a
/// 2.0 GHz power ratio target (see file comment).  Throws InvalidArgument
/// if the targets are infeasible for the given idle floor.
[[nodiscard]] DynamicPowerProfile calibrate_dynamic_profile(
    const NodePowerParams& params, Power loaded_at_boost,
    double power_ratio_at_2ghz, Frequency app_boost);

/// Minimum feasible loaded power for a given power ratio target (the bound
/// at which uncore_w would go negative).
[[nodiscard]] Power min_feasible_loaded_power(const NodePowerParams& params,
                                              double power_ratio_at_2ghz,
                                              Frequency app_boost);

/// Inputs describing what a node is running.
struct NodeActivity {
  /// Fraction of the node executing user work, in [0, 1].
  double load = 1.0;
  /// P-state selected for the work.
  PState pstate = pstates::kHighTurbo;
  /// BIOS mode.
  DeterminismMode mode = DeterminismMode::kPerformanceDeterminism;
  /// Application boost clock at reference conditions.
  Frequency app_boost = Frequency::ghz(2.8);
  /// Mean power-determinism uplift for this application (fraction of
  /// dynamic power added when the BIOS chases the power limit).
  double power_det_uplift = 0.16;
  /// Per-node silicon quality factor (mean 1.0 across the fleet); scales
  /// the determinism uplift — better parts boost harder and draw more.
  double silicon_factor = 1.0;
};

/// Loop-invariant terms of `node_power` for a fixed (load, P-state, mode,
/// dynamic profile): across a fleet — or a policy epoch — only the silicon
/// factor varies, so the DVFS power-law state (effective clock, f·V² factor,
/// determinism uplift) can be hoisted once and each node evaluated with two
/// multiply-adds.  `watts(s)` reproduces `node_power` bit-for-bit: the
/// floating-point expression is identical term by term.
struct NodePowerTerms {
  double idle_w = 0.0;
  double load = 1.0;
  double uncore_w = 0.0;
  /// core_w scaled by the dvfs factor at the effective clock.
  double core_phi_w = 0.0;
  /// Per-silicon determinism uplift (0 under performance determinism).
  double uplift = 0.0;

  [[nodiscard]] double watts(double silicon_factor) const {
    const double det = 1.0 + uplift * silicon_factor;
    return idle_w + load * (uncore_w + core_phi_w * det);
  }
};

/// Hoist the silicon-independent part of `node_power` (validates the
/// activity's load/P-state once; `activity.silicon_factor` is ignored).
[[nodiscard]] NodePowerTerms node_power_terms(
    const NodePowerParams& params, const DynamicPowerProfile& profile,
    const NodeActivity& activity);

/// Evaluate node electrical power for an activity and dynamic profile.
[[nodiscard]] Power node_power(const NodePowerParams& params,
                               const DynamicPowerProfile& profile,
                               const NodeActivity& activity);

}  // namespace hpcem
