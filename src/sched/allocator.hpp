// Node allocation with contiguous-first placement.
//
// The allocator hands out node indices for jobs, preferring a single
// contiguous run (which maps to locality on the dragonfly: consecutive
// nodes share switches and groups) and falling back to scattered nodes
// when the pool is fragmented — exactly the behaviour that makes placement
// quality a function of machine load on real systems.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "interconnect/dragonfly.hpp"

namespace hpcem {

/// Free-list of node indices with interval coalescing.
class NodeAllocator {
 public:
  explicit NodeAllocator(std::size_t node_count);

  /// Allocate `count` nodes; contiguous-first, lowest-index fallback.
  /// Returns nullopt when fewer than `count` nodes are free.
  [[nodiscard]] std::optional<std::vector<NodeId>> allocate(
      std::size_t count);

  /// Return nodes to the pool; double-free is detected and throws.
  void release(std::span<const NodeId> nodes);

  [[nodiscard]] std::size_t free_count() const { return free_count_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t busy_count() const {
    return node_count_ - free_count_;
  }

  /// Number of maximal free intervals (1 when fully defragmented).
  [[nodiscard]] std::size_t fragment_count() const { return free_.size(); }

 private:
  void insert_interval(NodeId start, std::size_t len);

  std::size_t node_count_;
  std::size_t free_count_;
  /// start -> length, non-overlapping, non-adjacent (coalesced).
  std::map<NodeId, std::size_t> free_;
};

}  // namespace hpcem
