#include "sched/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

Scheduler::Scheduler(SchedulerConfig config)
    : config_(config), allocator_(config.nodes) {}

void Scheduler::submit(JobSpec job) {
  require(job.nodes >= 1 && job.nodes <= config_.nodes,
          "Scheduler::submit: job size must fit the machine: " + job.app);
  require(job.requested_walltime.sec() > 0.0,
          "Scheduler::submit: walltime must be positive");
  queue_.push_back(std::move(job));
}

Scheduler::Shadow Scheduler::shadow_for(std::size_t count,
                                        SimTime now) const {
  HPCEM_ASSERT(count <= config_.nodes, "shadow for oversized job");
  if (allocator_.free_count() >= count) {
    return {now, allocator_.free_count() - count};
  }
  // Sweep running jobs in expected-end order, accumulating freed nodes.
  std::vector<std::pair<SimTime, std::size_t>> ends;
  ends.reserve(running_.size());
  for (const auto& [id, r] : running_) {
    ends.emplace_back(r.expected_end, r.nodes.size());
  }
  std::sort(ends.begin(), ends.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t freed = allocator_.free_count();
  for (const auto& [end, n] : ends) {
    freed += n;
    if (freed >= count) {
      return {std::max(end, now), freed - count};
    }
  }
  // Unreachable for feasible jobs: all running jobs ending frees the
  // entire machine, which holds any job that passed submit validation.
  HPCEM_ASSERT(false, "shadow_for: job can never run");
  return {now, 0};
}

double Scheduler::priority_of(const JobSpec& job, SimTime now) const {
  const PriorityWeights& w = config_.weights;
  double base = w.standard;
  switch (job.qos) {
    case QosClass::kStandard:
      base = w.standard;
      break;
    case QosClass::kShort:
      base = w.short_qos;
      break;
    case QosClass::kLargeScale:
      base = w.largescale;
      break;
    case QosClass::kLowPriority:
      base = w.lowpriority;
      break;
  }
  const double wait_h = std::max(0.0, (now - job.submit_time).hrs());
  return base + w.per_wait_hour * wait_h +
         w.per_node * static_cast<double>(job.nodes);
}

void Scheduler::order_queue(SimTime now) {
  if (config_.discipline == QueueDiscipline::kFifo) return;
  // Stable sort keeps submission order among equal priorities.
  std::stable_sort(queue_.begin(), queue_.end(),
                   [&](const JobSpec& a, const JobSpec& b) {
                     return priority_of(a, now) > priority_of(b, now);
                   });
}

std::vector<JobStart> Scheduler::schedule_pass(SimTime now) {
  std::vector<JobStart> starts;
  order_queue(now);

  // Phase 1: start jobs from the head while they fit (in queue order:
  // submission order under FIFO, priority order otherwise).
  while (!queue_.empty() && queue_.front().nodes <= allocator_.free_count()) {
    JobSpec job = std::move(queue_.front());
    queue_.pop_front();
    auto nodes = allocator_.allocate(job.nodes);
    HPCEM_ASSERT(nodes.has_value(), "allocation must succeed after fit check");
    const JobId id = job.id;
    const SimTime expected_end = now + job.requested_walltime;
    running_.emplace(id, Running{*nodes, expected_end});
    ++started_total_;
    starts.push_back({std::move(job), std::move(*nodes)});
  }
  if (queue_.empty()) return starts;

  // Phase 2: EASY backfill.  The head job gets a shadow reservation; a
  // later job may start now iff (a) it fits the free nodes, and (b) either
  // it finishes by the shadow time or it fits into the nodes left over at
  // the shadow time.
  const Shadow shadow = shadow_for(queue_.front().nodes, now);
  std::size_t examined = 0;
  for (auto it = std::next(queue_.begin());
       it != queue_.end() && examined < config_.backfill_depth; ++examined) {
    const std::size_t want = it->nodes;
    const bool fits_now = want <= allocator_.free_count();
    if (!fits_now) {
      ++it;
      continue;
    }
    const bool ends_before_shadow =
        now + it->requested_walltime <= shadow.time;
    const bool fits_shadow_slack = want <= shadow.extra_nodes;
    if (!ends_before_shadow && !fits_shadow_slack) {
      ++it;
      continue;
    }
    JobSpec job = std::move(*it);
    it = queue_.erase(it);
    auto nodes = allocator_.allocate(job.nodes);
    HPCEM_ASSERT(nodes.has_value(), "backfill allocation must succeed");
    const JobId id = job.id;
    running_.emplace(id, Running{*nodes, now + job.requested_walltime});
    ++started_total_;
    starts.push_back({std::move(job), std::move(*nodes)});
  }
  return starts;
}

void Scheduler::finish(JobId id, SimTime /*now*/) {
  auto it = running_.find(id);
  require_state(it != running_.end(),
                "Scheduler::finish: job not running: " + std::to_string(id));
  allocator_.release(it->second.nodes);
  running_.erase(it);
  ++finished_total_;
}

void Scheduler::set_expected_end(JobId id, SimTime end) {
  auto it = running_.find(id);
  require_state(it != running_.end(),
                "Scheduler::set_expected_end: job not running: " +
                    std::to_string(id));
  it->second.expected_end = end;
}

const std::vector<NodeId>& Scheduler::allocation(JobId id) const {
  auto it = running_.find(id);
  require_state(it != running_.end(),
                "Scheduler::allocation: job not running: " +
                    std::to_string(id));
  return it->second.nodes;
}

}  // namespace hpcem
