#include "sched/scheduler.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

Scheduler::Scheduler(SchedulerConfig config)
    : config_(config), allocator_(config.nodes) {}

void Scheduler::submit(JobSpec job) {
  require(job.nodes >= 1 && job.nodes <= config_.nodes,
          "Scheduler::submit: job size must fit the machine: " + job.app);
  require(job.requested_walltime.sec() > 0.0,
          "Scheduler::submit: walltime must be positive");
  queue_.push_back(std::move(job));
}

void Scheduler::ends_insert(SimTime end, JobId id, std::size_t nodes) {
  const auto pos = std::lower_bound(
      ends_.begin(), ends_.end(), std::make_pair(end, id),
      [](const EndEntry& e, const std::pair<SimTime, JobId>& key) {
        if (e.end != key.first) return e.end < key.first;
        return e.id < key.second;
      });
  ends_.insert(pos, EndEntry{end, id, nodes});
}

void Scheduler::ends_erase(SimTime end, JobId id) {
  const auto pos = std::lower_bound(
      ends_.begin(), ends_.end(), std::make_pair(end, id),
      [](const EndEntry& e, const std::pair<SimTime, JobId>& key) {
        if (e.end != key.first) return e.end < key.first;
        return e.id < key.second;
      });
  HPCEM_ASSERT(pos != ends_.end() && pos->id == id && pos->end == end,
               "shadow buffer out of sync with running set");
  ends_.erase(pos);
}

Scheduler::Shadow Scheduler::shadow_for(std::size_t count,
                                        SimTime now) const {
  HPCEM_ASSERT(count <= config_.nodes, "shadow for oversized job");
  if (allocator_.free_count() >= count) {
    return {now, allocator_.free_count() - count};
  }
  // Sweep running jobs in expected-end order, accumulating freed nodes —
  // a prefix scan of the incrementally maintained buffer.
  std::size_t freed = allocator_.free_count();
  for (const EndEntry& e : ends_) {
    freed += e.nodes;
    if (freed >= count) {
      return {std::max(e.end, now), freed - count};
    }
  }
  // Unreachable for feasible jobs: all running jobs ending frees the
  // entire machine, which holds any job that passed submit validation.
  HPCEM_ASSERT(false, "shadow_for: job can never run");
  return {now, 0};
}

double Scheduler::priority_of(const JobSpec& job, SimTime now) const {
  const PriorityWeights& w = config_.weights;
  double base = w.standard;
  switch (job.qos) {
    case QosClass::kStandard:
      base = w.standard;
      break;
    case QosClass::kShort:
      base = w.short_qos;
      break;
    case QosClass::kLargeScale:
      base = w.largescale;
      break;
    case QosClass::kLowPriority:
      base = w.lowpriority;
      break;
  }
  const double wait_h = std::max(0.0, (now - job.submit_time).hrs());
  return base + w.per_wait_hour * wait_h +
         w.per_node * static_cast<double>(job.nodes);
}

void Scheduler::order_queue(SimTime now) {
  if (config_.discipline == QueueDiscipline::kFifo) return;
  // Priority keys are pure in (job, now): compute each once, then
  // stable-sort a permutation — same order as sorting with a comparator
  // that recomputes priority_of per comparison, at O(n) evaluations.
  const std::size_t n = queue_.size();
  priority_keys_.clear();
  priority_keys_.reserve(n);
  for (const JobSpec& j : queue_) priority_keys_.push_back(priority_of(j, now));
  order_perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) order_perm_[i] = i;
  // Stable sort keeps submission order among equal priorities.
  std::stable_sort(order_perm_.begin(), order_perm_.end(),
                   [&](std::size_t a, std::size_t b) {
                     return priority_keys_[a] > priority_keys_[b];
                   });
  std::deque<JobSpec> ordered;
  for (std::size_t i : order_perm_) ordered.push_back(std::move(queue_[i]));
  queue_ = std::move(ordered);
}

std::vector<JobStart> Scheduler::schedule_pass(SimTime now) {
  ++passes_total_;
  std::vector<JobStart> starts;
  order_queue(now);

  // Phase 1: start jobs from the head while they fit (in queue order:
  // submission order under FIFO, priority order otherwise).
  while (!queue_.empty() && queue_.front().nodes <= allocator_.free_count()) {
    JobSpec job = std::move(queue_.front());
    queue_.pop_front();
    auto nodes = allocator_.allocate(job.nodes);
    HPCEM_ASSERT(nodes.has_value(), "allocation must succeed after fit check");
    const JobId id = job.id;
    const SimTime expected_end = now + job.requested_walltime;
    ends_insert(expected_end, id, nodes->size());
    running_.emplace(id, Running{*nodes, expected_end});
    ++started_total_;
    starts.push_back({std::move(job), std::move(*nodes)});
  }
  if (queue_.empty()) return starts;

  // Phase 2: EASY backfill.  The head job gets a shadow reservation; a
  // later job may start now iff (a) it fits the free nodes, and (b) either
  // it finishes by the shadow time or it fits into the nodes left over at
  // the shadow time.
  const Shadow shadow = shadow_for(queue_.front().nodes, now);
  std::size_t examined = 0;
  for (auto it = std::next(queue_.begin());
       it != queue_.end() && examined < config_.backfill_depth; ++examined) {
    const std::size_t want = it->nodes;
    const bool fits_now = want <= allocator_.free_count();
    if (!fits_now) {
      ++it;
      continue;
    }
    const bool ends_before_shadow =
        now + it->requested_walltime <= shadow.time;
    const bool fits_shadow_slack = want <= shadow.extra_nodes;
    if (!ends_before_shadow && !fits_shadow_slack) {
      ++it;
      continue;
    }
    JobSpec job = std::move(*it);
    it = queue_.erase(it);
    auto nodes = allocator_.allocate(job.nodes);
    HPCEM_ASSERT(nodes.has_value(), "backfill allocation must succeed");
    const JobId id = job.id;
    const SimTime expected_end = now + job.requested_walltime;
    ends_insert(expected_end, id, nodes->size());
    running_.emplace(id, Running{*nodes, expected_end});
    ++started_total_;
    starts.push_back({std::move(job), std::move(*nodes)});
  }
  return starts;
}

void Scheduler::finish(JobId id, SimTime /*now*/) {
  auto it = running_.find(id);
  require_state(it != running_.end(),
                "Scheduler::finish: job not running: " + std::to_string(id));
  allocator_.release(it->second.nodes);
  ends_erase(it->second.expected_end, id);
  running_.erase(it);
  ++finished_total_;
}

void Scheduler::set_expected_end(JobId id, SimTime end) {
  auto it = running_.find(id);
  require_state(it != running_.end(),
                "Scheduler::set_expected_end: job not running: " +
                    std::to_string(id));
  if (it->second.expected_end != end) {
    ends_erase(it->second.expected_end, id);
    ends_insert(end, id, it->second.nodes.size());
  }
  it->second.expected_end = end;
}

const std::vector<NodeId>& Scheduler::allocation(JobId id) const {
  auto it = running_.find(id);
  require_state(it != running_.end(),
                "Scheduler::allocation: job not running: " +
                    std::to_string(id));
  return it->second.nodes;
}

}  // namespace hpcem
