#include "sched/allocator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

NodeAllocator::NodeAllocator(std::size_t node_count)
    : node_count_(node_count), free_count_(node_count) {
  require(node_count > 0, "NodeAllocator: need at least one node");
  free_.emplace(0, node_count);
}

std::optional<std::vector<NodeId>> NodeAllocator::allocate(
    std::size_t count) {
  require(count > 0, "NodeAllocator::allocate: count must be positive");
  if (count > free_count_) return std::nullopt;

  std::vector<NodeId> out;
  out.reserve(count);

  // First fit: the lowest contiguous interval that holds the whole job.
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second >= count) {
      const NodeId start = it->first;
      const std::size_t len = it->second;
      free_.erase(it);
      if (len > count) free_.emplace(start + count, len - count);
      for (std::size_t i = 0; i < count; ++i) out.push_back(start + i);
      free_count_ -= count;
      return out;
    }
  }

  // Fragmented: gather from the lowest intervals upwards.
  std::size_t remaining = count;
  while (remaining > 0) {
    auto it = free_.begin();
    HPCEM_ASSERT(it != free_.end(), "free list exhausted despite count check");
    const NodeId start = it->first;
    const std::size_t take = std::min(it->second, remaining);
    const std::size_t len = it->second;
    free_.erase(it);
    if (len > take) free_.emplace(start + take, len - take);
    for (std::size_t i = 0; i < take; ++i) out.push_back(start + i);
    remaining -= take;
  }
  free_count_ -= count;
  return out;
}

void NodeAllocator::insert_interval(NodeId start, std::size_t len) {
  HPCEM_ASSERT(len > 0, "empty interval");
  auto next = free_.lower_bound(start);
  // Overlap checks: the interval must not intersect neighbours.
  if (next != free_.end()) {
    require(start + len <= next->first,
            "NodeAllocator::release: node already free (double release)");
  }
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    require(prev->first + prev->second <= start,
            "NodeAllocator::release: node already free (double release)");
    // Coalesce with the previous interval when adjacent.
    if (prev->first + prev->second == start) {
      start = prev->first;
      len += prev->second;
      free_.erase(prev);
    }
  }
  // Coalesce with the next interval when adjacent.
  next = free_.lower_bound(start);
  if (next != free_.end() && start + len == next->first) {
    len += next->second;
    free_.erase(next);
  }
  free_.emplace(start, len);
}

void NodeAllocator::release(std::span<const NodeId> nodes) {
  require(!nodes.empty(), "NodeAllocator::release: empty release");
  // Group the (possibly scattered) node list into runs, then insert each.
  std::vector<NodeId> sorted(nodes.begin(), nodes.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
    require(sorted[i] != sorted[i + 1],
            "NodeAllocator::release: duplicate node in release");
  }
  require(sorted.back() < node_count_,
          "NodeAllocator::release: node out of range");

  std::size_t run_start = 0;
  for (std::size_t i = 1; i <= sorted.size(); ++i) {
    if (i == sorted.size() || sorted[i] != sorted[i - 1] + 1) {
      insert_interval(sorted[run_start], i - run_start);
      run_start = i;
    }
  }
  free_count_ += nodes.size();
  HPCEM_ASSERT(free_count_ <= node_count_, "free count exceeds pool");
}

}  // namespace hpcem
