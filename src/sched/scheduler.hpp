// Batch scheduler: FIFO with EASY backfill over a node pool.
//
// This is the Slurm-shaped substrate under the facility simulation.  The
// discipline is the classic EASY algorithm: the queue head gets a
// reservation at the earliest time enough nodes will be free (computed from
// running jobs' walltime estimates), and later jobs may jump the queue only
// if starting them now cannot delay that reservation.  Walltime *estimates*
// come from the jobs' requested walltime; actual runtimes are usually
// shorter, which is what creates backfill opportunities — and the >90%
// utilisation the paper reports.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sched/allocator.hpp"
#include "util/sim_time.hpp"
#include "workload/jobs.hpp"

namespace hpcem {

/// Queue ordering discipline.
enum class QueueDiscipline {
  kFifo,      ///< strict submission order (the default)
  kPriority,  ///< QoS base priority + wait-time aging + size boost
};

/// Priority-discipline weights (ignored under kFifo).
struct PriorityWeights {
  /// Base priority per QoS class.
  double standard = 1000.0;
  double short_qos = 3000.0;
  double largescale = 2000.0;
  double lowpriority = 0.0;
  /// Priority gained per hour of queue wait (aging; prevents starvation).
  double per_wait_hour = 100.0;
  /// Priority per node of job size (helps wide jobs assemble).
  double per_node = 0.2;

  friend bool operator==(const PriorityWeights&,
                         const PriorityWeights&) = default;
};

/// Scheduler tunables.
struct SchedulerConfig {
  std::size_t nodes = 5860;
  /// How many queued jobs behind the head are examined for backfill.
  std::size_t backfill_depth = 200;
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  PriorityWeights weights{};
};

/// A job the scheduler has decided to start now.
struct JobStart {
  JobSpec job;
  std::vector<NodeId> nodes;
};

/// FIFO + EASY backfill scheduler.
class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);

  /// Enqueue a job.  Jobs wider than the machine are rejected (throws).
  void submit(JobSpec job);

  /// Run a scheduling pass at time `now`; returns the jobs to start.
  /// The caller must later call `finish` for each started job.
  [[nodiscard]] std::vector<JobStart> schedule_pass(SimTime now);

  /// Record that a started job finished and free its nodes.
  void finish(JobId id, SimTime now);

  /// Tell the scheduler the actual expected end of a started job (the
  /// caller knows the realised runtime under the active policy).  Improves
  /// backfill planning; falls back to the walltime estimate otherwise.
  void set_expected_end(JobId id, SimTime end);

  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const { return running_.size(); }
  [[nodiscard]] std::size_t free_nodes() const {
    return allocator_.free_count();
  }
  [[nodiscard]] std::size_t busy_nodes() const {
    return allocator_.busy_count();
  }
  [[nodiscard]] std::size_t total_nodes() const {
    return allocator_.node_count();
  }
  [[nodiscard]] double utilisation() const {
    return static_cast<double>(busy_nodes()) /
           static_cast<double>(total_nodes());
  }

  /// Nodes allocated to a running job.
  [[nodiscard]] const std::vector<NodeId>& allocation(JobId id) const;

  /// Lifetime counters.
  [[nodiscard]] std::uint64_t started_total() const { return started_total_; }
  [[nodiscard]] std::uint64_t finished_total() const {
    return finished_total_;
  }
  [[nodiscard]] std::uint64_t passes_total() const { return passes_total_; }

  /// Priority score of a job at `now` under the configured weights
  /// (exposed for tests and tooling; meaningful under kPriority).
  [[nodiscard]] double priority_of(const JobSpec& job, SimTime now) const;

 private:
  /// Reorder the queue per the discipline (no-op under kFifo).
  void order_queue(SimTime now);
  struct Running {
    std::vector<NodeId> nodes;
    SimTime expected_end;
  };

  /// One running job in the expected-end-sorted shadow buffer.
  struct EndEntry {
    SimTime end;
    JobId id;
    std::size_t nodes;
  };
  /// Maintain the sorted end-time buffer across passes: O(log n) locate +
  /// contiguous shift per start/finish/retime, instead of rebuilding and
  /// sorting the whole buffer on every scheduling pass.
  void ends_insert(SimTime end, JobId id, std::size_t nodes);
  void ends_erase(SimTime end, JobId id);

  /// Earliest time at which `count` nodes will be free, assuming running
  /// jobs end at their expected ends; also reports how many nodes are free
  /// at that shadow time beyond the requirement.
  struct Shadow {
    SimTime time;
    std::size_t extra_nodes;
  };
  [[nodiscard]] Shadow shadow_for(std::size_t count, SimTime now) const;

  SchedulerConfig config_;
  NodeAllocator allocator_;
  std::deque<JobSpec> queue_;
  std::unordered_map<JobId, Running> running_;
  /// Running jobs sorted by (expected end, id) — the backfill shadow
  /// sweeps a prefix of this instead of re-sorting per pass.
  std::vector<EndEntry> ends_;
  /// order_queue scratch (priority keys + permutation), reused per pass.
  std::vector<double> priority_keys_;
  std::vector<std::size_t> order_perm_;
  std::uint64_t started_total_ = 0;
  std::uint64_t finished_total_ = 0;
  std::uint64_t passes_total_ = 0;
};

}  // namespace hpcem
