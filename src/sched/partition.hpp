// Partitioned scheduling: independent node pools behind one submit API.
//
// ARCHER2 exposes Slurm partitions — `standard` (5,276 nodes, 256 GB) and
// `highmem` (584 nodes, 512 GB) — each with its own pool and queue.  The
// `PartitionedScheduler` composes one `Scheduler` per partition and routes
// jobs by their partition name, so partition-aware studies (how much does
// fencing off high-memory nodes cost in utilisation?) use the same
// scheduling machinery as the single-pool facility simulations.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace hpcem {

/// One partition's static description.
struct PartitionSpec {
  std::string name;
  std::size_t nodes = 0;
  QueueDiscipline discipline = QueueDiscipline::kFifo;
  PriorityWeights weights{};
};

/// A job routed to a partition.
struct PartitionedJob {
  JobSpec job;
  std::string partition = "standard";
};

/// Scheduler composed of independent per-partition pools.
class PartitionedScheduler {
 public:
  /// ARCHER2's published partition split.
  static std::vector<PartitionSpec> archer2_partitions();

  explicit PartitionedScheduler(std::vector<PartitionSpec> partitions);

  [[nodiscard]] std::size_t partition_count() const {
    return schedulers_.size();
  }
  [[nodiscard]] std::vector<std::string> partition_names() const;

  /// Submit to a named partition; throws InvalidArgument if the partition
  /// does not exist or the job exceeds its pool.
  void submit(PartitionedJob job);

  /// Scheduling pass over every partition; starts carry partition names.
  struct Start {
    JobStart start;
    std::string partition;
  };
  [[nodiscard]] std::vector<Start> schedule_pass(SimTime now);

  /// Finish a job previously started on a partition.
  void finish(const std::string& partition, JobId id, SimTime now);

  /// Per-partition and whole-machine occupancy.
  [[nodiscard]] double utilisation(const std::string& partition) const;
  [[nodiscard]] double total_utilisation() const;
  [[nodiscard]] std::size_t total_nodes() const;
  [[nodiscard]] std::size_t busy_nodes() const;
  [[nodiscard]] std::size_t queue_length(const std::string& partition) const;

  /// Access one partition's scheduler (for stats/tests).
  [[nodiscard]] const Scheduler& scheduler(
      const std::string& partition) const;

 private:
  [[nodiscard]] Scheduler& at(const std::string& partition);
  [[nodiscard]] const Scheduler& at(const std::string& partition) const;

  std::vector<std::string> order_;  ///< insertion order for passes
  std::map<std::string, Scheduler> schedulers_;
};

}  // namespace hpcem
