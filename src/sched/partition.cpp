#include "sched/partition.hpp"

#include "util/error.hpp"

namespace hpcem {

std::vector<PartitionSpec> PartitionedScheduler::archer2_partitions() {
  PartitionSpec standard;
  standard.name = "standard";
  standard.nodes = 5276;
  PartitionSpec highmem;
  highmem.name = "highmem";
  highmem.nodes = 584;
  return {standard, highmem};
}

PartitionedScheduler::PartitionedScheduler(
    std::vector<PartitionSpec> partitions) {
  require(!partitions.empty(),
          "PartitionedScheduler: need at least one partition");
  for (auto& p : partitions) {
    require(!p.name.empty(), "PartitionedScheduler: partition needs a name");
    require(p.nodes > 0,
            "PartitionedScheduler: partition needs nodes: " + p.name);
    require(!schedulers_.contains(p.name),
            "PartitionedScheduler: duplicate partition: " + p.name);
    SchedulerConfig cfg;
    cfg.nodes = p.nodes;
    cfg.discipline = p.discipline;
    cfg.weights = p.weights;
    schedulers_.emplace(p.name, Scheduler(cfg));
    order_.push_back(p.name);
  }
}

std::vector<std::string> PartitionedScheduler::partition_names() const {
  return order_;
}

Scheduler& PartitionedScheduler::at(const std::string& partition) {
  auto it = schedulers_.find(partition);
  require(it != schedulers_.end(),
          "PartitionedScheduler: no such partition: " + partition);
  return it->second;
}

const Scheduler& PartitionedScheduler::at(
    const std::string& partition) const {
  auto it = schedulers_.find(partition);
  require(it != schedulers_.end(),
          "PartitionedScheduler: no such partition: " + partition);
  return it->second;
}

void PartitionedScheduler::submit(PartitionedJob job) {
  at(job.partition).submit(std::move(job.job));
}

std::vector<PartitionedScheduler::Start>
PartitionedScheduler::schedule_pass(SimTime now) {
  std::vector<Start> out;
  for (const auto& name : order_) {
    for (auto& s : at(name).schedule_pass(now)) {
      out.push_back({std::move(s), name});
    }
  }
  return out;
}

void PartitionedScheduler::finish(const std::string& partition, JobId id,
                                  SimTime now) {
  at(partition).finish(id, now);
}

double PartitionedScheduler::utilisation(
    const std::string& partition) const {
  return at(partition).utilisation();
}

double PartitionedScheduler::total_utilisation() const {
  return static_cast<double>(busy_nodes()) /
         static_cast<double>(total_nodes());
}

std::size_t PartitionedScheduler::total_nodes() const {
  std::size_t n = 0;
  for (const auto& [name, s] : schedulers_) n += s.total_nodes();
  return n;
}

std::size_t PartitionedScheduler::busy_nodes() const {
  std::size_t n = 0;
  for (const auto& [name, s] : schedulers_) n += s.busy_nodes();
  return n;
}

std::size_t PartitionedScheduler::queue_length(
    const std::string& partition) const {
  return at(partition).queue_length();
}

const Scheduler& PartitionedScheduler::scheduler(
    const std::string& partition) const {
  return at(partition);
}

}  // namespace hpcem
