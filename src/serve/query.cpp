#include "serve/query.hpp"

#include <algorithm>
#include <cmath>

#include "core/spec_io.hpp"
#include "obs/span.hpp"
#include "grid/carbon.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace hpcem::serve {

namespace {

constexpr double kSecondsPerYear = 365.25 * 86400.0;

/// A request time member: epoch seconds as a number, or an ISO date-time
/// string ("YYYY-MM-DD", "YYYY-MM-DD hh:mm[:ss]").
SimTime time_member(const JsonValue& v, const std::string& member) {
  if (v.is_number()) return SimTime(v.as_number());
  if (v.is_string()) {
    if (const auto t = parse_date_time(v.as_string())) return *t;
    throw ParseError("query: bad " + member + " timestamp '" +
                     v.as_string() + "'");
  }
  throw ParseError("query: " + member +
                   " must be epoch seconds or an ISO date-time string");
}

IntensitySpec intensity_from_json(const JsonValue& v) {
  IntensitySpec spec;
  const JsonValue* constant = v.get("constant_g_per_kwh");
  const JsonValue* points = v.get("points");
  if ((constant == nullptr) == (points == nullptr)) {
    throw ParseError(
        "query: intensity needs exactly one of constant_g_per_kwh | points");
  }
  if (constant != nullptr) {
    spec.constant = CarbonIntensity::g_per_kwh(constant->as_number());
    return spec;
  }
  for (const JsonValue& p : points->as_array()) {
    const auto& pair = p.as_array();
    if (pair.size() != 2) {
      throw ParseError("query: intensity points must be [time, g_per_kwh]");
    }
    const SimTime t = time_member(pair[0], "intensity point");
    spec.points.emplace_back(t.sec(), pair[1].as_number());
  }
  if (spec.points.empty()) {
    throw ParseError("query: intensity points must be non-empty");
  }
  for (std::size_t i = 1; i < spec.points.size(); ++i) {
    if (spec.points[i].first <= spec.points[i - 1].first) {
      throw ParseError(
          "query: intensity point times must be strictly increasing");
    }
  }
  return spec;
}

JsonValue intensity_to_json(const IntensitySpec& spec) {
  JsonValue v = JsonValue::object();
  if (spec.constant) {
    v.set("constant_g_per_kwh", spec.constant->gkwh());
    return v;
  }
  JsonValue pts = JsonValue::array();
  for (const auto& [t, g] : spec.points) {
    JsonValue pair = JsonValue::array();
    pair.push_back(t);
    pair.push_back(g);
    pts.push_back(std::move(pair));
  }
  v.set("points", std::move(pts));
  return v;
}

EmbodiedParams embodied_from_json(const JsonValue& v) {
  EmbodiedParams p;
  p.total = CarbonMass::tonnes(v.at("total_tonnes").as_number());
  p.lifetime_years = v.at("lifetime_years").as_number();
  if (p.total.t() <= 0.0 || p.lifetime_years <= 0.0) {
    throw ParseError("query: scope3 total_tonnes and lifetime_years must "
                     "be positive");
  }
  return p;
}

const char* strategy_name(OperationalStrategy s) {
  switch (s) {
    case OperationalStrategy::kMaximisePerformance: return "performance";
    case OperationalStrategy::kBalance: return "balance";
    case OperationalStrategy::kMaximiseEnergyEfficiency:
      return "energy-efficiency";
  }
  return "unknown";
}

const char* regime_name(EmissionsRegime r) {
  switch (r) {
    case EmissionsRegime::kEmbodiedDominated: return "embodied_dominated";
    case EmissionsRegime::kBalanced: return "balanced";
    case EmissionsRegime::kOperationalDominated:
      return "operational_dominated";
  }
  return "unknown";
}

/// §2 strategy from a scope-2 share (EmissionsModel::recommend thresholds).
OperationalStrategy strategy_from_share(double scope2_share) {
  if (scope2_share < 1.0 / 3.0) {
    return OperationalStrategy::kMaximisePerformance;
  }
  if (scope2_share > 2.0 / 3.0) {
    return OperationalStrategy::kMaximiseEnergyEfficiency;
  }
  return OperationalStrategy::kBalance;
}

/// Reject members outside `allowed` so a typo cannot silently produce a
/// default-valued (and cached) answer to a different question.
void reject_unknown_members(const JsonValue& v,
                            std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : v.as_object()) {
    if (std::find_if(allowed.begin(), allowed.end(), [&](const char* a) {
          return key == a;
        }) == allowed.end()) {
      throw ParseError("query: unknown member '" + key + "'");
    }
  }
}

}  // namespace

CarbonIntensity IntensitySpec::at(SimTime t) const {
  if (constant) return *constant;
  HPCEM_ASSERT(!points.empty(), "IntensitySpec: empty breakpoint list");
  const double x = t.sec();
  if (x <= points.front().first) {
    return CarbonIntensity::g_per_kwh(points.front().second);
  }
  if (x >= points.back().first) {
    return CarbonIntensity::g_per_kwh(points.back().second);
  }
  const auto hi = std::lower_bound(
      points.begin(), points.end(), x,
      [](const std::pair<double, double>& p, double v) { return p.first < v; });
  const auto lo = hi - 1;
  const double f = (x - lo->first) / (hi->first - lo->first);
  return CarbonIntensity::g_per_kwh(lo->second +
                                    f * (hi->second - lo->second));
}

std::string QueryRequest::op_name(Op op) {
  switch (op) {
    case Op::kList: return "list";
    case Op::kWindowAggregate: return "window_aggregate";
    case Op::kRegimes: return "regimes";
    case Op::kCompare: return "compare";
    case Op::kWhatIf: return "whatif";
    case Op::kStats: return "stats";
    case Op::kTrace: return "trace";
  }
  return "unknown";
}

QueryRequest QueryRequest::from_json(const JsonValue& v) {
  QueryRequest r;
  const std::string& op = v.at("op").as_string();
  if (op == "list") {
    r.op = Op::kList;
    reject_unknown_members(v, {"op", "id"});
  } else if (op == "window_aggregate") {
    r.op = Op::kWindowAggregate;
    reject_unknown_members(v,
                           {"op", "id", "scenario", "channel", "start", "end"});
    r.scenario = v.at("scenario").as_string();
    r.channel = v.at("channel").as_string();
  } else if (op == "regimes") {
    r.op = Op::kRegimes;
    reject_unknown_members(v, {"op", "id", "scenario", "intensity", "start",
                               "end", "scope3", "spec"});
    r.scenario = v.at("scenario").as_string();
  } else if (op == "compare") {
    r.op = Op::kCompare;
    reject_unknown_members(v, {"op", "id", "a", "b"});
    r.scenario_a = v.at("a").as_string();
    r.scenario_b = v.at("b").as_string();
  } else if (op == "whatif") {
    r.op = Op::kWhatIf;
    reject_unknown_members(v, {"op", "id", "scenario", "channel", "intensity",
                               "start", "end", "scope3", "spec"});
    r.scenario = v.at("scenario").as_string();
    r.channel = v.at("channel").as_string();
  } else if (op == "stats") {
    r.op = Op::kStats;
    reject_unknown_members(v, {"op", "id"});
  } else if (op == "trace") {
    r.op = Op::kTrace;
    reject_unknown_members(v, {"op", "id", "request"});
    const double n = v.at("request").as_number();
    if (n < 1.0 || n != std::floor(n)) {
      throw ParseError("query: trace request must be a positive integer id");
    }
    r.trace_request = static_cast<std::uint64_t>(n);
  } else {
    throw ParseError("query: unknown op '" + op + "'");
  }

  if (const JsonValue* id = v.get("id")) r.id = id->as_string();
  if (const JsonValue* start = v.get("start")) {
    r.start = time_member(*start, "start");
  }
  if (const JsonValue* end = v.get("end")) r.end = time_member(*end, "end");
  if (r.start && r.end && *r.end < *r.start) {
    throw ParseError("query: end must not precede start");
  }
  if (const JsonValue* intensity = v.get("intensity")) {
    r.intensity = intensity_from_json(*intensity);
  }
  if (const JsonValue* scope3 = v.get("scope3")) {
    r.embodied = embodied_from_json(*scope3);
  }
  if (const JsonValue* spec = v.get("spec")) {
    // Inline scenario-spec override: the `grid` / `scope3` sections in the
    // scenario-file grammar (docs/SCENARIO_SCHEMA.md), so a what-if is
    // phrased in exactly the language of the committed scenario library.
    // Mutually exclusive with the wire-level members it resolves into —
    // the canonical key (and so the cache) only ever sees the resolved
    // intensity/scope3 form.
    if (r.intensity || r.embodied) {
      throw ParseError(
          "query: spec excludes the intensity and scope3 members");
    }
    const SpecOverrides o = spec_overrides_from_json(*spec);
    if (o.grid) {
      IntensitySpec resolved;
      resolved.constant = o.grid->constant;
      resolved.points = o.grid->points;
      r.intensity = std::move(resolved);
    }
    if (o.scope3) r.embodied = *o.scope3;
  }
  if ((r.op == Op::kRegimes || r.op == Op::kWhatIf) && !r.intensity) {
    throw ParseError("query: " + op_name(r.op) +
                     " needs an intensity (or a spec with a grid section)");
  }
  return r;
}

QueryRequest QueryRequest::from_json_text(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

JsonValue QueryRequest::to_canonical_json() const {
  JsonValue v = JsonValue::object();
  v.set("op", op_name(op));
  if (!id.empty()) v.set("id", id);
  if (op == Op::kCompare) {
    v.set("a", scenario_a);
    v.set("b", scenario_b);
  }
  if (op == Op::kTrace) {
    v.set("request", static_cast<double>(trace_request));
  }
  if (!scenario.empty()) v.set("scenario", scenario);
  if (!channel.empty()) v.set("channel", channel);
  if (start) v.set("start", start->sec());
  if (end) v.set("end", end->sec());
  if (intensity) v.set("intensity", intensity_to_json(*intensity));
  if (embodied) {
    JsonValue s3 = JsonValue::object();
    s3.set("total_tonnes", embodied->total.t());
    s3.set("lifetime_years", embodied->lifetime_years);
    v.set("scope3", std::move(s3));
  }
  return v;
}

std::string QueryRequest::canonical_key() const {
  return to_canonical_json().dump(0);
}

std::string render_response(const QueryRequest& request,
                            const JsonValue& result) {
  JsonValue v = JsonValue::object();
  v.set("ok", true);
  v.set("op", QueryRequest::op_name(request.op));
  if (!request.id.empty()) v.set("id", request.id);
  v.set("result", result);
  return v.dump(0);
}

std::string render_error(const std::string& id, const std::string& message) {
  JsonValue v = JsonValue::object();
  v.set("ok", false);
  if (!id.empty()) v.set("id", id);
  v.set("error", message);
  return v.dump(0);
}

JsonValue QueryEngine::evaluate(const QueryRequest& request) const {
  switch (request.op) {
    case QueryRequest::Op::kList: return list();
    case QueryRequest::Op::kWindowAggregate:
      return window_aggregate(request);
    case QueryRequest::Op::kRegimes: return regimes(request);
    case QueryRequest::Op::kCompare: return compare(request);
    case QueryRequest::Op::kWhatIf: return whatif(request);
    case QueryRequest::Op::kStats:
    case QueryRequest::Op::kTrace:
      // Admin commands read front/telemetry state the engine cannot see;
      // ServeFront answers them before the engine is ever reached.
      throw InvalidArgument("query: " + QueryRequest::op_name(request.op) +
                            " is a serve-front command, not an engine query");
  }
  throw InvalidArgument("query: unhandled op");
}

std::string QueryEngine::handle_line(const std::string& line) const {
  QueryRequest request;
  try {
    request = QueryRequest::from_json_text(line);
  } catch (const Error& e) {
    return render_error("", e.what());
  }
  try {
    return render_response(request, evaluate(request));
  } catch (const Error& e) {
    return render_error(request.id, e.what());
  }
}

JsonValue QueryEngine::list() const {
  HPCEM_OBS_REQUEST_SPAN("serve.query.list");
  JsonValue scenarios = JsonValue::array();
  for (const std::string& name : stores_.scenario_names()) {
    const StoredScenario& s = stores_.at(name);
    JsonValue o = JsonValue::object();
    o.set("scenario", s.name);
    o.set("source", s.source);
    o.set("machine", s.machine);
    o.set("window_start", s.window_start.sec());
    o.set("window_end", s.window_end.sec());
    o.set("replicates", s.replicates);
    o.set("completed_jobs", s.headline.completed_jobs);
    o.set("window_energy_kwh", s.headline.window_energy_kwh);
    JsonValue channels = JsonValue::array();
    for (const StoredChannel& c : s.channels) {
      JsonValue ch = JsonValue::object();
      ch.set("name", c.name);
      ch.set("unit", c.unit);
      ch.set("samples", c.aggregate.samples);
      ch.set("has_series", c.has_series());
      channels.push_back(std::move(ch));
    }
    o.set("channels", std::move(channels));
    scenarios.push_back(std::move(o));
  }
  JsonValue result = JsonValue::object();
  result.set("scenarios", std::move(scenarios));
  return result;
}

JsonValue QueryEngine::window_aggregate(const QueryRequest& r) const {
  HPCEM_OBS_REQUEST_SPAN("serve.query.window_aggregate");
  const StoredScenario& s = stores_.at(r.scenario);
  const StoredChannel* ch = s.find_channel(r.channel);
  require(ch != nullptr, "query: unknown channel '" + r.channel +
                             "' in scenario '" + r.scenario + "'");
  const ChannelAggregate& a = ch->aggregate;
  const SimTime start = r.start.value_or(s.window_start);
  const SimTime end = r.end.value_or(s.window_end);

  WindowAggregate w;
  if (!r.start && !r.end) {
    // No window: the whole channel, answered exactly from the streaming
    // aggregates — identical for series-bearing and aggregate-only (v1/v2)
    // artifacts.
    w.samples = a.samples;
    w.mean = a.mean;
    w.min = a.min;
    w.max = a.max;
    w.integral = a.integral;
    w.first_time = a.first_time;
    w.last_time = a.last_time;
  } else if (ch->has_series()) {
    w = ArtifactStore::window_aggregate(*ch, start, end);
  } else {
    // Aggregate-only artifacts can still answer an explicit window that
    // covers the whole stream exactly.
    require_state(
        start <= a.first_time && end > a.last_time,
        "query: channel '" + r.channel + "' of scenario '" + r.scenario +
            "' carries no stored series; only whole-window aggregates are "
            "available (re-export with --serve-export)");
    w.samples = a.samples;
    w.mean = a.mean;
    w.min = a.min;
    w.max = a.max;
    w.integral = a.integral;
    w.first_time = a.first_time;
    w.last_time = a.last_time;
  }

  JsonValue result = JsonValue::object();
  result.set("scenario", s.name);
  result.set("channel", ch->name);
  result.set("unit", ch->unit);
  result.set("start", start.sec());
  result.set("end", end.sec());
  result.set("samples", w.samples);
  if (w.samples > 0) {
    result.set("mean", w.mean);
    result.set("min", w.min);
    result.set("max", w.max);
    result.set("integral", w.integral);
    result.set("first_time", w.first_time.sec());
    result.set("last_time", w.last_time.sec());
    // A kW channel's trapezoidal integral is kW s: surface the energy.
    if (ch->unit == "kW") result.set("energy_kwh", w.integral / 3600.0);
  }
  return result;
}

JsonValue QueryEngine::regimes(const QueryRequest& r) const {
  HPCEM_OBS_REQUEST_SPAN("serve.query.regimes");
  const StoredScenario& s = stores_.at(r.scenario);
  HPCEM_ASSERT(r.intensity.has_value(), "regimes: parsed without intensity");
  const IntensitySpec& intensity = *r.intensity;
  const SimTime start = r.start.value_or(s.window_start);
  const SimTime end = r.end.value_or(s.window_end);
  require(end > start, "query: regimes needs a non-empty [start, end)");

  // Segment boundaries: the window ends plus every breakpoint inside it.
  std::vector<double> bounds{start.sec()};
  if (!intensity.is_constant()) {
    for (const auto& [t, g] : intensity.points) {
      if (t > start.sec() && t < end.sec()) bounds.push_back(t);
    }
  }
  bounds.push_back(end.sec());

  // Within a linear segment, split at the §2 thresholds (30 and 100
  // gCO2/kWh) so every sub-interval lies in exactly one regime; classify
  // it at its midpoint.  Exact — no sampling grid.
  double seconds[3] = {0.0, 0.0, 0.0};
  CompensatedSum intensity_integral;  // g/kWh * s, for the mean
  constexpr double kThresholds[2] = {30.0, 100.0};
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const double t0 = bounds[i];
    const double t1 = bounds[i + 1];
    const double v0 = intensity.at(SimTime(t0)).gkwh();
    const double v1 = intensity.at(SimTime(t1)).gkwh();
    intensity_integral.add(0.5 * (v0 + v1) * (t1 - t0));

    std::vector<double> cuts{t0};
    for (const double threshold : kThresholds) {
      if ((v0 - threshold) * (v1 - threshold) < 0.0) {
        cuts.push_back(t0 + (threshold - v0) / (v1 - v0) * (t1 - t0));
      }
    }
    cuts.push_back(t1);
    std::sort(cuts.begin(), cuts.end());
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k) {
      const double mid = 0.5 * (cuts[k] + cuts[k + 1]);
      const double f = t1 > t0 ? (mid - t0) / (t1 - t0) : 0.0;
      const double vmid = v0 + f * (v1 - v0);
      const auto regime =
          classify_regime(CarbonIntensity::g_per_kwh(vmid));
      seconds[static_cast<int>(regime)] += cuts[k + 1] - cuts[k];
    }
  }

  const double total = (end - start).sec();
  const double mean_g = intensity_integral.value() / total;

  // §2 strategy at the period-mean intensity, using the scenario's mean
  // facility draw to balance the scopes.
  const EmbodiedParams embodied = r.embodied.value_or(EmbodiedParams{});
  const EmissionsModel model(embodied,
                             Power::kilowatts(s.headline.mean_kw));
  const CarbonIntensity mean_ci = CarbonIntensity::g_per_kwh(mean_g);

  JsonValue result = JsonValue::object();
  result.set("scenario", s.name);
  result.set("start", start.sec());
  result.set("end", end.sec());
  JsonValue secs = JsonValue::object();
  JsonValue shares = JsonValue::object();
  int dominant = 0;
  for (int k = 0; k < 3; ++k) {
    const char* name = regime_name(static_cast<EmissionsRegime>(k));
    secs.set(name, seconds[k]);
    shares.set(name, seconds[k] / total);
    if (seconds[k] > seconds[dominant]) dominant = k;
  }
  result.set("seconds", std::move(secs));
  result.set("shares", std::move(shares));
  result.set("dominant",
             regime_name(static_cast<EmissionsRegime>(dominant)));
  result.set("mean_intensity_g_per_kwh", mean_g);
  result.set("scope2_share_at_mean", model.scope2_share(mean_ci));
  result.set("strategy", strategy_name(model.recommend(mean_ci)));
  return result;
}

JsonValue QueryEngine::compare(const QueryRequest& r) const {
  HPCEM_OBS_REQUEST_SPAN("serve.query.compare");
  const StoredScenario& a = stores_.at(r.scenario_a);
  const StoredScenario& b = stores_.at(r.scenario_b);
  const auto side = [](const StoredScenario& s) {
    require(s.headline.window_energy_kwh > 0.0,
            "query: scenario '" + s.name +
                "' has no window energy; cannot compute perf per kWh");
    JsonValue o = JsonValue::object();
    o.set("scenario", s.name);
    o.set("completed_jobs", s.headline.completed_jobs);
    o.set("window_energy_kwh", s.headline.window_energy_kwh);
    o.set("jobs_per_kwh",
          s.headline.completed_jobs / s.headline.window_energy_kwh);
    o.set("mean_kw", s.headline.mean_kw);
    o.set("mean_utilisation", s.headline.mean_utilisation);
    return o;
  };
  JsonValue oa = side(a);
  JsonValue ob = side(b);
  const double ja = oa.at("jobs_per_kwh").as_number();
  const double jb = ob.at("jobs_per_kwh").as_number();

  JsonValue result = JsonValue::object();
  result.set("a", std::move(oa));
  result.set("b", std::move(ob));
  result.set("jobs_per_kwh_ratio", ja > 0.0 ? jb / ja : 0.0);
  result.set("more_efficient", jb > ja ? "b" : (ja > jb ? "a" : "tie"));
  return result;
}

JsonValue QueryEngine::whatif(const QueryRequest& r) const {
  HPCEM_OBS_REQUEST_SPAN("serve.query.whatif");
  const StoredScenario& s = stores_.at(r.scenario);
  const StoredChannel* ch = s.find_channel(r.channel);
  require(ch != nullptr, "query: unknown channel '" + r.channel +
                             "' in scenario '" + r.scenario + "'");
  require(ch->unit == "kW",
          "query: whatif re-pricing requires a power channel in kW; '" +
              r.channel + "' is in " +
              (ch->unit.empty() ? "(no unit)" : ch->unit));
  HPCEM_ASSERT(r.intensity.has_value(), "whatif: parsed without intensity");
  const IntensitySpec& intensity = *r.intensity;
  // No explicit window means the whole stored channel — including its last
  // sample, which an end-exclusive window at window_end would drop.
  const bool whole_channel = !r.start && !r.end;
  const SimTime start = r.start.value_or(s.window_start);
  const SimTime end = r.end.value_or(s.window_end);

  // Re-price the stored energy: integrate each retained sample interval
  // and charge it at the intensity interpolated at the interval midpoint.
  double energy_kwh = 0.0;
  double scope2_g = 0.0;
  SimTime covered_start = start;
  SimTime covered_end = end;
  if (ch->has_series()) {
    const auto lo = whole_channel
                        ? ch->times.begin()
                        : std::lower_bound(ch->times.begin(),
                                           ch->times.end(), start.sec());
    const auto hi = whole_channel
                        ? ch->times.end()
                        : std::lower_bound(lo, ch->times.end(), end.sec());
    const auto first = static_cast<std::size_t>(lo - ch->times.begin());
    const auto last = static_cast<std::size_t>(hi - ch->times.begin());
    require(last > first + 1,
            "query: whatif window holds fewer than two samples of '" +
                r.channel + "'");
    CompensatedSum e_kwh;
    CompensatedSum co2_g;
    for (std::size_t i = first; i + 1 < last; ++i) {
      const double dt = ch->times[i + 1] - ch->times[i];
      const double interval_kwh =
          0.5 * (ch->values[i] + ch->values[i + 1]) * dt / 3600.0;
      const double mid = 0.5 * (ch->times[i] + ch->times[i + 1]);
      e_kwh.add(interval_kwh);
      co2_g.add(interval_kwh * intensity.at(SimTime(mid)).gkwh());
    }
    energy_kwh = e_kwh.value();
    scope2_g = co2_g.value();
    covered_start = SimTime(ch->times[first]);
    covered_end = SimTime(ch->times[last - 1]);
  } else {
    // Aggregate-only artifacts: the whole-run energy can still be
    // re-priced against a *constant* intensity exactly.
    const ChannelAggregate& a = ch->aggregate;
    require_state(
        intensity.is_constant() &&
            (whole_channel ||
             (start <= a.first_time && end > a.last_time)),
        "query: whatif with a time-varying intensity or sub-window needs a "
        "stored series for '" + r.channel + "' (re-export with "
        "--serve-export)");
    energy_kwh = a.integral / 3600.0;
    scope2_g = energy_kwh * intensity.at(a.first_time).gkwh();
    covered_start = a.first_time;
    covered_end = a.last_time;
  }

  // Scope-3: amortise the embodied total over the covered span — the same
  // span the energy integral describes, so the scope balance compares
  // like with like.
  const EmbodiedParams embodied = r.embodied.value_or(EmbodiedParams{});
  const double span_s = (covered_end - covered_start).sec();
  require(span_s > 0.0, "query: whatif window covers no time span");
  const double scope3_t =
      embodied.annual().t() * (span_s / kSecondsPerYear);
  const double scope2_t = CarbonMass::grams(scope2_g).t();
  const double share = scope2_t + scope3_t > 0.0
                           ? scope2_t / (scope2_t + scope3_t)
                           : 0.0;
  const double mean_g = energy_kwh > 0.0 ? scope2_g / energy_kwh : 0.0;

  JsonValue result = JsonValue::object();
  result.set("scenario", s.name);
  result.set("channel", ch->name);
  result.set("start", covered_start.sec());
  result.set("end", covered_end.sec());
  result.set("energy_kwh", energy_kwh);
  result.set("mean_intensity_g_per_kwh", mean_g);
  result.set("scope2_tonnes", scope2_t);
  result.set("scope3_tonnes", scope3_t);
  result.set("total_tonnes", scope2_t + scope3_t);
  result.set("scope2_share", share);
  result.set("regime",
             regime_name(classify_regime(CarbonIntensity::g_per_kwh(mean_g))));
  result.set("strategy", strategy_name(strategy_from_share(share)));
  return result;
}

}  // namespace hpcem::serve
