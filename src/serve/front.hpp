// Serving front: cache, request coalescing and a bounded executor over a
// QueryEngine (see DESIGN.md "Serving layer").
//
// The path of one request line:
//
//   cache get (verbatim line) ──hit───────────────────────────────▶ bytes
//     │ miss
//   parse -> canonical key -> cache get ──hit──────────────────────▶ bytes
//                                │ miss
//                                ├─ identical query in flight? ─wait▶ bytes
//                                └─ evaluate -> cache put -> notify ▶ bytes
//
// The cache is keyed twice: on the canonical request JSON (two spellings
// of one query share one evaluation) and on the verbatim line (repeats of
// the same bytes skip the parse entirely — safe because canonicalization
// is idempotent, so a raw line equal to some canonical rendering parses
// to exactly the query that rendering keys).
//
// Coalescing means N concurrent identical queries cost one evaluation:
// the first arrival computes, later arrivals block on the in-flight entry
// and copy its bytes.  The executor is a bounded thread pool — `submit`
// applies backpressure by blocking once `max_queue` requests are pending,
// so a fast client cannot queue unbounded memory.
//
// Determinism: every response is a pure function of (store, request line)
// rendered through the deterministic JSON layer, the stream writer emits
// responses in input order, and the cache stores exact response bytes —
// so a request stream produces byte-identical output for any worker
// count, with the cache on or off.
//
// Observability (hpcem::obs, off unless HPCEM_OBS=1): `serve.request`
// span + latency histogram around every evaluation, `serve.cache.hit` /
// `serve.cache.miss` counters, `serve.coalesced` counter and a
// `serve.queue.depth` high-water gauge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "serve/query.hpp"
#include "serve/result_cache.hpp"
#include "util/thread_pool.hpp"

namespace hpcem::serve {

/// Front configuration.
struct ServeOptions {
  std::size_t workers = 4;        ///< executor threads (>= 1)
  std::size_t cache_entries = 4096;  ///< 0 disables the result cache
  std::size_t cache_shards = 8;
  std::size_t max_queue = 256;    ///< submit() blocks beyond this depth
  /// Flight-recorder postmortem JSON path; empty disables dumping.
  /// Dumps fire on a query error, or on a latency breach when
  /// `slow_request_threshold` is set.  Needs obs collection enabled.
  std::string postmortem_path;
  /// Latency postmortem threshold in the active stamp unit (wall
  /// nanoseconds, or logical ticks in deterministic mode); 0 = off.
  std::uint64_t slow_request_threshold = 0;
};

/// Cumulative front statistics.
struct FrontStats {
  std::uint64_t requests = 0;
  std::uint64_t evaluations = 0;  ///< actual engine evaluations (misses)
  std::uint64_t coalesced = 0;    ///< waits on an identical in-flight query
  std::uint64_t postmortems = 0;  ///< flight-recorder dumps triggered
  CacheStats cache;
  std::size_t peak_queue_depth = 0;
};

/// Thread-safe query service over a frozen ArtifactStore (or a sharded
/// MultiStore).
class ServeFront {
 public:
  ServeFront(const ArtifactStore& store, ServeOptions options);
  /// Sharded front: routes every lookup through the MultiStore's
  /// consistent-hash ring.  Responses are byte-identical to a
  /// single-store front holding the same scenarios.
  ServeFront(MultiStore stores, ServeOptions options);
  ~ServeFront();
  ServeFront(const ServeFront&) = delete;
  ServeFront& operator=(const ServeFront&) = delete;

  /// Answer one NDJSON request line synchronously (parse -> cache ->
  /// coalesce -> evaluate).  Never throws: failures become deterministic
  /// `{"ok":false,...}` lines.  Safe to call from any thread.  Assigns
  /// the line a deterministic request id (the running request count) and
  /// serves it under that request-scoped span context; `stats` / `trace`
  /// admin commands are answered here and never cached.
  [[nodiscard]] std::string handle(const std::string& line);

  /// Enqueue a request line on the executor.  Blocks while the queue is
  /// at `max_queue` (backpressure).  The future never holds an exception.
  [[nodiscard]] std::future<std::string> submit(std::string line);

  /// Serve a whole NDJSON stream: one response line per request line, in
  /// input order, fanned out over the executor.  Returns lines served.
  std::size_t serve_stream(std::istream& in, std::ostream& out);

  [[nodiscard]] FrontStats stats() const;
  [[nodiscard]] const QueryEngine& engine() const { return engine_; }

 private:
  /// Evaluation seam: tests substitute a slow/counting evaluator to pin
  /// down coalescing without depending on engine timings.
  friend class ServeFrontTestAccess;
  using Evaluator = std::function<std::string(const QueryRequest&)>;

  /// The request path proper (cache -> coalesce -> evaluate), run inside
  /// the request-scoped span context handle() installs.
  [[nodiscard]] std::string handle_request(const std::string& line);
  /// Answer a stats/trace admin command from live front + obs state.
  [[nodiscard]] std::string handle_admin(const QueryRequest& request) const;
  [[nodiscard]] JsonValue stats_result() const;
  [[nodiscard]] JsonValue trace_result(std::uint64_t request_id) const;
  /// Dump a flight-recorder postmortem when `result` is an error response
  /// or `elapsed` breaches the configured latency threshold.
  void maybe_postmortem(const std::string& result, std::uint64_t request_id,
                        std::uint64_t elapsed);

  [[nodiscard]] std::string evaluate_coalesced(const QueryRequest& request,
                                               const std::string& key);

  /// One query being computed right now; later identical arrivals wait.
  struct InFlight {
    /// Id of the request that owns the evaluation; set before the entry
    /// is published under inflight_mu_, so waiters can record whose
    /// answer they piggybacked on.
    std::uint64_t owner_request = 0;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;        // hpcem: guarded_by(mu)
    std::string result;       // hpcem: guarded_by(mu)
  };

  QueryEngine engine_;
  Evaluator evaluator_;
  std::optional<ResultCache> cache_;

  std::mutex inflight_mu_;
  // hpcem: guarded_by(inflight_mu_)
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::size_t queue_depth_ = 0;       // hpcem: guarded_by(queue_mu_)
  std::size_t peak_queue_depth_ = 0;  // hpcem: guarded_by(queue_mu_)
  std::size_t max_queue_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> evaluations_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> postmortems_{0};

  std::string postmortem_path_;
  std::uint64_t slow_request_threshold_ = 0;
  /// Serializes postmortem dumps (snapshot + file write).
  std::mutex postmortem_mu_;

  // Last member: destroyed first, so worker tasks still running at
  // teardown see every other member alive.
  ThreadPool pool_;
};

}  // namespace hpcem::serve
