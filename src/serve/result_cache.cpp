#include "serve/result_cache.hpp"

#include <bit>

#include "obs/request_context.hpp"
#include "util/error.hpp"

namespace hpcem::serve {

ResultCache::ResultCache(std::size_t capacity, std::size_t shards) {
  require(capacity >= 1, "ResultCache: capacity must be >= 1");
  require(shards >= 1, "ResultCache: shards must be >= 1");
  const std::size_t shard_count = std::bit_ceil(shards);
  capacity_ = capacity;
  per_shard_ = (capacity + shard_count - 1) / shard_count;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::uint64_t ResultCache::hash_key(std::string_view key) {
  // FNV-1a 64-bit: fixed constants, byte-order independent — the shard a
  // key lands on never depends on the platform or standard library.
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ResultCache::Shard& ResultCache::shard_for(std::string_view key) {
  return *shards_[hash_key(key) & (shards_.size() - 1)];
}

std::optional<std::string> ResultCache::get(std::string_view key) {
  // Flight-recorder breadcrumb (aux: 1 = hit, 0 = miss): the cache tier
  // of the per-request trace.
  static const obs::NameId kGet = obs::intern_name("serve.cache.get");
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    obs::record_event(kGet, 0);
    return std::nullopt;
  }
  // Refresh recency: splice the node to the front (iterators and the
  // string_view key into the node stay valid).
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  obs::record_event(kGet, 1);
  return it->second->second;
}

void ResultCache::put(std::string_view key, std::string value) {
  static const obs::NameId kPut = obs::intern_name("serve.cache.put");
  obs::record_event(kPut, value.size());
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(std::string(key), std::move(value));
  shard.index.emplace(shard.lru.front().first, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (shard.lru.size() > per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->lru.size();
  }
  return s;
}

}  // namespace hpcem::serve
