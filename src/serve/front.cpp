#include "serve/front.hpp"

#include <deque>
#include <iostream>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/postmortem.hpp"
#include "obs/request_context.hpp"
#include "obs/span.hpp"
#include "obs/stats.hpp"

namespace hpcem::serve {

namespace {

/// Every serve-tier metric in one place, so the front constructor can
/// force registration eagerly — metric ids then exist (value 0) in stats
/// output even before the first request touches an instrumentation site.
struct ServeInstruments {
  obs::Histogram request_ns{"serve.request.ns", "ns"};
  obs::Histogram list_ns{"serve.query.list.ns", "ns"};
  obs::Histogram window_aggregate_ns{"serve.query.window_aggregate.ns", "ns"};
  obs::Histogram regimes_ns{"serve.query.regimes.ns", "ns"};
  obs::Histogram compare_ns{"serve.query.compare.ns", "ns"};
  obs::Histogram whatif_ns{"serve.query.whatif.ns", "ns"};
  obs::Counter cache_hit{"serve.cache.hit"};
  obs::Counter cache_miss{"serve.cache.miss"};
  obs::Counter coalesced{"serve.coalesced"};
  obs::Counter errors{"serve.request.errors"};
  obs::Counter postmortems{"serve.postmortem.dumps"};
  obs::Gauge queue_depth{"serve.queue.depth", "requests"};

  [[nodiscard]] const obs::Histogram& op_ns(QueryRequest::Op op) const {
    switch (op) {
      case QueryRequest::Op::kList: return list_ns;
      case QueryRequest::Op::kWindowAggregate: return window_aggregate_ns;
      case QueryRequest::Op::kRegimes: return regimes_ns;
      case QueryRequest::Op::kCompare: return compare_ns;
      case QueryRequest::Op::kWhatIf: return whatif_ns;
      case QueryRequest::Op::kStats:
      case QueryRequest::Op::kTrace: break;  // admin: answered pre-timer
    }
    return request_ns;
  }
};

ServeInstruments& instruments() {
  static ServeInstruments s;
  return s;
}

/// Error responses start with this exact prefix (render_error emits "ok"
/// first); used to trigger error postmortems without re-parsing.
constexpr std::string_view kErrorPrefix = "{\"ok\":false";

[[nodiscard]] bool is_error_response(const std::string& result) {
  return result.rfind(kErrorPrefix, 0) == 0;
}

}  // namespace

ServeFront::ServeFront(const ArtifactStore& store, ServeOptions options)
    : ServeFront(MultiStore::view(store), std::move(options)) {}

ServeFront::ServeFront(MultiStore stores, ServeOptions options)
    : engine_(std::move(stores)),
      max_queue_(options.max_queue >= 1 ? options.max_queue : 1),
      postmortem_path_(std::move(options.postmortem_path)),
      slow_request_threshold_(options.slow_request_threshold),
      pool_(options.workers >= 1 ? options.workers : 1) {
  if (options.cache_entries > 0) {
    cache_.emplace(options.cache_entries,
                   options.cache_shards >= 1 ? options.cache_shards : 1);
  }
  evaluator_ = [this](const QueryRequest& request) {
    try {
      return render_response(request, engine_.evaluate(request));
    } catch (const Error& e) {
      return render_error(request.id, e.what());
    }
  };
  // Register every serve metric now: a stats snapshot taken before any
  // traffic still lists them (at zero) in their stable name order.
  (void)instruments();
}

ServeFront::~ServeFront() = default;

std::string ServeFront::handle(const std::string& line) {
  // The request id is the running request count: deterministic for a given
  // request sequence, independent of worker count under sequential
  // handling.  Everything below runs inside its span context, so flight
  // records from the cache, store and engine tiers carry this id.
  const std::uint64_t id =
      requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  const obs::RequestScope scope(id);
  HPCEM_OBS_REQUEST_SPAN("serve.request");
  if (!obs::enabled()) return handle_request(line);

  obs::ThreadBuffer& tb = obs::thread_buffer();
  const std::uint64_t begin = obs::next_stamp(tb);
  std::string result = handle_request(line);
  const std::uint64_t elapsed = obs::next_stamp(tb) - begin;
  instruments().request_ns.record(elapsed);
  if (is_error_response(result)) instruments().errors.add();
  maybe_postmortem(result, id, elapsed);
  return result;
}

std::string ServeFront::handle_request(const std::string& line) {
  // Admin commands (stats/trace) are answered from live state and must
  // never be cached or counted as cache traffic, so they are recognized
  // *before* any cache probe.  The substring test is a cheap pre-filter:
  // only lines that could possibly spell an admin op pay the early parse.
  QueryRequest request;
  bool parsed = false;
  if (line.find("\"stats\"") != std::string::npos ||
      line.find("\"trace\"") != std::string::npos) {
    try {
      request = QueryRequest::from_json_text(line);
    } catch (const Error& e) {
      return render_error("", e.what());
    }
    if (request.op == QueryRequest::Op::kStats ||
        request.op == QueryRequest::Op::kTrace) {
      return handle_admin(request);
    }
    parsed = true;  // a real query that merely mentions the word
  }

  // First-level lookup on the verbatim line: repeated identical requests
  // skip the parse and canonicalization entirely.  Safe because
  // canonicalization is idempotent — a raw line that equals some canonical
  // rendering parses to exactly the query that rendering keys.
  if (cache_) {
    if (auto hit = cache_->get(line)) {
      instruments().cache_hit.add();
      return *hit;
    }
  }

  if (!parsed) {
    try {
      request = QueryRequest::from_json_text(line);
    } catch (const Error& e) {
      // Malformed lines never reach the cache: they have no canonical key.
      return render_error("", e.what());
    }
  }
  const obs::ScopedTimer op_timer(instruments().op_ns(request.op));
  const std::string key = request.canonical_key();

  if (cache_) {
    if (auto hit = cache_->get(key)) {
      // A different spelling of a cached query: promote the verbatim line
      // so its repeats take the first-level path.
      instruments().cache_hit.add();
      cache_->put(line, *hit);
      return *hit;
    }
    instruments().cache_miss.add();
  }
  std::string result = evaluate_coalesced(request, key);
  if (cache_ && line != key) cache_->put(line, result);
  return result;
}

std::string ServeFront::handle_admin(const QueryRequest& request) const {
  if (request.op == QueryRequest::Op::kTrace) {
    return render_response(request, trace_result(request.trace_request));
  }
  return render_response(request, stats_result());
}

JsonValue ServeFront::stats_result() const {
  const FrontStats s = stats();

  JsonValue cache = JsonValue::object();
  cache.set("hits", s.cache.hits);
  cache.set("misses", s.cache.misses);
  cache.set("insertions", s.cache.insertions);
  cache.set("evictions", s.cache.evictions);
  cache.set("entries", s.cache.entries);

  JsonValue front = JsonValue::object();
  front.set("requests", s.requests);
  front.set("evaluations", s.evaluations);
  front.set("coalesced", s.coalesced);
  front.set("postmortems", s.postmortems);
  front.set("cache", std::move(cache));
  front.set("peak_queue_depth", s.peak_queue_depth);

  const MultiStore& stores = engine_.stores();
  JsonValue store = JsonValue::object();
  store.set("scenarios", stores.scenario_count());
  store.set("series_samples", stores.total_series_samples());
  store.set("format", stores.format());
  store.set("shard_count", stores.shard_count());
  JsonValue shards = JsonValue::array();
  for (std::size_t i = 0; i < stores.shard_count(); ++i) {
    const ArtifactStore& s_i = stores.shard(i);
    JsonValue sv = JsonValue::object();
    sv.set("scenarios", s_i.scenario_count());
    sv.set("series_samples", s_i.total_series_samples());
    sv.set("format", s_i.format());
    shards.push_back(std::move(sv));
  }
  store.set("shards", std::move(shards));

  // Obs metrics are process-global; restrict the exposed section to the
  // serve tier so the document does not depend on what else the process
  // instrumented (other subsystems, earlier tests, ...).
  obs::StatsSnapshot snap = obs::StatsRegistry::snapshot();
  const auto foreign = [](const auto& m) {
    return m.name.rfind("serve.", 0) != 0;
  };
  std::erase_if(snap.counters, foreign);
  std::erase_if(snap.gauges, foreign);
  std::erase_if(snap.histograms, foreign);

  JsonValue v = JsonValue::object();
  v.set("front", std::move(front));
  v.set("store", std::move(store));
  v.set("obs", obs::stats_json(snap));
  return v;
}

JsonValue ServeFront::trace_result(std::uint64_t request_id) const {
  const obs::FlightSnapshot snap = obs::flight_snapshot();
  JsonValue records = JsonValue::array();
  bool found = false;
  for (const obs::FlightThreadTrace& thread : snap.threads) {
    for (const obs::FlightRecord& rec : thread.records) {
      if (rec.request != request_id) continue;
      found = true;
      JsonValue r = JsonValue::object();
      r.set("thread", thread.label);
      r.set("name", rec.name);
      r.set("kind",
            rec.kind == obs::FlightKind::kSpan ? "span" : "instant");
      r.set("begin", static_cast<double>(rec.begin));
      r.set("end", static_cast<double>(rec.end));
      records.push_back(std::move(r));
    }
  }
  JsonValue v = JsonValue::object();
  v.set("request", static_cast<double>(request_id));
  v.set("found", found);
  v.set("records", std::move(records));
  return v;
}

void ServeFront::maybe_postmortem(const std::string& result,
                                  std::uint64_t request_id,
                                  std::uint64_t elapsed) {
  if (postmortem_path_.empty()) return;
  const bool error = is_error_response(result);
  const bool slow =
      slow_request_threshold_ != 0 && elapsed >= slow_request_threshold_;
  if (!error && !slow) return;

  // The trigger event lands in the flight ring *before* the snapshot, so
  // the dump itself records why it exists.
  static const obs::NameId kTrigger =
      obs::intern_name("serve.postmortem.trigger");
  obs::record_event(kTrigger, elapsed);
  instruments().postmortems.add();
  postmortems_.fetch_add(1, std::memory_order_relaxed);

  obs::PostmortemTrigger trigger;
  trigger.reason = error ? "query_error" : "latency_threshold";
  trigger.request = request_id;
  trigger.elapsed = elapsed;
  trigger.threshold = slow_request_threshold_;

  const std::lock_guard<std::mutex> lock(postmortem_mu_);
  try {
    obs::write_postmortem_file(trigger, obs::flight_snapshot(),
                               postmortem_path_);
  } catch (const std::exception& e) {
    // A failed dump must not fail the request it describes.
    std::cerr << "serve: postmortem write failed: " << e.what() << "\n";
  }
}

std::string ServeFront::evaluate_coalesced(const QueryRequest& request,
                                           const std::string& key) {
  std::shared_ptr<InFlight> entry;
  bool owner = false;
  std::uint64_t owner_request = 0;
  {
    const std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      entry = it->second;
      owner_request = entry->owner_request;
    } else {
      entry = std::make_shared<InFlight>();
      entry->owner_request = obs::current_request();
      inflight_.emplace(key, entry);
      owner = true;
    }
  }

  if (!owner) {
    // An identical query is being computed right now: share its answer.
    // The wait event's aux word records whose evaluation this request
    // piggybacked on, linking the two request traces.
    static const obs::NameId kWait = obs::intern_name("serve.coalesce.wait");
    obs::record_event(kWait, owner_request);
    instruments().coalesced.add();
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->cv.wait(lock, [&] { return entry->done; });
    return entry->result;
  }

  evaluations_.fetch_add(1, std::memory_order_relaxed);
  std::string result = evaluator_(request);
  // Publish to the cache before retiring the in-flight entry, so a query
  // arriving in between finds the cached bytes instead of re-evaluating.
  if (cache_) cache_->put(key, result);
  {
    const std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  {
    const std::lock_guard<std::mutex> lock(entry->mu);
    entry->result = result;
    entry->done = true;
  }
  entry->cv.notify_all();
  return result;
}

std::future<std::string> ServeFront::submit(std::string line) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [&] { return queue_depth_ < max_queue_; });
    ++queue_depth_;
    if (queue_depth_ > peak_queue_depth_) peak_queue_depth_ = queue_depth_;
    instruments().queue_depth.set(queue_depth_);
  }
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  pool_.submit([this, promise, line = std::move(line)]() mutable {
    // handle() maps every domain failure to an error response; anything
    // else (bad_alloc, ...) must still not escape into the pool.
    try {
      promise->set_value(handle(line));
    } catch (const std::exception& e) {
      promise->set_value(render_error("", e.what()));
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      --queue_depth_;
    }
    queue_cv_.notify_one();
  });
  return future;
}

std::size_t ServeFront::serve_stream(std::istream& in, std::ostream& out) {
  std::deque<std::future<std::string>> pending;
  std::size_t served = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    pending.push_back(submit(std::move(line)));
    line.clear();
    // Keep the reorder buffer bounded: once it reaches the queue bound the
    // oldest response must be ready (or nearly); write it through.
    while (pending.size() >= max_queue_) {
      out << pending.front().get() << '\n';
      pending.pop_front();
      ++served;
    }
  }
  while (!pending.empty()) {
    out << pending.front().get() << '\n';
    pending.pop_front();
    ++served;
  }
  return served;
}

FrontStats ServeFront::stats() const {
  FrontStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.postmortems = postmortems_.load(std::memory_order_relaxed);
  if (cache_) s.cache = cache_->stats();
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    s.peak_queue_depth = peak_queue_depth_;
  }
  return s;
}

}  // namespace hpcem::serve
