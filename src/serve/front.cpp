#include "serve/front.hpp"

#include <deque>
#include <istream>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace hpcem::serve {

ServeFront::ServeFront(const ArtifactStore& store, ServeOptions options)
    : engine_(store),
      max_queue_(options.max_queue >= 1 ? options.max_queue : 1),
      pool_(options.workers >= 1 ? options.workers : 1) {
  if (options.cache_entries > 0) {
    cache_.emplace(options.cache_entries,
                   options.cache_shards >= 1 ? options.cache_shards : 1);
  }
  evaluator_ = [this](const QueryRequest& request) {
    try {
      return render_response(request, engine_.evaluate(request));
    } catch (const Error& e) {
      return render_error(request.id, e.what());
    }
  };
}

ServeFront::~ServeFront() = default;

std::string ServeFront::handle(const std::string& line) {
  HPCEM_OBS_SPAN("serve.request");
  static const obs::Histogram latency("serve.request.ns", "ns");
  const obs::ScopedTimer timer(latency);
  requests_.fetch_add(1, std::memory_order_relaxed);

  static const obs::Counter cache_hit("serve.cache.hit");
  static const obs::Counter cache_miss("serve.cache.miss");

  // First-level lookup on the verbatim line: repeated identical requests
  // skip the parse and canonicalization entirely.  Safe because
  // canonicalization is idempotent — a raw line that equals some canonical
  // rendering parses to exactly the query that rendering keys.
  if (cache_) {
    if (auto hit = cache_->get(line)) {
      cache_hit.add();
      return *hit;
    }
  }

  QueryRequest request;
  try {
    request = QueryRequest::from_json_text(line);
  } catch (const Error& e) {
    // Malformed lines never reach the cache: they have no canonical key.
    return render_error("", e.what());
  }
  const std::string key = request.canonical_key();

  if (cache_) {
    if (auto hit = cache_->get(key)) {
      // A different spelling of a cached query: promote the verbatim line
      // so its repeats take the first-level path.
      cache_hit.add();
      cache_->put(line, *hit);
      return *hit;
    }
    cache_miss.add();
  }
  std::string result = evaluate_coalesced(request, key);
  if (cache_ && line != key) cache_->put(line, result);
  return result;
}

std::string ServeFront::evaluate_coalesced(const QueryRequest& request,
                                           const std::string& key) {
  std::shared_ptr<InFlight> entry;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<InFlight>();
      inflight_.emplace(key, entry);
      owner = true;
    }
  }

  if (!owner) {
    // An identical query is being computed right now: share its answer.
    static const obs::Counter coalesced("serve.coalesced");
    coalesced.add();
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lock(entry->mu);
    entry->cv.wait(lock, [&] { return entry->done; });
    return entry->result;
  }

  evaluations_.fetch_add(1, std::memory_order_relaxed);
  std::string result = evaluator_(request);
  // Publish to the cache before retiring the in-flight entry, so a query
  // arriving in between finds the cached bytes instead of re-evaluating.
  if (cache_) cache_->put(key, result);
  {
    const std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  {
    const std::lock_guard<std::mutex> lock(entry->mu);
    entry->result = result;
    entry->done = true;
  }
  entry->cv.notify_all();
  return result;
}

std::future<std::string> ServeFront::submit(std::string line) {
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.wait(lock, [&] { return queue_depth_ < max_queue_; });
    ++queue_depth_;
    if (queue_depth_ > peak_queue_depth_) peak_queue_depth_ = queue_depth_;
    static const obs::Gauge depth_gauge("serve.queue.depth", "requests");
    depth_gauge.set(queue_depth_);
  }
  auto promise = std::make_shared<std::promise<std::string>>();
  std::future<std::string> future = promise->get_future();
  pool_.submit([this, promise, line = std::move(line)]() mutable {
    // handle() maps every domain failure to an error response; anything
    // else (bad_alloc, ...) must still not escape into the pool.
    try {
      promise->set_value(handle(line));
    } catch (const std::exception& e) {
      promise->set_value(render_error("", e.what()));
    }
    {
      const std::lock_guard<std::mutex> lock(queue_mu_);
      --queue_depth_;
    }
    queue_cv_.notify_one();
  });
  return future;
}

std::size_t ServeFront::serve_stream(std::istream& in, std::ostream& out) {
  std::deque<std::future<std::string>> pending;
  std::size_t served = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    pending.push_back(submit(std::move(line)));
    line.clear();
    // Keep the reorder buffer bounded: once it reaches the queue bound the
    // oldest response must be ready (or nearly); write it through.
    while (pending.size() >= max_queue_) {
      out << pending.front().get() << '\n';
      pending.pop_front();
      ++served;
    }
  }
  while (!pending.empty()) {
    out << pending.front().get() << '\n';
    pending.pop_front();
    ++served;
  }
  return served;
}

FrontStats ServeFront::stats() const {
  FrontStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.evaluations = evaluations_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  if (cache_) s.cache = cache_->stats();
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    s.peak_queue_depth = peak_queue_depth_;
  }
  return s;
}

}  // namespace hpcem::serve
