// In-memory indexed column store over run artifacts: the data tier of the
// serving layer (see DESIGN.md "Serving layer").
//
// An `ArtifactStore` ingests a directory of `RunArtifact` JSON files — the
// output of `hpcem_sim --serve-export`, `hpcem_replay --artifact-out` and
// `hpcem_analyze --serve-export` — and turns them into a query-ready shape:
//   * scenario and channel names are interned to dense ids assigned in
//     lexicographic order, so every iteration over the store is
//     deterministic regardless of ingest order;
//   * channels that carry a v3 series are stored as separate time/value
//     columns with prefix sums (value sum and trapezoidal integral), so a
//     windowed aggregate costs two binary searches plus an O(k) min/max
//     scan rather than a full pass;
//   * duplicate scenario ids across files are rejected at ingest with a
//     one-line error naming both files — a store where the answer depends
//     on which file loaded last is a silent-wrong-answer machine.
//
// The store is frozen after loading: every accessor is const and
// thread-safe by immutability, which is what lets the serving front run
// queries on a pool of workers without a single lock around the data.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/run_artifact.hpp"
#include "util/error.hpp"

namespace hpcem::serve {

/// Thrown when two ingested artifacts claim the same scenario id.  A
/// distinct type so tools can map it to a usage-style exit (the mistake is
/// in the store directory the caller assembled, not in any one file).
class DuplicateScenarioError : public Error {
 public:
  explicit DuplicateScenarioError(const std::string& what) : Error(what) {}
};

/// One channel of one scenario, column-ised for windowed queries.
struct StoredChannel {
  std::string name;
  std::string unit;
  /// Whole-run streaming aggregates (always present, even without series).
  ChannelAggregate aggregate;

  // Column store of the retained raw samples; empty for aggregate-only
  // (v1/v2) artifacts.
  std::vector<double> times;   ///< seconds since epoch, non-decreasing
  std::vector<double> values;
  /// prefix_value_sum[i] = sum of values[0..i); size == values.size() + 1.
  std::vector<double> prefix_value_sum;
  /// prefix_integral[i] = trapezoidal integral over samples [0..i);
  /// size == values.size() + 1 (unit-seconds, e.g. kW s).
  std::vector<double> prefix_integral;

  [[nodiscard]] bool has_series() const { return !times.empty(); }
};

/// One ingested scenario: its artifact metadata plus columnised channels.
struct StoredScenario {
  std::string name;
  std::string source;        ///< artifact "source" member
  std::string machine;
  std::string source_file;   ///< ingest provenance ("<memory>" for add())
  SimTime window_start{};
  SimTime window_end{};
  std::size_t replicates = 1;
  RunHeadline headline;
  std::vector<ArtifactChangePoint> change_points;
  /// Channels sorted by name; index == dense per-scenario channel id.
  std::vector<StoredChannel> channels;

  /// Channel by name, nullptr when absent (binary search).
  [[nodiscard]] const StoredChannel* find_channel(
      const std::string& name) const;
};

/// Windowed aggregate of a stored channel over [start, end).
struct WindowAggregate {
  std::size_t samples = 0;  ///< retained samples inside the window
  double mean = 0.0;        ///< arithmetic mean of in-window sample values
  double min = 0.0;
  double max = 0.0;
  /// Trapezoidal integral over the in-window sample intervals
  /// (unit-seconds); spans only [first, last] in-window sample times.
  double integral = 0.0;
  SimTime first_time{};
  SimTime last_time{};
};

/// Immutable-after-load, deterministically ordered artifact collection.
class ArtifactStore {
 public:
  /// Ingest one artifact.  `source_file` labels error messages and the
  /// scenario's provenance.  Throws DuplicateScenarioError when the
  /// scenario id is already present.
  void add(const RunArtifact& artifact,
           const std::string& source_file = "<memory>");

  /// Ingest one artifact JSON file.  Throws ParseError on unreadable or
  /// malformed input, DuplicateScenarioError on a duplicate scenario id.
  void load_file(const std::string& path);

  /// Ingest every `*.artifact.json` directly inside `dir`, in sorted
  /// filename order.  Returns the number of files ingested.
  std::size_t load_directory(const std::string& dir);

  /// Ingest every scenario of one HCAF shard file (colstore/hcaf.hpp).
  /// Near-instant: the shard carries the columns and prefix sums
  /// pre-computed, so ingest is validation plus moves — no JSON parse, no
  /// prefix-sum pass.  Returns the number of scenarios ingested.  Throws
  /// ParseError on a truncated/corrupt/over-versioned shard,
  /// DuplicateScenarioError on a duplicate scenario id.
  std::size_t load_hcaf_file(const std::string& path);

  /// Ingest format of this store's contents so far: "empty", "memory"
  /// (add()), "json", "hcaf", or "mixed" when more than one applies.
  [[nodiscard]] std::string format() const;

  [[nodiscard]] std::size_t scenario_count() const {
    return scenarios_.size();
  }
  /// Scenario names in lexicographic order (== dense id order).
  [[nodiscard]] std::vector<std::string> scenario_names() const;

  /// Scenario by name; nullptr when absent.
  [[nodiscard]] const StoredScenario* find(const std::string& name) const;
  /// Scenario by name; throws InvalidArgument when absent.
  [[nodiscard]] const StoredScenario& at(const std::string& name) const;
  /// Scenario by dense id (lexicographic rank).
  [[nodiscard]] const StoredScenario& at(std::size_t id) const;

  /// Total retained series samples across every channel of every scenario.
  [[nodiscard]] std::size_t total_series_samples() const;

  /// Windowed aggregate of a channel over [start, end) — two binary
  /// searches plus prefix-sum lookups; min/max scan the in-window values.
  /// Requires a stored series; throws StateError for aggregate-only
  /// channels.  Returns samples == 0 when the window is empty.
  [[nodiscard]] static WindowAggregate window_aggregate(
      const StoredChannel& channel, SimTime start, SimTime end);

 private:
  /// Common ingest tail: sort channels, reject duplicate channel and
  /// scenario names, insert.
  void insert_scenario(StoredScenario&& s);

  // Scenarios sorted by name: a std::map gives deterministic iteration and
  // stable addresses (the front hands out StoredScenario pointers).
  std::map<std::string, StoredScenario> scenarios_;
  // Ingest-kind counters behind format().
  std::size_t memory_ingests_ = 0;
  std::size_t json_ingests_ = 0;
  std::size_t hcaf_ingests_ = 0;
};

}  // namespace hpcem::serve
