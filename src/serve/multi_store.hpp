// Sharded store tier: one routing surface over N frozen ArtifactStores.
//
// A compacted deployment serves from several HCAF shards (plus optionally
// a JSON store); `MultiStore` presents them to the query engine as one
// collection.  Lookups route through the SAME consistent-hash ring the
// compactor used to assign scenarios (colstore/shard.hpp), so the common
// case is one hash plus one map lookup; a miss on the ring-predicted
// shard falls back to probing every shard, which keeps routing correct
// even for deployments whose store layout does not match the ring (a
// hand-assembled mix, or a JSON side store).
//
// Like the single store, a MultiStore is frozen once the front starts:
// every accessor is const, and attach-time validation rejects a scenario
// id present in two shards — the one configuration that would make
// answers depend on probe order.
//
// Determinism contract: `scenario_names()` merges the shards' sorted name
// lists into one sorted list, and every lookup is by exact name — so a
// query engine running over a MultiStore produces byte-identical
// responses to one running over a single store with the same scenarios,
// for any shard count.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "colstore/shard.hpp"
#include "serve/artifact_store.hpp"

namespace hpcem::serve {

/// Immutable-after-setup routing layer over one or more ArtifactStores.
class MultiStore {
 public:
  MultiStore() = default;

  /// Non-owning single-store view (the classic serving setup).  `store`
  /// must outlive the view.
  [[nodiscard]] static MultiStore view(const ArtifactStore& store);

  /// Attach a non-owning shard (must outlive this MultiStore).  Throws
  /// DuplicateScenarioError when the shard holds a scenario id an earlier
  /// shard already holds.
  void attach(const ArtifactStore& store);
  /// Attach an owning shard.
  void adopt(std::shared_ptr<const ArtifactStore> store);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const ArtifactStore& shard(std::size_t i) const;

  /// Scenario count summed over every shard.
  [[nodiscard]] std::size_t scenario_count() const;
  /// Retained series samples summed over every shard.
  [[nodiscard]] std::size_t total_series_samples() const;
  /// All scenario names in lexicographic order (shards hold disjoint
  /// sets, so this is a plain sorted merge).
  [[nodiscard]] std::vector<std::string> scenario_names() const;

  /// Scenario by name; nullptr when absent in every shard.  Routes via
  /// the consistent-hash ring first, then probes the remaining shards.
  [[nodiscard]] const StoredScenario* find(const std::string& name) const;
  /// Scenario by name; throws InvalidArgument when absent.  The error
  /// text matches ArtifactStore::at so wire-level error responses are
  /// identical whether the deployment is sharded or not.
  [[nodiscard]] const StoredScenario& at(const std::string& name) const;

  /// Aggregate ingest format over the shards: "empty", or the common
  /// per-shard format ("json" / "hcaf" / "memory"), or "mixed".
  [[nodiscard]] std::string format() const;

 private:
  struct Entry {
    const ArtifactStore* store = nullptr;
    std::shared_ptr<const ArtifactStore> owner;  ///< null for attach()
  };

  void add_entry(Entry entry);

  std::vector<Entry> shards_;
  /// Rebuilt on every attach: the ring for the current shard count, used
  /// as the lookup fast path.
  std::optional<colstore::HashRing> ring_;
};

}  // namespace hpcem::serve
