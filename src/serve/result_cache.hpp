// Sharded LRU result cache keyed by canonical request JSON.
//
// The serving front's fast path: a repeated query must cost a lock on one
// shard and two map lookups, not a re-evaluation over the column store.
// Keys are canonical request renderings (see QueryRequest::canonical_key),
// values are complete response lines — caching bytes, not structures,
// keeps the determinism argument trivial: a hit returns exactly what the
// miss computed.
//
// Sharding: the key is hashed with FNV-1a (fixed, platform-independent)
// and the shard is the low bits, so the shard assignment is stable across
// runs and builds.  Each shard has its own mutex, LRU list and index;
// under concurrent load threads contend only when they hash to the same
// shard.  Eviction is per shard (capacity / shards entries each), strict
// least-recently-used.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hpcem::serve {

/// Cumulative cache statistics (monotonic; readable while serving).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// Thread-safe sharded LRU map from canonical request key to response.
class ResultCache {
 public:
  /// `capacity` total entries (>= 1), spread over `shards` (rounded up to
  /// a power of two; each shard holds at least one entry).
  ResultCache(std::size_t capacity, std::size_t shards);

  /// Look up a key; a hit refreshes its recency.
  [[nodiscard]] std::optional<std::string> get(std::string_view key);

  /// Insert (or refresh) a key.  Evicts the shard's least-recently-used
  /// entry when the shard is full.
  void put(std::string_view key, std::string value);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Stable 64-bit FNV-1a (exposed for tests and the bench).
  [[nodiscard]] static std::uint64_t hash_key(std::string_view key);

 private:
  struct Shard {
    std::mutex mu;
    /// Most-recently-used at the front.
    // hpcem: guarded_by(mu)
    std::list<std::pair<std::string, std::string>> lru;
    /// Keys view into the list nodes (stable addresses).
    // hpcem: guarded_by(mu)
    std::map<std::string_view,
             std::list<std::pair<std::string, std::string>>::iterator>
        index;
  };

  Shard& shard_for(std::string_view key);

  std::size_t capacity_;
  std::size_t per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace hpcem::serve
