// Typed query requests and the engine that answers them from an
// ArtifactStore (see docs/SERVE_SCHEMA.md for the wire format).
//
// A request arrives as one JSON object; `QueryRequest::from_json` validates
// it into a typed value and `canonical_key()` re-serializes it into the one
// canonical compact rendering (fixed member order, normalized numbers,
// defaults resolved) that keys the result cache and the coalescing map —
// two spellings of the same question must share one cache entry.
//
// Five operations:
//   list             — inventory of stored scenarios and channels;
//   window_aggregate — count/mean/min/max/energy of a channel over a time
//                      window (binary-searched columns; whole-window
//                      queries also work on aggregate-only v1/v2 artifacts);
//   regimes          — exact time-in-regime split of a carbon-intensity
//                      curve over a period (paper §2: <30 embodied-
//                      dominated, 30..100 balanced, >100 operational);
//   compare          — perf-per-kWh between two scenarios (completed jobs
//                      per kWh, the efficiency currency of §2);
//   whatif           — re-price a stored energy series against a different
//                      carbon-intensity curve and scope-3 amortisation
//                      without re-simulating.
//
// Every answer is a pure function of (store, request) and serializes via
// the deterministic JSON layer, so responses are byte-identical however
// many workers the front runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/emissions.hpp"
#include "serve/artifact_store.hpp"
#include "serve/multi_store.hpp"
#include "util/json.hpp"

namespace hpcem::serve {

/// Carbon-intensity curve for regimes/whatif: a constant, or a
/// piecewise-linear breakpoint list (clamped outside its span).
struct IntensitySpec {
  std::optional<CarbonIntensity> constant;
  /// (epoch seconds, g/kWh) breakpoints, strictly time-sorted.
  std::vector<std::pair<double, double>> points;

  [[nodiscard]] bool is_constant() const { return constant.has_value(); }
  /// Interpolated intensity at an instant (clamped at the ends).
  [[nodiscard]] CarbonIntensity at(SimTime t) const;
};

/// One parsed, validated query.  kStats and kTrace are serve-front admin
/// commands (live telemetry exposition, docs/SERVE_SCHEMA.md): the front
/// answers them itself, never caches them, and the engine rejects them.
struct QueryRequest {
  enum class Op {
    kList,
    kWindowAggregate,
    kRegimes,
    kCompare,
    kWhatIf,
    kStats,
    kTrace
  };

  Op op = Op::kList;
  /// Optional client tag, echoed verbatim in the response.  Part of the
  /// canonical key: responses must be byte-reproducible per request line.
  std::string id;
  std::string scenario;    ///< window_aggregate / regimes / whatif
  std::string channel;     ///< window_aggregate / whatif
  std::string scenario_a;  ///< compare
  std::string scenario_b;  ///< compare
  /// Window; absent = the scenario's artifact window.
  std::optional<SimTime> start;
  std::optional<SimTime> end;
  std::optional<IntensitySpec> intensity;   ///< regimes / whatif
  std::optional<EmbodiedParams> embodied;   ///< whatif scope-3 override
  std::uint64_t trace_request = 0;          ///< trace: the request id asked for

  /// Parse and validate one request object.  Throws ParseError on a
  /// malformed or incomplete request.
  [[nodiscard]] static QueryRequest from_json(const JsonValue& v);
  [[nodiscard]] static QueryRequest from_json_text(std::string_view text);

  /// Canonical compact JSON: fixed member order, resolved times as epoch
  /// numbers, no optional members that equal their defaults.
  [[nodiscard]] JsonValue to_canonical_json() const;
  /// The cache / coalescing key: `to_canonical_json().dump(0)`.
  [[nodiscard]] std::string canonical_key() const;

  [[nodiscard]] static std::string op_name(Op op);
};

/// Answers queries from a frozen store (or a sharded MultiStore — the
/// engine cannot tell the difference, which is the point).  Stateless
/// beyond the store routing table; safe to share across worker threads.
class QueryEngine {
 public:
  /// Single-store engine: wraps the store in a non-owning MultiStore
  /// view.  `store` must outlive the engine.
  explicit QueryEngine(const ArtifactStore& store)
      : stores_(MultiStore::view(store)) {}
  /// Sharded engine.  Attached (non-owning) shards must outlive the
  /// engine; adopted shards are kept alive by the copied routing table.
  explicit QueryEngine(MultiStore stores) : stores_(std::move(stores)) {}

  /// Evaluate a validated request.  Throws hpcem::Error subclasses for
  /// domain failures (unknown scenario, no stored series, ...).
  [[nodiscard]] JsonValue evaluate(const QueryRequest& request) const;

  /// Full wire-level handling of one NDJSON request line: parse, evaluate
  /// and wrap into `{"ok":true,...}` / `{"ok":false,"error":...}`.  Never
  /// throws — every failure becomes a deterministic error response.
  [[nodiscard]] std::string handle_line(const std::string& line) const;

  [[nodiscard]] const MultiStore& stores() const { return stores_; }

 private:
  [[nodiscard]] JsonValue list() const;
  [[nodiscard]] JsonValue window_aggregate(const QueryRequest& r) const;
  [[nodiscard]] JsonValue regimes(const QueryRequest& r) const;
  [[nodiscard]] JsonValue compare(const QueryRequest& r) const;
  [[nodiscard]] JsonValue whatif(const QueryRequest& r) const;

  MultiStore stores_;
};

/// Wrap an evaluated result / error into the response envelope and render
/// it as the canonical single-line response (no trailing newline).
[[nodiscard]] std::string render_response(const QueryRequest& request,
                                          const JsonValue& result);
[[nodiscard]] std::string render_error(const std::string& id,
                                       const std::string& message);

}  // namespace hpcem::serve
