#include "serve/artifact_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/request_context.hpp"
#include "util/stats.hpp"

namespace hpcem::serve {

namespace {

StoredChannel columnise(const ChannelAggregate& aggregate) {
  StoredChannel ch;
  ch.name = aggregate.name;
  ch.unit = aggregate.unit;
  ch.aggregate = aggregate;
  const std::size_t n = aggregate.series.size();
  if (n == 0) return ch;

  ch.times.reserve(n);
  ch.values.reserve(n);
  ch.prefix_value_sum.reserve(n + 1);
  ch.prefix_integral.reserve(n + 1);
  // Compensated prefix accumulators: windowed sums are differences of
  // prefixes, so per-element drift would surface directly in responses.
  CompensatedSum value_sum;
  CompensatedSum integral;
  ch.prefix_value_sum.push_back(0.0);
  ch.prefix_integral.push_back(0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = aggregate.series[i];
    if (i > 0) {
      integral.add(0.5 * (s.value + ch.values.back()) *
                   (s.time.sec() - ch.times.back()));
    }
    ch.times.push_back(s.time.sec());
    ch.values.push_back(s.value);
    value_sum.add(s.value);
    ch.prefix_value_sum.push_back(value_sum.value());
    ch.prefix_integral.push_back(integral.value());
  }
  return ch;
}

}  // namespace

const StoredChannel* StoredScenario::find_channel(
    const std::string& channel_name) const {
  const auto it = std::lower_bound(
      channels.begin(), channels.end(), channel_name,
      [](const StoredChannel& c, const std::string& n) { return c.name < n; });
  if (it == channels.end() || it->name != channel_name) return nullptr;
  return &*it;
}

void ArtifactStore::add(const RunArtifact& artifact,
                        const std::string& source_file) {
  const auto existing = scenarios_.find(artifact.scenario);
  if (existing != scenarios_.end()) {
    throw DuplicateScenarioError(
        "duplicate scenario id '" + artifact.scenario + "' (first: " +
        existing->second.source_file + ", again: " + source_file + ")");
  }

  StoredScenario s;
  s.name = artifact.scenario;
  s.source = artifact.source;
  s.machine = artifact.machine;
  s.source_file = source_file;
  s.window_start = artifact.window_start;
  s.window_end = artifact.window_end;
  s.replicates = artifact.replicates;
  s.headline = artifact.headline;
  s.change_points = artifact.change_points;
  s.channels.reserve(artifact.channels.size());
  for (const ChannelAggregate& c : artifact.channels) {
    s.channels.push_back(columnise(c));
  }
  // Dense per-scenario channel ids are lexicographic ranks, independent of
  // the order the producer emitted them in.
  std::sort(s.channels.begin(), s.channels.end(),
            [](const StoredChannel& a, const StoredChannel& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 1; i < s.channels.size(); ++i) {
    require(s.channels[i - 1].name != s.channels[i].name,
            "ArtifactStore: scenario '" + s.name +
                "' declares channel '" + s.channels[i].name + "' twice");
  }
  scenarios_.emplace(s.name, std::move(s));
}

void ArtifactStore::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("ArtifactStore: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  add(RunArtifact::from_json_text(buf.str()), path);
}

std::size_t ArtifactStore::load_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::directory_iterator it(dir, ec);
  if (ec) {
    throw ParseError("ArtifactStore: cannot read directory " + dir + ": " +
                     ec.message());
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".artifact.json";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      paths.push_back(entry.path().string());
    }
  }
  // Directory iteration order is filesystem-dependent; sorted paths make
  // ingest (and therefore any ingest-order error) reproducible.
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) load_file(p);
  return paths.size();
}

std::vector<std::string> ArtifactStore::scenario_names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) names.push_back(name);
  return names;
}

const StoredScenario* ArtifactStore::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const StoredScenario& ArtifactStore::at(const std::string& name) const {
  // Flight-recorder breadcrumb: which scenario lookups the current request
  // performed (the store tier of the request trace).
  static const obs::NameId kLookup = obs::intern_name("serve.store.at");
  obs::record_event(kLookup);
  const StoredScenario* s = find(name);
  require(s != nullptr, "ArtifactStore: unknown scenario '" + name + "'");
  return *s;
}

const StoredScenario& ArtifactStore::at(std::size_t id) const {
  require(id < scenarios_.size(),
          "ArtifactStore: scenario id " + std::to_string(id) +
              " out of range");
  auto it = scenarios_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(id));
  return it->second;
}

std::size_t ArtifactStore::total_series_samples() const {
  std::size_t n = 0;
  for (const auto& [name, scenario] : scenarios_) {
    for (const StoredChannel& c : scenario.channels) n += c.times.size();
  }
  return n;
}

WindowAggregate ArtifactStore::window_aggregate(const StoredChannel& channel,
                                                SimTime start, SimTime end) {
  static const obs::NameId kAggregate =
      obs::intern_name("serve.store.window_aggregate");
  obs::record_event(kAggregate,
                    static_cast<std::uint64_t>(channel.times.size()));
  require_state(channel.has_series(),
                "ArtifactStore: channel '" + channel.name +
                    "' carries no stored series (aggregate-only artifact)");
  require(start <= end,
          "ArtifactStore: window start must not exceed window end");
  const auto lo = std::lower_bound(channel.times.begin(), channel.times.end(),
                                   start.sec());
  const auto hi = std::lower_bound(lo, channel.times.end(), end.sec());
  const auto first = static_cast<std::size_t>(lo - channel.times.begin());
  const auto last = static_cast<std::size_t>(hi - channel.times.begin());

  WindowAggregate w;
  w.samples = last - first;
  if (w.samples == 0) return w;

  w.mean = (channel.prefix_value_sum[last] - channel.prefix_value_sum[first]) /
           static_cast<double>(w.samples);
  // prefix_integral[k] covers the intervals up to sample k-1, so the
  // in-window intervals (first..last-1) are [last] minus [first + 1] —
  // subtracting [first] would also count the interval leading *into* the
  // window's first sample.
  w.integral =
      channel.prefix_integral[last] - channel.prefix_integral[first + 1];
  w.first_time = SimTime(channel.times[first]);
  w.last_time = SimTime(channel.times[last - 1]);
  w.min = channel.values[first];
  w.max = channel.values[first];
  for (std::size_t i = first + 1; i < last; ++i) {
    w.min = std::min(w.min, channel.values[i]);
    w.max = std::max(w.max, channel.values[i]);
  }
  return w;
}

}  // namespace hpcem::serve
