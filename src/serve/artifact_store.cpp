#include "serve/artifact_store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "colstore/columns.hpp"
#include "colstore/hcaf.hpp"
#include "obs/request_context.hpp"

namespace hpcem::serve {

namespace {

/// Adopt a set of pre-built columns into a StoredChannel.
void adopt_columns(StoredChannel& ch, colstore::ChannelColumns&& cols) {
  ch.times = std::move(cols.times);
  ch.values = std::move(cols.values);
  ch.prefix_value_sum = std::move(cols.prefix_value_sum);
  ch.prefix_integral = std::move(cols.prefix_integral);
}

StoredChannel columnise(const ChannelAggregate& aggregate) {
  StoredChannel ch;
  ch.name = aggregate.name;
  ch.unit = aggregate.unit;
  ch.aggregate = aggregate;
  // The raw samples live in the columns; keeping a second copy inside the
  // aggregate would double the store's memory for no reader (queries touch
  // only the aggregate's scalar fields).
  ch.aggregate.series.clear();
  ch.aggregate.series.shrink_to_fit();
  // One implementation builds columns for every ingest path (JSON here,
  // HCAF at compaction time) — that shared code is what makes responses
  // bit-identical across formats.
  adopt_columns(ch, colstore::build_columns(aggregate.series));
  return ch;
}

}  // namespace

const StoredChannel* StoredScenario::find_channel(
    const std::string& channel_name) const {
  const auto it = std::lower_bound(
      channels.begin(), channels.end(), channel_name,
      [](const StoredChannel& c, const std::string& n) { return c.name < n; });
  if (it == channels.end() || it->name != channel_name) return nullptr;
  return &*it;
}

void ArtifactStore::insert_scenario(StoredScenario&& s) {
  const auto existing = scenarios_.find(s.name);
  if (existing != scenarios_.end()) {
    throw DuplicateScenarioError(
        "duplicate scenario id '" + s.name + "' (first: " +
        existing->second.source_file + ", again: " + s.source_file + ")");
  }
  // Dense per-scenario channel ids are lexicographic ranks, independent of
  // the order the producer emitted them in.
  std::sort(s.channels.begin(), s.channels.end(),
            [](const StoredChannel& a, const StoredChannel& b) {
              return a.name < b.name;
            });
  for (std::size_t i = 1; i < s.channels.size(); ++i) {
    require(s.channels[i - 1].name != s.channels[i].name,
            "ArtifactStore: scenario '" + s.name +
                "' declares channel '" + s.channels[i].name + "' twice");
  }
  scenarios_.emplace(s.name, std::move(s));
}

void ArtifactStore::add(const RunArtifact& artifact,
                        const std::string& source_file) {
  StoredScenario s;
  s.name = artifact.scenario;
  s.source = artifact.source;
  s.machine = artifact.machine;
  s.source_file = source_file;
  s.window_start = artifact.window_start;
  s.window_end = artifact.window_end;
  s.replicates = artifact.replicates;
  s.headline = artifact.headline;
  s.change_points = artifact.change_points;
  s.channels.reserve(artifact.channels.size());
  for (const ChannelAggregate& c : artifact.channels) {
    s.channels.push_back(columnise(c));
  }
  insert_scenario(std::move(s));
  ++memory_ingests_;
}

void ArtifactStore::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("ArtifactStore: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  add(RunArtifact::from_json_text(buf.str()), path);
  // add() counted a memory ingest; this one came from a JSON file.
  --memory_ingests_;
  ++json_ingests_;
}

std::size_t ArtifactStore::load_hcaf_file(const std::string& path) {
  static const obs::NameId kLoad = obs::intern_name("serve.store.load_hcaf");
  std::vector<colstore::ShardScenario> scenarios =
      colstore::read_shard_file(path);
  obs::record_event(kLoad, static_cast<std::uint64_t>(scenarios.size()));
  for (colstore::ShardScenario& sc : scenarios) {
    StoredScenario s;
    s.name = sc.name;
    s.source = std::move(sc.source);
    s.machine = std::move(sc.machine);
    s.source_file = path;
    s.window_start = sc.window_start;
    s.window_end = sc.window_end;
    s.replicates = sc.replicates;
    s.headline = sc.headline;
    s.change_points = std::move(sc.change_points);
    s.channels.reserve(sc.channels.size());
    for (colstore::ShardChannel& c : sc.channels) {
      StoredChannel ch;
      ch.name = c.aggregate.name;
      ch.unit = c.aggregate.unit;
      ch.aggregate = std::move(c.aggregate);
      // The shard stores the columns the JSON path would compute —
      // ingest moves them instead of re-deriving anything.
      adopt_columns(ch, std::move(c.columns));
      s.channels.push_back(std::move(ch));
    }
    insert_scenario(std::move(s));
  }
  ++hcaf_ingests_;
  return scenarios.size();
}

std::string ArtifactStore::format() const {
  const int kinds = (memory_ingests_ > 0 ? 1 : 0) +
                    (json_ingests_ > 0 ? 1 : 0) + (hcaf_ingests_ > 0 ? 1 : 0);
  if (kinds > 1) return "mixed";
  if (hcaf_ingests_ > 0) return "hcaf";
  if (json_ingests_ > 0) return "json";
  if (memory_ingests_ > 0) return "memory";
  return "empty";
}

std::size_t ArtifactStore::load_directory(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::directory_iterator it(dir, ec);
  if (ec) {
    throw ParseError("ArtifactStore: cannot read directory " + dir + ": " +
                     ec.message());
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".artifact.json";
    if (name.size() > kSuffix.size() &&
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) == 0) {
      paths.push_back(entry.path().string());
    }
  }
  // Directory iteration order is filesystem-dependent; sorted paths make
  // ingest (and therefore any ingest-order error) reproducible.
  std::sort(paths.begin(), paths.end());
  for (const std::string& p : paths) load_file(p);
  return paths.size();
}

std::vector<std::string> ArtifactStore::scenario_names() const {
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) names.push_back(name);
  return names;
}

const StoredScenario* ArtifactStore::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

const StoredScenario& ArtifactStore::at(const std::string& name) const {
  // Flight-recorder breadcrumb: which scenario lookups the current request
  // performed (the store tier of the request trace).
  static const obs::NameId kLookup = obs::intern_name("serve.store.at");
  obs::record_event(kLookup);
  const StoredScenario* s = find(name);
  require(s != nullptr, "ArtifactStore: unknown scenario '" + name + "'");
  return *s;
}

const StoredScenario& ArtifactStore::at(std::size_t id) const {
  require(id < scenarios_.size(),
          "ArtifactStore: scenario id " + std::to_string(id) +
              " out of range");
  auto it = scenarios_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(id));
  return it->second;
}

std::size_t ArtifactStore::total_series_samples() const {
  std::size_t n = 0;
  for (const auto& [name, scenario] : scenarios_) {
    for (const StoredChannel& c : scenario.channels) n += c.times.size();
  }
  return n;
}

WindowAggregate ArtifactStore::window_aggregate(const StoredChannel& channel,
                                                SimTime start, SimTime end) {
  static const obs::NameId kAggregate =
      obs::intern_name("serve.store.window_aggregate");
  obs::record_event(kAggregate,
                    static_cast<std::uint64_t>(channel.times.size()));
  require_state(channel.has_series(),
                "ArtifactStore: channel '" + channel.name +
                    "' carries no stored series (aggregate-only artifact)");
  require(start <= end,
          "ArtifactStore: window start must not exceed window end");
  const auto lo = std::lower_bound(channel.times.begin(), channel.times.end(),
                                   start.sec());
  const auto hi = std::lower_bound(lo, channel.times.end(), end.sec());
  const auto first = static_cast<std::size_t>(lo - channel.times.begin());
  const auto last = static_cast<std::size_t>(hi - channel.times.begin());

  WindowAggregate w;
  w.samples = last - first;
  if (w.samples == 0) return w;

  w.mean = (channel.prefix_value_sum[last] - channel.prefix_value_sum[first]) /
           static_cast<double>(w.samples);
  // prefix_integral[k] covers the intervals up to sample k-1, so the
  // in-window intervals (first..last-1) are [last] minus [first + 1] —
  // subtracting [first] would also count the interval leading *into* the
  // window's first sample.
  w.integral =
      channel.prefix_integral[last] - channel.prefix_integral[first + 1];
  w.first_time = SimTime(channel.times[first]);
  w.last_time = SimTime(channel.times[last - 1]);
  w.min = channel.values[first];
  w.max = channel.values[first];
  for (std::size_t i = first + 1; i < last; ++i) {
    w.min = std::min(w.min, channel.values[i]);
    w.max = std::max(w.max, channel.values[i]);
  }
  return w;
}

}  // namespace hpcem::serve
