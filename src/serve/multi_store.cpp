#include "serve/multi_store.hpp"

#include <algorithm>

#include "obs/request_context.hpp"
#include "util/error.hpp"

namespace hpcem::serve {

MultiStore MultiStore::view(const ArtifactStore& store) {
  MultiStore m;
  m.attach(store);
  return m;
}

void MultiStore::attach(const ArtifactStore& store) {
  add_entry(Entry{&store, nullptr});
}

void MultiStore::adopt(std::shared_ptr<const ArtifactStore> store) {
  require(store != nullptr, "MultiStore: cannot adopt a null store");
  const ArtifactStore* raw = store.get();
  add_entry(Entry{raw, std::move(store)});
}

void MultiStore::add_entry(Entry entry) {
  // A scenario id present in two shards would make answers depend on
  // probe order; reject it at attach time, naming both sources.
  for (const std::string& name : entry.store->scenario_names()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (const StoredScenario* clash = shards_[i].store->find(name)) {
        throw DuplicateScenarioError(
            "MultiStore: scenario id '" + name + "' present in shard " +
            std::to_string(i) + " (" + clash->source_file +
            ") and in the attaching shard (" +
            entry.store->at(name).source_file + ")");
      }
    }
  }
  shards_.push_back(std::move(entry));
  ring_.emplace(shards_.size());
}

const ArtifactStore& MultiStore::shard(std::size_t i) const {
  require(i < shards_.size(), "MultiStore: shard index " + std::to_string(i) +
                                  " out of range (have " +
                                  std::to_string(shards_.size()) + ")");
  return *shards_[i].store;
}

std::size_t MultiStore::scenario_count() const {
  std::size_t n = 0;
  for (const Entry& e : shards_) n += e.store->scenario_count();
  return n;
}

std::size_t MultiStore::total_series_samples() const {
  std::size_t n = 0;
  for (const Entry& e : shards_) n += e.store->total_series_samples();
  return n;
}

std::vector<std::string> MultiStore::scenario_names() const {
  std::vector<std::string> merged;
  merged.reserve(scenario_count());
  for (const Entry& e : shards_) {
    std::vector<std::string> names = e.store->scenario_names();
    const std::size_t mid = merged.size();
    merged.insert(merged.end(), std::make_move_iterator(names.begin()),
                  std::make_move_iterator(names.end()));
    std::inplace_merge(merged.begin(),
                       merged.begin() + static_cast<std::ptrdiff_t>(mid),
                       merged.end());
  }
  return merged;
}

const StoredScenario* MultiStore::find(const std::string& name) const {
  if (shards_.empty()) return nullptr;
  // Fast path: the shard the compaction ring assigned this id to.  A
  // deployment compacted with the same shard count finds every scenario
  // here; anything else falls through to the probe.
  const std::size_t hint = ring_->shard_of(name);
  if (const StoredScenario* s = shards_[hint].store->find(name)) return s;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (i == hint) continue;
    if (const StoredScenario* s = shards_[i].store->find(name)) return s;
  }
  return nullptr;
}

const StoredScenario& MultiStore::at(const std::string& name) const {
  // Same breadcrumb and same error text as ArtifactStore::at — the wire
  // format must not reveal whether the deployment is sharded.
  static const obs::NameId kLookup = obs::intern_name("serve.store.at");
  obs::record_event(kLookup);
  const StoredScenario* s = find(name);
  require(s != nullptr, "ArtifactStore: unknown scenario '" + name + "'");
  return *s;
}

std::string MultiStore::format() const {
  if (shards_.empty()) return "empty";
  std::string common;
  for (const Entry& e : shards_) {
    const std::string f = e.store->format();
    if (f == "empty") continue;
    if (common.empty()) {
      common = f;
    } else if (common != f) {
      return "mixed";
    }
  }
  return common.empty() ? "empty" : common;
}

}  // namespace hpcem::serve
