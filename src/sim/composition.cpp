#include "sim/composition.hpp"

namespace hpcem {

namespace {
// Channel names as std::string so channel() can hand out a reference.
const std::string kNodeFleetChannel = channels::kNodeFleetKw;
const std::string kSwitchChannel = channels::kSwitchKw;
const std::string kOverheadChannel = channels::kOverheadKw;
const std::string kCduChannel = channels::kCduKw;
const std::string kFilesystemChannel = channels::kFilesystemKw;
const std::string kCoolingChannel = channels::kCoolingKw;
}  // namespace

NodeFleetSource::NodeFleetSource(NodePowerParams params,
                                 IdlePowerPolicy idle_policy)
    : params_(params), idle_policy_(idle_policy) {}

const std::string& NodeFleetSource::channel() const {
  return kNodeFleetChannel;
}

Power NodeFleetSource::power(const SimSnapshot& s) const {
  return Power::watts(s.busy_node_power_w) +
         fleet_idle_power(params_.idle, idle_policy_, s.idle_nodes());
}

SwitchFabricSource::SwitchFabricSource(SwitchPowerModel model,
                                       std::size_t switch_count)
    : model_(model), count_(switch_count) {}

const std::string& SwitchFabricSource::channel() const {
  return kSwitchChannel;
}

Power SwitchFabricSource::power(const SimSnapshot& s) const {
  return model_.power(s.utilisation) * static_cast<double>(count_);
}

CabinetOverheadSource::CabinetOverheadSource(CabinetOverheadModel model,
                                             std::size_t cabinet_count)
    : model_(model), count_(cabinet_count) {}

const std::string& CabinetOverheadSource::channel() const {
  return kOverheadChannel;
}

Power CabinetOverheadSource::power(const SimSnapshot& s) const {
  return model_.power(s.utilisation) * static_cast<double>(count_);
}

CduSource::CduSource(CduPowerModel model, std::size_t cdu_count)
    : model_(model), count_(cdu_count) {}

const std::string& CduSource::channel() const { return kCduChannel; }

Power CduSource::power(const SimSnapshot& s) const {
  return model_.power(s.utilisation) * static_cast<double>(count_);
}

FilesystemSource::FilesystemSource(FilesystemPowerModel model,
                                   std::size_t fs_count)
    : model_(model), count_(fs_count) {}

const std::string& FilesystemSource::channel() const {
  return kFilesystemChannel;
}

Power FilesystemSource::power(const SimSnapshot& s) const {
  return model_.power(s.utilisation) * static_cast<double>(count_);
}

CoolingOverheadSource::CoolingOverheadSource(CoolingModel model,
                                             double outdoor_c)
    : model_(std::move(model)), outdoor_c_(outdoor_c) {}

const std::string& CoolingOverheadSource::channel() const {
  return kCoolingChannel;
}

Power CoolingOverheadSource::power(const SimSnapshot& s) const {
  return model_.overhead_power(Power::watts(s.total_power_so_far_w),
                               outdoor_c_);
}

void UtilisationProbe::declare_channels(Recorder& recorder) {
  utilisation_ = recorder.declare(channels::kUtilisation, "fraction");
}

void UtilisationProbe::on_sample(const SimSnapshot& s, Recorder& recorder) {
  recorder.record(utilisation_, s.now, s.utilisation);
}

void QueueStateProbe::declare_channels(Recorder& recorder) {
  queue_length_ = recorder.declare(channels::kQueueLength, "jobs");
  running_jobs_ = recorder.declare(channels::kRunningJobs, "jobs");
}

void QueueStateProbe::on_sample(const SimSnapshot& s, Recorder& recorder) {
  recorder.record(queue_length_, s.now,
                  static_cast<double>(s.queue_length));
  recorder.record(running_jobs_, s.now,
                  static_cast<double>(s.running_jobs));
}

}  // namespace hpcem
