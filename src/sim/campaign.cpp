#include "sim/campaign.hpp"

#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hpcem {

namespace {

// Queue wait is a cross-thread interval (enqueue on the main thread, start
// on a worker), so it is only measured from the wall clock: under
// deterministic mode per-thread tick differences are meaningless and the
// recorded wait is 0 (the count still tallies tasks).
const obs::Histogram& queue_wait_hist() {
  static const obs::Histogram h("campaign.queue_wait_ns", "ns");
  return h;
}

const obs::Counter& tasks_counter() {
  static const obs::Counter c("campaign.tasks", "tasks");
  return c;
}

const obs::Gauge& workers_gauge() {
  static const obs::Gauge g("campaign.workers", "threads");
  return g;
}

/// One (scenario, seed) run reduced to a single-replicate outcome.
ScenarioOutcome run_one(const CampaignScenario& scenario,
                        std::uint64_t seed) {
  auto sim = scenario.build(seed);
  require(sim != nullptr,
          "CampaignRunner: scenario '" + scenario.name +
              "' produced no simulator");
  sim->run(scenario.window_start - scenario.warmup, scenario.window_end);

  const SimTime a = scenario.window_start;
  const SimTime b = scenario.window_end;
  // Handle-based access: the simulator interned the cabinet channel at
  // composition time.
  const TimeSeries window =
      sim->telemetry().series(sim->cabinet_channel()).slice(a, b);
  require_state(!window.empty(),
                "CampaignRunner: scenario '" + scenario.name +
                    "' produced no window samples");

  ScenarioOutcome out;
  out.name = scenario.name;
  out.replicates = 1;
  out.mean_kw.add(window.mean());
  if (scenario.split_at) {
    out.mean_before_kw.add(window.mean_over(a, *scenario.split_at));
    out.mean_after_kw.add(window.mean_over(*scenario.split_at, b));
  } else {
    out.mean_before_kw.add(window.mean());
    out.mean_after_kw.add(window.mean());
  }
  out.mean_utilisation.add(sim->mean_utilisation(a, b));
  // integrate() returns kW-seconds over the sliced window.
  out.window_energy_kwh.add(window.integrate() / 3600.0);
  std::size_t in_window = 0;
  for (const auto& r : sim->completed()) {
    if (r.end_time >= a && r.end_time < b) ++in_window;
  }
  out.completed_jobs.add(static_cast<double>(in_window));
  return out;
}

}  // namespace

void ScenarioOutcome::merge(const ScenarioOutcome& other) {
  if (name.empty()) name = other.name;
  replicates += other.replicates;
  mean_kw.merge(other.mean_kw);
  mean_before_kw.merge(other.mean_before_kw);
  mean_after_kw.merge(other.mean_after_kw);
  mean_utilisation.merge(other.mean_utilisation);
  window_energy_kwh.merge(other.window_energy_kwh);
  completed_jobs.merge(other.completed_jobs);
}

CampaignRunner::CampaignRunner(CampaignConfig config) : config_(config) {
  require(config_.seeds_per_scenario >= 1,
          "CampaignRunner: need at least one seed per scenario");
}

std::uint64_t CampaignRunner::stream_seed(std::uint64_t campaign_seed,
                                          std::size_t scenario_index,
                                          std::size_t replicate_index) {
  // A short splitmix64 chain: decorrelate the campaign seed, then fold in
  // each coordinate through its own mixing step.  Depends only on the
  // coordinates, never on execution order.
  std::uint64_t state = campaign_seed;
  std::uint64_t h = splitmix64(state);
  state = h ^ (static_cast<std::uint64_t>(scenario_index) + 1);
  h = splitmix64(state);
  state = h ^ ((static_cast<std::uint64_t>(replicate_index) + 1) << 32);
  return splitmix64(state);
}

CampaignResult CampaignRunner::run(
    const std::vector<CampaignScenario>& scenarios) const {
  require(!scenarios.empty(), "CampaignRunner::run: no scenarios");
  for (const auto& s : scenarios) {
    require(s.window_end > s.window_start,
            "CampaignRunner::run: scenario '" + s.name +
                "' window end must follow start");
    require(s.warmup.sec() >= 0.0,
            "CampaignRunner::run: scenario '" + s.name +
                "' warmup must be non-negative");
    require(s.build != nullptr,
            "CampaignRunner::run: scenario '" + s.name +
                "' has no simulator factory");
  }

  const std::size_t reps = config_.seeds_per_scenario;
  const std::size_t total = scenarios.size() * reps;
  const std::size_t workers =
      config_.workers == 0 ? ThreadPool::default_workers()
                           : config_.workers;

  // Intern the per-scenario span names up front on this thread: interning
  // takes the registry lock, and the worker hot path should not.
  std::vector<obs::NameId> task_names;
  if (obs::enabled()) {
    workers_gauge().set(workers);
    task_names.reserve(scenarios.size());
    for (const auto& s : scenarios) {
      task_names.push_back(obs::intern_name("campaign.task:" + s.name));
    }
  }

  // Every task writes only its own slot; the pool's wait_idle() is the
  // barrier that publishes the slots to the merging loop below.
  std::vector<ScenarioOutcome> partials(total);
  std::vector<std::exception_ptr> errors(total);
  {
    ThreadPool pool(workers);
    for (std::size_t si = 0; si < scenarios.size(); ++si) {
      for (std::size_t ri = 0; ri < reps; ++ri) {
        const std::size_t idx = si * reps + ri;
        const std::uint64_t seed =
            stream_seed(config_.campaign_seed, si, ri);
        const CampaignScenario* scenario = &scenarios[si];
        const obs::NameId task_name =
            obs::enabled() ? task_names[si] : obs::NameId{};
        const std::uint64_t enqueued_ns =
            obs::enabled() && !obs::deterministic()
                ? obs::detail::wall_now_ns()
                : 0;
        pool.submit([scenario, seed, idx, task_name, enqueued_ns,
                     &partials, &errors] {
          if (obs::enabled()) {
            obs::set_thread_label("campaign-worker");
            tasks_counter().add();
            // enqueued_ns == 0 marks deterministic mode: the wait is a
            // cross-thread wall interval, so record 0 there (counts stay
            // stable, durations do not exist).
            queue_wait_hist().record(
                enqueued_ns == 0
                    ? 0
                    : obs::detail::wall_now_ns() - enqueued_ns);
          }
          const obs::ScopedSpan task_span(task_name);
          try {
            partials[idx] = run_one(*scenario, seed);
          } catch (...) {
            errors[idx] = std::current_exception();
          }
        });
      }
    }
    pool.wait_idle();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }

  // Deterministic reduction: replicates merge in index order, so the
  // merged moments are bit-identical for any worker count.
  HPCEM_OBS_SPAN("campaign.merge");
  CampaignResult result;
  result.workers_used = workers;
  result.total_runs = total;
  result.scenarios.resize(scenarios.size());
  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    ScenarioOutcome& merged = result.scenarios[si];
    merged.name = scenarios[si].name;
    for (std::size_t ri = 0; ri < reps; ++ri) {
      merged.merge(partials[si * reps + ri]);
    }
  }
  return result;
}

}  // namespace hpcem
