#include "sim/engine.hpp"

#include "util/error.hpp"

namespace hpcem {

void SimEngine::schedule(SimTime when, std::function<void()> fn) {
  require(when >= now_, "SimEngine::schedule: cannot schedule in the past");
  require(static_cast<bool>(fn), "SimEngine::schedule: empty callback");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void SimEngine::schedule_after(Duration delay, std::function<void()> fn) {
  require(delay.sec() >= 0.0, "SimEngine::schedule_after: negative delay");
  schedule(now_ + delay, std::move(fn));
}

void SimEngine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // Move the event out before popping so the handler can push safely.
    Event ev = queue_.top();
    queue_.pop();
    HPCEM_ASSERT(ev.time >= now_, "event queue time order");
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  if (until > now_) now_ = until;
}

void SimEngine::run_all() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    HPCEM_ASSERT(ev.time >= now_, "event queue time order");
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
}

}  // namespace hpcem
