#include "sim/engine.hpp"

#include "util/error.hpp"

namespace hpcem {

void SimEngine::push(SimTime when, std::uint64_t key, SimEventKind kind,
                     std::uint64_t payload) {
  require(when >= now_, "SimEngine::schedule: cannot schedule in the past");
  queue_.push(QueuedEvent{when, key, kind, payload});
}

void SimEngine::schedule_static(SimTime when, SimEventKind kind,
                                std::uint64_t payload) {
  push(when, (kStaticBand << kBandShift) | next_static_++, kind, payload);
}

void SimEngine::schedule(SimTime when, SimEventKind kind,
                         std::uint64_t payload) {
  push(when, (kRuntimeBand << kBandShift) | next_runtime_++, kind, payload);
}

void SimEngine::set_workload_stream(SimTime start, Duration period,
                                    SimTime end) {
  require(period.sec() > 0.0,
          "SimEngine::set_workload_stream: period must be positive");
  workload_ = Stream{start < end, start, period, end};
}

void SimEngine::set_sample_stream(SimTime start, Duration period,
                                  SimTime end) {
  require(period.sec() > 0.0,
          "SimEngine::set_sample_stream: period must be positive");
  sample_ = Stream{start < end, start, period, end};
}

bool SimEngine::next(SimTime until, SimEvent& out) {
  // Best of three candidates: heap top, workload tick, sample tick —
  // minimum (time, band-key).  Stream candidates carry a bare band key:
  // a train never has two ticks at one instant, so the counter half is
  // irrelevant.
  bool found = false;
  SimTime best_time{};
  std::uint64_t best_key = 0;
  int best = -1;  // 0 = heap, 1 = workload, 2 = sample

  if (!queue_.empty()) {
    const QueuedEvent& top = queue_.top();
    found = true;
    best_time = top.time;
    best_key = top.key;
    best = 0;
  }
  const auto consider = [&](const Stream& s, std::uint64_t band, int which) {
    if (!s.active) return;
    const std::uint64_t key = band << kBandShift;
    if (!found || s.next_tick < best_time ||
        (s.next_tick == best_time && key < best_key)) {
      found = true;
      best_time = s.next_tick;
      best_key = key;
      best = which;
    }
  };
  consider(workload_, kWorkloadBand, 1);
  consider(sample_, kSampleBand, 2);

  if (!found || best_time > until) return false;

  if (best == 0) {
    const QueuedEvent& top = queue_.top();
    out = SimEvent{top.time, top.kind, top.payload};
    queue_.pop();
  } else {
    Stream& s = best == 1 ? workload_ : sample_;
    out = SimEvent{s.next_tick,
                   best == 1 ? SimEventKind::kWorkloadHour
                             : SimEventKind::kSample,
                   0};
    s.next_tick = s.next_tick + s.period;
    if (!(s.next_tick < s.end)) s.active = false;
  }
  HPCEM_ASSERT(out.time >= now_, "event queue time order");
  now_ = out.time;
  ++processed_;
  return true;
}

void SimEngine::advance_to(SimTime t) {
  if (t > now_) now_ = t;
}

}  // namespace hpcem
