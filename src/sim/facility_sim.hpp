// Whole-facility simulation: scheduler + workload + power + telemetry.
//
// `FacilitySimulator` reproduces the measurement setup behind the paper's
// Figures 1-3: a full machine running a production job mix at high
// utilisation, with the cabinet power (compute nodes + switches + cabinet
// overheads — the paper's metering boundary) sampled on a fixed interval,
// and operational policy changes (BIOS mode, default CPU frequency) taking
// effect at scheduled instants for newly started jobs.
//
// The power breakdown and the telemetry channel set are composable: the
// simulator drives an ordered list of `PowerSource` components and
// `TelemetryProbe` observers (sim/composition.hpp).  The default
// composition reproduces the paper's cabinet boundary exactly; cooling,
// CDU, filesystem and idle-suspension models plug in without touching the
// simulator.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "power/facility_power.hpp"
#include "sched/scheduler.hpp"
#include "sim/composition.hpp"
#include "sim/engine.hpp"
#include "telemetry/recorder.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/catalog.hpp"
#include "workload/generator.hpp"
#include "workload/policy.hpp"
#include "workload/policy_cache.hpp"

namespace hpcem {

/// Simulation tunables.
struct FacilitySimConfig {
  FacilityInventory inventory{};
  NodePowerParams node_params{};
  SwitchPowerModel switch_model{};
  CabinetOverheadModel cabinet_model{};
  WorkloadGenParams gen{};
  /// Queue discipline for the embedded scheduler.
  QueueDiscipline sched_discipline = QueueDiscipline::kFifo;
  PriorityWeights sched_weights{};
  /// Telemetry sampling cadence (the paper's cabinet metering is coarse).
  Duration sample_interval = Duration::minutes(30.0);
  /// Multiplicative per-sample metering noise (std dev).
  double metering_noise_sigma = 0.006;
  /// Memory-bounded telemetry retention: cap on retained raw samples per
  /// channel (0 = keep everything).  Channel aggregates stay exact; raw
  /// samples are decimated once a channel exceeds the cap — see
  /// TimeSeries::set_max_raw_samples.
  std::size_t telemetry_max_raw_samples = 0;
  std::uint64_t seed = 0xA2C4E6;
};

/// Event-driven facility simulator.
class FacilitySimulator {
 public:
  /// Run with the standard composition (nodes + switches + cabinet
  /// overheads inside the metering boundary; utilisation/queue probes).
  FacilitySimulator(const AppCatalog& catalog, FacilitySimConfig config);

  /// Run with an explicit component list (see sim/composition.hpp).
  FacilitySimulator(const AppCatalog& catalog, FacilitySimConfig config,
                    SimComposition composition);

  /// The canonical cabinet-boundary breakdown for a configuration — what
  /// the two-argument constructor installs.
  [[nodiscard]] static SimComposition standard_composition(
      const FacilitySimConfig& config);

  /// Policy for jobs started from now on (running jobs keep their settings,
  /// as on the real service where the frequency is fixed at job launch).
  void set_policy(const OperatingPolicy& policy) { policy_ = policy; }
  [[nodiscard]] const OperatingPolicy& policy() const { return policy_; }

  /// Apply a policy at an instant during `run` (recorded now, armed when
  /// the simulation starts).  A change scheduled before the run window arms
  /// the policy at the window start (the latest pre-window change wins);
  /// changes at or after the window end are ignored.
  void schedule_policy_change(SimTime when, OperatingPolicy policy);

  /// Block job starts in [block_from, end): a maintenance reservation.
  /// Running jobs keep running (the drain), so utilisation decays from
  /// `block_from` and recovers after `end` — the dips a real facility's
  /// power timeline shows around maintenance sessions.
  void schedule_maintenance(SimTime block_from, SimTime end);

  /// Generate the workload and simulate [start, end).  May be called once.
  void run(SimTime start, SimTime end);

  /// Simulate [start, end) replaying an explicit job trace instead of the
  /// synthetic generator (e.g. a converted sacct dump; see
  /// workload/trace.hpp).  Jobs submitted outside the window are ignored:
  /// `submit_time == start` is inside, `submit_time == end` is outside
  /// (the window is half-open, matching run()).
  /// May be called once, instead of run().
  void run_trace(std::vector<JobSpec> jobs, SimTime start, SimTime end);

  [[nodiscard]] const Recorder& telemetry() const { return recorder_; }
  /// Interned handle of the cabinet-meter channel (resolved at
  /// construction; pair with telemetry().series()).
  [[nodiscard]] ChannelId cabinet_channel() const {
    return cabinet_channel_;
  }
  [[nodiscard]] const std::vector<JobRecord>& completed() const {
    return completed_;
  }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }

  /// Mean cabinet power over a window, kW.
  [[nodiscard]] double mean_cabinet_kw(SimTime a, SimTime b) const;
  /// Mean node utilisation over a window.
  [[nodiscard]] double mean_utilisation(SimTime a, SimTime b) const;
  /// Cabinet energy over the whole simulated span.
  [[nodiscard]] Energy cabinet_energy() const;

 private:
  struct RunningJob {
    JobRecord record;       ///< filled in progressively
    double fleet_power_w;   ///< nodes x per-node draw
  };

  void dispatch(const SimEvent& ev);
  void on_submit(JobSpec job);
  void on_finish(JobId id);
  void start_ready_jobs();
  void generate_hour(SimTime t);
  void sample();

  /// Park a job payload for a queued submit event; returns its slot.
  [[nodiscard]] std::uint64_t park_job(JobSpec job);
  /// Reclaim a parked job payload.
  [[nodiscard]] JobSpec take_job(std::uint64_t slot);

  /// Machine state at the current instant (power accumulators zeroed).
  [[nodiscard]] SimSnapshot snapshot() const;

  /// Budget-feedback multiplier on the arrival rate (see run()).
  [[nodiscard]] double demand_scale() const;

  /// Shared run skeleton; `trace` empty means generate synthetically.
  void run_impl(std::vector<JobSpec> trace, bool use_trace, SimTime start,
                SimTime end);

  const AppCatalog* catalog_;
  FacilitySimConfig config_;
  SimComposition composition_;
  /// Interned channel handles, resolved once at construction: the cabinet
  /// meter plus one per source (in composition order).  sample() records
  /// through these — no per-sample name lookup.
  ChannelId cabinet_channel_;
  std::vector<ChannelId> source_channels_;
  OperatingPolicy policy_ = OperatingPolicy::baseline();
  Rng rng_;
  SimEngine engine_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<WorkloadGenerator> generator_;
  Recorder recorder_;
  std::vector<std::pair<SimTime, OperatingPolicy>> pending_changes_;
  std::vector<std::pair<SimTime, SimTime>> maintenance_;
  bool starts_blocked_ = false;
  std::unordered_map<JobId, RunningJob> running_;
  std::vector<JobRecord> completed_;
  /// Fleet power of running jobs; compensated because a long campaign
  /// accumulates hundreds of thousands of add/subtract pairs.
  CompensatedSum busy_node_power_w_;
  bool ran_ = false;

  /// Per-(app, policy) factor cache, rebuilt at each policy epoch.
  PolicyFactorCache policy_cache_;
  /// Policies armed for in-window change events (kPolicyChange payload
  /// indexes this).
  std::vector<OperatingPolicy> armed_policies_;
  /// Parked JobSpec payloads for queued submit events (kSubmit payload
  /// indexes this); freed slots are recycled, so the pool is bounded by
  /// the peak number of in-flight submits.
  std::vector<JobSpec> job_slots_;
  std::vector<std::uint64_t> free_job_slots_;
  SimTime run_end_{};
  /// All composed sources time-invariant => quiescent samples may reuse
  /// the previous power evaluation (see PowerSource::time_invariant).
  bool sources_time_invariant_ = false;
  /// Set by anything that can change the sampled machine state (submit,
  /// start, finish, policy change); cleared when sample() re-evaluates.
  bool power_dirty_ = true;
  /// Cached per-source powers (kW) and boundary totals (W) of the last
  /// evaluated sample.
  std::vector<double> source_power_kw_;
  double cached_metered_w_ = 0.0;
  double cached_total_w_ = 0.0;
};

}  // namespace hpcem
