// Discrete-event simulation engine.
//
// A minimal, deterministic event loop: events carry a timestamp and a
// callback; ties are broken by insertion order so runs are reproducible.
// Handlers may schedule further events (at or after the current time).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace hpcem {

/// Deterministic discrete-event engine.
class SimEngine {
 public:
  explicit SimEngine(SimTime start = SimTime{0.0}) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Schedule a callback; `when` must not be in the past.
  void schedule(SimTime when, std::function<void()> fn);
  void schedule_after(Duration delay, std::function<void()> fn);

  /// Process events with time <= `until`, advancing the clock; events
  /// scheduled during processing are honoured if they fall in the window.
  void run_until(SimTime until);

  /// Process every remaining event.
  void run_all();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.seq < a.seq;  // FIFO among simultaneous events
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace hpcem
