// Discrete-event simulation engine.
//
// A deterministic event loop over *typed* events: each event is a small
// POD (timestamp, kind tag, integer payload) the caller dispatches on —
// no per-event heap allocation or type erasure on the hot path.  Periodic
// tick trains (telemetry samples, workload-generation hours) are not
// pre-scheduled event-by-event; they are lazy streams that materialise
// the next tick on demand, so a year-long campaign does not build a
// multi-million-entry calendar up front.
//
// Determinism: ties at equal timestamps are broken by a total order that
// reproduces the observable order of the original closure calendar,
// where pre-run scheduling handed out global sequence numbers first and
// runtime scheduling later.  At one instant the order is
//
//   static events (pre-run, FIFO)  <  workload tick  <  sample tick
//     <  runtime events (scheduled during the run, FIFO)
//
// encoded as a (band, counter) key — see `SimEngine::schedule` /
// `schedule_static` and DESIGN.md §9.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace hpcem {

/// Event vocabulary of the facility simulation.  The engine never
/// interprets the tag or payload; the caller's dispatch switch does.
enum class SimEventKind : std::uint8_t {
  kPolicyChange,      ///< payload: index into the caller's armed-policy list
  kMaintenanceBegin,  ///< payload unused
  kMaintenanceEnd,    ///< payload unused
  kSubmit,            ///< payload: caller's job-slot index
  kWorkloadHour,      ///< lazy periodic tick (no payload)
  kSample,            ///< lazy periodic tick (no payload)
  kFinish,            ///< payload: JobId
};

/// One due event, as handed to the caller by `next`.
struct SimEvent {
  SimTime time{};
  SimEventKind kind = SimEventKind::kSample;
  std::uint64_t payload = 0;
};

/// Deterministic discrete-event engine (see file comment for ordering).
class SimEngine {
 public:
  explicit SimEngine(SimTime start = SimTime{0.0}) : now_(start) {}

  [[nodiscard]] SimTime now() const { return now_; }
  /// Heap-resident events (lazy stream ticks are not counted).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  /// Schedule a pre-run event; same-time statics pop in call order, ahead
  /// of every tick and runtime event at that instant.  `when` must not be
  /// in the past.
  void schedule_static(SimTime when, SimEventKind kind,
                       std::uint64_t payload = 0);

  /// Schedule a runtime event (job finish, generated submit); same-time
  /// runtime events pop in call order, after every static and tick at
  /// that instant.  `when` must not be in the past.
  void schedule(SimTime when, SimEventKind kind, std::uint64_t payload = 0);

  /// Arm the lazy workload-hour tick train: kWorkloadHour at `start`,
  /// then every `period`, strictly before `end`.
  void set_workload_stream(SimTime start, Duration period, SimTime end);

  /// Arm the lazy telemetry-sample tick train: kSample at `start`, then
  /// every `period`, strictly before `end`.
  void set_sample_stream(SimTime start, Duration period, SimTime end);

  /// Pop the earliest due event with time <= `until` into `out`,
  /// advancing the clock to it.  Returns false (clock untouched) when
  /// nothing is due in the window.
  [[nodiscard]] bool next(SimTime until, SimEvent& out);

  /// Advance the clock to `t` if it is ahead (end of a drained window).
  void advance_to(SimTime t);

 private:
  // Tie-break bands at equal timestamps (see file comment).
  static constexpr std::uint64_t kBandShift = 56;
  static constexpr std::uint64_t kStaticBand = 0;
  static constexpr std::uint64_t kWorkloadBand = 1;
  static constexpr std::uint64_t kSampleBand = 2;
  static constexpr std::uint64_t kRuntimeBand = 3;

  struct QueuedEvent {
    SimTime time;
    std::uint64_t key;  ///< (band << kBandShift) | counter
    SimEventKind kind;
    std::uint64_t payload;
  };
  struct Later {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.time != b.time) return b.time < a.time;
      return b.key < a.key;
    }
  };
  /// A lazy periodic tick train.
  struct Stream {
    bool active = false;
    SimTime next_tick{};
    Duration period{};
    SimTime end{};
  };

  void push(SimTime when, std::uint64_t key, SimEventKind kind,
            std::uint64_t payload);

  SimTime now_;
  std::uint64_t next_static_ = 0;
  std::uint64_t next_runtime_ = 0;
  std::uint64_t processed_ = 0;
  Stream workload_;
  Stream sample_;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, Later> queue_;
};

}  // namespace hpcem
