// Parallel multi-scenario campaign execution.
//
// Facility energy analysis is consumed as *campaigns*: many scenarios
// (policies, machines, windows) x several seeds each, not single runs.
// `CampaignRunner` executes N scenarios x M replicate seeds on a fixed-size
// thread pool; every (scenario, seed) task owns a shared-nothing simulator
// built from an immutable scenario description, and draws from a
// deterministic RNG stream derived from the campaign seed and the task's
// (scenario, replicate) indices — never from thread identity or scheduling
// order.  Results are reduced per scenario through the RunningStats merge
// hook in task-index order, so a campaign's merged output is bit-identical
// regardless of the worker count.
//
// The scenario description here is deliberately thin (a name, a window and
// a simulator factory): the declarative `ScenarioSpec` -> simulator wiring
// lives one layer up in core/assembly.hpp, keeping sim/ free of a core/
// dependency.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/facility_sim.hpp"
#include "util/stats.hpp"

namespace hpcem {

/// One executable scenario: a window plus a factory that builds a
/// ready-to-run simulator (policy, changes and maintenance already armed)
/// for a given seed.  The factory is called from worker threads and must be
/// safe to invoke concurrently (i.e. close over immutable state only).
struct CampaignScenario {
  std::string name = "scenario";
  SimTime window_start{};
  SimTime window_end{};
  /// Steady-state pre-roll simulated before the window opens.
  Duration warmup = Duration::days(0.0);
  /// Instant to split before/after means at (a mid-window policy rollout);
  /// nullopt for an unsplit window.
  std::optional<SimTime> split_at;
  std::function<std::unique_ptr<FacilitySimulator>(std::uint64_t seed)>
      build;
};

/// Campaign-wide execution settings.
struct CampaignConfig {
  /// Worker threads; 0 means ThreadPool::default_workers().
  std::size_t workers = 0;
  /// Replicate seeds per scenario.
  std::size_t seeds_per_scenario = 1;
  /// Root seed every per-task stream is derived from.
  std::uint64_t campaign_seed = 0xA2C4E6;
};

/// Merged per-scenario outcome: each RunningStats accumulates one value per
/// replicate seed, merged in replicate order.
struct ScenarioOutcome {
  std::string name;
  std::size_t replicates = 0;
  RunningStats mean_kw;            ///< window-mean cabinet power, kW
  RunningStats mean_before_kw;     ///< before split_at (== mean_kw unsplit)
  RunningStats mean_after_kw;      ///< after split_at (== mean_kw unsplit)
  RunningStats mean_utilisation;
  RunningStats window_energy_kwh;  ///< cabinet energy over the window
  RunningStats completed_jobs;     ///< jobs finished during the window

  /// Fold another outcome for the same scenario into this one (the
  /// RunningStats merge hook; associative, order-sensitive at bit level).
  void merge(const ScenarioOutcome& other);
};

/// Result of one campaign: outcomes in input-scenario order.
struct CampaignResult {
  std::vector<ScenarioOutcome> scenarios;
  std::size_t workers_used = 0;
  std::size_t total_runs = 0;
};

/// Executes scenario campaigns on a fixed-size worker pool.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig config = {});

  [[nodiscard]] const CampaignConfig& config() const { return config_; }

  /// Run every (scenario, replicate) pair and merge.  Throws the first (by
  /// task index) exception raised by any task, after all tasks drained.
  [[nodiscard]] CampaignResult run(
      const std::vector<CampaignScenario>& scenarios) const;

  /// The deterministic per-task seed: a splitmix64 chain over the campaign
  /// seed and the task's coordinates.  Exposed so tests and external
  /// schedulers can reproduce a single task in isolation.
  [[nodiscard]] static std::uint64_t stream_seed(
      std::uint64_t campaign_seed, std::size_t scenario_index,
      std::size_t replicate_index);

 private:
  CampaignConfig config_;
};

}  // namespace hpcem
