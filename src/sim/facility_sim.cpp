#include "sim/facility_sim.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace hpcem {

namespace {

// Step-loop phase metrics (see DESIGN.md "Observability layer" for the
// span taxonomy).  The scheduler pass runs on every submit/finish — far
// too often for one span each — so it is a duration histogram instead.
const obs::Histogram& sched_pass_hist() {
  static const obs::Histogram h("sim.sched.pass_ns", "ns");
  return h;
}

const obs::Counter& jobs_started_counter() {
  static const obs::Counter c("sim.jobs.started", "jobs");
  return c;
}

const obs::Counter& samples_counter() {
  static const obs::Counter c("sim.samples", "samples");
  return c;
}

}  // namespace

SimComposition FacilitySimulator::standard_composition(
    const FacilitySimConfig& config) {
  SimComposition c;
  c.sources.push_back(
      std::make_unique<NodeFleetSource>(config.node_params));
  c.sources.push_back(std::make_unique<SwitchFabricSource>(
      config.switch_model, config.inventory.switches));
  c.sources.push_back(std::make_unique<CabinetOverheadSource>(
      config.cabinet_model, config.inventory.cabinets));
  c.probes.push_back(std::make_unique<UtilisationProbe>());
  c.probes.push_back(std::make_unique<QueueStateProbe>());
  return c;
}

FacilitySimulator::FacilitySimulator(const AppCatalog& catalog,
                                     FacilitySimConfig config)
    : FacilitySimulator(catalog, config, standard_composition(config)) {}

FacilitySimulator::FacilitySimulator(const AppCatalog& catalog,
                                     FacilitySimConfig config,
                                     SimComposition composition)
    : catalog_(&catalog),
      config_(config),
      composition_(std::move(composition)),
      rng_(config.seed) {
  require(config_.sample_interval.sec() > 0.0,
          "FacilitySimulator: sample interval must be positive");
  require(config_.metering_noise_sigma >= 0.0,
          "FacilitySimulator: noise sigma must be non-negative");
  require(!composition_.sources.empty(),
          "FacilitySimulator: composition needs at least one power source");
  SchedulerConfig sched_cfg;
  sched_cfg.nodes = config_.inventory.compute_nodes;
  sched_cfg.discipline = config_.sched_discipline;
  sched_cfg.weights = config_.sched_weights;
  scheduler_ = std::make_unique<Scheduler>(sched_cfg);

  if (config_.telemetry_max_raw_samples != 0) {
    recorder_.set_max_raw_samples(config_.telemetry_max_raw_samples);
  }
  cabinet_channel_ = recorder_.declare(channels::kCabinetKw, "kW");
  source_channels_.reserve(composition_.sources.size());
  for (const auto& source : composition_.sources) {
    source_channels_.push_back(recorder_.declare(source->channel(), "kW"));
  }
  for (const auto& probe : composition_.probes) {
    probe->declare_channels(recorder_);
  }
}

void FacilitySimulator::schedule_policy_change(SimTime when,
                                               OperatingPolicy policy) {
  require_state(!ran_,
                "schedule_policy_change: must be called before run()");
  pending_changes_.emplace_back(when, policy);
}

void FacilitySimulator::run(SimTime start, SimTime end) {
  run_impl({}, /*use_trace=*/false, start, end);
}

void FacilitySimulator::run_trace(std::vector<JobSpec> jobs, SimTime start,
                                  SimTime end) {
  run_impl(std::move(jobs), /*use_trace=*/true, start, end);
}

void FacilitySimulator::run_impl(std::vector<JobSpec> trace, bool use_trace,
                                 SimTime start, SimTime end) {
  require_state(!ran_, "FacilitySimulator::run: may only run once");
  require(end > start, "FacilitySimulator::run: end must follow start");
  ran_ = true;
  HPCEM_OBS_SPAN("sim.run");

  engine_ = SimEngine(start);

  // Arm the recorded policy changes.  A change scheduled before the window
  // must not be dropped silently: the service is already running the armed
  // policy when the window opens, so the latest pre-window change applies
  // from `start`.
  const std::pair<SimTime, OperatingPolicy>* latest_pre_window = nullptr;
  for (const auto& change : pending_changes_) {
    const SimTime when = change.first;
    if (when < start) {
      // >= keeps the later-recorded change on ties, matching the "last
      // schedule wins" semantics of sequential in-window changes.
      if (latest_pre_window == nullptr ||
          when >= latest_pre_window->first) {
        latest_pre_window = &change;
      }
    } else if (when < end) {
      engine_.schedule(when, [this, p = change.second] { policy_ = p; });
    }
  }
  if (latest_pre_window != nullptr) policy_ = latest_pre_window->second;

  // Arm maintenance reservations.
  for (const auto& [from, until] : maintenance_) {
    if (from >= start && from < end) {
      engine_.schedule(from, [this] { starts_blocked_ = true; });
    }
    if (until >= start && until < end) {
      engine_.schedule(until, [this] {
        starts_blocked_ = false;
        start_ready_jobs();  // release the accumulated queue
      });
    }
  }

  if (use_trace) {
    // Replay an explicit trace: one submit event per in-window job.
    for (auto& job : trace) {
      require(catalog_->contains(job.app),
              "run_trace: unknown application in trace: " + job.app);
      if (job.submit_time < start || job.submit_time >= end) continue;
      const SimTime at = job.submit_time;
      engine_.schedule(at, [this, j = std::move(job)]() mutable {
        on_submit(std::move(j));
      });
    }
  } else {
    // Hourly on-the-fly workload generation.  The arrival rate is divided
    // by the mix-average slowdown of the *current* policy: allocations are
    // charged in node-hours, so budget-capped users offer a constant
    // node-hour stream no matter how fast individual jobs run.
    generator_ = std::make_unique<WorkloadGenerator>(
        *catalog_, config_.inventory.compute_nodes, config_.gen,
        rng_.split());
    for (SimTime t = start; t < end; t += Duration::hours(1.0)) {
      engine_.schedule(t, [this, t, end] {
        HPCEM_OBS_SPAN("sim.workload.generate");
        for (auto& job : generator_->generate_hour(t, demand_scale())) {
          if (job.submit_time >= end) continue;
          const SimTime at = job.submit_time;
          engine_.schedule(at, [this, j = std::move(job)]() mutable {
            on_submit(std::move(j));
          });
        }
      });
    }
  }

  // Telemetry sampling on a fixed cadence.
  for (SimTime t = start; t < end; t += config_.sample_interval) {
    engine_.schedule(t, [this] { sample(); });
  }

  engine_.run_until(end);

  // Ingest is counted in bulk here, a quiescent point that precedes every
  // export — the per-sample guard a push counter would need measurably
  // slows Recorder::record even when collection is off.
  if (obs::enabled()) detail::note_recorder_ingest(recorder_.total_appended());
}

void FacilitySimulator::schedule_maintenance(SimTime block_from,
                                             SimTime end) {
  require_state(!ran_, "schedule_maintenance: must be called before run()");
  require(end > block_from,
          "schedule_maintenance: end must follow block_from");
  maintenance_.emplace_back(block_from, end);
}

double FacilitySimulator::demand_scale() const {
  // Mix-average runtime stretch under the active policy, relative to the
  // reference conditions the generator's runtimes are expressed in.
  const double mean_factor =
      catalog_->mix_average([&](const ApplicationModel& app) {
        JobSpec probe;
        const PState ps = policy_.resolve_pstate(app, probe);
        return app.time_factor(policy_.bios_mode, ps);
      });
  HPCEM_ASSERT(mean_factor > 0.0, "mean time factor must be positive");
  return 1.0 / mean_factor;
}

void FacilitySimulator::on_submit(JobSpec job) {
  scheduler_->submit(std::move(job));
  start_ready_jobs();
}

void FacilitySimulator::start_ready_jobs() {
  if (starts_blocked_) return;
  const obs::ScopedTimer pass_timer(sched_pass_hist());
  const SimTime now = engine_.now();
  for (auto& start : scheduler_->schedule_pass(now)) {
    jobs_started_counter().add();
    const ApplicationModel& app = catalog_->at(start.job.app);
    const PState pstate = policy_.resolve_pstate(app, start.job);
    const DeterminismMode mode = policy_.bios_mode;

    const Duration runtime =
        app.runtime(start.job.ref_runtime, mode, pstate);
    const Power per_node =
        app.node_draw(mode, pstate, start.job.silicon_factor);
    const double fleet_w =
        per_node.w() * static_cast<double>(start.job.nodes);

    const JobId id = start.job.id;
    RunningJob rj;
    rj.record.spec = std::move(start.job);
    rj.record.start_time = now;
    rj.record.end_time = now + runtime;
    rj.record.pstate = pstate;
    rj.record.mode = mode;
    rj.record.node_power_w = per_node.w();
    rj.record.node_energy =
        Power::watts(fleet_w) * runtime;
    rj.fleet_power_w = fleet_w;

    busy_node_power_w_.add(fleet_w);
    scheduler_->set_expected_end(id, rj.record.end_time);
    engine_.schedule(rj.record.end_time, [this, id] { on_finish(id); });
    running_.emplace(id, std::move(rj));
  }
}

void FacilitySimulator::on_finish(JobId id) {
  auto it = running_.find(id);
  HPCEM_ASSERT(it != running_.end(), "finish event for unknown job");
  busy_node_power_w_.subtract(it->second.fleet_power_w);
  // Compensated summation keeps the residual at a rounding of the peak
  // magnitude, so anything visibly negative is an accounting bug.
  HPCEM_ASSERT(busy_node_power_w_.value() > -1e-3,
               "busy power went negative");
  if (running_.size() == 1) busy_node_power_w_.reset();  // exact empty
  scheduler_->finish(id, engine_.now());
  completed_.push_back(std::move(it->second.record));
  running_.erase(it);
  start_ready_jobs();
}

SimSnapshot FacilitySimulator::snapshot() const {
  SimSnapshot s;
  s.now = engine_.now();
  s.total_nodes = config_.inventory.compute_nodes;
  s.busy_nodes = scheduler_->busy_nodes();
  s.utilisation = scheduler_->utilisation();
  s.queue_length = scheduler_->queue_length();
  s.running_jobs = scheduler_->running_count();
  s.busy_node_power_w = std::max(0.0, busy_node_power_w_.value());
  return s;
}

void FacilitySimulator::sample() {
  samples_counter().add();
  SimSnapshot s = snapshot();
  const double noise =
      1.0 + rng_.normal(0.0, config_.metering_noise_sigma);

  // Evaluate the sources in order, accumulating the boundary totals the
  // later sources (and the cabinet meter) see.
  double metered_w = 0.0;
  double total_w = 0.0;
  {
    HPCEM_OBS_SPAN("sim.sample.power");
    for (std::size_t i = 0; i < composition_.sources.size(); ++i) {
      const auto& source = composition_.sources[i];
      s.metered_power_so_far_w = metered_w;
      s.total_power_so_far_w = total_w;
      const Power p = source->power(s);
      if (source->metered()) metered_w += p.w();
      total_w += p.w();
      recorder_.record(source_channels_[i], s.now,
                       p.kw() * (source->noisy() ? noise : 1.0));
    }
  }

  HPCEM_OBS_SPAN("sim.sample.telemetry");
  recorder_.record(cabinet_channel_, s.now, metered_w / 1000.0 * noise);

  s.metered_power_so_far_w = metered_w;
  s.total_power_so_far_w = total_w;
  for (const auto& probe : composition_.probes) {
    probe->on_sample(s, recorder_);
  }
}

double FacilitySimulator::mean_cabinet_kw(SimTime a, SimTime b) const {
  return recorder_.series(cabinet_channel_).mean_over(a, b);
}

double FacilitySimulator::mean_utilisation(SimTime a, SimTime b) const {
  return recorder_.channel(channels::kUtilisation).mean_over(a, b);
}

Energy FacilitySimulator::cabinet_energy() const {
  // The channel is in kW; integrate() returns kW-seconds.
  const double kws = recorder_.series(cabinet_channel_).integrate();
  return Energy::kilojoules(kws);
}

}  // namespace hpcem
