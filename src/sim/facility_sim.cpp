#include "sim/facility_sim.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"

namespace hpcem {

namespace {

// Step-loop phase metrics (see DESIGN.md "Observability layer" for the
// span taxonomy).  The scheduler pass runs on every submit/finish — far
// too often for one span each — so it is a duration histogram instead.
const obs::Histogram& sched_pass_hist() {
  static const obs::Histogram h("sim.sched.pass_ns", "ns");
  return h;
}

const obs::Counter& jobs_started_counter() {
  static const obs::Counter c("sim.jobs.started", "jobs");
  return c;
}

const obs::Counter& samples_counter() {
  static const obs::Counter c("sim.samples", "samples");
  return c;
}

}  // namespace

SimComposition FacilitySimulator::standard_composition(
    const FacilitySimConfig& config) {
  SimComposition c;
  c.sources.push_back(
      std::make_unique<NodeFleetSource>(config.node_params));
  c.sources.push_back(std::make_unique<SwitchFabricSource>(
      config.switch_model, config.inventory.switches));
  c.sources.push_back(std::make_unique<CabinetOverheadSource>(
      config.cabinet_model, config.inventory.cabinets));
  c.probes.push_back(std::make_unique<UtilisationProbe>());
  c.probes.push_back(std::make_unique<QueueStateProbe>());
  return c;
}

FacilitySimulator::FacilitySimulator(const AppCatalog& catalog,
                                     FacilitySimConfig config)
    : FacilitySimulator(catalog, config, standard_composition(config)) {}

FacilitySimulator::FacilitySimulator(const AppCatalog& catalog,
                                     FacilitySimConfig config,
                                     SimComposition composition)
    : catalog_(&catalog),
      config_(config),
      composition_(std::move(composition)),
      rng_(config.seed),
      policy_cache_(catalog) {
  require(config_.sample_interval.sec() > 0.0,
          "FacilitySimulator: sample interval must be positive");
  require(config_.metering_noise_sigma >= 0.0,
          "FacilitySimulator: noise sigma must be non-negative");
  require(!composition_.sources.empty(),
          "FacilitySimulator: composition needs at least one power source");
  SchedulerConfig sched_cfg;
  sched_cfg.nodes = config_.inventory.compute_nodes;
  sched_cfg.discipline = config_.sched_discipline;
  sched_cfg.weights = config_.sched_weights;
  scheduler_ = std::make_unique<Scheduler>(sched_cfg);

  if (config_.telemetry_max_raw_samples != 0) {
    recorder_.set_max_raw_samples(config_.telemetry_max_raw_samples);
  }
  cabinet_channel_ = recorder_.declare(channels::kCabinetKw, "kW");
  source_channels_.reserve(composition_.sources.size());
  for (const auto& source : composition_.sources) {
    source_channels_.push_back(recorder_.declare(source->channel(), "kW"));
  }
  for (const auto& probe : composition_.probes) {
    probe->declare_channels(recorder_);
  }
  sources_time_invariant_ =
      std::all_of(composition_.sources.begin(), composition_.sources.end(),
                  [](const auto& s) { return s->time_invariant(); });
}

void FacilitySimulator::schedule_policy_change(SimTime when,
                                               OperatingPolicy policy) {
  require_state(!ran_,
                "schedule_policy_change: must be called before run()");
  pending_changes_.emplace_back(when, policy);
}

void FacilitySimulator::run(SimTime start, SimTime end) {
  run_impl({}, /*use_trace=*/false, start, end);
}

void FacilitySimulator::run_trace(std::vector<JobSpec> jobs, SimTime start,
                                  SimTime end) {
  run_impl(std::move(jobs), /*use_trace=*/true, start, end);
}

void FacilitySimulator::run_impl(std::vector<JobSpec> trace, bool use_trace,
                                 SimTime start, SimTime end) {
  require_state(!ran_, "FacilitySimulator::run: may only run once");
  require(end > start, "FacilitySimulator::run: end must follow start");
  ran_ = true;
  HPCEM_OBS_SPAN("sim.run");

  engine_ = SimEngine(start);
  run_end_ = end;

  // Arm the recorded policy changes.  A change scheduled before the window
  // must not be dropped silently: the service is already running the armed
  // policy when the window opens, so the latest pre-window change applies
  // from `start`.
  const std::pair<SimTime, OperatingPolicy>* latest_pre_window = nullptr;
  for (const auto& change : pending_changes_) {
    const SimTime when = change.first;
    if (when < start) {
      // >= keeps the later-recorded change on ties, matching the "last
      // schedule wins" semantics of sequential in-window changes.
      if (latest_pre_window == nullptr ||
          when >= latest_pre_window->first) {
        latest_pre_window = &change;
      }
    } else if (when < end) {
      armed_policies_.push_back(change.second);
      engine_.schedule_static(when, SimEventKind::kPolicyChange,
                              armed_policies_.size() - 1);
    }
  }
  if (latest_pre_window != nullptr) policy_ = latest_pre_window->second;
  policy_cache_.set_policy(policy_);

  // Arm maintenance reservations.
  for (const auto& [from, until] : maintenance_) {
    if (from >= start && from < end) {
      engine_.schedule_static(from, SimEventKind::kMaintenanceBegin);
    }
    if (until >= start && until < end) {
      engine_.schedule_static(until, SimEventKind::kMaintenanceEnd);
    }
  }

  if (use_trace) {
    // Replay an explicit trace: one submit event per in-window job.
    for (auto& job : trace) {
      require(catalog_->contains(job.app),
              "run_trace: unknown application in trace: " + job.app);
      if (job.submit_time < start || job.submit_time >= end) continue;
      const SimTime at = job.submit_time;
      engine_.schedule_static(at, SimEventKind::kSubmit,
                              park_job(std::move(job)));
    }
  } else {
    // Hourly on-the-fly workload generation, as a lazy tick train.  The
    // arrival rate is divided by the mix-average slowdown of the *current*
    // policy: allocations are charged in node-hours, so budget-capped
    // users offer a constant node-hour stream no matter how fast
    // individual jobs run.
    generator_ = std::make_unique<WorkloadGenerator>(
        *catalog_, config_.inventory.compute_nodes, config_.gen,
        rng_.split());
    engine_.set_workload_stream(start, Duration::hours(1.0), end);
  }

  // Telemetry sampling on a fixed cadence, as a lazy tick train.
  engine_.set_sample_stream(start, config_.sample_interval, end);

  {
    HPCEM_OBS_SPAN("sim.step");
    SimEvent ev;
    while (engine_.next(end, ev)) dispatch(ev);
  }
  engine_.advance_to(end);

  // Ingest is counted in bulk here, a quiescent point that precedes every
  // export — the per-sample guard a push counter would need measurably
  // slows Recorder::record even when collection is off.
  if (obs::enabled()) detail::note_recorder_ingest(recorder_.total_appended());
}

void FacilitySimulator::dispatch(const SimEvent& ev) {
  switch (ev.kind) {
    case SimEventKind::kPolicyChange:
      policy_ = armed_policies_[ev.payload];
      policy_cache_.set_policy(policy_);
      power_dirty_ = true;
      break;
    case SimEventKind::kMaintenanceBegin:
      starts_blocked_ = true;
      break;
    case SimEventKind::kMaintenanceEnd:
      starts_blocked_ = false;
      start_ready_jobs();  // release the accumulated queue
      break;
    case SimEventKind::kSubmit:
      on_submit(take_job(ev.payload));
      break;
    case SimEventKind::kWorkloadHour:
      generate_hour(ev.time);
      break;
    case SimEventKind::kSample:
      sample();
      break;
    case SimEventKind::kFinish:
      on_finish(ev.payload);
      break;
  }
}

void FacilitySimulator::generate_hour(SimTime t) {
  HPCEM_OBS_SPAN("sim.workload.generate");
  for (auto& job : generator_->generate_hour(t, demand_scale())) {
    if (job.submit_time >= run_end_) continue;
    const SimTime at = job.submit_time;
    engine_.schedule(at, SimEventKind::kSubmit, park_job(std::move(job)));
  }
}

std::uint64_t FacilitySimulator::park_job(JobSpec job) {
  if (free_job_slots_.empty()) {
    job_slots_.push_back(std::move(job));
    return job_slots_.size() - 1;
  }
  const std::uint64_t slot = free_job_slots_.back();
  free_job_slots_.pop_back();
  job_slots_[slot] = std::move(job);
  return slot;
}

JobSpec FacilitySimulator::take_job(std::uint64_t slot) {
  JobSpec job = std::move(job_slots_[slot]);
  free_job_slots_.push_back(slot);
  return job;
}

void FacilitySimulator::schedule_maintenance(SimTime block_from,
                                             SimTime end) {
  require_state(!ran_, "schedule_maintenance: must be called before run()");
  require(end > block_from,
          "schedule_maintenance: end must follow block_from");
  maintenance_.emplace_back(block_from, end);
}

double FacilitySimulator::demand_scale() const {
  // Mix-average runtime stretch under the active policy, relative to the
  // reference conditions the generator's runtimes are expressed in —
  // served from the policy-epoch cache (same accumulation bit-for-bit).
  return policy_cache_.demand_scale();
}

void FacilitySimulator::on_submit(JobSpec job) {
  power_dirty_ = true;  // queue length is part of the sampled state
  scheduler_->submit(std::move(job));
  start_ready_jobs();
}

void FacilitySimulator::start_ready_jobs() {
  if (starts_blocked_) return;
  const obs::ScopedTimer pass_timer(sched_pass_hist());
  const SimTime now = engine_.now();
  for (auto& start : scheduler_->schedule_pass(now)) {
    jobs_started_counter().add();
    power_dirty_ = true;
    // Per-start policy math comes from the policy-epoch cache: the same
    // guards and the same floating-point expressions as the uncached
    // ApplicationModel calls, evaluated once per policy change.
    const std::size_t app_index = catalog_->index(start.job.app);
    require(start.job.ref_runtime.sec() > 0.0,
            "ApplicationModel::runtime: reference runtime must be positive");
    const PolicyFactorCache::JobFactors& f =
        policy_cache_.factors(app_index, start.job);
    const Duration runtime = start.job.ref_runtime * f.time_factor;
    require(start.job.silicon_factor >= 0.0,
            "node_power: silicon_factor must be non-negative");
    const double per_node_w = f.draw.watts(start.job.silicon_factor);
    const double fleet_w =
        per_node_w * static_cast<double>(start.job.nodes);

    const JobId id = start.job.id;
    RunningJob rj;
    rj.record.spec = std::move(start.job);
    rj.record.start_time = now;
    rj.record.end_time = now + runtime;
    rj.record.pstate = f.pstate;
    rj.record.mode = policy_.bios_mode;
    rj.record.node_power_w = per_node_w;
    rj.record.node_energy =
        Power::watts(fleet_w) * runtime;
    rj.fleet_power_w = fleet_w;

    busy_node_power_w_.add(fleet_w);
    scheduler_->set_expected_end(id, rj.record.end_time);
    engine_.schedule(rj.record.end_time, SimEventKind::kFinish, id);
    running_.emplace(id, std::move(rj));
  }
}

void FacilitySimulator::on_finish(JobId id) {
  auto it = running_.find(id);
  HPCEM_ASSERT(it != running_.end(), "finish event for unknown job");
  power_dirty_ = true;
  busy_node_power_w_.subtract(it->second.fleet_power_w);
  // Compensated summation keeps the residual at a rounding of the peak
  // magnitude, so anything visibly negative is an accounting bug.
  HPCEM_ASSERT(busy_node_power_w_.value() > -1e-3,
               "busy power went negative");
  if (running_.size() == 1) busy_node_power_w_.reset();  // exact empty
  scheduler_->finish(id, engine_.now());
  completed_.push_back(std::move(it->second.record));
  running_.erase(it);
  start_ready_jobs();
}

SimSnapshot FacilitySimulator::snapshot() const {
  SimSnapshot s;
  s.now = engine_.now();
  s.total_nodes = config_.inventory.compute_nodes;
  s.busy_nodes = scheduler_->busy_nodes();
  s.utilisation = scheduler_->utilisation();
  s.queue_length = scheduler_->queue_length();
  s.running_jobs = scheduler_->running_count();
  s.busy_node_power_w = std::max(0.0, busy_node_power_w_.value());
  return s;
}

void FacilitySimulator::sample() {
  samples_counter().add();
  SimSnapshot s = snapshot();
  // With no metering noise configured the draw is skipped entirely (the
  // factor is exactly 1.0 either way, and sample() is the only rng_
  // consumer during the run, so the stream is unperturbed).
  const double sigma = config_.metering_noise_sigma;
  const double noise = sigma == 0.0 ? 1.0 : 1.0 + rng_.normal(0.0, sigma);

  // Evaluate the sources in order, accumulating the boundary totals the
  // later sources (and the cabinet meter) see.  Quiescent skip: if no
  // submit/start/finish/policy change happened since the previous sample
  // and every source is time-invariant, the snapshot the sources consume
  // is unchanged, so the previous evaluation is reused verbatim.
  if (power_dirty_ || !sources_time_invariant_) {
    HPCEM_OBS_SPAN("sim.sample.power");
    double metered_w = 0.0;
    double total_w = 0.0;
    source_power_kw_.resize(composition_.sources.size());
    for (std::size_t i = 0; i < composition_.sources.size(); ++i) {
      const auto& source = composition_.sources[i];
      s.metered_power_so_far_w = metered_w;
      s.total_power_so_far_w = total_w;
      const Power p = source->power(s);
      if (source->metered()) metered_w += p.w();
      total_w += p.w();
      source_power_kw_[i] = p.kw();
    }
    cached_metered_w_ = metered_w;
    cached_total_w_ = total_w;
    power_dirty_ = false;
  }
  for (std::size_t i = 0; i < composition_.sources.size(); ++i) {
    recorder_.record(
        source_channels_[i], s.now,
        source_power_kw_[i] *
            (composition_.sources[i]->noisy() ? noise : 1.0));
  }

  HPCEM_OBS_SPAN("sim.sample.telemetry");
  recorder_.record(cabinet_channel_, s.now,
                   cached_metered_w_ / 1000.0 * noise);

  s.metered_power_so_far_w = cached_metered_w_;
  s.total_power_so_far_w = cached_total_w_;
  for (const auto& probe : composition_.probes) {
    probe->on_sample(s, recorder_);
  }
}

double FacilitySimulator::mean_cabinet_kw(SimTime a, SimTime b) const {
  return recorder_.series(cabinet_channel_).mean_over(a, b);
}

double FacilitySimulator::mean_utilisation(SimTime a, SimTime b) const {
  return recorder_.channel(channels::kUtilisation).mean_over(a, b);
}

Energy FacilitySimulator::cabinet_energy() const {
  // The channel is in kW; integrate() returns kW-seconds.
  const double kws = recorder_.series(cabinet_channel_).integrate();
  return Energy::kilojoules(kws);
}

}  // namespace hpcem
