#include "sim/facility_sim.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hpcem {

FacilitySimulator::FacilitySimulator(const AppCatalog& catalog,
                                     FacilitySimConfig config)
    : catalog_(&catalog), config_(config), rng_(config.seed) {
  require(config_.sample_interval.sec() > 0.0,
          "FacilitySimulator: sample interval must be positive");
  require(config_.metering_noise_sigma >= 0.0,
          "FacilitySimulator: noise sigma must be non-negative");
  SchedulerConfig sched_cfg;
  sched_cfg.nodes = config_.inventory.compute_nodes;
  sched_cfg.discipline = config_.sched_discipline;
  sched_cfg.weights = config_.sched_weights;
  scheduler_ = std::make_unique<Scheduler>(sched_cfg);

  recorder_.channel(channels::kCabinetKw, "kW");
  recorder_.channel(channels::kNodeFleetKw, "kW");
  recorder_.channel(channels::kUtilisation, "fraction");
  recorder_.channel(channels::kQueueLength, "jobs");
  recorder_.channel(channels::kRunningJobs, "jobs");
  recorder_.channel(channels::kSwitchKw, "kW");
  recorder_.channel(channels::kOverheadKw, "kW");
}

void FacilitySimulator::schedule_policy_change(SimTime when,
                                               OperatingPolicy policy) {
  require_state(!ran_,
                "schedule_policy_change: must be called before run()");
  pending_changes_.emplace_back(when, policy);
}

void FacilitySimulator::run(SimTime start, SimTime end) {
  run_impl({}, /*use_trace=*/false, start, end);
}

void FacilitySimulator::run_trace(std::vector<JobSpec> jobs, SimTime start,
                                  SimTime end) {
  run_impl(std::move(jobs), /*use_trace=*/true, start, end);
}

void FacilitySimulator::run_impl(std::vector<JobSpec> trace, bool use_trace,
                                 SimTime start, SimTime end) {
  require_state(!ran_, "FacilitySimulator::run: may only run once");
  require(end > start, "FacilitySimulator::run: end must follow start");
  ran_ = true;

  engine_ = SimEngine(start);

  // Arm the recorded policy changes.
  for (const auto& [when, policy] : pending_changes_) {
    if (when >= start && when < end) {
      engine_.schedule(when, [this, p = policy] { policy_ = p; });
    }
  }

  // Arm maintenance reservations.
  for (const auto& [from, until] : maintenance_) {
    if (from >= start && from < end) {
      engine_.schedule(from, [this] { starts_blocked_ = true; });
    }
    if (until >= start && until < end) {
      engine_.schedule(until, [this] {
        starts_blocked_ = false;
        start_ready_jobs();  // release the accumulated queue
      });
    }
  }

  if (use_trace) {
    // Replay an explicit trace: one submit event per in-window job.
    for (auto& job : trace) {
      require(catalog_->contains(job.app),
              "run_trace: unknown application in trace: " + job.app);
      if (job.submit_time < start || job.submit_time >= end) continue;
      const SimTime at = job.submit_time;
      engine_.schedule(at, [this, j = std::move(job)]() mutable {
        on_submit(std::move(j));
      });
    }
  } else {
    // Hourly on-the-fly workload generation.  The arrival rate is divided
    // by the mix-average slowdown of the *current* policy: allocations are
    // charged in node-hours, so budget-capped users offer a constant
    // node-hour stream no matter how fast individual jobs run.
    generator_ = std::make_unique<WorkloadGenerator>(
        *catalog_, config_.inventory.compute_nodes, config_.gen,
        rng_.split());
    for (SimTime t = start; t < end; t += Duration::hours(1.0)) {
      engine_.schedule(t, [this, t, end] {
        for (auto& job : generator_->generate_hour(t, demand_scale())) {
          if (job.submit_time >= end) continue;
          const SimTime at = job.submit_time;
          engine_.schedule(at, [this, j = std::move(job)]() mutable {
            on_submit(std::move(j));
          });
        }
      });
    }
  }

  // Telemetry sampling on a fixed cadence.
  for (SimTime t = start; t < end; t += config_.sample_interval) {
    engine_.schedule(t, [this] { sample(); });
  }

  engine_.run_until(end);
}

void FacilitySimulator::schedule_maintenance(SimTime block_from,
                                             SimTime end) {
  require_state(!ran_, "schedule_maintenance: must be called before run()");
  require(end > block_from,
          "schedule_maintenance: end must follow block_from");
  maintenance_.emplace_back(block_from, end);
}

double FacilitySimulator::demand_scale() const {
  // Mix-average runtime stretch under the active policy, relative to the
  // reference conditions the generator's runtimes are expressed in.
  const double mean_factor =
      catalog_->mix_average([&](const ApplicationModel& app) {
        JobSpec probe;
        const PState ps = policy_.resolve_pstate(app, probe);
        return app.time_factor(policy_.bios_mode, ps);
      });
  HPCEM_ASSERT(mean_factor > 0.0, "mean time factor must be positive");
  return 1.0 / mean_factor;
}

void FacilitySimulator::on_submit(JobSpec job) {
  scheduler_->submit(std::move(job));
  start_ready_jobs();
}

void FacilitySimulator::start_ready_jobs() {
  if (starts_blocked_) return;
  const SimTime now = engine_.now();
  for (auto& start : scheduler_->schedule_pass(now)) {
    const ApplicationModel& app = catalog_->at(start.job.app);
    const PState pstate = policy_.resolve_pstate(app, start.job);
    const DeterminismMode mode = policy_.bios_mode;

    const Duration runtime =
        app.runtime(start.job.ref_runtime, mode, pstate);
    const Power per_node =
        app.node_draw(mode, pstate, start.job.silicon_factor);
    const double fleet_w =
        per_node.w() * static_cast<double>(start.job.nodes);

    const JobId id = start.job.id;
    RunningJob rj;
    rj.record.spec = std::move(start.job);
    rj.record.start_time = now;
    rj.record.end_time = now + runtime;
    rj.record.pstate = pstate;
    rj.record.mode = mode;
    rj.record.node_power_w = per_node.w();
    rj.record.node_energy =
        Power::watts(fleet_w) * runtime;
    rj.fleet_power_w = fleet_w;

    busy_node_power_w_ += fleet_w;
    scheduler_->set_expected_end(id, rj.record.end_time);
    engine_.schedule(rj.record.end_time, [this, id] { on_finish(id); });
    running_.emplace(id, std::move(rj));
  }
}

void FacilitySimulator::on_finish(JobId id) {
  auto it = running_.find(id);
  HPCEM_ASSERT(it != running_.end(), "finish event for unknown job");
  busy_node_power_w_ -= it->second.fleet_power_w;
  HPCEM_ASSERT(busy_node_power_w_ > -1.0, "busy power went negative");
  busy_node_power_w_ = std::max(0.0, busy_node_power_w_);
  scheduler_->finish(id, engine_.now());
  completed_.push_back(std::move(it->second.record));
  running_.erase(it);
  start_ready_jobs();
}

Power FacilitySimulator::current_cabinet_power() const {
  const auto& inv = config_.inventory;
  const std::size_t busy = scheduler_->busy_nodes();
  const std::size_t idle = inv.compute_nodes - busy;
  const double util = scheduler_->utilisation();

  Power nodes = Power::watts(busy_node_power_w_) +
                config_.node_params.idle * static_cast<double>(idle);
  Power switches =
      config_.switch_model.power(util) * static_cast<double>(inv.switches);
  Power cabinets = config_.cabinet_model.power(util) *
                   static_cast<double>(inv.cabinets);
  return nodes + switches + cabinets;
}

void FacilitySimulator::sample() {
  const SimTime now = engine_.now();
  const double noise =
      1.0 + rng_.normal(0.0, config_.metering_noise_sigma);
  const Power cab = current_cabinet_power();
  const std::size_t busy = scheduler_->busy_nodes();
  const Power node_fleet =
      Power::watts(busy_node_power_w_) +
      config_.node_params.idle *
          static_cast<double>(config_.inventory.compute_nodes - busy);

  recorder_.record(channels::kCabinetKw, now, cab.kw() * noise);
  recorder_.record(channels::kNodeFleetKw, now, node_fleet.kw() * noise);
  recorder_.record(channels::kUtilisation, now, scheduler_->utilisation());
  recorder_.record(channels::kQueueLength, now,
                   static_cast<double>(scheduler_->queue_length()));
  recorder_.record(channels::kRunningJobs, now,
                   static_cast<double>(scheduler_->running_count()));
  const double util = scheduler_->utilisation();
  recorder_.record(
      channels::kSwitchKw, now,
      (config_.switch_model.power(util) *
       static_cast<double>(config_.inventory.switches))
          .kw());
  recorder_.record(
      channels::kOverheadKw, now,
      (config_.cabinet_model.power(util) *
       static_cast<double>(config_.inventory.cabinets))
          .kw());
}

double FacilitySimulator::mean_cabinet_kw(SimTime a, SimTime b) const {
  return recorder_.channel(channels::kCabinetKw).mean_over(a, b);
}

double FacilitySimulator::mean_utilisation(SimTime a, SimTime b) const {
  return recorder_.channel(channels::kUtilisation).mean_over(a, b);
}

Energy FacilitySimulator::cabinet_energy() const {
  // The channel is in kW; integrate() returns kW-seconds.
  const double kws = recorder_.channel(channels::kCabinetKw).integrate();
  return Energy::kilojoules(kws);
}

}  // namespace hpcem
