// Pluggable power/telemetry composition for the facility simulator.
//
// The simulator used to hard-code its power breakdown (nodes + switches +
// cabinet overheads) and its telemetry channel set.  This seam turns both
// into components: a `PowerSource` contributes a named power channel and,
// when inside the paper's compute-cabinet metering boundary, to the
// aggregate `cabinet_kw` channel; a `TelemetryProbe` observes the machine
// state at each sampling instant and records whatever channels it declares.
// Cooling/CDU/filesystem/idle-suspension models plug in as additional
// sources without touching the simulator loop.
//
// Sources are evaluated in list order; the snapshot exposes the power
// accumulated by the sources evaluated so far, which is how derived
// overheads (e.g. a PUE-style cooling source) see the IT power they
// amplify.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "power/cooling.hpp"
#include "power/idle.hpp"
#include "power/node_model.hpp"
#include "power/plant.hpp"
#include "telemetry/recorder.hpp"
#include "util/sim_time.hpp"
#include "util/units.hpp"

namespace hpcem {

/// Telemetry channel names produced by the standard composition.
namespace channels {
inline constexpr const char* kCabinetKw = "cabinet_kw";
inline constexpr const char* kNodeFleetKw = "node_fleet_kw";
inline constexpr const char* kUtilisation = "utilisation";
inline constexpr const char* kQueueLength = "queue_length";
inline constexpr const char* kRunningJobs = "running_jobs";
inline constexpr const char* kSwitchKw = "switch_kw";
inline constexpr const char* kOverheadKw = "overhead_kw";
// Optional plant sources (outside the cabinet metering boundary).
inline constexpr const char* kCduKw = "cdu_kw";
inline constexpr const char* kFilesystemKw = "filesystem_kw";
inline constexpr const char* kCoolingKw = "cooling_kw";
}  // namespace channels

/// Instantaneous machine state handed to sources and probes at a sampling
/// instant.  Everything is a value: sources must not reach back into the
/// simulator.
struct SimSnapshot {
  SimTime now{};
  std::size_t total_nodes = 0;
  std::size_t busy_nodes = 0;
  /// Node-allocation fraction in [0, 1].
  double utilisation = 0.0;
  std::size_t queue_length = 0;
  std::size_t running_jobs = 0;
  /// Sum of the per-node draws of all running jobs, W.
  double busy_node_power_w = 0.0;
  /// Power of the metered (cabinet-boundary) sources evaluated before this
  /// one, W.  Zero for the first source.
  double metered_power_so_far_w = 0.0;
  /// Power of every source evaluated before this one, W.
  double total_power_so_far_w = 0.0;

  [[nodiscard]] std::size_t idle_nodes() const {
    return total_nodes - busy_nodes;
  }
};

/// One contributor to the facility power breakdown.
class PowerSource {
 public:
  virtual ~PowerSource() = default;

  /// Telemetry channel this source records to (unit: kW).
  [[nodiscard]] virtual const std::string& channel() const = 0;

  /// Instantaneous draw at the sampled machine state.
  [[nodiscard]] virtual Power power(const SimSnapshot& s) const = 0;

  /// True if the source sits inside the paper's compute-cabinet metering
  /// boundary and therefore contributes to the `cabinet_kw` channel.
  [[nodiscard]] virtual bool metered() const { return true; }

  /// True if the per-source channel carries the cabinet meter's
  /// multiplicative noise (sub-meters derived from the cabinet meter do;
  /// independently modelled plant does not).
  [[nodiscard]] virtual bool noisy() const { return false; }

  /// True if `power` depends only on the machine-state fields of the
  /// snapshot (busy nodes, utilisation, accumulated power) and never on
  /// `SimSnapshot::now` or hidden mutable state.  When every composed
  /// source is time-invariant the simulator may reuse the previous
  /// sample's powers across quiescent intervals — stretches with no job
  /// start/finish or submit between samples (DESIGN.md §9).  Sources
  /// with their own dynamics (e.g. weather-driven cooling) must return
  /// false, which disables the skip for the whole composition.
  [[nodiscard]] virtual bool time_invariant() const { return false; }
};

/// Observer invoked at every sampling instant after the power sources.
class TelemetryProbe {
 public:
  virtual ~TelemetryProbe() = default;

  /// Declare the channels the probe records (called once, at simulator
  /// construction).  Implementations should keep the `ChannelId` handles
  /// `Recorder::declare` returns and record through them in `on_sample` —
  /// the name is resolved once here, never on the per-sample path.
  virtual void declare_channels(Recorder& recorder) = 0;

  /// Record this instant's values.  `s` carries the fully-accumulated
  /// `total_power_so_far_w` / `metered_power_so_far_w` of all sources.
  virtual void on_sample(const SimSnapshot& s, Recorder& recorder) = 0;
};

/// Ordered component list the simulator runs with.
struct SimComposition {
  std::vector<std::unique_ptr<PowerSource>> sources;
  std::vector<std::unique_ptr<TelemetryProbe>> probes;
};

// ---------------------------------------------------------------------------
// Standard sources (the canonical cabinet-boundary breakdown).

/// Compute-node fleet: running jobs at their resolved draw plus idle nodes
/// at the idle floor — optionally with the idle-suspension lever applied to
/// the idle share.
class NodeFleetSource final : public PowerSource {
 public:
  NodeFleetSource(NodePowerParams params, IdlePowerPolicy idle_policy = {});

  [[nodiscard]] const std::string& channel() const override;
  [[nodiscard]] Power power(const SimSnapshot& s) const override;
  [[nodiscard]] bool noisy() const override { return true; }
  [[nodiscard]] bool time_invariant() const override { return true; }

 private:
  NodePowerParams params_;
  IdlePowerPolicy idle_policy_;
};

/// The dragonfly fabric: near-load-independent per-switch draw.
class SwitchFabricSource final : public PowerSource {
 public:
  SwitchFabricSource(SwitchPowerModel model, std::size_t switch_count);

  [[nodiscard]] const std::string& channel() const override;
  [[nodiscard]] Power power(const SimSnapshot& s) const override;
  [[nodiscard]] bool time_invariant() const override { return true; }

 private:
  SwitchPowerModel model_;
  std::size_t count_;
};

/// Per-cabinet overheads (rectifiers, fans, controllers).
class CabinetOverheadSource final : public PowerSource {
 public:
  CabinetOverheadSource(CabinetOverheadModel model,
                        std::size_t cabinet_count);

  [[nodiscard]] const std::string& channel() const override;
  [[nodiscard]] Power power(const SimSnapshot& s) const override;
  [[nodiscard]] bool time_invariant() const override { return true; }

 private:
  CabinetOverheadModel model_;
  std::size_t count_;
};

// ---------------------------------------------------------------------------
// Optional plant sources (outside the cabinet metering boundary).

/// Coolant distribution units: constant draw, outside the cabinet boundary.
class CduSource final : public PowerSource {
 public:
  CduSource(CduPowerModel model, std::size_t cdu_count);

  [[nodiscard]] const std::string& channel() const override;
  [[nodiscard]] Power power(const SimSnapshot& s) const override;
  [[nodiscard]] bool metered() const override { return false; }
  [[nodiscard]] bool time_invariant() const override { return true; }

 private:
  CduPowerModel model_;
  std::size_t count_;
};

/// File systems: constant draw, outside the cabinet boundary.
class FilesystemSource final : public PowerSource {
 public:
  FilesystemSource(FilesystemPowerModel model, std::size_t fs_count);

  [[nodiscard]] const std::string& channel() const override;
  [[nodiscard]] Power power(const SimSnapshot& s) const override;
  [[nodiscard]] bool metered() const override { return false; }
  [[nodiscard]] bool time_invariant() const override { return true; }

 private:
  FilesystemPowerModel model_;
  std::size_t count_;
};

/// PUE-style cooling overhead on the power accumulated so far: must be
/// ordered after the IT sources it amplifies.  Outside the cabinet
/// boundary (the paper's meters sit upstream of the cooling plant).
class CoolingOverheadSource final : public PowerSource {
 public:
  CoolingOverheadSource(CoolingModel model, double outdoor_c);

  [[nodiscard]] const std::string& channel() const override;
  [[nodiscard]] Power power(const SimSnapshot& s) const override;
  [[nodiscard]] bool metered() const override { return false; }
  [[nodiscard]] bool time_invariant() const override { return true; }

 private:
  CoolingModel model_;
  double outdoor_c_;
};

// ---------------------------------------------------------------------------
// Standard probes (the scheduler-state channels).

/// Records the node-allocation fraction.
class UtilisationProbe final : public TelemetryProbe {
 public:
  void declare_channels(Recorder& recorder) override;
  void on_sample(const SimSnapshot& s, Recorder& recorder) override;

 private:
  ChannelId utilisation_;
};

/// Records queue length and running-job count.
class QueueStateProbe final : public TelemetryProbe {
 public:
  void declare_channels(Recorder& recorder) override;
  void on_sample(const SimSnapshot& s, Recorder& recorder) override;

 private:
  ChannelId queue_length_;
  ChannelId running_jobs_;
};

}  // namespace hpcem
