#include "telemetry/recorder.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

TimeSeries& Recorder::channel(const std::string& name,
                              const std::string& unit) {
  auto it = channels_.find(name);
  if (it != channels_.end()) {
    require(it->second.unit() == unit,
            "Recorder::channel: unit mismatch for existing channel " + name);
    return it->second;
  }
  auto [ins, ok] = channels_.emplace(name, TimeSeries(unit));
  HPCEM_ASSERT(ok, "channel insertion");
  return ins->second;
}

const TimeSeries& Recorder::channel(const std::string& name) const {
  auto it = channels_.find(name);
  require_state(it != channels_.end(),
                "Recorder::channel: no such channel: " + name);
  return it->second;
}

bool Recorder::has_channel(const std::string& name) const {
  return channels_.contains(name);
}

std::vector<std::string> Recorder::channel_names() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, _] : channels_) names.push_back(name);
  return names;
}

void Recorder::record(const std::string& name, SimTime t, double value) {
  auto it = channels_.find(name);
  require_state(it != channels_.end(),
                "Recorder::record: no such channel: " + name);
  it->second.append(t, value);
}

std::string Recorder::to_csv() const {
  CsvWriter w({"time", "channel", "unit", "value"});
  for (const auto& [name, series] : channels_) {
    for (const auto& s : series.samples()) {
      w.add_row({iso_date_time(s.time), name, series.unit(),
                 TextTable::num(s.value, 6)});
    }
  }
  return w.str();
}

RollingWindow::RollingWindow(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "RollingWindow: capacity must be >= 1");
}

void RollingWindow::add(double x) {
  buf_.push_back(x);
  sum_ += x;
  if (buf_.size() > capacity_) {
    sum_ -= buf_.front();
    buf_.pop_front();
  }
}

double RollingWindow::mean() const {
  require_state(!buf_.empty(), "RollingWindow::mean: empty window");
  return sum_ / static_cast<double>(buf_.size());
}

double RollingWindow::min() const {
  require_state(!buf_.empty(), "RollingWindow::min: empty window");
  return *std::min_element(buf_.begin(), buf_.end());
}

double RollingWindow::max() const {
  require_state(!buf_.empty(), "RollingWindow::max: empty window");
  return *std::max_element(buf_.begin(), buf_.end());
}

}  // namespace hpcem
