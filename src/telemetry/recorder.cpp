#include "telemetry/recorder.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/text_table.hpp"

namespace hpcem {

namespace detail {

void note_recorder_ingest(std::uint64_t n) {
  static const obs::Counter samples("telemetry.recorder.samples", "samples");
  samples.add(n);
}

}  // namespace detail

ChannelId Recorder::declare(const std::string& name,
                            const std::string& unit) {
  auto it = index_.find(name);
  if (it != index_.end()) {
    require(channels_[it->second]->series.unit() == unit,
            "Recorder::channel: unit mismatch for existing channel " + name);
    return ChannelId(it->second);
  }
  const auto idx = static_cast<std::uint32_t>(channels_.size());
  channels_.push_back(
      std::make_unique<Channel>(Channel{name, TimeSeries(unit)}));
  if (max_raw_ != 0) channels_.back()->series.set_max_raw_samples(max_raw_);
  index_.emplace(name, idx);
  return ChannelId(idx);
}

std::optional<ChannelId> Recorder::find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return ChannelId(it->second);
}

ChannelId Recorder::id(const std::string& name) const {
  const auto found = find(name);
  require_state(found.has_value(),
                "Recorder::id: no such channel: " + name);
  return *found;
}

const TimeSeries& Recorder::series(ChannelId id) const {
  require_state(id.index() < channels_.size(),
                "Recorder::series: invalid channel id");
  return channels_[id.index()]->series;
}

TimeSeries& Recorder::series(ChannelId id) {
  require_state(id.index() < channels_.size(),
                "Recorder::series: invalid channel id");
  return channels_[id.index()]->series;
}

const std::string& Recorder::name(ChannelId id) const {
  require_state(id.index() < channels_.size(),
                "Recorder::name: invalid channel id");
  return channels_[id.index()]->name;
}

void Recorder::set_max_raw_samples(std::size_t cap) {
  max_raw_ = cap;
  for (auto& ch : channels_) ch->series.set_max_raw_samples(cap);
}

TimeSeries& Recorder::channel(const std::string& name,
                              const std::string& unit) {
  return channels_[declare(name, unit).index()]->series;
}

const TimeSeries& Recorder::channel(const std::string& name) const {
  auto it = index_.find(name);
  require_state(it != index_.end(),
                "Recorder::channel: no such channel: " + name);
  return channels_[it->second]->series;
}

bool Recorder::has_channel(const std::string& name) const {
  return index_.contains(name);
}

std::vector<std::string> Recorder::channel_names() const {
  std::vector<std::string> names;
  names.reserve(index_.size());
  for (const auto& [name, _] : index_) names.push_back(name);
  return names;
}

void Recorder::record(const std::string& name, SimTime t, double value) {
  auto it = index_.find(name);
  require_state(it != index_.end(),
                "Recorder::record: no such channel: " + name);
  channels_[it->second]->series.append(t, value);
}

std::uint64_t Recorder::total_appended() const {
  std::uint64_t total = 0;
  for (const auto& c : channels_) total += c->series.total_appended();
  return total;
}

std::string Recorder::to_csv() const {
  CsvWriter w({"time", "channel", "unit", "value"});
  for (const auto& [name, idx] : index_) {
    const TimeSeries& series = channels_[idx]->series;
    for (const auto& s : series.samples()) {
      w.add_row({iso_date_time(s.time), name, series.unit(),
                 TextTable::num(s.value, 6)});
    }
  }
  return w.str();
}

RollingWindow::RollingWindow(std::size_t capacity) : capacity_(capacity) {
  require(capacity >= 1, "RollingWindow: capacity must be >= 1");
}

void RollingWindow::add(double x) {
  buf_.push_back(x);
  sum_.add(x);
  if (buf_.size() > capacity_) {
    sum_.subtract(buf_.front());
    buf_.pop_front();
  }
}

double RollingWindow::mean() const {
  require_state(!buf_.empty(), "RollingWindow::mean: empty window");
  return sum_.value() / static_cast<double>(buf_.size());
}

double RollingWindow::min() const {
  require_state(!buf_.empty(), "RollingWindow::min: empty window");
  return *std::min_element(buf_.begin(), buf_.end());
}

double RollingWindow::max() const {
  require_state(!buf_.empty(), "RollingWindow::max: empty window");
  return *std::max_element(buf_.begin(), buf_.end());
}

}  // namespace hpcem
