#include "telemetry/changepoint.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace hpcem {

namespace {

/// Prefix sums enabling O(1) segment cost queries.
struct Prefix {
  std::vector<double> sum;   // sum[i] = xs[0..i)
  std::vector<double> sum2;  // squared

  explicit Prefix(std::span<const double> xs)
      : sum(xs.size() + 1, 0.0), sum2(xs.size() + 1, 0.0) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      sum[i + 1] = sum[i] + xs[i];
      sum2[i + 1] = sum2[i] + xs[i] * xs[i];
    }
  }

  /// Sum of squared deviations from the segment mean over [lo, hi).
  [[nodiscard]] double sse(std::size_t lo, std::size_t hi) const {
    const auto n = static_cast<double>(hi - lo);
    if (n <= 0.0) return 0.0;
    const double s = sum[hi] - sum[lo];
    const double s2 = sum2[hi] - sum2[lo];
    return std::max(0.0, s2 - s * s / n);
  }

  [[nodiscard]] double mean(std::size_t lo, std::size_t hi) const {
    return (sum[hi] - sum[lo]) / static_cast<double>(hi - lo);
  }
};

/// Best single split of [lo, hi); nullopt if segments would be too short.
std::optional<StepChange> best_split(const Prefix& p, std::size_t lo,
                                     std::size_t hi,
                                     std::size_t min_segment) {
  if (hi - lo < 2 * min_segment) return std::nullopt;
  const double base_cost = p.sse(lo, hi);
  double best_cost = base_cost;
  std::size_t best_k = 0;
  for (std::size_t k = lo + min_segment; k + min_segment <= hi; ++k) {
    const double cost = p.sse(lo, k) + p.sse(k, hi);
    if (cost < best_cost) {
      best_cost = cost;
      best_k = k;
    }
  }
  if (best_k == 0) return std::nullopt;
  StepChange sc;
  sc.index = best_k;
  sc.mean_before = p.mean(lo, best_k);
  sc.mean_after = p.mean(best_k, hi);
  sc.gain = base_cost - best_cost;
  return sc;
}

}  // namespace

std::optional<StepChange> detect_single_step(std::span<const double> xs,
                                             std::size_t min_segment) {
  require(min_segment >= 1, "detect_single_step: min_segment must be >= 1");
  if (xs.size() < 2 * min_segment) return std::nullopt;
  const Prefix p(xs);
  auto sc = best_split(p, 0, xs.size(), min_segment);
  if (sc && sc->gain <= 0.0) return std::nullopt;
  return sc;
}

std::vector<StepChange> detect_steps(std::span<const double> xs,
                                     std::size_t min_segment,
                                     double penalty) {
  require(penalty >= 0.0, "detect_steps: penalty must be non-negative");
  std::vector<StepChange> found;
  if (xs.size() < 2 * min_segment) return found;

  const Prefix p(xs);
  const auto n = static_cast<double>(xs.size());
  // Noise scale estimated from first differences (robust to the steps
  // themselves, which contribute only a few large diffs).
  std::vector<double> diffs;
  diffs.reserve(xs.size());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    diffs.push_back(std::fabs(xs[i] - xs[i - 1]));
  }
  std::nth_element(
      diffs.begin(),
      diffs.begin() + static_cast<std::ptrdiff_t>(diffs.size() / 2),
      diffs.end());
  const double mad = diffs.empty() ? 0.0 : diffs[diffs.size() / 2];
  // First differences of N(m, s^2) samples are N(0, 2 s^2); their median
  // absolute value is 0.6745 * sqrt(2) * s = 0.954 s, so s^2 = (mad/0.954)^2.
  const double noise_var = mad > 0.0 ? (mad / 0.954) * (mad / 0.954)
                                     : p.sse(0, xs.size()) / n;
  const double min_gain = penalty * noise_var * std::log(n);

  // Binary segmentation: recursively split the segment with the best gain.
  struct SegTask {
    std::size_t lo, hi;
  };
  std::vector<SegTask> stack{{0, xs.size()}};
  while (!stack.empty()) {
    const SegTask seg = stack.back();
    stack.pop_back();
    auto sc = best_split(p, seg.lo, seg.hi, min_segment);
    if (!sc || sc->gain < min_gain) continue;
    found.push_back(*sc);
    stack.push_back({seg.lo, sc->index});
    stack.push_back({sc->index, seg.hi});
  }
  std::sort(found.begin(), found.end(),
            [](const StepChange& a, const StepChange& b) {
              return a.index < b.index;
            });
  return found;
}

std::optional<TimedStepChange> detect_single_step(const TimeSeries& ts,
                                                  std::size_t min_segment) {
  const auto vals = ts.values();
  auto sc = detect_single_step(std::span<const double>(vals), min_segment);
  if (!sc) return std::nullopt;
  TimedStepChange out;
  out.time = ts[sc->index].time;
  out.mean_before = sc->mean_before;
  out.mean_after = sc->mean_after;
  return out;
}

Cusum::Cusum(double target, double slack, double threshold)
    : target_(target), slack_(slack), threshold_(threshold) {
  require(slack >= 0.0, "Cusum: slack must be non-negative");
  require(threshold > 0.0, "Cusum: threshold must be positive");
}

bool Cusum::add(double x) {
  pos_ = std::max(0.0, pos_ + (x - target_ - slack_));
  neg_ = std::max(0.0, neg_ + (target_ - x - slack_));
  if (pos_ > threshold_ || neg_ > threshold_) {
    ++alarms_;
    pos_ = 0.0;
    neg_ = 0.0;
    return true;
  }
  return false;
}

void Cusum::retarget(double target) {
  target_ = target;
  pos_ = 0.0;
  neg_ = 0.0;
}

}  // namespace hpcem
