// Weekly seasonality decomposition of facility telemetry.
//
// The paper's Figure 1 shows noisy cabinet power whose texture comes from
// the submission cycle (weekday peaks, weekend dips).  This module
// extracts that structure: a mean weekly profile (168 hourly bins), the
// deseasonalised residual, and summary measures (weekday/weekend swing,
// residual noise) that the analysis layer uses both to characterise real
// telemetry and to validate that the simulator's texture is realistic.
#pragma once

#include <array>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace hpcem {

/// Result of a weekly decomposition.
struct WeeklyDecomposition {
  /// Mean value per hour-of-week (0 = Monday 00:00 .. 167 = Sunday 23:00).
  std::array<double, 168> profile{};
  /// Number of samples that landed in each bin.
  std::array<std::size_t, 168> bin_counts{};
  /// Overall mean of the series.
  double mean = 0.0;
  /// Standard deviation of the residual (series minus profile).
  double residual_stddev = 0.0;
  /// Mean of weekday bins minus mean of weekend bins.
  double weekday_weekend_delta = 0.0;

  /// The profile value for an instant.
  [[nodiscard]] double profile_at(SimTime t) const;
};

/// Decompose a series into a mean weekly profile plus residual.  Requires
/// at least two weeks of data so every bin is populated.
[[nodiscard]] WeeklyDecomposition decompose_weekly(const TimeSeries& ts);

/// Residual series (value minus weekly profile), same timestamps.
[[nodiscard]] TimeSeries deseasonalise(const TimeSeries& ts,
                                       const WeeklyDecomposition& d);

/// Hour-of-week index for an instant (0..167, Monday 00:00 = 0).
[[nodiscard]] std::size_t hour_of_week(SimTime t);

}  // namespace hpcem
