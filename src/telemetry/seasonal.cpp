#include "telemetry/seasonal.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace hpcem {

std::size_t hour_of_week(SimTime t) {
  const auto dow = static_cast<std::size_t>(day_of_week(t));
  const auto hour =
      static_cast<std::size_t>(seconds_into_day(t) / 3600.0);
  HPCEM_ASSERT(hour < 24, "hour of day in range");
  return dow * 24 + hour;
}

double WeeklyDecomposition::profile_at(SimTime t) const {
  return profile[hour_of_week(t)];
}

WeeklyDecomposition decompose_weekly(const TimeSeries& ts) {
  require(!ts.empty(), "decompose_weekly: empty series");
  require(ts.span().day() >= 14.0,
          "decompose_weekly: need at least two weeks of data");

  WeeklyDecomposition d;
  std::array<double, 168> sums{};
  RunningStats overall;
  for (const auto& s : ts.samples()) {
    const std::size_t bin = hour_of_week(s.time);
    sums[bin] += s.value;
    ++d.bin_counts[bin];
    overall.add(s.value);
  }
  d.mean = overall.mean();
  for (std::size_t i = 0; i < 168; ++i) {
    // Sparse bins (possible with coarse sampling) fall back to the mean.
    d.profile[i] = d.bin_counts[i] > 0
                       ? sums[i] / static_cast<double>(d.bin_counts[i])
                       : d.mean;
  }

  RunningStats residual;
  for (const auto& s : ts.samples()) {
    residual.add(s.value - d.profile[hour_of_week(s.time)]);
  }
  d.residual_stddev = residual.stddev();

  RunningStats weekday, weekend;
  for (std::size_t i = 0; i < 168; ++i) {
    (i < 120 ? weekday : weekend).add(d.profile[i]);
  }
  d.weekday_weekend_delta = weekday.mean() - weekend.mean();
  return d;
}

TimeSeries deseasonalise(const TimeSeries& ts,
                         const WeeklyDecomposition& d) {
  TimeSeries out(ts.unit());
  for (const auto& s : ts.samples()) {
    out.append(s.time, s.value - d.profile[hour_of_week(s.time)]);
  }
  return out;
}

}  // namespace hpcem
