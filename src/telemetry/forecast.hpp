// Short-term facility power forecasting.
//
// A grid-citizen facility (paper §3) must be able to tell its grid
// operator what it will draw tomorrow.  The forecaster combines the two
// structures the telemetry actually has: the weekly submission-cycle
// profile (from telemetry/seasonal.hpp) and a slowly-moving level tracked
// by an EWMA over the deseasonalised residual — so it follows operational
// changes (the paper's BIOS/frequency steps) within days while keeping
// the weekday/weekend shape.
#pragma once

#include "telemetry/seasonal.hpp"
#include "telemetry/timeseries.hpp"
#include "util/stats.hpp"

namespace hpcem {

/// Weekly-profile + EWMA-level forecaster.
class PowerForecaster {
 public:
  /// Fit to history (needs >= 2 weeks).  `level_alpha` controls how fast
  /// the level adapts to regime changes (per-sample EWMA weight).
  explicit PowerForecaster(const TimeSeries& history,
                           double level_alpha = 0.02);

  /// Point forecast for an instant after the history window.
  [[nodiscard]] double forecast(SimTime t) const;

  /// Forecast series over [start, end) at `step` spacing.
  [[nodiscard]] TimeSeries forecast_series(SimTime start, SimTime end,
                                           Duration step) const;

  /// Evaluate against actuals: mean absolute error over the overlap.
  [[nodiscard]] double mean_absolute_error(const TimeSeries& actual) const;

  [[nodiscard]] const WeeklyDecomposition& weekly() const { return weekly_; }
  [[nodiscard]] double level() const { return level_; }

 private:
  WeeklyDecomposition weekly_;
  double level_ = 0.0;  ///< EWMA of the deseasonalised residual
};

}  // namespace hpcem
