// Multi-channel telemetry recorder and rolling-window statistics.
//
// `Recorder` is the facility simulator's sink: named channels ("cabinet_kw",
// "utilisation", ...) each backed by a TimeSeries, with CSV export matching
// the layout a real telemetry database dump would have.
//
// Channels are *interned*: `declare()` resolves a name to a dense
// `ChannelId` exactly once, at composition time, and the per-sample hot
// path `record(ChannelId, ...)` is an index into a dense channel table —
// no string hashing or map walk per sample.  The string-keyed overloads
// remain for composition-time setup, tools and tests; they resolve through
// the intern map and cost a lookup per call.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace hpcem {

namespace detail {
/// Adds `n` to the obs "telemetry.recorder.samples" counter (out of line:
/// the counter static and its registration stay in recorder.cpp).  Callers
/// count in bulk at quiescent points — a per-sample guard inside
/// Recorder::record measurably slows the ingest loop even when collection
/// is off.
void note_recorder_ingest(std::uint64_t n);
}  // namespace detail

/// Dense handle to an interned recorder channel.  Obtained from
/// `Recorder::declare`/`find`/`id`; valid for the lifetime of the recorder
/// that issued it.
class ChannelId {
 public:
  constexpr ChannelId() = default;

  [[nodiscard]] constexpr std::uint32_t index() const { return index_; }
  [[nodiscard]] constexpr bool valid() const { return index_ != kInvalid; }

  friend constexpr bool operator==(ChannelId, ChannelId) = default;

 private:
  friend class Recorder;
  constexpr explicit ChannelId(std::uint32_t index) : index_(index) {}

  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;
  std::uint32_t index_ = kInvalid;
};

/// Named collection of telemetry channels.
class Recorder {
 public:
  /// Intern (or re-fetch) a channel, returning its dense handle.
  /// Re-declaring an existing channel with a different unit is an error.
  ChannelId declare(const std::string& name, const std::string& unit);

  /// Handle of an existing channel, nullopt if absent.
  [[nodiscard]] std::optional<ChannelId> find(const std::string& name) const;

  /// Handle of an existing channel; throws StateError if absent.
  [[nodiscard]] ChannelId id(const std::string& name) const;

  /// Record one sample through a handle (the hot path).  Deliberately not
  /// obs-instrumented per call: ingest is counted in bulk from
  /// total_appended() at quiescent points (see detail::note_recorder_ingest).
  void record(ChannelId id, SimTime t, double value) {
    HPCEM_ASSERT(id.index() < channels_.size(),
                 "Recorder::record: invalid channel id");
    channels_[id.index()]->series.append(t, value);
  }

  /// Series behind a handle.
  [[nodiscard]] const TimeSeries& series(ChannelId id) const;
  [[nodiscard]] TimeSeries& series(ChannelId id);
  /// Name behind a handle.
  [[nodiscard]] const std::string& name(ChannelId id) const;

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

  /// Total samples ever appended across all channels (survives retention
  /// decimation).  The obs ingest counter is fed from this in bulk.
  [[nodiscard]] std::uint64_t total_appended() const;

  /// Bound retained raw samples per channel (applies to every current and
  /// future channel; 0 = unbounded).  Aggregates stay exact; see
  /// TimeSeries::set_max_raw_samples.
  void set_max_raw_samples(std::size_t cap);

  // -- String-keyed API (composition-time setup, tools, tests). -------------

  /// Create (or fetch) a channel with the given unit label.  Re-declaring an
  /// existing channel with a different unit is an error.
  TimeSeries& channel(const std::string& name, const std::string& unit);

  /// Fetch an existing channel; throws StateError if absent.
  [[nodiscard]] const TimeSeries& channel(const std::string& name) const;

  [[nodiscard]] bool has_channel(const std::string& name) const;
  /// Channel names in lexicographic order.
  [[nodiscard]] std::vector<std::string> channel_names() const;

  /// Record one sample on a channel that must already exist (resolves the
  /// name per call; prefer the ChannelId overload on hot paths).
  void record(const std::string& name, SimTime t, double value);

  /// Export all channels as long-format CSV: time_iso,channel,unit,value.
  /// Channels appear in name order, samples in time order.
  [[nodiscard]] std::string to_csv() const;

 private:
  struct Channel {
    std::string name;
    TimeSeries series;
  };

  // Dense handle-indexed table.  One pointer hop per channel keeps
  // `TimeSeries&` references stable across later declares (callers hold
  // them across composition) while indexing stays a single vector load on
  // the per-sample path.
  std::vector<std::unique_ptr<Channel>> channels_;
  // Sorted name -> index intern map (also drives export ordering).
  std::map<std::string, std::uint32_t> index_;
  std::size_t max_raw_ = 0;
};

/// Fixed-width rolling window over a scalar stream (mean/min/max).
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void add(double x);
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool full() const { return buf_.size() == capacity_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  /// Compensated: a long stream performs one add+subtract per sample and a
  /// naive running sum drifts by an ulp per operation.
  CompensatedSum sum_;
};

}  // namespace hpcem
