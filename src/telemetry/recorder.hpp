// Multi-channel telemetry recorder and rolling-window statistics.
//
// `Recorder` is the facility simulator's sink: named channels ("cabinet_kw",
// "utilisation", ...) each backed by a TimeSeries, with CSV export matching
// the layout a real telemetry database dump would have.
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "telemetry/timeseries.hpp"
#include "util/csv.hpp"

namespace hpcem {

/// Named collection of telemetry channels.
class Recorder {
 public:
  /// Create (or fetch) a channel with the given unit label.  Re-declaring an
  /// existing channel with a different unit is an error.
  TimeSeries& channel(const std::string& name, const std::string& unit);

  /// Fetch an existing channel; throws StateError if absent.
  [[nodiscard]] const TimeSeries& channel(const std::string& name) const;

  [[nodiscard]] bool has_channel(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> channel_names() const;

  /// Record one sample on a channel that must already exist.
  void record(const std::string& name, SimTime t, double value);

  /// Export all channels as long-format CSV: time_iso,channel,unit,value.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::map<std::string, TimeSeries> channels_;
};

/// Fixed-width rolling window over a scalar stream (mean/min/max).
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t capacity);

  void add(double x);
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] bool full() const { return buf_.size() == capacity_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t capacity_;
  std::deque<double> buf_;
  double sum_ = 0.0;
};

}  // namespace hpcem
