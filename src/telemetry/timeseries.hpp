// Time-series container for facility telemetry.
//
// A `TimeSeries` is an append-only sequence of (SimTime, value) samples in
// non-decreasing time order.  It is the interchange type between the
// simulator (which produces cabinet power samples) and the analysis layer
// (which computes means over windows, integrates energy, and detects the
// operational change points the paper's figures show).
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/sim_time.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace hpcem {

/// One telemetry sample.
struct Sample {
  SimTime time;
  double value = 0.0;
};

/// Append-only, time-ordered sample sequence with analysis helpers.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Construct with a unit label used in exports ("kW", "gCO2/kWh", ...).
  explicit TimeSeries(std::string unit) : unit_(std::move(unit)) {}

  /// Append a sample; `time` must be >= the last appended time.
  void append(SimTime time, double value);

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    return samples_[i];
  }
  [[nodiscard]] std::span<const Sample> samples() const { return samples_; }
  [[nodiscard]] const std::string& unit() const { return unit_; }

  [[nodiscard]] SimTime start_time() const;
  [[nodiscard]] SimTime end_time() const;
  [[nodiscard]] Duration span() const;

  /// Values only, in time order.
  [[nodiscard]] std::vector<double> values() const;

  /// Sub-series with start <= t < end.
  [[nodiscard]] TimeSeries slice(SimTime start, SimTime end) const;

  /// Arithmetic mean of sample values in [start, end); throws if empty.
  [[nodiscard]] double mean_over(SimTime start, SimTime end) const;
  /// Mean of all samples; throws if empty.
  [[nodiscard]] double mean() const;
  /// Full summary statistics of all sample values.
  [[nodiscard]] Summary summary() const;

  /// Time-weighted integral interpreting values as a rate (e.g. W -> J).
  /// Uses trapezoidal integration between samples.
  [[nodiscard]] double integrate() const;

  /// Convenience for power series in watts: integral as Energy.
  [[nodiscard]] Energy integrate_power() const {
    return Energy::joules(integrate());
  }

  /// Piecewise-linear interpolation at `t`; clamps outside the range.
  /// Throws on an empty series.
  [[nodiscard]] double value_at(SimTime t) const;

  /// Resample to a fixed interval by bucket-averaging; buckets with no
  /// samples take the interpolated value at the bucket centre.
  [[nodiscard]] TimeSeries resample(Duration interval) const;

  /// Element-wise transform into a new series (same timestamps).
  [[nodiscard]] TimeSeries map(
      const std::function<double(double)>& f) const;

  /// Sum of two series sampled at identical timestamps.
  [[nodiscard]] static TimeSeries sum(const TimeSeries& a,
                                      const TimeSeries& b);

 private:
  std::string unit_;
  std::vector<Sample> samples_;
};

}  // namespace hpcem
