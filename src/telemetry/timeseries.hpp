// Time-series container for facility telemetry.
//
// A `TimeSeries` is an append-only sequence of (SimTime, value) samples in
// non-decreasing time order.  It is the interchange type between the
// simulator (which produces cabinet power samples) and the analysis layer
// (which computes means over windows, integrates energy, and detects the
// operational change points the paper's figures show).
//
// The series is *streaming-first*: count, compensated sum, min/max and the
// trapezoidal time integral are maintained online at append time, so
// `mean()`, `integrate()` and the aggregate accessors are O(1) however long
// the campaign ran.  Window queries (`slice`, `mean_over`, `window_bounds`)
// binary-search the time axis, so a windowed summary costs O(log n + k)
// rather than a full scan.  For memory-bounded campaigns a retention cap
// decimates the *raw* samples (keeping every 2^k-th); the online aggregates
// are always exact over everything ever appended.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace hpcem {

/// One telemetry sample.
struct Sample {
  SimTime time;
  double value = 0.0;
};

/// Append-only, time-ordered sample sequence with analysis helpers.
class TimeSeries {
 public:
  TimeSeries() = default;
  /// Construct with a unit label used in exports ("kW", "gCO2/kWh", ...).
  explicit TimeSeries(std::string unit) : unit_(std::move(unit)) {}

  /// Append a sample; `time` must be >= the last appended time.  Inline:
  /// this is the telemetry hot path (one call per channel per sim tick).
  void append(SimTime time, double value) {
    if (total_appended_ > 0) {
      // Message built only on the failure path: this runs per sample.
      if (time < last_time_) {
        throw InvalidArgument(
            "TimeSeries::append: samples must be time-ordered");
      }
      integral_.add(0.5 * (value + last_value_) *
                    (time - last_time_).sec());
      min_ = std::min(min_, value);
      max_ = std::max(max_, value);
    } else {
      first_time_ = time;
      min_ = value;
      max_ = value;
    }
    sum_.add(value);
    // Retain every keep_stride_-th appended sample (all of them until a
    // retention cap forces decimation).  The stride is always a power of
    // two, so the divisibility test is a mask.
    if ((total_appended_ & (keep_stride_ - 1)) == 0) {
      samples_.push_back({time, value});
      if (max_raw_ != 0 && samples_.size() > max_raw_) enforce_retention();
    }
    ++total_appended_;
    last_time_ = time;
    last_value_ = value;
  }

  /// Retained raw samples (== appended count unless a retention cap
  /// triggered decimation).
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return total_appended_ == 0; }
  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    return samples_[i];
  }
  [[nodiscard]] std::span<const Sample> samples() const { return samples_; }
  [[nodiscard]] const std::string& unit() const { return unit_; }

  // -- Online aggregates: exact over every appended sample, O(1). ----------

  /// Total samples ever appended (survives decimation).
  [[nodiscard]] std::size_t total_appended() const { return total_appended_; }
  /// Compensated sum of all appended values.
  [[nodiscard]] double value_sum() const { return sum_.value(); }
  [[nodiscard]] double value_min() const;
  [[nodiscard]] double value_max() const;
  /// Mean of all appended samples; throws if empty.
  [[nodiscard]] double mean() const;
  /// Time-weighted trapezoidal integral interpreting values as a rate
  /// (e.g. W -> J).  Exact over every appended sample.
  [[nodiscard]] double integrate() const { return integral_.value(); }

  /// Convenience for power series in watts: integral as Energy.
  [[nodiscard]] Energy integrate_power() const {
    return Energy::joules(integrate());
  }

  [[nodiscard]] SimTime start_time() const;
  [[nodiscard]] SimTime end_time() const;
  [[nodiscard]] Duration span() const;

  // -- Retention. -----------------------------------------------------------

  /// Bound retained raw samples to `cap` (0 restores unbounded retention
  /// for future appends; already-dropped samples are gone).  When the cap
  /// is exceeded every other retained sample is dropped, doubling the
  /// keep-stride, so memory stays <= cap while the retained subsample
  /// remains uniformly spaced.  Aggregates are unaffected; raw-sample
  /// queries (`slice`, `mean_over`, `values`, exports) see the decimated
  /// subsample.
  void set_max_raw_samples(std::size_t cap);
  [[nodiscard]] std::size_t max_raw_samples() const { return max_raw_; }
  /// True once decimation has dropped at least one sample.
  [[nodiscard]] bool decimated() const { return keep_stride_ > 1; }
  /// Current keep-stride: every `keep_stride()`-th appended sample is
  /// retained (1 = everything).
  [[nodiscard]] std::size_t keep_stride() const { return keep_stride_; }

  // -- Windowed queries: O(log n + k) over retained samples. ----------------

  /// Half-open index range [first, last) of retained samples with
  /// start <= time < end (binary search).
  [[nodiscard]] std::pair<std::size_t, std::size_t> window_bounds(
      SimTime start, SimTime end) const;

  /// Values only, in time order.
  [[nodiscard]] std::vector<double> values() const;

  /// Sub-series with start <= t < end.
  [[nodiscard]] TimeSeries slice(SimTime start, SimTime end) const;

  /// Arithmetic mean of sample values in [start, end); throws if empty.
  [[nodiscard]] double mean_over(SimTime start, SimTime end) const;
  /// Full summary statistics of all retained sample values.
  [[nodiscard]] Summary summary() const;

  /// Piecewise-linear interpolation at `t`; clamps outside the range.
  /// Throws on an empty series.
  [[nodiscard]] double value_at(SimTime t) const;

  /// Resample to a fixed interval by bucket-averaging; buckets with no
  /// samples take the interpolated value at the bucket centre.
  [[nodiscard]] TimeSeries resample(Duration interval) const;

  /// Element-wise transform into a new series (same timestamps).
  [[nodiscard]] TimeSeries map(
      const std::function<double(double)>& f) const;

  /// Sum of two series sampled at identical timestamps.
  [[nodiscard]] static TimeSeries sum(const TimeSeries& a,
                                      const TimeSeries& b);

 private:
  void enforce_retention();

  std::string unit_;
  std::vector<Sample> samples_;

  // Online accumulators (exact over every appended sample).
  std::size_t total_appended_ = 0;
  CompensatedSum sum_;
  CompensatedSum integral_;
  double min_ = 0.0;
  double max_ = 0.0;
  SimTime first_time_{};
  // The last *appended* sample (may be newer than samples_.back() under
  // decimation); the trapezoid increment integrates against it.
  SimTime last_time_{};
  double last_value_ = 0.0;

  // Retention state.
  std::size_t max_raw_ = 0;      ///< 0 = unbounded
  std::size_t keep_stride_ = 1;  ///< retain appends with index % stride == 0
};

}  // namespace hpcem
