#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace hpcem {

void TimeSeries::append(SimTime time, double value) {
  if (!samples_.empty()) {
    require(time >= samples_.back().time,
            "TimeSeries::append: samples must be time-ordered");
  }
  samples_.push_back({time, value});
}

SimTime TimeSeries::start_time() const {
  require_state(!samples_.empty(), "TimeSeries::start_time: empty series");
  return samples_.front().time;
}

SimTime TimeSeries::end_time() const {
  require_state(!samples_.empty(), "TimeSeries::end_time: empty series");
  return samples_.back().time;
}

Duration TimeSeries::span() const { return end_time() - start_time(); }

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

TimeSeries TimeSeries::slice(SimTime start, SimTime end) const {
  TimeSeries out(unit_);
  for (const auto& s : samples_) {
    if (s.time >= start && s.time < end) out.append(s.time, s.value);
  }
  return out;
}

double TimeSeries::mean_over(SimTime start, SimTime end) const {
  RunningStats rs;
  for (const auto& s : samples_) {
    if (s.time >= start && s.time < end) rs.add(s.value);
  }
  require_state(!rs.empty(), "TimeSeries::mean_over: no samples in window");
  return rs.mean();
}

double TimeSeries::mean() const {
  require_state(!samples_.empty(), "TimeSeries::mean: empty series");
  RunningStats rs;
  for (const auto& s : samples_) rs.add(s.value);
  return rs.mean();
}

Summary TimeSeries::summary() const {
  const auto vals = values();
  return summarize(vals);
}

double TimeSeries::integrate() const {
  if (samples_.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double dt = (samples_[i].time - samples_[i - 1].time).sec();
    total += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  return total;
}

double TimeSeries::value_at(SimTime t) const {
  require_state(!samples_.empty(), "TimeSeries::value_at: empty series");
  if (t <= samples_.front().time) return samples_.front().value;
  if (t >= samples_.back().time) return samples_.back().value;
  // Binary search for the first sample at or after t.
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, SimTime when) { return s.time < when; });
  if (it->time == t) return it->value;
  const auto prev = it - 1;
  const double dt = (it->time - prev->time).sec();
  if (dt <= 0.0) return it->value;
  const double frac = (t - prev->time).sec() / dt;
  return prev->value + frac * (it->value - prev->value);
}

TimeSeries TimeSeries::resample(Duration interval) const {
  require(interval.sec() > 0.0, "TimeSeries::resample: interval must be > 0");
  TimeSeries out(unit_);
  if (samples_.empty()) return out;
  const SimTime t0 = start_time();
  const SimTime t1 = end_time();
  std::size_t idx = 0;
  for (SimTime bucket = t0; bucket <= t1; bucket += interval) {
    const SimTime bucket_end = bucket + interval;
    RunningStats rs;
    while (idx < samples_.size() && samples_[idx].time < bucket_end) {
      rs.add(samples_[idx].value);
      ++idx;
    }
    const SimTime centre = bucket + interval / 2.0;
    out.append(centre, rs.empty() ? value_at(centre) : rs.mean());
  }
  return out;
}

TimeSeries TimeSeries::map(const std::function<double(double)>& f) const {
  TimeSeries out(unit_);
  for (const auto& s : samples_) out.append(s.time, f(s.value));
  return out;
}

TimeSeries TimeSeries::sum(const TimeSeries& a, const TimeSeries& b) {
  require(a.size() == b.size(), "TimeSeries::sum: size mismatch");
  TimeSeries out(a.unit());
  for (std::size_t i = 0; i < a.size(); ++i) {
    require(a[i].time == b[i].time, "TimeSeries::sum: timestamp mismatch");
    out.append(a[i].time, a[i].value + b[i].value);
  }
  return out;
}

}  // namespace hpcem
