#include "telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace hpcem {

void TimeSeries::set_max_raw_samples(std::size_t cap) {
  require(cap == 0 || cap >= 2,
          "TimeSeries::set_max_raw_samples: cap must be 0 (unbounded) or "
          ">= 2");
  max_raw_ = cap;
  enforce_retention();
}

void TimeSeries::enforce_retention() {
  while (max_raw_ != 0 && samples_.size() > max_raw_) {
    static const obs::Counter decimations("telemetry.decimation.events",
                                          "events");
    static const obs::Counter dropped("telemetry.decimation.dropped_samples",
                                      "samples");
    const std::size_t before = samples_.size();
    // Keep even positions: the retained set stays a uniform subsample of
    // the appended stream (indices that are multiples of the new stride).
    for (std::size_t i = 0; 2 * i < samples_.size(); ++i) {
      samples_[i] = samples_[2 * i];
    }
    samples_.resize((samples_.size() + 1) / 2);
    keep_stride_ *= 2;
    decimations.add();
    dropped.add(before - samples_.size());
  }
}

double TimeSeries::value_min() const {
  require_state(total_appended_ > 0, "TimeSeries::value_min: empty series");
  return min_;
}

double TimeSeries::value_max() const {
  require_state(total_appended_ > 0, "TimeSeries::value_max: empty series");
  return max_;
}

SimTime TimeSeries::start_time() const {
  require_state(total_appended_ > 0, "TimeSeries::start_time: empty series");
  return first_time_;
}

SimTime TimeSeries::end_time() const {
  require_state(total_appended_ > 0, "TimeSeries::end_time: empty series");
  return last_time_;
}

Duration TimeSeries::span() const { return end_time() - start_time(); }

std::pair<std::size_t, std::size_t> TimeSeries::window_bounds(
    SimTime start, SimTime end) const {
  const auto time_less = [](const Sample& s, SimTime when) {
    return s.time < when;
  };
  const auto first = std::lower_bound(samples_.begin(), samples_.end(),
                                      start, time_less);
  const auto last =
      std::lower_bound(first, samples_.end(), end, time_less);
  return {static_cast<std::size_t>(first - samples_.begin()),
          static_cast<std::size_t>(last - samples_.begin())};
}

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

TimeSeries TimeSeries::slice(SimTime start, SimTime end) const {
  TimeSeries out(unit_);
  const auto [first, last] = window_bounds(start, end);
  for (std::size_t i = first; i < last; ++i) {
    out.append(samples_[i].time, samples_[i].value);
  }
  return out;
}

double TimeSeries::mean_over(SimTime start, SimTime end) const {
  const auto [first, last] = window_bounds(start, end);
  RunningStats rs;
  for (std::size_t i = first; i < last; ++i) rs.add(samples_[i].value);
  require_state(!rs.empty(), "TimeSeries::mean_over: no samples in window");
  return rs.mean();
}

double TimeSeries::mean() const {
  require_state(total_appended_ > 0, "TimeSeries::mean: empty series");
  return sum_.value() / static_cast<double>(total_appended_);
}

Summary TimeSeries::summary() const {
  const auto vals = values();
  return summarize(vals);
}

double TimeSeries::value_at(SimTime t) const {
  require_state(!samples_.empty(), "TimeSeries::value_at: empty series");
  if (t <= samples_.front().time) return samples_.front().value;
  if (t >= samples_.back().time) return samples_.back().value;
  // Binary search for the first sample at or after t.
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, SimTime when) { return s.time < when; });
  if (it->time == t) return it->value;
  const auto prev = it - 1;
  const double dt = (it->time - prev->time).sec();
  if (dt <= 0.0) return it->value;
  const double frac = (t - prev->time).sec() / dt;
  return prev->value + frac * (it->value - prev->value);
}

TimeSeries TimeSeries::resample(Duration interval) const {
  require(interval.sec() > 0.0, "TimeSeries::resample: interval must be > 0");
  TimeSeries out(unit_);
  if (samples_.empty()) return out;
  const SimTime t0 = samples_.front().time;
  const SimTime t1 = samples_.back().time;
  std::size_t idx = 0;
  for (SimTime bucket = t0; bucket <= t1; bucket += interval) {
    const SimTime bucket_end = bucket + interval;
    RunningStats rs;
    while (idx < samples_.size() && samples_[idx].time < bucket_end) {
      rs.add(samples_[idx].value);
      ++idx;
    }
    const SimTime centre = bucket + interval / 2.0;
    out.append(centre, rs.empty() ? value_at(centre) : rs.mean());
  }
  return out;
}

TimeSeries TimeSeries::map(const std::function<double(double)>& f) const {
  TimeSeries out(unit_);
  for (const auto& s : samples_) out.append(s.time, f(s.value));
  return out;
}

TimeSeries TimeSeries::sum(const TimeSeries& a, const TimeSeries& b) {
  require(a.size() == b.size(), "TimeSeries::sum: size mismatch");
  TimeSeries out(a.unit());
  for (std::size_t i = 0; i < a.size(); ++i) {
    require(a[i].time == b[i].time, "TimeSeries::sum: timestamp mismatch");
    out.append(a[i].time, a[i].value + b[i].value);
  }
  return out;
}

}  // namespace hpcem
