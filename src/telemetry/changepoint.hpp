// Step-change detection for power telemetry.
//
// The paper's Figures 2 and 3 show the cabinet power series stepping down
// when an operational change rolls out.  The analysis layer recovers the
// change point and the before/after means directly from the series, which
// is how a facility operator would verify a deployment took effect.
//
// Two detectors are provided:
//  * `detect_single_step` — exact least-squares segmentation for one step
//    (scan all split points, minimise total squared error), with a
//    minimum-segment-length guard.
//  * `detect_steps` — binary segmentation for multiple steps with a BIC-like
//    penalty to stop splitting noise.
//  * `Cusum` — online cumulative-sum drift detector for streaming use.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace hpcem {

/// A detected mean shift at `index` (first sample of the new regime).
struct StepChange {
  std::size_t index = 0;
  double mean_before = 0.0;
  double mean_after = 0.0;
  /// Reduction in squared error relative to the no-split model (>= 0).
  double gain = 0.0;

  [[nodiscard]] double delta() const { return mean_after - mean_before; }
};

/// Exact single-step segmentation.  Returns nullopt when no split with at
/// least `min_segment` samples either side improves on the constant model.
[[nodiscard]] std::optional<StepChange> detect_single_step(
    std::span<const double> xs, std::size_t min_segment = 8);

/// Binary segmentation for multiple steps.  `penalty` is the minimum
/// per-split gain expressed as a multiple of the series variance times
/// log(n) (BIC-flavoured); larger values yield fewer change points.
[[nodiscard]] std::vector<StepChange> detect_steps(
    std::span<const double> xs, std::size_t min_segment = 8,
    double penalty = 3.0);

/// Convenience overloads running on a TimeSeries and reporting times.
struct TimedStepChange {
  SimTime time;
  double mean_before = 0.0;
  double mean_after = 0.0;
};
[[nodiscard]] std::optional<TimedStepChange> detect_single_step(
    const TimeSeries& ts, std::size_t min_segment = 8);

/// Two-sided CUSUM detector for online drift detection.
class Cusum {
 public:
  /// `target`: reference level; `slack`: allowed drift before accumulation
  /// (in value units); `threshold`: alarm level for the accumulated sum.
  Cusum(double target, double slack, double threshold);

  /// Feed one observation; returns true if an alarm fired (and resets).
  bool add(double x);

  [[nodiscard]] double positive_sum() const { return pos_; }
  [[nodiscard]] double negative_sum() const { return neg_; }
  [[nodiscard]] std::size_t alarm_count() const { return alarms_; }

  /// Re-centre on a new target (e.g. after an expected operational change).
  void retarget(double target);

 private:
  double target_;
  double slack_;
  double threshold_;
  double pos_ = 0.0;
  double neg_ = 0.0;
  std::size_t alarms_ = 0;
};

}  // namespace hpcem
