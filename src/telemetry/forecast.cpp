#include "telemetry/forecast.hpp"

#include <cmath>

#include "util/error.hpp"

namespace hpcem {

PowerForecaster::PowerForecaster(const TimeSeries& history,
                                 double level_alpha) {
  weekly_ = decompose_weekly(history);  // validates >= 2 weeks
  Ewma level(level_alpha);
  for (const auto& s : history.samples()) {
    level.add(s.value - weekly_.profile_at(s.time));
  }
  level_ = level.value();
}

double PowerForecaster::forecast(SimTime t) const {
  return weekly_.profile_at(t) + level_;
}

TimeSeries PowerForecaster::forecast_series(SimTime start, SimTime end,
                                            Duration step) const {
  require(end > start, "forecast_series: end must follow start");
  require(step.sec() > 0.0, "forecast_series: step must be positive");
  TimeSeries out("kW");
  for (SimTime t = start; t < end; t += step) {
    out.append(t, forecast(t));
  }
  return out;
}

double PowerForecaster::mean_absolute_error(const TimeSeries& actual) const {
  require(!actual.empty(), "mean_absolute_error: empty actuals");
  double sum = 0.0;
  for (const auto& s : actual.samples()) {
    sum += std::fabs(s.value - forecast(s.time));
  }
  return sum / static_cast<double>(actual.size());
}

}  // namespace hpcem
