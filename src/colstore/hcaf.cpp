#include "colstore/hcaf.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "colstore/bytes.hpp"
#include "colstore/format.hpp"
#include "obs/metrics_export.hpp"
#include "util/error.hpp"

namespace hpcem::colstore {

namespace {

/// Extent of one column block in the file, for the directory and the
/// whole-file overlap check.
struct BlockRef {
  std::uint64_t offset = 0;  ///< absolute byte offset of the first f64
  std::uint64_t count = 0;   ///< number of f64 elements
};

struct ChannelBlocks {
  BlockRef times, values, prefix_value_sum, prefix_integral;
};

void write_block_ref(ByteWriter& dir, const BlockRef& ref) {
  dir.u64(ref.offset);
  dir.u64(ref.count);
}

[[nodiscard]] std::string scenario_path(std::size_t i) {
  return "$.scenarios[" + std::to_string(i) + "]";
}

[[nodiscard]] std::string channel_path(std::size_t i, std::size_t j) {
  return scenario_path(i) + ".channels[" + std::to_string(j) + "]";
}

}  // namespace

std::string write_shard_bytes(const std::vector<RunArtifact>& artifacts) {
  ByteWriter out;
  for (const std::uint8_t b : kMagic) out.u8(b);
  out.u32(static_cast<std::uint32_t>(kFormatVersion));
  out.u64(0);  // flags: none defined in v1

  // Block region: columnise every series-bearing channel and append its
  // four columns, recording the extents for the directory.  Columnisation
  // runs the same build_columns the JSON ingest path uses, so the stored
  // prefix sums are the exact doubles a JSON-backed store would compute.
  std::vector<std::vector<ChannelBlocks>> blocks(artifacts.size());
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    blocks[i].resize(artifacts[i].channels.size());
    for (std::size_t j = 0; j < artifacts[i].channels.size(); ++j) {
      const ChannelAggregate& c = artifacts[i].channels[j];
      if (c.series.empty()) continue;
      const ChannelColumns cols = build_columns(c.series);
      const auto append = [&out](const std::vector<double>& col) {
        BlockRef ref{out.size(), col.size()};
        out.f64_block(col);
        return ref;
      };
      ChannelBlocks& b = blocks[i][j];
      b.times = append(cols.times);
      b.values = append(cols.values);
      b.prefix_value_sum = append(cols.prefix_value_sum);
      b.prefix_integral = append(cols.prefix_integral);
    }
  }

  // Directory.
  ByteWriter dir;
  dir.u32(static_cast<std::uint32_t>(artifacts.size()));
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    const RunArtifact& a = artifacts[i];
    dir.str(a.scenario);
    dir.str(a.source);
    dir.str(a.machine);
    dir.f64(a.window_start.sec());
    dir.f64(a.window_end.sec());
    dir.u64(a.replicates);
    dir.f64(a.headline.mean_kw);
    dir.f64(a.headline.mean_before_kw);
    dir.f64(a.headline.mean_after_kw);
    dir.f64(a.headline.mean_utilisation);
    dir.f64(a.headline.window_energy_kwh);
    dir.f64(a.headline.completed_jobs);
    dir.u32(static_cast<std::uint32_t>(a.change_points.size()));
    for (const ArtifactChangePoint& cp : a.change_points) {
      dir.f64(cp.at.sec());
      dir.f64(cp.mean_before_kw);
      dir.f64(cp.mean_after_kw);
      dir.u8(cp.detected ? 1 : 0);
    }
    dir.str(a.obs.is_null() ? std::string() : a.obs.dump(0));
    dir.u32(static_cast<std::uint32_t>(a.channels.size()));
    for (std::size_t j = 0; j < a.channels.size(); ++j) {
      const ChannelAggregate& c = a.channels[j];
      dir.str(c.name);
      dir.str(c.unit);
      dir.u64(c.samples);
      dir.f64(c.mean);
      dir.f64(c.min);
      dir.f64(c.max);
      dir.f64(c.integral);
      dir.f64(c.first_time.sec());
      dir.f64(c.last_time.sec());
      dir.u8(c.series.empty() ? 0 : 1);
      if (!c.series.empty()) {
        const ChannelBlocks& b = blocks[i][j];
        write_block_ref(dir, b.times);
        write_block_ref(dir, b.values);
        write_block_ref(dir, b.prefix_value_sum);
        write_block_ref(dir, b.prefix_integral);
      }
    }
  }

  const std::uint64_t dir_offset = out.size();
  const std::uint64_t dir_checksum = fnv1a64(dir.bytes());
  const std::uint64_t dir_length = dir.size();

  // Footer: the directory is footer-indexed so the block region needs no
  // self-description and the whole file streams out in one pass.
  ByteWriter footer;
  footer.u64(dir_offset);
  footer.u64(dir_length);
  footer.u64(dir_checksum);
  footer.u32(static_cast<std::uint32_t>(kFormatVersion));
  for (const std::uint8_t b : kFooterMagic) footer.u8(b);

  std::string bytes = out.take();
  bytes += dir.bytes();
  bytes += footer.bytes();
  return bytes;
}

void write_shard_file(const std::vector<RunArtifact>& artifacts,
                      const std::string& path) {
  const std::string bytes = write_shard_bytes(artifacts);
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  outf << bytes;
  if (!outf) throw ParseError("hcaf: cannot write " + path);
}

std::vector<ShardScenario> read_shard_bytes(std::string_view bytes,
                                            const std::string& label) {
  const auto fail = [&label](const std::string& what, const std::string& why)
      -> void {
    throw ParseError("hcaf: " + label + ": " + what + ": " + why);
  };

  if (bytes.size() < kHeaderSize + kFooterSize) {
    fail("$", "truncated: " + std::to_string(bytes.size()) +
                  " bytes is smaller than the fixed header (" +
                  std::to_string(kHeaderSize) + ") + footer (" +
                  std::to_string(kFooterSize) + ")");
  }

  // Header.
  ByteReader head(bytes, label);
  for (const std::uint8_t b : kMagic) {
    if (head.u8("$.magic") != b) {
      fail("$.magic", "not an HCAF shard (bad magic)");
    }
  }
  const std::uint32_t version = head.u32("$.version");
  if (version < 1 || version > static_cast<std::uint32_t>(kFormatVersion)) {
    fail("$.version", "unsupported HCAF format version " +
                          std::to_string(version) + " (this build reads 1.." +
                          std::to_string(kFormatVersion) + ")");
  }
  if (head.u64("$.flags") != 0) {
    fail("$.flags", "unknown flags set (v1 defines none)");
  }

  // Footer.
  ByteReader foot(bytes, label);
  foot.seek(bytes.size() - kFooterSize, "$.footer");
  const std::uint64_t dir_offset = foot.u64("$.footer.directory_offset");
  const std::uint64_t dir_length = foot.u64("$.footer.directory_length");
  const std::uint64_t dir_checksum = foot.u64("$.footer.checksum");
  const std::uint32_t foot_version = foot.u32("$.footer.version");
  for (const std::uint8_t b : kFooterMagic) {
    if (foot.u8("$.footer.magic") != b) {
      fail("$.footer.magic", "bad footer magic (truncated or corrupt shard)");
    }
  }
  if (foot_version != version) {
    fail("$.footer.version",
         "footer version " + std::to_string(foot_version) +
             " does not match header version " + std::to_string(version));
  }

  const std::uint64_t data_end = bytes.size() - kFooterSize;
  if (dir_offset < kHeaderSize || dir_offset > data_end ||
      dir_length > data_end - dir_offset ||
      dir_offset + dir_length != data_end) {
    fail("$.directory", "directory extent [" + std::to_string(dir_offset) +
                            ", +" + std::to_string(dir_length) +
                            ") does not span header end to footer start");
  }
  if (fnv1a64(bytes.substr(dir_offset, dir_length)) != dir_checksum) {
    fail("$.directory", "checksum mismatch (corrupt directory)");
  }

  // Directory.  Every block extent must land inside the block region
  // [header end, directory start), 8-byte aligned, and no two blocks may
  // overlap — a directory that aliases two columns onto one extent is
  // corrupt even though each individual read would be in bounds.
  ByteReader dir(bytes.substr(dir_offset, dir_length), label);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> extents;
  const auto read_block_ref = [&](const std::string& what) {
    BlockRef ref;
    ref.offset = dir.u64(what + ".offset");
    ref.count = dir.u64(what + ".count");
    if (ref.offset < kHeaderSize || ref.offset % kBlockAlignment != 0 ||
        ref.offset > dir_offset ||
        ref.count > (dir_offset - ref.offset) / sizeof(double)) {
      fail(what, "column block [" + std::to_string(ref.offset) + ", +" +
                     std::to_string(ref.count) +
                     " f64) is misaligned or outside the block region [" +
                     std::to_string(kHeaderSize) + ", " +
                     std::to_string(dir_offset) + ")");
    }
    if (ref.count > 0) {
      extents.emplace_back(ref.offset, ref.count * sizeof(double));
    }
    return ref;
  };

  std::vector<ShardScenario> scenarios;
  std::set<std::string> seen_names;
  const std::uint32_t scenario_count = dir.u32("$.scenarios");
  for (std::size_t i = 0; i < scenario_count; ++i) {
    const std::string sp = scenario_path(i);
    ShardScenario s;
    s.name = dir.str(sp + ".scenario");
    s.source = dir.str(sp + ".source");
    s.machine = dir.str(sp + ".machine");
    s.window_start = SimTime(dir.f64(sp + ".window_start"));
    s.window_end = SimTime(dir.f64(sp + ".window_end"));
    s.replicates = dir.u64(sp + ".replicates");
    s.headline.mean_kw = dir.f64(sp + ".headline.mean_kw");
    s.headline.mean_before_kw = dir.f64(sp + ".headline.mean_before_kw");
    s.headline.mean_after_kw = dir.f64(sp + ".headline.mean_after_kw");
    s.headline.mean_utilisation = dir.f64(sp + ".headline.mean_utilisation");
    s.headline.window_energy_kwh =
        dir.f64(sp + ".headline.window_energy_kwh");
    s.headline.completed_jobs = dir.f64(sp + ".headline.completed_jobs");
    if (!seen_names.insert(s.name).second) {
      fail(sp + ".scenario", "duplicate scenario id '" + s.name + "'");
    }

    const std::uint32_t cp_count = dir.u32(sp + ".change_points");
    for (std::size_t k = 0; k < cp_count; ++k) {
      const std::string cpp = sp + ".change_points[" + std::to_string(k) + "]";
      ArtifactChangePoint cp;
      cp.at = SimTime(dir.f64(cpp + ".at"));
      cp.mean_before_kw = dir.f64(cpp + ".mean_before_kw");
      cp.mean_after_kw = dir.f64(cpp + ".mean_after_kw");
      const std::uint8_t detected = dir.u8(cpp + ".detected");
      if (detected > 1) {
        fail(cpp + ".detected", "boolean byte must be 0 or 1, got " +
                                    std::to_string(detected));
      }
      cp.detected = detected == 1;
      s.change_points.push_back(cp);
    }

    s.obs_json = dir.str(sp + ".obs");

    const std::uint32_t channel_count = dir.u32(sp + ".channels");
    for (std::size_t j = 0; j < channel_count; ++j) {
      const std::string cp = channel_path(i, j);
      ShardChannel ch;
      ch.aggregate.name = dir.str(cp + ".name");
      ch.aggregate.unit = dir.str(cp + ".unit");
      ch.aggregate.samples = dir.u64(cp + ".samples");
      ch.aggregate.mean = dir.f64(cp + ".mean");
      ch.aggregate.min = dir.f64(cp + ".min");
      ch.aggregate.max = dir.f64(cp + ".max");
      ch.aggregate.integral = dir.f64(cp + ".integral");
      ch.aggregate.first_time = SimTime(dir.f64(cp + ".first_time"));
      ch.aggregate.last_time = SimTime(dir.f64(cp + ".last_time"));
      const std::uint8_t has_series = dir.u8(cp + ".has_series");
      if (has_series > 1) {
        fail(cp + ".has_series", "boolean byte must be 0 or 1, got " +
                                     std::to_string(has_series));
      }
      if (has_series == 1) {
        const BlockRef times = read_block_ref(cp + ".times");
        const BlockRef values = read_block_ref(cp + ".values");
        const BlockRef psum = read_block_ref(cp + ".prefix_value_sum");
        const BlockRef pint = read_block_ref(cp + ".prefix_integral");
        if (times.count == 0 || times.count != values.count ||
            psum.count != values.count + 1 ||
            pint.count != values.count + 1) {
          fail(cp, "column counts disagree: times " +
                       std::to_string(times.count) + ", values " +
                       std::to_string(values.count) + ", prefix sums " +
                       std::to_string(psum.count) + "/" +
                       std::to_string(pint.count) +
                       " (prefixes must be values + 1)");
        }
        ByteReader::f64_block(bytes, label, times.offset, times.count,
                              ch.columns.times, cp + ".times");
        ByteReader::f64_block(bytes, label, values.offset, values.count,
                              ch.columns.values, cp + ".values");
        ByteReader::f64_block(bytes, label, psum.offset, psum.count,
                              ch.columns.prefix_value_sum,
                              cp + ".prefix_value_sum");
        ByteReader::f64_block(bytes, label, pint.offset, pint.count,
                              ch.columns.prefix_integral,
                              cp + ".prefix_integral");
        for (std::size_t k = 1; k < ch.columns.times.size(); ++k) {
          if (ch.columns.times[k] < ch.columns.times[k - 1]) {
            fail(cp + ".times", "series times must be non-decreasing");
          }
        }
      }
      s.channels.push_back(std::move(ch));
    }
    scenarios.push_back(std::move(s));
  }
  if (dir.remaining() != 0) {
    fail("$.directory", std::to_string(dir.remaining()) +
                            " trailing bytes after the last scenario");
  }

  std::sort(extents.begin(), extents.end());
  for (std::size_t k = 1; k < extents.size(); ++k) {
    const auto& [prev_off, prev_len] = extents[k - 1];
    const auto& [off, len] = extents[k];
    if (off < prev_off + prev_len) {
      fail("$.blocks", "overlapping column-block extents [" +
                           std::to_string(prev_off) + ", +" +
                           std::to_string(prev_len) + ") and [" +
                           std::to_string(off) + ", +" + std::to_string(len) +
                           ")");
    }
  }
  return scenarios;
}

std::vector<ShardScenario> read_shard_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("hcaf: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_shard_bytes(buf.str(), path);
}

RunArtifact to_artifact(const ShardScenario& s) {
  RunArtifact a;
  a.scenario = s.name;
  a.source = s.source;
  a.machine = s.machine;
  a.window_start = s.window_start;
  a.window_end = s.window_end;
  a.replicates = s.replicates;
  a.headline = s.headline;
  a.change_points = s.change_points;
  if (!s.obs_json.empty()) {
    // Same validation as RunArtifact::from_json: carry only a well-formed
    // obs-metrics document.
    const JsonValue obs = JsonValue::parse(s.obs_json);
    (void)obs::metrics_from_json(obs);
    a.obs = obs;
  }
  a.channels.reserve(s.channels.size());
  for (const ShardChannel& ch : s.channels) {
    ChannelAggregate c = ch.aggregate;
    c.series.reserve(ch.columns.times.size());
    for (std::size_t i = 0; i < ch.columns.times.size(); ++i) {
      c.series.push_back({SimTime(ch.columns.times[i]), ch.columns.values[i]});
    }
    a.channels.push_back(std::move(c));
  }
  return a;
}

std::vector<RunArtifact> read_artifacts_file(const std::string& path) {
  const std::vector<ShardScenario> scenarios = read_shard_file(path);
  std::vector<RunArtifact> artifacts;
  artifacts.reserve(scenarios.size());
  for (const ShardScenario& s : scenarios) {
    artifacts.push_back(to_artifact(s));
  }
  return artifacts;
}

}  // namespace hpcem::colstore
