// Consistent-hash shard assignment and the compaction manifest.
//
// The compactor (tools/hpcem_compact) and the serving tier
// (serve::MultiStore) must agree on which shard owns a scenario id, or a
// compacted deployment would answer "unknown scenario" for data it holds.
// Both sides therefore build the SAME `HashRing` from nothing but the
// shard count: vnode points are FNV-1a hashes of "shard-<i>#<v>" and a
// scenario routes to the successor point clockwise from its own hash.
// The ring is deterministic — no RNG, no host state — so any process that
// knows the shard count reproduces the assignment exactly.
//
// `ShardManifest` is the compactor's JSON receipt: shard count, vnode
// count, per-shard file names with scenario lists and checksums.  The
// serve tier can load a shard directory with or without it (the manifest
// is documentation and a verification aid, not a routing dependency).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace hpcem::colstore {

/// Deterministic consistent-hash ring over `shard_count` shards.
class HashRing {
 public:
  /// Default vnodes per shard: enough to keep the spread of scenarios per
  /// shard tight at small shard counts without bloating the point list.
  static constexpr std::size_t kDefaultVnodes = 64;

  /// Build the ring.  Throws InvalidArgument for a zero shard or vnode
  /// count.
  explicit HashRing(std::size_t shard_count,
                    std::size_t vnodes_per_shard = kDefaultVnodes);

  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  [[nodiscard]] std::size_t vnodes_per_shard() const { return vnodes_; }

  /// The shard owning `scenario_id`: the shard of the first ring point at
  /// or clockwise after fnv1a64(scenario_id), wrapping at the top.
  [[nodiscard]] std::size_t shard_of(std::string_view scenario_id) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;
  };

  std::size_t shard_count_;
  std::size_t vnodes_;
  std::vector<Point> points_;  ///< sorted by hash (ties by shard index)
};

/// One shard's entry in the compaction manifest.
struct ManifestShard {
  std::string file;  ///< file name relative to the manifest's directory
  /// Scenario ids in this shard, in the shard file's order.
  std::vector<std::string> scenarios;
  std::uint64_t bytes = 0;
  /// FNV-1a 64 of the whole shard file, hex without prefix.
  std::string checksum_fnv1a64;
};

/// JSON receipt written next to the shard files by `hpcem_compact`.
struct ShardManifest {
  static constexpr std::string_view kSchema = "hpcem.hcaf_manifest.v1";

  int format_version = 0;  ///< HCAF format version of the shard files
  std::size_t shard_count = 0;
  std::size_t vnodes_per_shard = 0;
  std::vector<ManifestShard> shards;

  [[nodiscard]] JsonValue to_json() const;
  [[nodiscard]] std::string to_json_text() const;
  [[nodiscard]] static ShardManifest from_json(const JsonValue& v);
  [[nodiscard]] static ShardManifest from_json_text(std::string_view text);
};

/// Write `manifest.json` under `dir`; returns the path.  Throws ParseError
/// on I/O failure.
std::string write_manifest(const ShardManifest& manifest,
                           const std::string& dir);
/// Read and validate a manifest file.
[[nodiscard]] ShardManifest read_manifest_file(const std::string& path);

}  // namespace hpcem::colstore
