// HCAF — the hpcem columnar artifact format: on-disk layout constants.
//
// An HCAF shard file holds one or more run artifacts in a binary columnar
// layout that `serve::ArtifactStore` can load near-instantly: the column
// blocks (times, values, and the Neumaier-compensated prefix sums the
// windowed-aggregate queries need) are stored ready to use, so ingest is
// a bounds-checked copy instead of a JSON parse plus a prefix-sum pass.
//
// Byte-level layout (all integers and floats little-endian; see
// docs/ARTIFACT_BINARY.md for the full specification):
//
//   header   16 bytes   "HCAF" magic, u32 format version, u64 flags (0)
//   blocks   8-aligned  raw f64 column blocks, back to back
//   directory            ByteWriter-serialized metadata: per-scenario
//                        identity, headline, change points, obs JSON, and
//                        per-channel aggregates plus (offset, count)
//                        references into the block region
//   footer   32 bytes   u64 directory offset, u64 directory length,
//                        u64 FNV-1a checksum of the directory bytes,
//                        u32 format version (must match the header),
//                        "FACH" magic
//
// Versioning: the HCAF format version moves independently of the JSON
// run-artifact schema (currently v3).  HCAF v1 carries exactly the
// information of a schema-v3 JSON artifact — the reader reconstructs a
// `RunArtifact` that re-serializes byte-identically.  A reader rejects
// files whose version is newer than it understands; flags are reserved
// for forward-compatible extensions and must be zero in v1.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hpcem::colstore {

/// The HCAF format version this build reads and writes.
inline constexpr int kFormatVersion = 1;

/// Leading file magic: "HCAF".
inline constexpr std::uint8_t kMagic[4] = {'H', 'C', 'A', 'F'};
/// Trailing footer magic: "FACH" (the header magic mirrored, so a
/// truncated or concatenated file can never end in a valid footer by
/// accident).
inline constexpr std::uint8_t kFooterMagic[4] = {'F', 'A', 'C', 'H'};

/// Fixed header size: magic + u32 version + u64 flags.
inline constexpr std::size_t kHeaderSize = 16;
/// Fixed footer size: u64 offset + u64 length + u64 checksum +
/// u32 version + magic.
inline constexpr std::size_t kFooterSize = 32;

/// Column blocks are arrays of f64 and must start 8-byte aligned (the
/// header size keeps the first block aligned; the writer pads nothing
/// because every block is a whole number of 8-byte elements).
inline constexpr std::size_t kBlockAlignment = 8;

}  // namespace hpcem::colstore
