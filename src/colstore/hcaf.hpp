// HCAF shard writer and strict reader (see colstore/format.hpp for the
// byte layout and docs/ARTIFACT_BINARY.md for the specification).
//
// A shard carries N run artifacts.  The writer columnises every channel
// series once (colstore/columns.hpp — the same code the JSON ingest path
// runs) and embeds the prefix sums next to the raw columns, so a reader
// can hand the serving layer query-ready columns without recomputing
// anything.  The reader is strict: magic, version, flags, footer, the
// directory checksum, every directory field and every column-block extent
// are validated before any data is trusted, and every failure is a
// one-line `hcaf: <file>: $.path: ...` ParseError.
//
// Round-trip contract: `read_artifacts_*(write_shard_bytes(artifacts))`
// reconstructs `RunArtifact`s whose `to_json_text()` is byte-identical to
// the inputs' — HCAF v1 is exactly as expressive as JSON schema v3.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "colstore/columns.hpp"
#include "core/run_artifact.hpp"

namespace hpcem::colstore {

/// One channel as stored in a shard: the whole-run aggregate scalars plus
/// the ready-to-serve columns (empty for aggregate-only channels).
struct ShardChannel {
  /// Aggregate with `series` left empty — the raw samples live in
  /// `columns.times` / `columns.values`.
  ChannelAggregate aggregate;
  ChannelColumns columns;

  [[nodiscard]] bool has_series() const { return !columns.empty(); }
};

/// One artifact as stored in a shard (channel order preserved from the
/// source artifact, so the JSON round trip is exact).
struct ShardScenario {
  std::string name;
  std::string source;
  std::string machine;
  SimTime window_start{};
  SimTime window_end{};
  std::size_t replicates = 1;
  RunHeadline headline;
  std::vector<ArtifactChangePoint> change_points;
  /// The artifact's "obs" member as compact JSON text; empty == null.
  std::string obs_json;
  std::vector<ShardChannel> channels;
};

/// Serialize artifacts into one HCAF shard (deterministic: equal inputs
/// produce equal bytes; artifact order is preserved).
[[nodiscard]] std::string write_shard_bytes(
    const std::vector<RunArtifact>& artifacts);
/// Write a shard file.  Throws ParseError on I/O failure.
void write_shard_file(const std::vector<RunArtifact>& artifacts,
                      const std::string& path);

/// Parse and fully validate a shard.  `label` names the source in error
/// messages (callers pass the file path).
[[nodiscard]] std::vector<ShardScenario> read_shard_bytes(
    std::string_view bytes, const std::string& label);
/// Read and validate a shard file.  Throws ParseError on unreadable,
/// truncated, corrupt or over-versioned input.
[[nodiscard]] std::vector<ShardScenario> read_shard_file(
    const std::string& path);

/// Reconstruct the exact RunArtifact a shard scenario was written from.
[[nodiscard]] RunArtifact to_artifact(const ShardScenario& s);
/// read_shard_file + to_artifact for every scenario.
[[nodiscard]] std::vector<RunArtifact> read_artifacts_file(
    const std::string& path);

}  // namespace hpcem::colstore
