#include "colstore/columns.hpp"

#include "util/stats.hpp"

namespace hpcem::colstore {

ChannelColumns build_columns(const std::vector<Sample>& series) {
  ChannelColumns c;
  const std::size_t n = series.size();
  if (n == 0) return c;

  c.times.reserve(n);
  c.values.reserve(n);
  c.prefix_value_sum.reserve(n + 1);
  c.prefix_integral.reserve(n + 1);
  // Compensated prefix accumulators: windowed sums are differences of
  // prefixes, so per-element drift would surface directly in responses.
  CompensatedSum value_sum;
  CompensatedSum integral;
  c.prefix_value_sum.push_back(0.0);
  c.prefix_integral.push_back(0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const Sample& s = series[i];
    if (i > 0) {
      integral.add(0.5 * (s.value + c.values.back()) *
                   (s.time.sec() - c.times.back()));
    }
    c.times.push_back(s.time.sec());
    c.values.push_back(s.value);
    value_sum.add(s.value);
    c.prefix_value_sum.push_back(value_sum.value());
    c.prefix_integral.push_back(integral.value());
  }
  return c;
}

}  // namespace hpcem::colstore
