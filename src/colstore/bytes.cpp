#include "colstore/bytes.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"

namespace hpcem::colstore {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xffU));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.append(s);
}

void ByteWriter::f64_block(const std::vector<double>& values) {
  if constexpr (std::endian::native == std::endian::little) {
    // On a little-endian host the in-memory doubles already are the wire
    // bytes; append them in one go.  This memcpy lives inside the
    // sanctioned colstore codec (see binary-io-hygiene).
    const std::size_t at = out_.size();
    out_.resize(at + values.size() * sizeof(double));
    if (!values.empty()) {
      std::memcpy(out_.data() + at, values.data(),
                  values.size() * sizeof(double));
    }
  } else {
    for (const double v : values) f64(v);
  }
}

ByteReader::ByteReader(std::string_view data, std::string label)
    : data_(data), label_(std::move(label)) {}

void ByteReader::fail(std::string_view what, std::string_view why) const {
  throw ParseError("hcaf: " + label_ + ": " + std::string(what) + ": " +
                   std::string(why) + " (at byte " + std::to_string(pos_) +
                   " of " + std::to_string(data_.size()) + ")");
}

void ByteReader::need(std::size_t n, std::string_view what) const {
  if (n > data_.size() - pos_) {
    fail(what, "truncated: need " + std::to_string(n) + " more bytes, have " +
                   std::to_string(data_.size() - pos_));
  }
}

void ByteReader::seek(std::size_t pos, std::string_view what) {
  if (pos > data_.size()) {
    fail(what, "seek to byte " + std::to_string(pos) +
                   " is past the end of the buffer");
  }
  pos_ = pos;
}

std::uint8_t ByteReader::u8(std::string_view what) {
  need(1, what);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32(std::string_view what) {
  need(4, what);
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64(std::string_view what) {
  need(8, what);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double ByteReader::f64(std::string_view what) {
  return std::bit_cast<double>(u64(what));
}

std::string ByteReader::str(std::string_view what) {
  const std::uint32_t len = u32(what);
  need(len, what);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

void ByteReader::f64_block(std::string_view data, std::string_view label,
                           std::size_t offset, std::size_t count,
                           std::vector<double>& out, std::string_view what) {
  // All arithmetic on the unsigned extent is checked before any access:
  // count * 8 cannot wrap (count was validated against the block region by
  // the caller, but re-check here so this accessor is safe on its own).
  const std::size_t max_count = data.size() / sizeof(double);
  if (count > max_count || offset > data.size() ||
      count * sizeof(double) > data.size() - offset) {
    throw ParseError("hcaf: " + std::string(label) + ": " +
                     std::string(what) + ": column block [" +
                     std::to_string(offset) + ", +" + std::to_string(count) +
                     " f64) exceeds the file (" + std::to_string(data.size()) +
                     " bytes)");
  }
  out.resize(count);
  if (count == 0) return;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data.data() + offset, count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t v = 0;
      for (int b = 0; b < 8; ++b) {
        v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                 data[offset + i * 8 + static_cast<std::size_t>(b)]))
             << (8 * b);
      }
      out[i] = std::bit_cast<double>(v);
    }
  }
}

}  // namespace hpcem::colstore
