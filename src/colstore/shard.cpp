#include "colstore/shard.hpp"

#include <algorithm>
#include <fstream>

#include "colstore/bytes.hpp"
#include "colstore/format.hpp"
#include "util/error.hpp"

namespace hpcem::colstore {

HashRing::HashRing(std::size_t shard_count, std::size_t vnodes_per_shard)
    : shard_count_(shard_count), vnodes_(vnodes_per_shard) {
  require(shard_count > 0, "HashRing: shard count must be positive");
  require(vnodes_per_shard > 0, "HashRing: vnode count must be positive");
  points_.reserve(shard_count * vnodes_per_shard);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    for (std::size_t v = 0; v < vnodes_per_shard; ++v) {
      const std::string key =
          "shard-" + std::to_string(shard) + "#" + std::to_string(v);
      points_.push_back(
          {fnv1a64(key), static_cast<std::uint32_t>(shard)});
    }
  }
  // Sort by hash; break (astronomically unlikely) hash ties by shard index
  // so the assignment stays deterministic even then.
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
  });
}

std::size_t HashRing::shard_of(std::string_view scenario_id) const {
  const std::uint64_t h = fnv1a64(scenario_id);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t hash) { return p.hash < hash; });
  // Wrap: a hash past the last point lands on the first (the ring is
  // circular).
  return it == points_.end() ? points_.front().shard : it->shard;
}

JsonValue ShardManifest::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("schema", std::string(kSchema));
  v.set("hcaf_format_version", format_version);
  v.set("shard_count", shard_count);
  v.set("vnodes_per_shard", vnodes_per_shard);
  JsonValue shard_list = JsonValue::array();
  for (const ManifestShard& s : shards) {
    JsonValue sv = JsonValue::object();
    sv.set("file", s.file);
    JsonValue names = JsonValue::array();
    for (const std::string& name : s.scenarios) names.push_back(name);
    sv.set("scenarios", std::move(names));
    sv.set("bytes", static_cast<std::size_t>(s.bytes));
    sv.set("checksum_fnv1a64", s.checksum_fnv1a64);
    shard_list.push_back(std::move(sv));
  }
  v.set("shards", std::move(shard_list));
  return v;
}

std::string ShardManifest::to_json_text() const { return to_json().dump(2); }

ShardManifest ShardManifest::from_json(const JsonValue& v) {
  require(v.at("schema").as_string() == kSchema,
          "ShardManifest: unknown schema '" + v.at("schema").as_string() +
              "' (expected '" + std::string(kSchema) + "')");
  ShardManifest m;
  m.format_version = static_cast<int>(v.at("hcaf_format_version").as_number());
  require(m.format_version >= 1 && m.format_version <= kFormatVersion,
          "ShardManifest: unsupported HCAF format version " +
              std::to_string(m.format_version));
  m.shard_count = static_cast<std::size_t>(v.at("shard_count").as_number());
  m.vnodes_per_shard =
      static_cast<std::size_t>(v.at("vnodes_per_shard").as_number());
  for (const JsonValue& sv : v.at("shards").as_array()) {
    ManifestShard s;
    s.file = sv.at("file").as_string();
    for (const JsonValue& name : sv.at("scenarios").as_array()) {
      s.scenarios.push_back(name.as_string());
    }
    s.bytes = static_cast<std::uint64_t>(sv.at("bytes").as_number());
    s.checksum_fnv1a64 = sv.at("checksum_fnv1a64").as_string();
    m.shards.push_back(std::move(s));
  }
  require(m.shards.size() == m.shard_count,
          "ShardManifest: shard list length " +
              std::to_string(m.shards.size()) + " does not match shard_count " +
              std::to_string(m.shard_count));
  return m;
}

ShardManifest ShardManifest::from_json_text(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

std::string write_manifest(const ShardManifest& manifest,
                           const std::string& dir) {
  const std::string path = dir + "/manifest.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << manifest.to_json_text() << '\n';
  if (!out) throw ParseError("ShardManifest: cannot write " + path);
  return path;
}

ShardManifest read_manifest_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("ShardManifest: cannot open " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return ShardManifest::from_json_text(text);
}

}  // namespace hpcem::colstore
