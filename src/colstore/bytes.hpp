// Bounds-checked little-endian byte codec: the one sanctioned place in the
// tree where raw bytes become typed values.
//
// Everything HCAF reads or writes goes through `ByteWriter` / `ByteReader`:
// the writer renders integers and doubles to explicit little-endian bytes,
// and the reader re-assembles them with every access bounds-checked against
// the buffer — a truncated or corrupt file produces a one-line
// `hcaf: <label>: $.path: ...` ParseError, never an out-of-range read.
// The `binary-io-hygiene` lint rule bans raw `memcpy`/`reinterpret_cast`
// byte punning outside src/colstore precisely so that this file's checked
// accessors stay the only byte-reinterpretation surface.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hpcem::colstore {

/// FNV-1a 64-bit hash: the directory checksum and the consistent-hash
/// ring both use it (stable across platforms, trivial to re-implement).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes);

/// Append-only little-endian encoder over a growing byte string.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// IEEE-754 bit pattern, little-endian: exact round trip for every
  /// double including -0.0, infinities and NaN payloads.
  void f64(double v);
  /// u32 byte length followed by the raw bytes (no terminator).
  void str(std::string_view s);
  /// A column block: `values.size()` little-endian f64s, no length prefix
  /// (the directory records offset and count).
  void f64_block(const std::vector<double>& values);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::size_t size() const { return out_.size(); }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Strict cursor over an immutable byte buffer.  Every accessor names what
/// it is reading (`$.scenarios[2].name` style); running off the end of the
/// buffer throws ParseError with that path in the message.
class ByteReader {
 public:
  /// `label` prefixes every error ("hcaf: <label>: ...") — callers pass
  /// the file path.
  ByteReader(std::string_view data, std::string label);

  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Bounds-checked absolute reposition.
  void seek(std::size_t pos, std::string_view what);

  [[nodiscard]] std::uint8_t u8(std::string_view what);
  [[nodiscard]] std::uint32_t u32(std::string_view what);
  [[nodiscard]] std::uint64_t u64(std::string_view what);
  [[nodiscard]] double f64(std::string_view what);
  /// u32 length + bytes; the length is bounds-checked before the copy.
  [[nodiscard]] std::string str(std::string_view what);

  /// Throw a ParseError for `what` with this reader's label and position.
  [[noreturn]] void fail(std::string_view what, std::string_view why) const;

  /// The sanctioned bulk accessor: decode `count` little-endian f64s
  /// starting at absolute byte `offset` of `data` into `out`.
  /// Bounds-checked against the buffer before any byte is touched.
  static void f64_block(std::string_view data, std::string_view label,
                        std::size_t offset, std::size_t count,
                        std::vector<double>& out, std::string_view what);

 private:
  /// Check `n` more bytes exist at the cursor; throws ParseError naming
  /// `what` otherwise.
  void need(std::size_t n, std::string_view what) const;

  std::string_view data_;
  std::string label_;
  std::size_t pos_ = 0;
};

}  // namespace hpcem::colstore
