// The columnar shape of one telemetry channel, and the single
// implementation that builds it from a sample series.
//
// Both ingestion paths — JSON artifacts columnised at load time
// (serve::ArtifactStore) and HCAF shards columnised once at compaction
// time (colstore writer) — run this exact code, which is what makes the
// serving layer's byte-identical-response guarantee hold across formats:
// the Neumaier-compensated prefix sums a query differences are the same
// doubles whether they were computed at ingest or read back from a shard.
#pragma once

#include <vector>

#include "telemetry/timeseries.hpp"

namespace hpcem::colstore {

/// Parallel columns of one channel's retained samples plus the
/// prefix-sum companions windowed aggregates difference.
struct ChannelColumns {
  std::vector<double> times;   ///< seconds since epoch, non-decreasing
  std::vector<double> values;
  /// prefix_value_sum[i] = sum of values[0..i); size == values.size() + 1.
  std::vector<double> prefix_value_sum;
  /// prefix_integral[i] = trapezoidal integral over samples [0..i);
  /// size == values.size() + 1 (unit-seconds, e.g. kW s).
  std::vector<double> prefix_integral;

  [[nodiscard]] bool empty() const { return times.empty(); }
};

/// Columnise a time-ordered sample series: split into time/value columns
/// and accumulate the compensated prefix sums.  Deterministic: the same
/// series always produces bit-identical columns.
[[nodiscard]] ChannelColumns build_columns(const std::vector<Sample>& series);

}  // namespace hpcem::colstore
