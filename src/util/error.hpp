// Error handling primitives for the hpcem library.
//
// The library throws `hpcem::Error` (or a subclass) for all recoverable
// precondition violations; internal invariants use HPCEM_ASSERT which is
// active in all build types (the cost is negligible next to simulation work
// and silent state corruption is far more expensive than a branch).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace hpcem {

/// Base class for all exceptions thrown by the hpcem library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller passes an argument outside a function's domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an operation is attempted on an object in the wrong state
/// (e.g. sampling a simulator that has not been started).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Thrown on malformed external input (CSV traces, config files).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const std::string& msg,
                              const std::source_location& loc);
}  // namespace detail

/// Validate a caller-supplied precondition; throws InvalidArgument on failure.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

/// Validate object state; throws StateError on failure.
inline void require_state(bool cond, const std::string& msg) {
  if (!cond) throw StateError(msg);
}

}  // namespace hpcem

/// Internal invariant check: active in every build type.
#define HPCEM_ASSERT(expr, msg)                                       \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::hpcem::detail::assert_fail(#expr, (msg),                      \
                                   std::source_location::current());  \
    }                                                                 \
  } while (false)
