#include "util/error.hpp"

#include <sstream>

namespace hpcem::detail {

void assert_fail(const char* expr, const std::string& msg,
                 const std::source_location& loc) {
  std::ostringstream os;
  os << "hpcem internal invariant violated: (" << expr << ") at "
     << loc.file_name() << ':' << loc.line() << " in " << loc.function_name();
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace hpcem::detail
