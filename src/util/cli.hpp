// Minimal command-line argument parsing for the tools/ binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` options with
// declared defaults, plus automatic `--help` text.  Deliberately tiny: the
// tools need a dozen options, not a framework.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hpcem {

/// Declarative CLI option set.
class ArgParser {
 public:
  explicit ArgParser(std::string program_description);

  /// Declare a string option with a default.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Declare a boolean flag (defaults to false; present = true).
  void add_flag(const std::string& name, const std::string& help);
  /// Accept free (non `--`) arguments; `label` names them in usage text.
  /// Without this call a positional argument is a parse error.
  void allow_positionals(const std::string& label, const std::string& help);

  /// Enable `--version`: when parse() sees it, parsing stops, parse()
  /// returns false and version_requested() is true; the caller prints
  /// `version_text` and exits 0.
  void set_version(std::string version_text);

  /// Parse argv.  Returns false (after printing usage) on --help or on an
  /// unknown/malformed option.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// True when the last parse() stopped on --version.
  [[nodiscard]] bool version_requested() const { return version_requested_; }
  /// The text set_version() installed (empty when not enabled).
  [[nodiscard]] const std::string& version_text() const {
    return version_text_;
  }

  [[nodiscard]] const std::string& get(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Free arguments, in command-line order (empty unless allow_positionals
  /// was declared and arguments were given).
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }

  [[nodiscard]] std::string usage() const;
  /// Error description when parse returned false (empty for --help).
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  std::string positional_label_;
  std::string positional_help_;
  std::string version_text_;
  bool version_requested_ = false;
  std::string error_;
};

}  // namespace hpcem
