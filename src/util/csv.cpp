#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace hpcem {

std::size_t CsvTable::column(std::string_view name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ParseError("CSV column not found: " + std::string(name));
}

std::vector<std::string> split_csv_line(std::string_view line) {
  std::vector<std::string> cells;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) throw ParseError("unterminated quote in CSV line");
  cells.push_back(std::move(cur));
  return cells;
}

std::string csv_quote(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

CsvTable parse_csv(std::string_view text) {
  CsvTable table;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      auto cells = split_csv_line(line);
      if (first) {
        table.header = std::move(cells);
        first = false;
      } else {
        if (cells.size() != table.header.size()) {
          throw ParseError("CSV row width mismatch: expected " +
                           std::to_string(table.header.size()) + ", got " +
                           std::to_string(cells.size()));
        }
        table.rows.push_back(std::move(cells));
      }
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  return table;
}

CsvTable read_csv_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open CSV file: " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_csv(buf.str());
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "CsvWriter: header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "CsvWriter::add_row: row width must match header");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_quote(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_quote(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::write_file(const std::filesystem::path& path) const {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot write CSV file: " + path.string());
  out << str();
  if (!out) throw ParseError("I/O error writing CSV file: " + path.string());
}

}  // namespace hpcem
