// Fixed-width text table renderer for the reproduction harnesses.
//
// The bench binaries print paper-vs-simulated tables; this keeps the
// formatting in one place.  Markdown-ish pipe tables with right-aligned
// numeric columns.
#pragma once

#include <string>
#include <vector>

namespace hpcem {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Builds an aligned pipe table:
///
///   | Component | Idle (kW) |
///   |-----------|-----------|
///   | Nodes     |     1,350 |
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns = {});

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t row_count() const;

  /// Fixed-point formatting helper: 3.14159 -> "3.14" (decimals=2).
  static std::string num(double v, int decimals = 2);
  /// Thousands-separated integer rendering: 3220.4 -> "3,220".
  static std::string grouped(double v);
  /// Percentage rendering: 0.065 -> "6.5%".
  static std::string pct(double fraction, int decimals = 1);

 private:
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  // Each entry is either a row of cells or an empty vector meaning a rule.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpcem
