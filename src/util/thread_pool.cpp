#include "util/thread_pool.hpp"

#include <utility>

#include "util/error.hpp"

namespace hpcem {

ThreadPool::ThreadPool(std::size_t workers) {
  require(workers >= 1, "ThreadPool: need at least one worker");
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  require(task != nullptr, "ThreadPool::submit: task must be callable");
  {
    const std::lock_guard<std::mutex> lock(mu_);
    require_state(!stopping_, "ThreadPool::submit: pool is shutting down");
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::size_t ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace hpcem
