// Strongly-typed physical quantities used throughout hpcem.
//
// The facility model mixes watts, kilowatt-hours, gCO2/kWh, GHz and pounds
// sterling; mixing those up silently is the classic failure mode of energy
// accounting code, so each dimension gets its own vocabulary type.  The
// wrapper is a zero-overhead `double` with dimension-preserving arithmetic:
//   Power * Duration  -> Energy
//   Energy * CarbonIntensity -> CarbonMass
//   Energy * Price    -> Cost
// plus scalar scaling and comparisons within a dimension.
#pragma once

#include <chrono>
#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace hpcem {

/// CRTP base giving a dimensioned quantity value semantics, arithmetic within
/// the dimension and scalar scaling.  `Derived` supplies the unit helpers.
template <class Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : value_(v) {}

  /// Raw magnitude in the dimension's base unit (documented per type).
  [[nodiscard]] constexpr double raw() const { return value_; }

  friend constexpr Derived operator+(Derived a, Derived b) {
    return Derived{a.value_ + b.value_};
  }
  friend constexpr Derived operator-(Derived a, Derived b) {
    return Derived{a.value_ - b.value_};
  }
  constexpr Derived operator-() const { return Derived{-value_}; }
  friend constexpr Derived operator*(Derived a, double s) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator*(double s, Derived a) {
    return Derived{a.value_ * s};
  }
  friend constexpr Derived operator/(Derived a, double s) {
    return Derived{a.value_ / s};
  }
  /// Ratio of two like quantities is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) {
    return a.value_ / b.value_;
  }
  friend constexpr auto operator<=>(Derived a, Derived b) {
    return a.value_ <=> b.value_;
  }
  friend constexpr bool operator==(Derived a, Derived b) {
    return a.value_ == b.value_;
  }
  Derived& operator+=(Derived o) {
    value_ += o.value_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator-=(Derived o) {
    value_ -= o.value_;
    return static_cast<Derived&>(*this);
  }
  Derived& operator*=(double s) {
    value_ *= s;
    return static_cast<Derived&>(*this);
  }

 protected:
  double value_ = 0.0;
};

/// Simulated wall-clock duration.  Base unit: seconds.
class Duration : public Quantity<Duration> {
 public:
  using Quantity::Quantity;
  static constexpr Duration seconds(double s) { return Duration{s}; }
  static constexpr Duration minutes(double m) { return Duration{m * 60.0}; }
  static constexpr Duration hours(double h) { return Duration{h * 3600.0}; }
  static constexpr Duration days(double d) { return Duration{d * 86400.0}; }
  [[nodiscard]] constexpr double sec() const { return value_; }
  [[nodiscard]] constexpr double min() const { return value_ / 60.0; }
  [[nodiscard]] constexpr double hrs() const { return value_ / 3600.0; }
  [[nodiscard]] constexpr double day() const { return value_ / 86400.0; }
};

/// Electrical power.  Base unit: watts.
class Power : public Quantity<Power> {
 public:
  using Quantity::Quantity;
  static constexpr Power watts(double w) { return Power{w}; }
  static constexpr Power kilowatts(double kw) { return Power{kw * 1e3}; }
  static constexpr Power megawatts(double mw) { return Power{mw * 1e6}; }
  [[nodiscard]] constexpr double w() const { return value_; }
  [[nodiscard]] constexpr double kw() const { return value_ / 1e3; }
  [[nodiscard]] constexpr double mw() const { return value_ / 1e6; }
};

/// Electrical energy.  Base unit: joules.
class Energy : public Quantity<Energy> {
 public:
  using Quantity::Quantity;
  static constexpr Energy joules(double j) { return Energy{j}; }
  static constexpr Energy kilojoules(double kj) { return Energy{kj * 1e3}; }
  static constexpr Energy kwh(double k) { return Energy{k * 3.6e6}; }
  static constexpr Energy mwh(double m) { return Energy{m * 3.6e9}; }
  [[nodiscard]] constexpr double j() const { return value_; }
  [[nodiscard]] constexpr double to_kwh() const { return value_ / 3.6e6; }
  [[nodiscard]] constexpr double to_mwh() const { return value_ / 3.6e9; }
};

/// Mass of CO2-equivalent emissions.  Base unit: grams.
class CarbonMass : public Quantity<CarbonMass> {
 public:
  using Quantity::Quantity;
  static constexpr CarbonMass grams(double g) { return CarbonMass{g}; }
  static constexpr CarbonMass kilograms(double kg) {
    return CarbonMass{kg * 1e3};
  }
  static constexpr CarbonMass tonnes(double t) { return CarbonMass{t * 1e6}; }
  [[nodiscard]] constexpr double g() const { return value_; }
  [[nodiscard]] constexpr double kg() const { return value_ / 1e3; }
  [[nodiscard]] constexpr double t() const { return value_ / 1e6; }
};

/// Carbon intensity of electricity.  Base unit: gCO2 per kWh.
class CarbonIntensity : public Quantity<CarbonIntensity> {
 public:
  using Quantity::Quantity;
  static constexpr CarbonIntensity g_per_kwh(double g) {
    return CarbonIntensity{g};
  }
  [[nodiscard]] constexpr double gkwh() const { return value_; }
};

/// Monetary cost.  Base unit: GBP.
class Cost : public Quantity<Cost> {
 public:
  using Quantity::Quantity;
  static constexpr Cost gbp(double v) { return Cost{v}; }
  [[nodiscard]] constexpr double pounds() const { return value_; }
};

/// Electricity price.  Base unit: GBP per kWh.
class Price : public Quantity<Price> {
 public:
  using Quantity::Quantity;
  static constexpr Price gbp_per_kwh(double v) { return Price{v}; }
  [[nodiscard]] constexpr double gbp_kwh() const { return value_; }
};

/// CPU clock frequency.  Base unit: hertz.
class Frequency : public Quantity<Frequency> {
 public:
  using Quantity::Quantity;
  static constexpr Frequency hz(double v) { return Frequency{v}; }
  static constexpr Frequency mhz(double v) { return Frequency{v * 1e6}; }
  static constexpr Frequency ghz(double v) { return Frequency{v * 1e9}; }
  [[nodiscard]] constexpr double to_hz() const { return value_; }
  [[nodiscard]] constexpr double to_ghz() const { return value_ / 1e9; }
};

// ---------------------------------------------------------------------------
// Cross-dimension arithmetic.
// ---------------------------------------------------------------------------

/// Power sustained over a duration yields energy.
constexpr Energy operator*(Power p, Duration d) {
  return Energy::joules(p.w() * d.sec());
}
constexpr Energy operator*(Duration d, Power p) { return p * d; }

/// Average power of an energy spread over a duration.
constexpr Power operator/(Energy e, Duration d) {
  return Power::watts(e.j() / d.sec());
}

/// Time to expend an energy budget at a constant power draw.
constexpr Duration operator/(Energy e, Power p) {
  return Duration::seconds(e.j() / p.w());
}

/// Scope-2 emissions: energy consumed at a given grid carbon intensity.
constexpr CarbonMass operator*(Energy e, CarbonIntensity ci) {
  return CarbonMass::grams(e.to_kwh() * ci.gkwh());
}
constexpr CarbonMass operator*(CarbonIntensity ci, Energy e) { return e * ci; }

/// Electricity cost of an energy amount at a given price.
constexpr Cost operator*(Energy e, Price p) {
  return Cost::gbp(e.to_kwh() * p.gbp_kwh());
}
constexpr Cost operator*(Price p, Energy e) { return e * p; }

// ---------------------------------------------------------------------------
// User-defined literals (in namespace hpcem::literals).
// ---------------------------------------------------------------------------
namespace literals {
constexpr Power operator""_W(long double v) {
  return Power::watts(static_cast<double>(v));
}
constexpr Power operator""_kW(long double v) {
  return Power::kilowatts(static_cast<double>(v));
}
constexpr Power operator""_MW(long double v) {
  return Power::megawatts(static_cast<double>(v));
}
constexpr Energy operator""_kWh(long double v) {
  return Energy::kwh(static_cast<double>(v));
}
constexpr Energy operator""_MWh(long double v) {
  return Energy::mwh(static_cast<double>(v));
}
constexpr Duration operator""_s(long double v) {
  return Duration::seconds(static_cast<double>(v));
}
constexpr Duration operator""_min(long double v) {
  return Duration::minutes(static_cast<double>(v));
}
constexpr Duration operator""_h(long double v) {
  return Duration::hours(static_cast<double>(v));
}
constexpr Duration operator""_d(long double v) {
  return Duration::days(static_cast<double>(v));
}
constexpr Frequency operator""_GHz(long double v) {
  return Frequency::ghz(static_cast<double>(v));
}
constexpr CarbonIntensity operator""_gCO2kWh(long double v) {
  return CarbonIntensity::g_per_kwh(static_cast<double>(v));
}
}  // namespace literals

inline std::ostream& operator<<(std::ostream& os, Power p) {
  return os << p.kw() << " kW";
}
inline std::ostream& operator<<(std::ostream& os, Energy e) {
  return os << e.to_kwh() << " kWh";
}
inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.sec() << " s";
}
inline std::ostream& operator<<(std::ostream& os, CarbonMass m) {
  return os << m.t() << " tCO2e";
}
inline std::ostream& operator<<(std::ostream& os, Frequency f) {
  return os << f.to_ghz() << " GHz";
}

}  // namespace hpcem
