// Fixed-size worker thread pool.
//
// The campaign layer (sim/campaign.hpp) fans N scenarios x M seeds out over
// a pool of workers; each task owns a shared-nothing simulator, so the pool
// needs no task-to-task synchronisation beyond the queue itself.  Tasks are
// dequeued in FIFO order; `wait_idle` gives the submit-then-barrier shape a
// deterministic merge step needs (all results present before any merging).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcem {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawn `workers` threads (at least one).
  explicit ThreadPool(std::size_t workers);

  /// Drains nothing: pending tasks that never ran are discarded, but tasks
  /// already executing are completed before the threads join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task.  Thread-safe; may be called from worker threads.
  /// Tasks must not throw — an exception escaping a task terminates the
  /// process; capture it inside the task (std::exception_ptr) instead.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// A sensible default worker count: hardware concurrency, at least one.
  [[nodiscard]] static std::size_t default_workers();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  // hpcem: guarded_by(mu_)
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: task or shutdown
  std::condition_variable idle_cv_;   ///< signals waiters: pool went idle
  std::size_t active_ = 0;            // hpcem: guarded_by(mu_)
  bool stopping_ = false;             // hpcem: guarded_by(mu_)
};

}  // namespace hpcem
