#include "util/text_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace hpcem {

TextTable::TextTable(std::vector<std::string> header,
                     std::vector<Align> aligns)
    : header_(std::move(header)), aligns_(std::move(aligns)) {
  require(!header_.empty(), "TextTable: header must be non-empty");
  if (aligns_.empty()) {
    aligns_.assign(header_.size(), Align::kLeft);
  }
  require(aligns_.size() == header_.size(),
          "TextTable: aligns must match header width");
}

void TextTable::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "TextTable::add_row: row width must match header");
  rows_.push_back(std::move(cells));
}

void TextTable::add_rule() { rows_.emplace_back(); }

std::size_t TextTable::row_count() const {
  std::size_t n = 0;
  for (const auto& r : rows_) {
    if (!r.empty()) ++n;
  }
  return n;
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto emit_cells = [&](std::ostringstream& os,
                        const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::size_t pad = widths[i] - cells[i].size();
      os << ' ';
      if (aligns_[i] == Align::kRight) os << std::string(pad, ' ');
      os << cells[i];
      if (aligns_[i] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&](std::ostringstream& os) {
    os << '|';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
    os << '\n';
  };

  std::ostringstream os;
  emit_cells(os, header_);
  emit_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_cells(os, row);
    }
  }
  return os.str();
}

std::string TextTable::num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::grouped(double v) {
  const bool neg = v < 0;
  auto n = static_cast<long long>(std::llround(std::fabs(v)));
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TextTable::pct(double fraction, int decimals) {
  return num(fraction * 100.0, decimals) + "%";
}

}  // namespace hpcem
