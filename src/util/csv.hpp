// Minimal CSV reading/writing for traces and telemetry export.
//
// Scope: comma-separated, optional double-quote quoting with "" escapes,
// header row, no embedded newlines inside quoted fields on read.  That is
// all the library's own traces need; it is not a general CSV engine.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace hpcem {

/// One parsed CSV table: a header plus rows of string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a named column; throws ParseError if absent.
  [[nodiscard]] std::size_t column(std::string_view name) const;
};

/// Split a single CSV line into cells (handles quoted cells).
[[nodiscard]] std::vector<std::string> split_csv_line(std::string_view line);

/// Quote a cell if it contains comma/quote/newline.
[[nodiscard]] std::string csv_quote(std::string_view cell);

/// Parse CSV text; first line is the header.
[[nodiscard]] CsvTable parse_csv(std::string_view text);

/// Read and parse a CSV file; throws ParseError on I/O failure.
[[nodiscard]] CsvTable read_csv_file(const std::filesystem::path& path);

/// Incremental CSV writer.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Render the whole table to a string.
  [[nodiscard]] std::string str() const;

  /// Write to file; throws ParseError on I/O failure.
  void write_file(const std::filesystem::path& path) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hpcem
