#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace hpcem {

JsonValue::JsonValue(double n) : type_(Type::kNumber), number_(n) {
  require(std::isfinite(n), "JsonValue: numbers must be finite");
}

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw ParseError("JsonValue: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw ParseError("JsonValue: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw ParseError("JsonValue: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw ParseError("JsonValue: not an array");
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw ParseError("JsonValue: not an object");
  return object_;
}

void JsonValue::set(std::string key, JsonValue value) {
  require(type_ == Type::kObject, "JsonValue::set: not an object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  require(type_ == Type::kArray, "JsonValue::push_back: not an array");
  array_.push_back(std::move(value));
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr) {
    throw ParseError("JsonValue: missing member: " + std::string(key));
  }
  return *v;
}

std::string json_number(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  HPCEM_ASSERT(ec == std::errc(), "json_number: to_chars failed");
  return std::string(buf, ptr);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int levels) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(levels),
               ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += json_number(number_); break;
    case Type::kString: out += json_quote(string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        out += json_quote(object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text, JsonParseOptions options)
      : text_(text), options_(options) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    // 1-based line/column of pos_, so editors can jump to the defect.
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError("json: " + why + " at line " + std::to_string(line) +
                     ", column " + std::to_string(col));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
        continue;
      }
      if (options_.allow_comments && c == '/' && pos_ + 1 < text_.size()) {
        if (text_[pos_ + 1] == '/') {
          pos_ += 2;
          while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
          continue;
        }
        if (text_[pos_ + 1] == '*') {
          const std::size_t open = pos_;
          pos_ += 2;
          while (pos_ + 1 < text_.size() &&
                 !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
            ++pos_;
          }
          if (pos_ + 1 >= text_.size()) {
            pos_ = open;
            fail("unterminated /* comment");
          }
          pos_ += 2;
          continue;
        }
      }
      break;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("bad escape character");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape digit");
      }
    }
    // UTF-8 encode the BMP code point (surrogate pairs out of scope).
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  JsonParseOptions options_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text, JsonParseOptions{}).parse_document();
}

JsonValue JsonValue::parse(std::string_view text,
                           const JsonParseOptions& options) {
  return JsonParser(text, options).parse_document();
}

}  // namespace hpcem
