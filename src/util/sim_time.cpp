#include "util/sim_time.hpp"

#include <array>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace hpcem {

namespace {
constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

constexpr std::array<int, 12> kDaysInMonth = {31, 28, 31, 30, 31, 30,
                                              31, 31, 30, 31, 30, 31};
}  // namespace

bool is_leap_year(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

std::int64_t days_from_civil(const CivilDate& d) {
  require(d.month >= 1 && d.month <= 12, "days_from_civil: month out of range");
  int dim = kDaysInMonth[static_cast<std::size_t>(d.month - 1)];
  if (d.month == 2 && is_leap_year(d.year)) dim = 29;
  require(d.day >= 1 && d.day <= dim, "days_from_civil: day out of range");

  // Hinnant's algorithm: shift the year so March is month 0 of the era.
  const int y = d.year - (d.month <= 2 ? 1 : 0);
  const std::int64_t era =
      (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<std::uint64_t>(y - static_cast<int>(era) * 400);
  const auto doy = static_cast<std::uint64_t>(
      (153 * (d.month + (d.month > 2 ? -3 : 9)) + 2) / 5 + d.day - 1);
  const std::uint64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<std::uint64_t>(z - era * 146097);
  const std::uint64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const std::uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const std::uint64_t mp = (5 * doy + 2) / 153;
  const std::uint64_t day = doy - (153 * mp + 2) / 5 + 1;
  const std::uint64_t month = mp < 10 ? mp + 3 : mp - 9;
  CivilDate d;
  d.year = static_cast<int>(y + (month <= 2 ? 1 : 0));
  d.month = static_cast<int>(month);
  d.day = static_cast<int>(day);
  return d;
}

SimTime sim_time_from_date(const CivilDate& d) {
  return SimTime{static_cast<double>(days_from_civil(d)) * 86400.0};
}

CivilDate date_from_sim_time(SimTime t) {
  const auto days =
      static_cast<std::int64_t>(std::floor(t.sec() / 86400.0));
  return civil_from_days(days);
}

double seconds_into_day(SimTime t) {
  const double day = std::floor(t.sec() / 86400.0) * 86400.0;
  return t.sec() - day;
}

int day_of_week(SimTime t) {
  const auto days =
      static_cast<std::int64_t>(std::floor(t.sec() / 86400.0));
  // 1970-01-01 was a Thursday (index 3 with Monday = 0).
  const std::int64_t dow = (days % 7 + 7 + 3) % 7;
  return static_cast<int>(dow);
}

int day_of_year(const CivilDate& d) {
  return static_cast<int>(days_from_civil(d) -
                          days_from_civil({d.year, 1, 1})) +
         1;
}

std::string month_abbrev(int month) {
  require(month >= 1 && month <= 12, "month_abbrev: month out of range");
  return kMonthNames[static_cast<std::size_t>(month - 1)];
}

std::string month_year_label(const CivilDate& d) {
  return month_abbrev(d.month) + " " + std::to_string(d.year);
}

std::string iso_date(const CivilDate& d) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

std::optional<SimTime> parse_date_time(std::string_view s) {
  const auto digits = [&s](std::size_t pos, std::size_t n,
                           int& out) -> bool {
    if (pos + n > s.size()) return false;
    int v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const char c = s[pos + i];
      if (c < '0' || c > '9') return false;
      v = v * 10 + (c - '0');
    }
    out = v;
    return true;
  };

  int year = 0, month = 0, day = 0;
  if (!digits(0, 4, year) || s.size() < 10 || s[4] != '-' ||
      !digits(5, 2, month) || s[7] != '-' || !digits(8, 2, day)) {
    return std::nullopt;
  }

  int hh = 0, mm = 0, ss = 0;
  if (s.size() != 10) {
    if (s.size() != 16 && s.size() != 19) return std::nullopt;
    if (s[10] != ' ' && s[10] != 'T') return std::nullopt;
    if (!digits(11, 2, hh) || s[13] != ':' || !digits(14, 2, mm)) {
      return std::nullopt;
    }
    if (s.size() == 19 && (s[16] != ':' || !digits(17, 2, ss))) {
      return std::nullopt;
    }
  }

  if (month < 1 || month > 12) return std::nullopt;
  int dim = kDaysInMonth[static_cast<std::size_t>(month - 1)];
  if (month == 2 && is_leap_year(year)) dim = 29;
  if (day < 1 || day > dim) return std::nullopt;
  if (hh > 23 || mm > 59 || ss > 59) return std::nullopt;

  return sim_time_from_date({year, month, day}) + Duration::hours(hh) +
         Duration::minutes(mm) + Duration::seconds(ss);
}

std::string iso_date_time(SimTime t) {
  const CivilDate d = date_from_sim_time(t);
  const double s = seconds_into_day(t);
  const int hh = static_cast<int>(s / 3600.0);
  const int mm = static_cast<int>((s - hh * 3600.0) / 60.0);
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d", d.year, d.month,
                d.day, hh, mm);
  return buf;
}

}  // namespace hpcem
