// Streaming and batch statistics used by the telemetry analysis pipeline.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace hpcem {

/// Numerically stable streaming moments (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const;
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// Sample (Bessel-corrected) variance; 0 for fewer than 2 samples.
  [[nodiscard]] double sample_variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Neumaier-compensated running sum.
///
/// The facility simulator maintains the running-job fleet power as a long
/// sequence of add/subtract pairs; naive accumulation drifts by an ulp per
/// operation and a months-long campaign performs hundreds of thousands of
/// them.  The compensation term keeps the error at a single rounding of the
/// peak magnitude, independent of the operation count.
class CompensatedSum {
 public:
  /// Inline: runs once (or more) per telemetry sample on the append path.
  void add(double x) {
    // Neumaier's variant of Kahan summation: compensate whichever operand
    // loses low-order bits in the addition.
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  void subtract(double x) { add(-x); }
  [[nodiscard]] double value() const { return sum_ + compensation_; }
  void reset() {
    sum_ = 0.0;
    compensation_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Batch summary of a sample: order statistics plus moments.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Compute a full summary of `xs` (copies and sorts internally).
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated percentile of `sorted` (q in [0,1]); requires a
/// sorted, non-empty input.
[[nodiscard]] double percentile_sorted(std::span<const double> sorted,
                                       double q);

/// Arithmetic mean; requires non-empty input.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Weighted mean; requires equal non-zero lengths and positive total weight.
[[nodiscard]] double weighted_mean(std::span<const double> xs,
                                   std::span<const double> ws);

/// Least-squares line fit y = a + b x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  /// Coefficient of determination in [0, 1].
  double r2 = 0.0;
};
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Exponentially weighted moving average filter.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight given to each new observation.
  explicit Ewma(double alpha);
  double add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

}  // namespace hpcem
