// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component in hpcem draws from an `Rng` that is seeded
// explicitly; two runs with the same seed produce bit-identical telemetry.
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64, which is the conventional pairing: splitmix64 decorrelates
// low-entropy seeds, xoshiro256** provides the long-period stream.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace hpcem {

/// splitmix64 step: used for seeding and for cheap hash-style mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic random stream with the distribution helpers the simulator
/// needs.  Satisfies UniformRandomBitGenerator so it can also be handed to
/// <random> adaptors if callers prefer.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seed the stream.  Identical seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value (xoshiro256** step).
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child stream (for per-component generators).
  /// Mixing the raw next value through splitmix64 decorrelates the child
  /// from the parent's future output.
  [[nodiscard]] Rng split() {
    std::uint64_t s = (*this)();
    return Rng(splitmix64(s));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo <= hi, "Rng::uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "Rng::uniform_int: lo must be <= hi");
    const auto span_sz =
        static_cast<std::uint64_t>(hi - lo) + 1ULL;  // hi==lo -> 1
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span_sz;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + static_cast<std::int64_t>(v % span_sz);
  }

  /// Standard normal via Marsaglia polar method (cached second deviate).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * m;
    has_cached_ = true;
    return u * m;
  }

  /// Normal with explicit mean and standard deviation.
  double normal(double mean, double stddev) {
    require(stddev >= 0.0, "Rng::normal: stddev must be non-negative");
    return mean + stddev * normal();
  }

  /// Log-normal parameterised by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    require(rate > 0.0, "Rng::exponential: rate must be positive");
    double u = uniform();
    // uniform() can return exactly 0; log(0) is -inf.
    while (u == 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) {
    require(p >= 0.0 && p <= 1.0, "Rng::bernoulli: p must be in [0,1]");
    return uniform() < p;
  }

  /// Sample an index from an unnormalised non-negative weight vector.
  std::size_t discrete(std::span<const double> weights) {
    require(!weights.empty(), "Rng::discrete: weights must be non-empty");
    double total = 0.0;
    for (double w : weights) {
      require(w >= 0.0, "Rng::discrete: weights must be non-negative");
      total += w;
    }
    require(total > 0.0, "Rng::discrete: weights must not all be zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0.0) return i;
    }
    return weights.size() - 1;  // floating-point edge: land on last bucket
  }
  std::size_t discrete(std::initializer_list<double> weights) {
    return discrete(std::span<const double>(weights.begin(), weights.size()));
  }

  /// Poisson-distributed count (Knuth's method; fine for small means, which
  /// is the job-arrival regime we use it in).
  std::uint64_t poisson(double mean) {
    require(mean >= 0.0, "Rng::poisson: mean must be non-negative");
    if (mean == 0.0) return 0;
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace hpcem
