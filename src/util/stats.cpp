#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace hpcem {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  require_state(n_ > 0, "RunningStats::mean on empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::sample_variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  require_state(n_ > 0, "RunningStats::min on empty accumulator");
  return min_;
}

double RunningStats::max() const {
  require_state(n_ > 0, "RunningStats::max on empty accumulator");
  return max_;
}

double percentile_sorted(std::span<const double> sorted, double q) {
  require(!sorted.empty(), "percentile_sorted: empty input");
  require(q >= 0.0 && q <= 1.0, "percentile_sorted: q must be in [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : xs) rs.add(x);
  s.count = xs.size();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p05 = percentile_sorted(sorted, 0.05);
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p95 = percentile_sorted(sorted, 0.95);
  return s;
}

double mean_of(std::span<const double> xs) {
  require(!xs.empty(), "mean_of: empty input");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double weighted_mean(std::span<const double> xs, std::span<const double> ws) {
  require(xs.size() == ws.size() && !xs.empty(),
          "weighted_mean: inputs must be equal-length and non-empty");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    require(ws[i] >= 0.0, "weighted_mean: weights must be non-negative");
    num += xs[i] * ws[i];
    den += ws[i];
  }
  require(den > 0.0, "weighted_mean: total weight must be positive");
  return num / den;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  require(xs.size() == ys.size() && xs.size() >= 2,
          "fit_line: need >=2 paired samples");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  require(denom != 0.0, "fit_line: x values are all identical");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    f.r2 = 1.0;  // y is constant and the fit is exact
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (f.intercept + f.slope * xs[i]);
      ss_res += e * e;
    }
    f.r2 = std::max(0.0, 1.0 - ss_res / ss_tot);
  }
  return f;
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  require(alpha > 0.0 && alpha <= 1.0, "Ewma: alpha must be in (0,1]");
}

double Ewma::add(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ += alpha_ * (x - value_);
  }
  return value_;
}

}  // namespace hpcem
