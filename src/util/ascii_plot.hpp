// ASCII time-series plotting for the figure-reproduction harnesses.
//
// The paper's Figures 1–3 are power-vs-time charts with a mean line; the
// bench binaries render the simulated equivalent as a character grid so the
// reproduction is inspectable in a terminal and in EXPERIMENTS.md.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hpcem {

/// Configuration for an ASCII chart.
struct AsciiPlotOptions {
  int width = 96;    ///< plot-area columns
  int height = 20;   ///< plot-area rows
  std::string title;
  std::string y_label;
  /// Horizontal reference lines (e.g. the paper's orange mean line), drawn
  /// with '-' and annotated with their value.
  std::vector<double> reference_lines;
  /// Optional x tick labels, evenly spaced across the axis.
  std::vector<std::string> x_ticks;
  /// Explicit y-axis range; auto-scaled to the data when unset.
  std::optional<double> y_min;
  std::optional<double> y_max;
};

/// Render `ys` (uniformly spaced in x) as an ASCII chart.
/// Values are bucket-averaged down to `width` columns, so arbitrarily long
/// series render at fixed size.
[[nodiscard]] std::string ascii_plot(std::span<const double> ys,
                                     const AsciiPlotOptions& options);

/// Render a horizontal bar chart (one row per label/value pair).
[[nodiscard]] std::string ascii_barchart(
    std::span<const std::string> labels, std::span<const double> values,
    int width = 60, const std::string& title = {});

}  // namespace hpcem
