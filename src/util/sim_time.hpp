// Simulation time and a minimal civil calendar.
//
// The paper's figures are labelled with calendar months ("Dec 2021 – Apr
// 2022"); the simulator works in seconds since an epoch.  `SimTime` is the
// scalar clock, `CivilDate` converts to/from year-month-day using the
// standard days-from-civil algorithm (Howard Hinnant's public-domain
// formulation), which is exact over the Gregorian calendar.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/units.hpp"

namespace hpcem {

/// Seconds since the simulation epoch (1970-01-01 00:00 UTC).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(double seconds_since_epoch)
      : t_(seconds_since_epoch) {}

  [[nodiscard]] constexpr double sec() const { return t_; }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.t_ + d.sec()};
  }
  friend constexpr SimTime operator+(Duration d, SimTime t) { return t + d; }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.t_ - d.sec()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration::seconds(a.t_ - b.t_);
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  SimTime& operator+=(Duration d) {
    t_ += d.sec();
    return *this;
  }

 private:
  double t_ = 0.0;
};

/// Gregorian calendar date.
struct CivilDate {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31

  friend constexpr auto operator<=>(const CivilDate&,
                                    const CivilDate&) = default;
};

/// Days since 1970-01-01 for a civil date (negative before the epoch).
[[nodiscard]] std::int64_t days_from_civil(const CivilDate& d);

/// Inverse of days_from_civil.
[[nodiscard]] CivilDate civil_from_days(std::int64_t days);

/// Midnight UTC at the start of the given civil date.
[[nodiscard]] SimTime sim_time_from_date(const CivilDate& d);

/// Civil date containing the given simulation instant.
[[nodiscard]] CivilDate date_from_sim_time(SimTime t);

/// Seconds into the day (0 .. 86400) of the given instant.
[[nodiscard]] double seconds_into_day(SimTime t);

/// Day of week, 0 = Monday .. 6 = Sunday.
[[nodiscard]] int day_of_week(SimTime t);

/// Day of year, 1-based.
[[nodiscard]] int day_of_year(const CivilDate& d);

/// True for leap years.
[[nodiscard]] bool is_leap_year(int year);

/// Three-letter English month abbreviation ("Jan".."Dec").
[[nodiscard]] std::string month_abbrev(int month);

/// "Dec 2021" style label for figure axes.
[[nodiscard]] std::string month_year_label(const CivilDate& d);

/// ISO "YYYY-MM-DD" rendering.
[[nodiscard]] std::string iso_date(const CivilDate& d);

/// "YYYY-MM-DD hh:mm" rendering of an instant.
[[nodiscard]] std::string iso_date_time(SimTime t);

/// Strict inverse of iso_date_time.  Accepts "YYYY-MM-DD",
/// "YYYY-MM-DD hh:mm" and "YYYY-MM-DD hh:mm:ss" (also with 'T' as the
/// separator); every field must be in range for the actual calendar
/// (leap years included) and the whole string must be consumed.
/// Returns nullopt otherwise — out-of-range dates like "2022-13-40" or
/// trailing garbage never parse.
[[nodiscard]] std::optional<SimTime> parse_date_time(std::string_view s);

}  // namespace hpcem
