#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace hpcem {

namespace {

std::string format_value(double v) {
  char buf[32];
  if (std::fabs(v) >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%8.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%8.1f", v);
  }
  return buf;
}

}  // namespace

std::string ascii_plot(std::span<const double> ys,
                       const AsciiPlotOptions& options) {
  require(!ys.empty(), "ascii_plot: empty series");
  require(options.width >= 8 && options.height >= 4,
          "ascii_plot: plot area too small");

  const auto w = static_cast<std::size_t>(options.width);
  const auto h = static_cast<std::size_t>(options.height);

  // Bucket-average the series down to `w` columns.
  std::vector<double> cols(w);
  for (std::size_t c = 0; c < w; ++c) {
    const std::size_t lo = c * ys.size() / w;
    std::size_t hi = (c + 1) * ys.size() / w;
    hi = std::max(hi, lo + 1);
    double sum = 0.0;
    for (std::size_t i = lo; i < hi && i < ys.size(); ++i) sum += ys[i];
    cols[c] = sum / static_cast<double>(std::min(hi, ys.size()) - lo);
  }

  double y_min = options.y_min.value_or(
      *std::min_element(cols.begin(), cols.end()));
  double y_max = options.y_max.value_or(
      *std::max_element(cols.begin(), cols.end()));
  for (double r : options.reference_lines) {
    y_min = std::min(y_min, r);
    y_max = std::max(y_max, r);
  }
  if (y_max <= y_min) y_max = y_min + 1.0;
  // Pad the auto range slightly so extremes are not glued to the border.
  const double pad = 0.05 * (y_max - y_min);
  if (!options.y_min) y_min -= pad;
  if (!options.y_max) y_max += pad;

  auto row_of = [&](double v) -> std::size_t {
    const double frac = (v - y_min) / (y_max - y_min);
    const double clamped = std::clamp(frac, 0.0, 1.0);
    return static_cast<std::size_t>(
        std::llround((1.0 - clamped) * static_cast<double>(h - 1)));
  };

  std::vector<std::string> grid(h, std::string(w, ' '));
  for (double r : options.reference_lines) {
    const std::size_t row = row_of(r);
    for (std::size_t c = 0; c < w; ++c) grid[row][c] = '-';
  }
  for (std::size_t c = 0; c < w; ++c) {
    grid[row_of(cols[c])][c] = '*';
  }

  std::ostringstream os;
  if (!options.title.empty()) os << options.title << '\n';
  if (!options.y_label.empty()) os << "  [" << options.y_label << "]\n";
  for (std::size_t r = 0; r < h; ++r) {
    // y-axis label on every 4th row and the extremes.
    const double v =
        y_max - (y_max - y_min) * static_cast<double>(r) /
                    static_cast<double>(h - 1);
    if (r % 4 == 0 || r == h - 1) {
      os << format_value(v) << " |";
    } else {
      os << std::string(8, ' ') << " |";
    }
    os << grid[r] << '\n';
  }
  os << std::string(9, ' ') << '+' << std::string(w, '-') << '\n';

  if (!options.x_ticks.empty()) {
    std::string axis(w + 10, ' ');
    const std::size_t n = options.x_ticks.size();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t pos =
          10 + (n == 1 ? 0 : i * (w - 1) / (n - 1));
      const std::string& label = options.x_ticks[i];
      // Shift the final label left so it stays inside the row.
      std::size_t start = pos;
      if (start + label.size() > axis.size()) {
        start = axis.size() - label.size();
      }
      for (std::size_t j = 0; j < label.size(); ++j) {
        axis[start + j] = label[j];
      }
    }
    os << axis << '\n';
  }
  for (double r : options.reference_lines) {
    os << "  ---- reference: " << format_value(r) << '\n';
  }
  return os.str();
}

std::string ascii_barchart(std::span<const std::string> labels,
                           std::span<const double> values, int width,
                           const std::string& title) {
  require(labels.size() == values.size() && !labels.empty(),
          "ascii_barchart: labels/values must be equal-length, non-empty");
  require(width >= 8, "ascii_barchart: width too small");
  const double max_v = *std::max_element(values.begin(), values.end());
  std::size_t label_w = 0;
  for (const auto& l : labels) label_w = std::max(label_w, l.size());

  std::ostringstream os;
  if (!title.empty()) os << title << '\n';
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double frac = max_v > 0.0 ? std::max(0.0, values[i]) / max_v : 0.0;
    const auto bar = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(width)));
    os << labels[i] << std::string(label_w - labels[i].size(), ' ') << " |"
       << std::string(bar, '#') << ' ' << format_value(values[i]) << '\n';
  }
  return os.str();
}

}  // namespace hpcem
