// Minimal JSON value model, serializer and parser.
//
// The run-artifact layer (core/run_artifact.hpp) exchanges structured
// results between benches, tools and external analysis as JSON.  Scope: the
// JSON the library itself writes — objects (insertion-ordered), arrays,
// strings (with standard escapes), finite doubles, bools and null.  It is
// not a general-purpose JSON engine: no surrogate-pair decoding beyond
// \uXXXX -> UTF-8, no comments, no NaN/Infinity extensions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcem {

/// Parse-time dialect switches.  The default is strict JSON; the scenario
/// spec layer (core/spec_io.hpp) enables comments for human-edited files.
/// Artifacts and query wire formats stay strict.
struct JsonParseOptions {
  /// Treat `// line` and `/* block */` comments as whitespace.
  bool allow_comments = false;
};

/// One JSON value: null, bool, number, string, array or object.  Objects
/// preserve insertion order so serialized artifacts are deterministic and
/// diffable.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Member = std::pair<std::string, JsonValue>;
  using Object = std::vector<Member>;

  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  JsonValue(double n);                                         // NOLINT
  JsonValue(int n) : JsonValue(static_cast<double>(n)) {}      // NOLINT
  JsonValue(std::size_t n)                                     // NOLINT
      : JsonValue(static_cast<double>(n)) {}
  JsonValue(std::string s)                                     // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(const char* s) : JsonValue(std::string(s)) {}      // NOLINT
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(Object o)                                          // NOLINT
      : type_(Type::kObject), object_(std::move(o)) {}

  [[nodiscard]] static JsonValue object() { return JsonValue(Object{}); }
  [[nodiscard]] static JsonValue array() { return JsonValue(Array{}); }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw ParseError on a type mismatch (the artifact
  /// reader treats a mistyped field like malformed input).
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Set a member on an object value (must be an object).  A new key
  /// appends, keeping insertion order; an existing key is overwritten in
  /// place.
  void set(std::string key, JsonValue value);
  /// Append an element to an array value (must be an array).
  void push_back(JsonValue value);

  /// Member lookup on an object: nullptr when absent.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;
  /// Member lookup on an object; throws ParseError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Serialize.  `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits compact single-line JSON.
  [[nodiscard]] std::string dump(int indent = 2) const;

  /// Parse a complete JSON document; throws ParseError on malformed input
  /// or trailing garbage.  Errors report 1-based line and column.
  [[nodiscard]] static JsonValue parse(std::string_view text);
  [[nodiscard]] static JsonValue parse(std::string_view text,
                                       const JsonParseOptions& options);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Escape and double-quote a string for JSON output.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Shortest round-trip decimal rendering of a finite double ("17" not
/// "17.000000"); used for every number the artifact layer writes.
[[nodiscard]] std::string json_number(double v);

}  // namespace hpcem
