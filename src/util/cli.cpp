#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace hpcem {

ArgParser::ArgParser(std::string program_description)
    : description_(std::move(program_description)) {}

void ArgParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  require(!options_.contains(name), "ArgParser: duplicate option " + name);
  options_[name] = Option{default_value, help, false};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  require(!options_.contains(name), "ArgParser: duplicate option " + name);
  options_[name] = Option{"false", help, true};
  order_.push_back(name);
}

void ArgParser::allow_positionals(const std::string& label,
                                  const std::string& help) {
  positional_label_ = label;
  positional_help_ = help;
}

void ArgParser::set_version(std::string version_text) {
  version_text_ = std::move(version_text);
}

bool ArgParser::parse(int argc, const char* const* argv) {
  values_.clear();
  positionals_.clear();
  error_.clear();
  version_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--version" && !version_text_.empty()) {
      version_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      if (positional_label_.empty()) {
        error_ = "unexpected positional argument: " + arg;
        return false;
      }
      positionals_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) {
      error_ = "unknown option: --" + arg;
      return false;
    }
    if (it->second.is_flag) {
      if (has_value) {
        error_ = "flag --" + arg + " takes no value";
        return false;
      }
      values_[arg] = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        error_ = "option --" + arg + " needs a value";
        return false;
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
  return true;
}

const std::string& ArgParser::get(const std::string& name) const {
  const auto vit = values_.find(name);
  if (vit != values_.end()) return vit->second;
  const auto oit = options_.find(name);
  require(oit != options_.end(), "ArgParser::get: undeclared option " + name);
  return oit->second.default_value;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string& s = get(name);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  require(end != s.c_str() && *end == '\0',
          "ArgParser: --" + name + " expects a number, got: " + s);
  return v;
}

long ArgParser::get_int(const std::string& name) const {
  const std::string& s = get(name);
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  require(end != s.c_str() && *end == '\0',
          "ArgParser: --" + name + " expects an integer, got: " + s);
  return v;
}

bool ArgParser::get_flag(const std::string& name) const {
  return get(name) == "true";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << description_ << "\n\n";
  if (!positional_label_.empty()) {
    os << "Arguments:\n  [" << positional_label_ << "...]\n      "
       << positional_help_ << '\n' << '\n';
  }
  os << "Options:\n";
  for (const auto& name : order_) {
    const Option& o = options_.at(name);
    os << "  --" << name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.help;
    if (!o.is_flag && !o.default_value.empty()) {
      os << " (default: " << o.default_value << ')';
    }
    os << '\n';
  }
  os << "  --help\n      show this message\n";
  if (!version_text_.empty()) {
    os << "  --version\n      print version information\n";
  }
  return os.str();
}

}  // namespace hpcem
