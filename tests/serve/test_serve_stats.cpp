// The serve-tier telemetry plane: the stats/trace NDJSON admin commands,
// postmortem triggers, and the determinism guarantees around them — stats
// and trace documents are byte-identical for any configured worker count
// in deterministic mode, and response bytes stay identical with obs on.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "serve/front.hpp"
#include "telemetry/timeseries.hpp"

namespace hpcem::serve {

/// Test seam: swap the front's evaluator so coalescing can be pinned down
/// without depending on real engine timings.
class ServeFrontTestAccess {
 public:
  static void set_evaluator(ServeFront& front, ServeFront::Evaluator e) {
    front.evaluator_ = std::move(e);
  }
};

namespace {

ArtifactStore stats_store() {
  RunArtifact a;
  a.scenario = "s";
  a.source = "simulation";
  TimeSeries series("kW");
  for (int i = 0; i <= 240; ++i) {
    series.append(SimTime(i * 3600.0),
                  3000.0 + 200.0 * ((i % 24) >= 8 && (i % 24) < 18));
  }
  a.window_start = series.start_time();
  a.window_end = series.end_time();
  a.headline.mean_kw = series.summary().mean;
  a.headline.window_energy_kwh = series.integrate() / 3600.0;
  a.headline.completed_jobs = 5000.0;
  a.channels.push_back(
      aggregate_channel("cabinet_kw", series, /*include_series=*/true));
  ArtifactStore store;
  store.add(a);
  return store;
}

/// Obs collection on, deterministic stamps, clean shards per test.
class ServeStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::reset_collected();
    obs::set_enabled(true);
    obs::set_deterministic(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::set_deterministic(false);
    obs::reset_collected();
  }
};

/// The scripted request sequence every determinism test replays: queries,
/// repeats and a respelling (cache hits), a domain error and a parse
/// error.
std::vector<std::string> scripted_sequence() {
  return {
      R"({"op":"list"})",
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw"})",
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw"})",
      R"({"channel":"cabinet_kw","op":"window_aggregate","scenario":"s"})",
      R"({"op":"whatif","scenario":"s","channel":"cabinet_kw",)"
      R"("intensity":{"constant_g_per_kwh":80}})",
      R"({"op":"compare","a":"s","b":"missing"})",
      R"(}{ not json)",
      R"({"op":"list"})",
  };
}

/// Replay the script on a fresh front (fresh obs shards) and return the
/// final stats + trace response bytes.
std::string stats_and_trace_bytes(std::size_t workers) {
  obs::reset_collected();
  const ArtifactStore store = stats_store();
  ServeOptions options;
  options.workers = workers;
  ServeFront front(store, options);
  for (const std::string& line : scripted_sequence()) {
    (void)front.handle(line);
  }
  return front.handle(R"({"op":"stats"})") + "\n" +
         front.handle(R"({"op":"trace","request":2})");
}

TEST_F(ServeStatsTest, StatsAndTraceAreByteStableAcrossRuns) {
  const std::string first = stats_and_trace_bytes(1);
  // The golden property: replaying the same script from clean state
  // reproduces the documents byte for byte.
  EXPECT_EQ(stats_and_trace_bytes(1), first);
}

TEST_F(ServeStatsTest, StatsAndTraceAreWorkerCountInvariant) {
  const std::string one = stats_and_trace_bytes(1);
  EXPECT_EQ(stats_and_trace_bytes(4), one);
  EXPECT_EQ(stats_and_trace_bytes(16), one);
}

TEST_F(ServeStatsTest, StatsCountersReflectTheScriptedTraffic) {
  const ArtifactStore store = stats_store();
  ServeFront front(store, ServeOptions{});
  for (const std::string& line : scripted_sequence()) {
    (void)front.handle(line);
  }
  const std::string response = front.handle(R"({"op":"stats"})");
  const JsonValue doc = JsonValue::parse(response);
  EXPECT_TRUE(doc.at("ok").as_bool());
  EXPECT_EQ(doc.at("op").as_string(), "stats");

  const JsonValue& f = doc.at("result").at("front");
  // 8 scripted lines + this stats request.
  EXPECT_EQ(f.at("requests").as_number(), 9.0);
  // Line 3 repeats line 2 verbatim; line 4 respells it; line 8 repeats
  // line 1.
  EXPECT_GE(f.at("cache").at("hits").as_number(), 3.0);
  EXPECT_GE(f.at("evaluations").as_number(), 4.0);

  const JsonValue& obs_doc = doc.at("result").at("obs");
  EXPECT_EQ(obs_doc.at("schema").as_string(), "hpcem.obs_stats");
  bool saw_hit_counter = false;
  bool saw_error_counter = false;
  for (const JsonValue& c : obs_doc.at("counters").as_array()) {
    const std::string& name = c.at("name").as_string();
    if (name == "serve.cache.hit") {
      saw_hit_counter = true;
      EXPECT_GE(c.at("value").as_number(), 3.0);
    }
    if (name == "serve.request.errors") {
      saw_error_counter = true;
      // The compare against a missing scenario and the parse error.
      EXPECT_EQ(c.at("value").as_number(), 2.0);
    }
    // The admin filter: only serve-tier metrics are exposed.
    EXPECT_EQ(name.rfind("serve.", 0), 0u);
  }
  EXPECT_TRUE(saw_hit_counter);
  EXPECT_TRUE(saw_error_counter);

  bool saw_request_hist = false;
  for (const JsonValue& h : obs_doc.at("histograms").as_array()) {
    if (h.at("name").as_string() == "serve.request.ns") {
      saw_request_hist = true;
      EXPECT_EQ(h.at("count").as_number(), 8.0);
      EXPECT_GT(h.at("p50").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(saw_request_hist);
}

TEST_F(ServeStatsTest, AdminCommandsAreNeverCached) {
  const ArtifactStore store = stats_store();
  ServeFront front(store, ServeOptions{});
  const std::string first = front.handle(R"({"op":"stats"})");
  const std::string second = front.handle(R"({"op":"stats"})");
  // A cached answer would repeat the first request count.
  EXPECT_NE(first, second);
  const FrontStats s = front.stats();
  EXPECT_EQ(s.cache.hits, 0u);
  EXPECT_EQ(s.cache.misses, 0u);
  EXPECT_EQ(s.cache.insertions, 0u);
  EXPECT_EQ(s.evaluations, 0u);
}

TEST_F(ServeStatsTest, QueriesMentioningAdminWordsAreStillCached) {
  const ArtifactStore store = stats_store();
  ServeFront front(store, ServeOptions{});
  // The id merely contains the word "stats": a real query, cached
  // normally.
  const std::string line = R"({"op":"list","id":"stats"})";
  const std::string first = front.handle(line);
  EXPECT_EQ(front.handle(line), first);
  const FrontStats s = front.stats();
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.cache.hits, 1u);
}

TEST_F(ServeStatsTest, TraceRetrievesOneRequestsRecords) {
  const ArtifactStore store = stats_store();
  ServeFront front(store, ServeOptions{});
  (void)front.handle(R"({"op":"list"})");
  (void)front.handle(
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw"})");

  const JsonValue doc =
      JsonValue::parse(front.handle(R"({"op":"trace","request":2})"));
  EXPECT_TRUE(doc.at("ok").as_bool());
  const JsonValue& result = doc.at("result");
  EXPECT_EQ(result.at("request").as_number(), 2.0);
  EXPECT_TRUE(result.at("found").as_bool());
  const auto& records = result.at("records").as_array();
  ASSERT_FALSE(records.empty());
  bool saw_handler_span = false;
  bool saw_store_lookup = false;
  for (const JsonValue& r : records) {
    const std::string& name = r.at("name").as_string();
    if (name == "serve.query.window_aggregate") saw_handler_span = true;
    if (name == "serve.store.at") saw_store_lookup = true;
  }
  EXPECT_TRUE(saw_handler_span);
  EXPECT_TRUE(saw_store_lookup);

  const JsonValue missing =
      JsonValue::parse(front.handle(R"({"op":"trace","request":999})"));
  EXPECT_FALSE(missing.at("result").at("found").as_bool());
  EXPECT_TRUE(missing.at("result").at("records").as_array().empty());
}

TEST_F(ServeStatsTest, MalformedTraceRequestsAreParseErrors) {
  const ArtifactStore store = stats_store();
  ServeFront front(store, ServeOptions{});
  const std::string response =
      front.handle(R"({"op":"trace","request":0.5})");
  EXPECT_EQ(response.rfind(R"({"ok":false)", 0), 0u);
}

TEST_F(ServeStatsTest, QueryErrorTriggersPostmortem) {
  const ArtifactStore store = stats_store();
  ServeOptions options;
  options.postmortem_path =
      testing::TempDir() + "hpcem_serve_stats_pm_error.json";
  ServeFront front(store, options);
  (void)front.handle(R"({"op":"list"})");
  EXPECT_EQ(front.stats().postmortems, 0u);  // success: no dump
  (void)front.handle(R"({"op":"compare","a":"s","b":"missing"})");
  EXPECT_EQ(front.stats().postmortems, 1u);

  std::ifstream in(options.postmortem_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  EXPECT_EQ(doc.at("schema").as_string(), "hpcem.postmortem");
  EXPECT_EQ(doc.at("trigger").at("reason").as_string(), "query_error");
  EXPECT_EQ(doc.at("trigger").at("request").as_number(), 2.0);
  EXPECT_FALSE(doc.at("threads").as_array().empty());
}

TEST_F(ServeStatsTest, LatencyBreachTriggersPostmortem) {
  const ArtifactStore store = stats_store();
  ServeOptions options;
  options.postmortem_path =
      testing::TempDir() + "hpcem_serve_stats_pm_slow.json";
  // Deterministic stamps tick once per clock read, so every request
  // "lasts" at least one tick: threshold 1 breaches on the first request.
  options.slow_request_threshold = 1;
  ServeFront front(store, options);
  (void)front.handle(R"({"op":"list"})");
  EXPECT_EQ(front.stats().postmortems, 1u);

  std::ifstream in(options.postmortem_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue doc = JsonValue::parse(buf.str());
  EXPECT_EQ(doc.at("trigger").at("reason").as_string(),
            "latency_threshold");
  EXPECT_EQ(doc.at("trigger").at("threshold").as_number(), 1.0);
}

TEST_F(ServeStatsTest, StatsDocumentCountsPostmortems) {
  const ArtifactStore store = stats_store();
  ServeOptions options;
  options.postmortem_path =
      testing::TempDir() + "hpcem_serve_stats_pm_count.json";
  ServeFront front(store, options);
  (void)front.handle(R"(}{ parse error)");
  const JsonValue doc =
      JsonValue::parse(front.handle(R"({"op":"stats"})"));
  EXPECT_EQ(doc.at("result").at("front").at("postmortems").as_number(),
            1.0);
}

// Concurrency coverage (TEST(ServeFront, ...) so the CI TSan filter picks
// these up): response bytes with obs on, and the flight ring + coalesce
// events under real parallelism.

TEST(ServeFront, StreamBytesAreWorkerCountInvariantWithObsOn) {
  obs::reset_collected();
  obs::set_enabled(true);
  {
    const ArtifactStore store = stats_store();
    std::string stream;
    for (int pass = 0; pass < 3; ++pass) {
      for (const std::string& line : scripted_sequence()) {
        stream += line + "\n";
      }
    }
    std::string golden;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
      ServeOptions options;
      options.workers = workers;
      ServeFront front(store, options);
      std::istringstream in(stream);
      std::ostringstream out;
      (void)front.serve_stream(in, out);
      if (golden.empty()) {
        golden = out.str();
      } else {
        EXPECT_EQ(out.str(), golden);
      }
    }
  }
  obs::set_enabled(false);
  obs::reset_collected();
}

TEST(ServeFront, CoalescedWaitersRecordTheOwnersRequestId) {
  obs::reset_collected();
  obs::set_enabled(true);
  obs::set_deterministic(true);
  {
    constexpr std::size_t kClients = 4;
    const ArtifactStore store = stats_store();
    ServeOptions options;
    options.cache_entries = 0;  // force every arrival into coalescing
    ServeFront front(store, options);

    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
    ServeFrontTestAccess::set_evaluator(
        front, [&](const QueryRequest& request) {
          // Hold the evaluation open until every other client has arrived
          // and is blocked on the in-flight entry.
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return release; });
          return render_response(request, JsonValue::object());
        });

    std::vector<std::thread> clients;
    clients.reserve(kClients);
    const std::string line = R"({"op":"list"})";
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&] { (void)front.handle(line); });
    }
    // The waiters increment the coalesced counter before blocking on the
    // in-flight entry, so this poll observes all of them arriving.
    while (front.stats().coalesced < kClients - 1) {
      std::this_thread::yield();
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    for (auto& t : clients) t.join();

    const FrontStats s = front.stats();
    EXPECT_EQ(s.requests, kClients);
    EXPECT_EQ(s.evaluations, 1u);
    EXPECT_EQ(s.coalesced, kClients - 1);

    // Every waiter logged a serve.coalesce.wait instant whose aux word is
    // the owning request's id.
    const obs::FlightSnapshot snap = obs::flight_snapshot();
    std::size_t waits = 0;
    std::uint64_t owner = 0;
    for (const obs::FlightThreadTrace& thread : snap.threads) {
      for (const obs::FlightRecord& rec : thread.records) {
        if (rec.name != "serve.coalesce.wait") continue;
        ++waits;
        if (owner == 0) owner = rec.end;
        EXPECT_EQ(rec.end, owner);  // all piggybacked on the same owner
        EXPECT_NE(rec.request, rec.end);  // a waiter is not the owner
      }
    }
    EXPECT_EQ(waits, kClients - 1);
    EXPECT_GE(owner, 1u);
    EXPECT_LE(owner, static_cast<std::uint64_t>(kClients));
  }
  obs::set_enabled(false);
  obs::set_deterministic(false);
  obs::reset_collected();
}

}  // namespace
}  // namespace hpcem::serve
