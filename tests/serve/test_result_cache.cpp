// ResultCache: LRU semantics, sharding and thread safety (the concurrent
// tests are part of the TSan CI job).
#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace hpcem::serve {
namespace {

TEST(ResultCache, PutGetAndMissAccounting) {
  ResultCache cache(8, 1);
  EXPECT_FALSE(cache.get("a").has_value());
  cache.put("a", "alpha");
  const auto hit = cache.get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "alpha");

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  ResultCache cache(3, 1);  // one shard: exact LRU order
  cache.put("a", "1");
  cache.put("b", "2");
  cache.put("c", "3");
  // Touch "a" so "b" is now the coldest entry.
  (void)cache.get("a");
  cache.put("d", "4");
  EXPECT_FALSE(cache.get("b").has_value());
  EXPECT_TRUE(cache.get("a").has_value());
  EXPECT_TRUE(cache.get("c").has_value());
  EXPECT_TRUE(cache.get("d").has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
}

TEST(ResultCache, PutOfExistingKeyUpdatesInPlace) {
  ResultCache cache(2, 1);
  cache.put("k", "old");
  cache.put("k", "new");
  EXPECT_EQ(*cache.get("k"), "new");
  EXPECT_EQ(cache.stats().insertions, 1u);  // update, not insert
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ShardCountRoundsToPowerOfTwo) {
  EXPECT_EQ(ResultCache(16, 1).shard_count(), 1u);
  EXPECT_EQ(ResultCache(16, 3).shard_count(), 4u);
  EXPECT_EQ(ResultCache(16, 8).shard_count(), 8u);
  EXPECT_THROW(ResultCache(0, 1), InvalidArgument);
  EXPECT_THROW(ResultCache(1, 0), InvalidArgument);
}

TEST(ResultCache, HashIsPlatformStableFnv1a) {
  // Fixed FNV-1a vectors: the shard a key lands on must never depend on
  // the standard library's std::hash.
  EXPECT_EQ(ResultCache::hash_key(""), 14695981039346656037ULL);
  EXPECT_EQ(ResultCache::hash_key("a"), 12638187200555641996ULL);
  EXPECT_EQ(ResultCache::hash_key("hpcem"), 15411609209418887560ULL);
}

TEST(ResultCache, CapacitySpreadsAcrossShards) {
  ResultCache cache(64, 8);
  for (int i = 0; i < 200; ++i) {
    cache.put("key-" + std::to_string(i), std::string(100, 'x'));
  }
  // Per-shard bound is ceil(64/8) = 8, so at most 64 entries survive.
  EXPECT_LE(cache.stats().entries, 64u);
  EXPECT_GT(cache.stats().evictions, 0u);
}

// Concurrent hammer: many threads mixing gets and puts over an
// overlapping key space.  Correctness here is "TSan-clean and every hit
// returns the exact value stored for that key".
TEST(ResultCache, ConcurrentGetPutIsSafe) {
  ResultCache cache(128, 8);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "k" + std::to_string((i * 7 + t) % 300);
        if (const auto hit = cache.get(key)) {
          // A hit must carry the value every writer stores for this key.
          ASSERT_EQ(*hit, "v" + key);
        } else {
          cache.put(key, "v" + key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.entries, 128u);
}

}  // namespace
}  // namespace hpcem::serve
