// ArtifactStore: ingest, duplicate rejection, columnisation and windowed
// aggregates — including the v1/v2 (aggregate-only) round trip.
#include "serve/artifact_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "telemetry/timeseries.hpp"

namespace hpcem::serve {
namespace {

TimeSeries ramp_series(std::size_t n, double t0 = 0.0, double dt = 600.0) {
  TimeSeries s("kW");
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) * dt;
    s.append(SimTime(t), 3000.0 + 10.0 * static_cast<double>(i % 37));
  }
  return s;
}

RunArtifact make_artifact(const std::string& scenario, std::size_t samples,
                          bool with_series) {
  RunArtifact a;
  a.scenario = scenario;
  a.source = "simulation";
  a.machine = "archer2";
  const TimeSeries s = ramp_series(samples);
  a.window_start = s.start_time();
  a.window_end = s.end_time();
  a.headline.mean_kw = s.summary().mean;
  a.headline.window_energy_kwh = s.integrate() / 3600.0;
  a.headline.completed_jobs = 100.0;
  a.channels.push_back(aggregate_channel("cabinet_kw", s, with_series));
  return a;
}

TEST(ArtifactStore, IngestsAndColumnisesSeries) {
  ArtifactStore store;
  store.add(make_artifact("base", 200, true));

  ASSERT_EQ(store.scenario_count(), 1u);
  const StoredScenario& s = store.at("base");
  ASSERT_EQ(s.channels.size(), 1u);
  const StoredChannel& ch = s.channels[0];
  EXPECT_TRUE(ch.has_series());
  EXPECT_EQ(ch.times.size(), 200u);
  EXPECT_EQ(ch.values.size(), 200u);
  // Prefix arrays carry one extra slot (the empty prefix).
  EXPECT_EQ(ch.prefix_value_sum.size(), 201u);
  EXPECT_EQ(ch.prefix_integral.size(), 201u);
  EXPECT_DOUBLE_EQ(ch.prefix_value_sum.front(), 0.0);
  EXPECT_EQ(store.total_series_samples(), 200u);
}

TEST(ArtifactStore, RoundTripsThroughJson) {
  const RunArtifact a = make_artifact("rt", 64, true);
  const RunArtifact back = RunArtifact::from_json_text(a.to_json_text());
  ASSERT_EQ(back.channels.size(), 1u);
  ASSERT_EQ(back.channels[0].series.size(), 64u);

  ArtifactStore store;
  store.add(back);
  const StoredChannel& ch = store.at("rt").channels[0];
  const TimeSeries ref = ramp_series(64);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(ch.times[i], ref[i].time.sec());
    EXPECT_DOUBLE_EQ(ch.values[i], ref[i].value);
  }
}

TEST(ArtifactStore, IngestsAggregateOnlyV1AndV2Documents) {
  // A v3 writer round-trips; v1/v2 documents are the same JSON with an
  // older schema stamp and no series/obs members.
  RunArtifact a = make_artifact("old", 50, false);
  std::string v1 = a.to_json_text();
  const std::string stamp = "\"schema_version\": 3";
  const auto pos = v1.find(stamp);
  ASSERT_NE(pos, std::string::npos);
  v1.replace(pos, stamp.size(), "\"schema_version\": 1");

  ArtifactStore store;
  store.add(RunArtifact::from_json_text(v1));
  const StoredChannel& ch = store.at("old").channels[0];
  EXPECT_FALSE(ch.has_series());
  EXPECT_EQ(ch.aggregate.samples, 50u);
  EXPECT_EQ(store.total_series_samples(), 0u);
  // Sub-window queries need a series.
  EXPECT_THROW(ArtifactStore::window_aggregate(ch, SimTime(0.0),
                                               SimTime(1000.0)),
               StateError);
}

TEST(ArtifactStore, RejectsDuplicateScenarioIds) {
  ArtifactStore store;
  store.add(make_artifact("dup", 10, false), "first.artifact.json");
  try {
    store.add(make_artifact("dup", 10, false), "second.artifact.json");
    FAIL() << "expected DuplicateScenarioError";
  } catch (const DuplicateScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dup"), std::string::npos);
    EXPECT_NE(what.find("first.artifact.json"), std::string::npos);
    EXPECT_NE(what.find("second.artifact.json"), std::string::npos);
    // One line: tools print it verbatim as `error: ...`.
    EXPECT_EQ(what.find('\n'), std::string::npos);
  }
  // The store is unchanged by the failed ingest.
  EXPECT_EQ(store.scenario_count(), 1u);
  EXPECT_EQ(store.at("dup").source_file, "first.artifact.json");
}

TEST(ArtifactStore, IterationOrderIsLexicographicNotIngestOrder) {
  ArtifactStore forward;
  forward.add(make_artifact("beta", 8, false));
  forward.add(make_artifact("alpha", 8, false));
  ArtifactStore reverse;
  reverse.add(make_artifact("alpha", 8, false));
  reverse.add(make_artifact("beta", 8, false));

  const std::vector<std::string> expected{"alpha", "beta"};
  EXPECT_EQ(forward.scenario_names(), expected);
  EXPECT_EQ(reverse.scenario_names(), expected);
  EXPECT_EQ(forward.at(0).name, "alpha");
  EXPECT_EQ(forward.at(1).name, "beta");
}

TEST(ArtifactStore, WindowAggregateMatchesDirectComputation) {
  const TimeSeries ref = ramp_series(300);
  ArtifactStore store;
  store.add(make_artifact("w", 300, true));
  const StoredChannel& ch = store.at("w").channels[0];

  const SimTime start(60000.0);
  const SimTime end(120000.0);
  const WindowAggregate w = ArtifactStore::window_aggregate(ch, start, end);

  // Reference: scan the raw samples.
  std::size_t n = 0;
  double sum = 0.0;
  double mn = 1e300;
  double mx = -1e300;
  for (const auto& s : ref.samples()) {
    if (s.time >= start && s.time < end) {
      ++n;
      sum += s.value;
      mn = std::min(mn, s.value);
      mx = std::max(mx, s.value);
    }
  }
  ASSERT_GT(n, 0u);
  EXPECT_EQ(w.samples, n);
  EXPECT_NEAR(w.mean, sum / static_cast<double>(n), 1e-9);
  EXPECT_DOUBLE_EQ(w.min, mn);
  EXPECT_DOUBLE_EQ(w.max, mx);
  // The whole-window integral equals the streaming aggregate's.
  const WindowAggregate whole = ArtifactStore::window_aggregate(
      ch, SimTime(0.0), SimTime(1e18));
  EXPECT_NEAR(whole.integral, ch.aggregate.integral,
              1e-6 * std::abs(ch.aggregate.integral));
  EXPECT_EQ(whole.samples, 300u);
}

TEST(ArtifactStore, EmptyWindowReportsZeroSamples) {
  ArtifactStore store;
  store.add(make_artifact("e", 20, true));
  const StoredChannel& ch = store.at("e").channels[0];
  const WindowAggregate w =
      ArtifactStore::window_aggregate(ch, SimTime(1e9), SimTime(2e9));
  EXPECT_EQ(w.samples, 0u);
}

TEST(ArtifactStore, LoadDirectoryIngestsSortedAndRejectsDuplicates) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "hpcem_store_test_dir";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto write = [&](const std::string& stem, const RunArtifact& a) {
    std::ofstream out(dir / (stem + ".artifact.json"));
    out << a.to_json_text();
  };
  write("b_second", make_artifact("s2", 16, true));
  write("a_first", make_artifact("s1", 16, false));
  std::ofstream(dir / "notes.txt") << "ignored";

  ArtifactStore store;
  EXPECT_EQ(store.load_directory(dir.string()), 2u);
  EXPECT_EQ(store.scenario_count(), 2u);
  // Provenance records the actual file each scenario came from.
  EXPECT_NE(store.at("s1").source_file.find("a_first"), std::string::npos);

  write("c_dup", make_artifact("s1", 16, false));
  ArtifactStore fresh;
  EXPECT_THROW(fresh.load_directory(dir.string()), DuplicateScenarioError);
  fs::remove_all(dir);
}

TEST(ArtifactStore, FindChannelIsExact) {
  ArtifactStore store;
  RunArtifact a = make_artifact("m", 8, false);
  const TimeSeries s = ramp_series(8);
  a.channels.push_back(aggregate_channel("utilisation", s, false));
  a.channels.push_back(aggregate_channel("aaa", s, false));
  store.add(a);
  const StoredScenario& sc = store.at("m");
  // Channels are sorted by name regardless of producer order.
  ASSERT_EQ(sc.channels.size(), 3u);
  EXPECT_EQ(sc.channels[0].name, "aaa");
  EXPECT_EQ(sc.channels[2].name, "utilisation");
  EXPECT_NE(sc.find_channel("cabinet_kw"), nullptr);
  EXPECT_EQ(sc.find_channel("cabinet"), nullptr);
  EXPECT_EQ(sc.find_channel("zzz"), nullptr);
}

TEST(ArtifactStore, UnknownScenarioLookups) {
  ArtifactStore store;
  store.add(make_artifact("only", 8, false));
  EXPECT_EQ(store.find("missing"), nullptr);
  EXPECT_THROW(store.at("missing"), InvalidArgument);
}

}  // namespace
}  // namespace hpcem::serve
