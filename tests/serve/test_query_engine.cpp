// QueryEngine: the five operations, request canonicalization, and the
// error envelope.
#include "serve/query.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "telemetry/timeseries.hpp"
#include "util/json.hpp"

namespace hpcem::serve {
namespace {

constexpr double kDay = 86400.0;

// A constant-power scenario: energy and emissions have closed forms.
RunArtifact flat_artifact(const std::string& scenario, double kw,
                          double days, double jobs,
                          bool with_series = true) {
  RunArtifact a;
  a.scenario = scenario;
  a.source = "simulation";
  a.machine = "archer2";
  TimeSeries s("kW");
  const auto n = static_cast<std::size_t>(days * 24.0) + 1;  // hourly
  for (std::size_t i = 0; i < n; ++i) {
    s.append(SimTime(static_cast<double>(i) * 3600.0), kw);
  }
  a.window_start = s.start_time();
  a.window_end = s.end_time();
  a.headline.mean_kw = kw;
  a.headline.mean_utilisation = 0.9;
  a.headline.window_energy_kwh = s.integrate() / 3600.0;
  a.headline.completed_jobs = jobs;
  a.channels.push_back(aggregate_channel("cabinet_kw", s, with_series));
  return a;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.add(flat_artifact("base", 3000.0, 10.0, 20000.0));
    store_.add(flat_artifact("eco", 2400.0, 10.0, 18000.0));
    store_.add(flat_artifact("oldstyle", 3000.0, 10.0, 15000.0,
                             /*with_series=*/false));
  }
  ArtifactStore store_;
};

JsonValue result_of(const QueryEngine& engine, const std::string& line) {
  return engine.evaluate(QueryRequest::from_json_text(line));
}

TEST_F(QueryEngineTest, ListInventoriesEveryScenario) {
  const QueryEngine engine(store_);
  const JsonValue r = result_of(engine, R"({"op":"list"})");
  const auto& scenarios = r.at("scenarios").as_array();
  ASSERT_EQ(scenarios.size(), 3u);
  EXPECT_EQ(scenarios[0].at("scenario").as_string(), "base");
  EXPECT_EQ(scenarios[1].at("scenario").as_string(), "eco");
  EXPECT_EQ(scenarios[2].at("scenario").as_string(), "oldstyle");
  EXPECT_TRUE(
      scenarios[0].at("channels").as_array()[0].at("has_series").as_bool());
  EXPECT_FALSE(
      scenarios[2].at("channels").as_array()[0].at("has_series").as_bool());
}

TEST_F(QueryEngineTest, WindowAggregateOnConstantPower) {
  const QueryEngine engine(store_);
  // Two whole days of a flat 3000 kW channel.
  const JsonValue r = result_of(
      engine,
      R"({"op":"window_aggregate","scenario":"base","channel":"cabinet_kw",)"
      R"("start":86400,"end":259200})");
  EXPECT_DOUBLE_EQ(r.at("mean").as_number(), 3000.0);
  EXPECT_DOUBLE_EQ(r.at("min").as_number(), 3000.0);
  EXPECT_DOUBLE_EQ(r.at("max").as_number(), 3000.0);
  // Hourly samples from 86400 to 255600 inclusive (end is exclusive):
  // 48 samples spanning 47 h of 3000 kW.
  EXPECT_EQ(static_cast<int>(r.at("samples").as_number()), 48);
  EXPECT_NEAR(r.at("energy_kwh").as_number(), 3000.0 * 47.0, 1e-6);
}

TEST_F(QueryEngineTest, WindowAggregateAcceptsIsoTimestamps) {
  const QueryEngine engine(store_);
  // Epoch 86400 == 1970-01-02 00:00; the ISO spelling answers identically.
  const JsonValue num = result_of(
      engine,
      R"({"op":"window_aggregate","scenario":"base","channel":"cabinet_kw",)"
      R"("start":86400,"end":259200})");
  const JsonValue iso = result_of(
      engine,
      R"({"op":"window_aggregate","scenario":"base","channel":"cabinet_kw",)"
      R"("start":"1970-01-02","end":"1970-01-04"})");
  EXPECT_EQ(num.dump(0), iso.dump(0));
}

TEST_F(QueryEngineTest, WholeWindowAggregateWorksWithoutSeries) {
  const QueryEngine engine(store_);
  const JsonValue r = result_of(
      engine,
      R"({"op":"window_aggregate","scenario":"oldstyle",)"
      R"("channel":"cabinet_kw"})");
  EXPECT_DOUBLE_EQ(r.at("mean").as_number(), 3000.0);
  EXPECT_EQ(static_cast<int>(r.at("samples").as_number()), 241);
  // ...but a sub-window needs the stored series.
  EXPECT_THROW(
      result_of(engine,
                R"({"op":"window_aggregate","scenario":"oldstyle",)"
                R"("channel":"cabinet_kw","start":86400,"end":172800})"),
      StateError);
}

TEST_F(QueryEngineTest, RegimesSplitsALinearCrossingExactly) {
  const QueryEngine engine(store_);
  // Intensity ramps 0 -> 130 g/kWh over [0, 130000 s]: the §2 thresholds
  // at 30 and 100 are crossed at t = 30000 and t = 100000 exactly.
  const JsonValue r = result_of(
      engine,
      R"({"op":"regimes","scenario":"base","start":0,"end":130000,)"
      R"("intensity":{"points":[[0,0],[130000,130]]}})");
  EXPECT_NEAR(r.at("seconds").at("embodied_dominated").as_number(), 30000.0,
              1e-6);
  EXPECT_NEAR(r.at("seconds").at("balanced").as_number(), 70000.0, 1e-6);
  EXPECT_NEAR(r.at("seconds").at("operational_dominated").as_number(),
              30000.0, 1e-6);
  EXPECT_EQ(r.at("dominant").as_string(), "balanced");
  EXPECT_NEAR(r.at("mean_intensity_g_per_kwh").as_number(), 65.0, 1e-9);
}

TEST_F(QueryEngineTest, RegimesConstantIntensityIsOneRegime) {
  const QueryEngine engine(store_);
  const JsonValue r = result_of(
      engine,
      R"({"op":"regimes","scenario":"base",)"
      R"("intensity":{"constant_g_per_kwh":250}})");
  EXPECT_DOUBLE_EQ(r.at("shares").at("operational_dominated").as_number(),
                   1.0);
  EXPECT_EQ(r.at("dominant").as_string(), "operational_dominated");
  EXPECT_EQ(r.at("strategy").as_string(), "energy-efficiency");
}

TEST_F(QueryEngineTest, CompareReportsJobsPerKwhBothWays) {
  const QueryEngine engine(store_);
  const JsonValue r =
      result_of(engine, R"({"op":"compare","a":"base","b":"eco"})");
  // base: 20000 jobs / 720000 kWh; eco: 18000 / 576000 — eco wins.
  const double ja = 20000.0 / (3000.0 * 240.0);
  const double jb = 18000.0 / (2400.0 * 240.0);
  EXPECT_NEAR(r.at("a").at("jobs_per_kwh").as_number(), ja, 1e-12);
  EXPECT_NEAR(r.at("b").at("jobs_per_kwh").as_number(), jb, 1e-12);
  EXPECT_NEAR(r.at("jobs_per_kwh_ratio").as_number(), jb / ja, 1e-12);
  EXPECT_EQ(r.at("more_efficient").as_string(), "b");
}

TEST_F(QueryEngineTest, WhatIfConstantIntensityHasClosedForm) {
  const QueryEngine engine(store_);
  const JsonValue r = result_of(
      engine,
      R"({"op":"whatif","scenario":"base","channel":"cabinet_kw",)"
      R"("intensity":{"constant_g_per_kwh":100},)"
      R"("scope3":{"total_tonnes":1461,"lifetime_years":4}})");
  // 3000 kW for 10 days = 720 MWh; at 100 g/kWh -> 72 t scope 2.
  const double energy_kwh = 3000.0 * 240.0;
  EXPECT_NEAR(r.at("energy_kwh").as_number(), energy_kwh, 1e-6);
  EXPECT_NEAR(r.at("scope2_tonnes").as_number(), 72.0, 1e-9);
  // 1461 t over 4 years = 1 t/day -> 10 t over the 10-day span.
  EXPECT_NEAR(r.at("scope3_tonnes").as_number(),
              (1461.0 / 4.0) * (10.0 * kDay) / (365.25 * kDay), 1e-9);
  EXPECT_NEAR(r.at("scope2_share").as_number(), 72.0 / 82.0, 1e-9);
  EXPECT_EQ(r.at("regime").as_string(), "balanced");
}

TEST_F(QueryEngineTest, WhatIfMatchesRegimeAndStrategyVocabulary) {
  const QueryEngine engine(store_);
  const JsonValue low = result_of(
      engine,
      R"({"op":"whatif","scenario":"base","channel":"cabinet_kw",)"
      R"("intensity":{"constant_g_per_kwh":5}})");
  EXPECT_EQ(low.at("regime").as_string(), "embodied_dominated");
  EXPECT_EQ(low.at("strategy").as_string(), "performance");
}

TEST_F(QueryEngineTest, WhatIfAggregateOnlyNeedsConstantWholeWindow) {
  const QueryEngine engine(store_);
  const JsonValue r = result_of(
      engine,
      R"({"op":"whatif","scenario":"oldstyle","channel":"cabinet_kw",)"
      R"("intensity":{"constant_g_per_kwh":100}})");
  EXPECT_NEAR(r.at("scope2_tonnes").as_number(), 72.0, 1e-9);
  EXPECT_THROW(
      result_of(engine,
                R"({"op":"whatif","scenario":"oldstyle",)"
                R"("channel":"cabinet_kw",)"
                R"("intensity":{"points":[[0,10],[864000,200]]}})"),
      StateError);
}

TEST_F(QueryEngineTest, DomainErrorsAreTypedAndNamed) {
  const QueryEngine engine(store_);
  EXPECT_THROW(result_of(engine, R"({"op":"window_aggregate",)"
                                 R"("scenario":"nope","channel":"x"})"),
               InvalidArgument);
  EXPECT_THROW(result_of(engine, R"({"op":"window_aggregate",)"
                                 R"("scenario":"base","channel":"nope"})"),
               InvalidArgument);
  EXPECT_THROW(
      result_of(engine, R"({"op":"whatif","scenario":"base",)"
                        R"("channel":"cabinet_kw","intensity":{}})"),
      ParseError);
}

TEST(QueryRequest, CanonicalKeyCollapsesSpellings) {
  // Different member order, ISO vs epoch times, same question.
  const auto a = QueryRequest::from_json_text(
      R"({"op":"window_aggregate","scenario":"s","channel":"c",)"
      R"("start":86400,"end":172800})");
  const auto b = QueryRequest::from_json_text(
      R"({"end":"1970-01-03","channel":"c","start":"1970-01-02",)"
      R"("scenario":"s","op":"window_aggregate"})");
  EXPECT_EQ(a.canonical_key(), b.canonical_key());

  // The id is part of the question: responses echo it.
  const auto c = QueryRequest::from_json_text(
      R"({"op":"window_aggregate","scenario":"s","channel":"c",)"
      R"("start":86400,"end":172800,"id":"q1"})");
  EXPECT_NE(a.canonical_key(), c.canonical_key());

  // Canonicalization is idempotent: parsing a canonical rendering yields
  // the same canonical rendering (the invariant the verbatim-line cache
  // level relies on).
  EXPECT_EQ(QueryRequest::from_json_text(a.canonical_key()).canonical_key(),
            a.canonical_key());
}

TEST(QueryRequest, RejectsUnknownMembersAndBadShapes) {
  EXPECT_THROW(QueryRequest::from_json_text(R"({"op":"teleport"})"),
               ParseError);
  EXPECT_THROW(
      QueryRequest::from_json_text(R"({"op":"list","scenario":"x"})"),
      ParseError);
  EXPECT_THROW(QueryRequest::from_json_text(
                   R"({"op":"window_aggregate","scenario":"s",)"
                   R"("channel":"c","start":10,"end":5})"),
               ParseError);
  EXPECT_THROW(QueryRequest::from_json_text(
                   R"({"op":"regimes","scenario":"s","intensity":)"
                   R"({"points":[[10,1],[5,2]]}})"),
               ParseError);
  EXPECT_THROW(QueryRequest::from_json_text(
                   R"({"op":"regimes","scenario":"s","intensity":)"
                   R"({"constant_g_per_kwh":1,"points":[[0,1]]}})"),
               ParseError);
}

TEST_F(QueryEngineTest, HandleLineWrapsOkAndErrorEnvelopes) {
  const QueryEngine engine(store_);
  const std::string ok =
      engine.handle_line(R"({"op":"list","id":"tag-7"})");
  EXPECT_EQ(ok.find(R"({"ok":true,"op":"list","id":"tag-7","result":)"), 0u);
  EXPECT_EQ(ok.find('\n'), std::string::npos);

  const std::string bad_json = engine.handle_line("{not json");
  EXPECT_EQ(bad_json.find(R"({"ok":false,"error":)"), 0u);

  // Domain errors echo the request id.
  const std::string bad_scenario = engine.handle_line(
      R"({"op":"compare","a":"nope","b":"base","id":"cmp"})");
  EXPECT_EQ(bad_scenario.find(R"({"ok":false,"id":"cmp","error":)"), 0u);
}

TEST_F(QueryEngineTest, InlineSpecOverrideMatchesWireSpelling) {
  const QueryEngine engine(store_);
  // The same what-if phrased in the scenario-spec grammar and in the
  // wire-level members must canonicalize — and answer — identically.
  const auto spec_phrased = QueryRequest::from_json_text(
      R"({"op":"whatif","scenario":"base","channel":"cabinet_kw",)"
      R"("spec":{"grid":{"constant_g_per_kwh":100},)"
      R"("scope3":{"total_tonnes":1461,"lifetime_years":4}}})");
  const auto wire_phrased = QueryRequest::from_json_text(
      R"({"op":"whatif","scenario":"base","channel":"cabinet_kw",)"
      R"("intensity":{"constant_g_per_kwh":100},)"
      R"("scope3":{"total_tonnes":1461,"lifetime_years":4}})");
  EXPECT_EQ(spec_phrased.canonical_key(), wire_phrased.canonical_key());
  EXPECT_EQ(engine.evaluate(spec_phrased).dump(0),
            engine.evaluate(wire_phrased).dump(0));
}

TEST_F(QueryEngineTest, InlineSpecOverrideAcceptsIsoPointTimes) {
  const QueryEngine engine(store_);
  // The spec grammar's grid points accept ISO date-time strings; the
  // wire-level intensity takes the resolved epochs.
  const auto spec_phrased = QueryRequest::from_json_text(
      R"({"op":"regimes","scenario":"base","start":0,"end":130000,)"
      R"("spec":{"grid":{"points":[[0,0],[130000,130]]}}})");
  const JsonValue r = engine.evaluate(spec_phrased);
  EXPECT_NEAR(r.at("seconds").at("balanced").as_number(), 70000.0, 1e-6);
}

TEST(QueryRequest, SpecOverrideValidation) {
  // spec excludes the wire-level members it resolves into.
  EXPECT_THROW(QueryRequest::from_json_text(
                   R"({"op":"whatif","scenario":"s","channel":"c",)"
                   R"("intensity":{"constant_g_per_kwh":1},)"
                   R"("spec":{"grid":{"constant_g_per_kwh":2}}})"),
               ParseError);
  // A spec with no grid leaves regimes/whatif without an intensity.
  EXPECT_THROW(QueryRequest::from_json_text(
                   R"({"op":"whatif","scenario":"s","channel":"c",)"
                   R"("spec":{"scope3":{"total_tonnes":1,)"
                   R"("lifetime_years":1}}})"),
               ParseError);
  // Errors inside the fragment carry scenario-schema paths.
  try {
    (void)QueryRequest::from_json_text(
        R"({"op":"regimes","scenario":"s","spec":{"policy":"eco"}})");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), "spec: $.spec.policy: unknown member");
  }
  // list/compare/window_aggregate do not take a spec member.
  EXPECT_THROW(QueryRequest::from_json_text(
                   R"({"op":"list","spec":{"grid":)"
                   R"({"constant_g_per_kwh":1}}})"),
               ParseError);
}

TEST_F(QueryEngineTest, ResponsesAreByteStableAcrossRepeats) {
  const QueryEngine engine(store_);
  const std::string line =
      R"({"op":"whatif","scenario":"eco","channel":"cabinet_kw",)"
      R"("intensity":{"points":[[0,20],[864000,120]]}})";
  const std::string first = engine.handle_line(line);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(engine.handle_line(line), first);
}

}  // namespace
}  // namespace hpcem::serve
