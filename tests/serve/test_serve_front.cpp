// ServeFront: caching, request coalescing under concurrency, backpressure
// and byte-determinism across worker counts.  The coalescing tests run
// under TSan in CI.
#include "serve/front.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "telemetry/timeseries.hpp"

namespace hpcem::serve {

/// Test seam: swap the front's evaluator so coalescing can be pinned down
/// without depending on real engine timings.
class ServeFrontTestAccess {
 public:
  static void set_evaluator(ServeFront& front, ServeFront::Evaluator e) {
    front.evaluator_ = std::move(e);
  }
};

namespace {

ArtifactStore small_store() {
  RunArtifact a;
  a.scenario = "s";
  a.source = "simulation";
  TimeSeries series("kW");
  for (int i = 0; i <= 240; ++i) {
    series.append(SimTime(i * 3600.0),
                  3000.0 + 200.0 * ((i % 24) >= 8 && (i % 24) < 18));
  }
  a.window_start = series.start_time();
  a.window_end = series.end_time();
  a.headline.mean_kw = series.summary().mean;
  a.headline.window_energy_kwh = series.integrate() / 3600.0;
  a.headline.completed_jobs = 5000.0;
  a.channels.push_back(
      aggregate_channel("cabinet_kw", series, /*include_series=*/true));
  ArtifactStore store;
  store.add(a);
  return store;
}

std::vector<std::string> request_mix() {
  return {
      R"({"op":"list"})",
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw"})",
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw",)"
      R"("start":86400,"end":432000})",
      R"({"op":"regimes","scenario":"s",)"
      R"("intensity":{"points":[[0,10],[864000,150]]}})",
      R"({"op":"whatif","scenario":"s","channel":"cabinet_kw",)"
      R"("intensity":{"constant_g_per_kwh":80}})",
      R"({"op":"compare","a":"s","b":"missing"})",  // deterministic error
      R"(}{ not json)",                             // parse error
      R"({"op":"list","id":"tagged"})",
  };
}

TEST(ServeFront, CacheCollapsesRepeatsToOneEvaluation) {
  const ArtifactStore store = small_store();
  ServeFront front(store, ServeOptions{});
  const std::string line =
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw"})";
  const std::string first = front.handle(line);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(front.handle(line), first);

  const FrontStats s = front.stats();
  EXPECT_EQ(s.requests, 10u);
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.cache.hits, 9u);
}

TEST(ServeFront, CanonicalKeyUnifiesSpellingsInTheCache) {
  const ArtifactStore store = small_store();
  ServeFront front(store, ServeOptions{});
  const std::string spelling_a =
      R"({"op":"window_aggregate","scenario":"s","channel":"cabinet_kw",)"
      R"("start":86400,"end":172800})";
  const std::string spelling_b =
      R"({"channel":"cabinet_kw","end":"1970-01-03","op":)"
      R"("window_aggregate","scenario":"s","start":"1970-01-02"})";
  EXPECT_EQ(front.handle(spelling_a), front.handle(spelling_b));
  EXPECT_EQ(front.stats().evaluations, 1u);
  EXPECT_EQ(front.stats().cache.hits, 1u);
}

TEST(ServeFront, MalformedLinesAreNotCached) {
  const ArtifactStore store = small_store();
  ServeFront front(store, ServeOptions{});
  const std::string bad = "{ nope";
  const std::string first = front.handle(bad);
  EXPECT_EQ(front.handle(bad), first);  // still deterministic
  EXPECT_EQ(front.stats().cache.insertions, 0u);
  EXPECT_EQ(front.stats().evaluations, 0u);
}

// N concurrent identical requests must cost exactly one evaluation: the
// evaluator blocks until every other thread is waiting on the in-flight
// entry, so the test is deterministic, not timing-dependent.
TEST(ServeFront, CoalescesConcurrentIdenticalQueries) {
  constexpr std::size_t kClients = 6;
  const ArtifactStore store = small_store();
  ServeOptions options;
  options.cache_entries = 0;  // isolate coalescing from the cache
  ServeFront front(store, options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> evaluations{0};
  ServeFrontTestAccess::set_evaluator(
      front, [&](const QueryRequest& request) {
        evaluations.fetch_add(1);
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        return render_response(request, JsonValue("pinned"));
      });

  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&front, &responses, c] {
      responses[c] = front.handle(R"({"op":"list"})");
    });
  }
  // Wait until all non-owners are registered as coalesced waiters, then
  // let the single owner evaluation finish.
  while (front.stats().coalesced <
         static_cast<std::uint64_t>(kClients - 1)) {
    std::this_thread::yield();
  }
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (auto& t : clients) t.join();

  EXPECT_EQ(evaluations.load(), 1);
  for (const auto& r : responses) EXPECT_EQ(r, responses[0]);
  const FrontStats s = front.stats();
  EXPECT_EQ(s.requests, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.evaluations, 1u);
  EXPECT_EQ(s.coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ServeFront, SubmitAppliesBackpressureAndKeepsOrder) {
  const ArtifactStore store = small_store();
  ServeOptions options;
  options.workers = 2;
  options.max_queue = 4;  // far fewer than the requests below
  ServeFront front(store, options);

  const auto mix = request_mix();
  std::vector<std::future<std::string>> futures;
  futures.reserve(100);
  for (std::size_t i = 0; i < 100; ++i) {
    futures.push_back(front.submit(mix[i % mix.size()]));
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), front.handle(mix[i % mix.size()]));
  }
  EXPECT_LE(front.stats().peak_queue_depth, 4u);
}

// The tentpole invariant: one request stream, byte-identical response
// stream for any worker count, cache on or off.
TEST(ServeFront, StreamsAreByteIdenticalAcrossWorkerCounts) {
  const ArtifactStore store = small_store();
  std::string input;
  const auto mix = request_mix();
  for (int pass = 0; pass < 4; ++pass) {
    for (const auto& line : mix) input += line + "\n";
  }

  const auto run = [&](std::size_t workers, std::size_t cache_entries) {
    ServeOptions options;
    options.workers = workers;
    options.cache_entries = cache_entries;
    ServeFront front(store, options);
    std::istringstream in(input);
    std::ostringstream out;
    const std::size_t served = front.serve_stream(in, out);
    EXPECT_EQ(served, mix.size() * 4);
    return out.str();
  };

  const std::string reference = run(1, 4096);
  EXPECT_EQ(run(4, 4096), reference);
  EXPECT_EQ(run(16, 4096), reference);
  EXPECT_EQ(run(4, 0), reference);   // cache off
  EXPECT_EQ(run(16, 1), reference);  // pathologically small cache
  // One response line per request line.
  std::size_t lines = 0;
  for (const char ch : reference) lines += ch == '\n';
  EXPECT_EQ(lines, mix.size() * 4);
}

TEST(ServeFront, StatsExposeCacheAndQueueCounters) {
  const ArtifactStore store = small_store();
  ServeOptions options;
  options.workers = 4;
  ServeFront front(store, options);
  std::string input;
  const auto mix = request_mix();
  for (int pass = 0; pass < 3; ++pass) {
    for (const auto& line : mix) input += line + "\n";
  }
  std::istringstream in(input);
  std::ostringstream out;
  (void)front.serve_stream(in, out);

  const FrontStats s = front.stats();
  EXPECT_EQ(s.requests, mix.size() * 3);
  // Repeats of the 7 cacheable lines hit; the malformed line never does.
  EXPECT_GE(s.cache.hits, (mix.size() - 1) * 2);
  EXPECT_GE(s.peak_queue_depth, 1u);
}

}  // namespace
}  // namespace hpcem::serve
