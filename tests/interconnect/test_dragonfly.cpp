// Tests for the dragonfly topology and fabric power.
#include <gtest/gtest.h>

#include <set>

#include "interconnect/dragonfly.hpp"
#include "util/error.hpp"

namespace hpcem {
namespace {

Dragonfly archer2_fabric() { return Dragonfly(DragonflyParams{}, 5860); }

TEST(DragonflyParams, Archer2Counts) {
  const DragonflyParams p;
  EXPECT_EQ(p.total_switches(), 768u);
  EXPECT_EQ(p.total_node_ports(), 6144u);
  EXPECT_GE(p.global_links_per_group(), p.groups - 1);
}

TEST(Dragonfly, ConstructionValidatesGeometry) {
  // Not enough global links: 8 groups need a*h >= 7 but 2*1 = 2.
  DragonflyParams bad;
  bad.groups = 8;
  bad.switches_per_group = 2;
  bad.global_links_per_switch = 1;
  EXPECT_THROW(Dragonfly(bad, 10), InvalidArgument);

  // More nodes than ports.
  EXPECT_THROW(Dragonfly(DragonflyParams{}, 7000), InvalidArgument);
  // Degenerate group count.
  DragonflyParams one;
  one.groups = 1;
  EXPECT_THROW(Dragonfly(one, 8), InvalidArgument);
}

TEST(Dragonfly, NodeToSwitchToGroupMapping) {
  const Dragonfly d = archer2_fabric();
  EXPECT_EQ(d.switch_of_node(0), 0u);
  EXPECT_EQ(d.switch_of_node(7), 0u);
  EXPECT_EQ(d.switch_of_node(8), 1u);
  EXPECT_EQ(d.group_of_switch(0), 0u);
  EXPECT_EQ(d.group_of_switch(31), 0u);
  EXPECT_EQ(d.group_of_switch(32), 1u);
  EXPECT_EQ(d.group_of_node(8 * 32), 1u);
  EXPECT_THROW(d.switch_of_node(5860), InvalidArgument);
  EXPECT_THROW(d.group_of_switch(768), InvalidArgument);
}

TEST(Dragonfly, EveryGroupPairIsLinked) {
  const Dragonfly d = archer2_fabric();
  for (GroupId a = 0; a < 24; ++a) {
    for (GroupId b = 0; b < 24; ++b) {
      if (a == b) {
        EXPECT_FALSE(d.groups_linked(a, b));
      } else {
        ASSERT_TRUE(d.groups_linked(a, b)) << a << "->" << b;
        const SwitchId gw = d.gateway_switch(a, b);
        EXPECT_EQ(d.group_of_switch(gw), a);
      }
    }
  }
}

TEST(Dragonfly, GlobalNeighboursAreOtherGroups) {
  const Dragonfly d = archer2_fabric();
  for (SwitchId s = 0; s < 768; s += 37) {
    for (GroupId g : d.global_neighbours(s)) {
      EXPECT_NE(g, d.group_of_switch(s));
      EXPECT_LT(g, 24u);
    }
  }
}

TEST(Dragonfly, MinHopsCases) {
  const Dragonfly d = archer2_fabric();
  // Same switch.
  EXPECT_EQ(d.min_hops(0, 7), 0u);
  // Same group, different switches.
  EXPECT_EQ(d.min_hops(0, 8), 1u);
  // Different groups: at most local + global + local.
  const NodeId other_group = 8 * 32 * 3;  // group 3
  const std::size_t h = d.min_hops(0, other_group);
  EXPECT_GE(h, 1u);
  EXPECT_LE(h, 3u);
  // Symmetric-ish bound holds in both directions.
  EXPECT_LE(d.min_hops(other_group, 0), 3u);
}

TEST(Dragonfly, MinHopsDiameterBound) {
  const Dragonfly d = archer2_fabric();
  // Sweep a coarse grid of pairs: the dragonfly diameter is 3 links.
  for (NodeId a = 0; a < 5860; a += 731) {
    for (NodeId b = 0; b < 5860; b += 577) {
      ASSERT_LE(d.min_hops(a, b), 3u) << a << "," << b;
    }
  }
}

TEST(Dragonfly, MeanPairwiseHopsPrefersCompactPlacement) {
  const Dragonfly d = archer2_fabric();
  std::vector<NodeId> compact, scattered;
  for (NodeId i = 0; i < 64; ++i) {
    compact.push_back(i);                 // 8 adjacent switches, 1 group
    scattered.push_back(i * 91);          // spread across groups
  }
  EXPECT_LT(d.mean_pairwise_hops(compact),
            d.mean_pairwise_hops(scattered));
  EXPECT_THROW(d.mean_pairwise_hops({0}), InvalidArgument);
}

TEST(Dragonfly, LinkInventory) {
  const Dragonfly d = archer2_fabric();
  // Local: 24 groups x C(32,2); global: one per switch.
  EXPECT_EQ(d.local_link_count(), 24u * 32u * 31u / 2u);
  EXPECT_EQ(d.global_link_count(), 768u);
}

TEST(FabricPower, FlatWithLoadAndCountScaled) {
  const FabricPowerModel fabric(768, SwitchPowerModel{});
  EXPECT_NEAR(fabric.power(0.0).kw(), 153.6, 0.1);
  EXPECT_NEAR(fabric.power(1.0).kw(), 192.0, 0.1);
  // "Steady ... irrespective of system load": at most a 25% swing.
  EXPECT_LE(fabric.power(1.0).w() / fabric.power(0.0).w(), 1.25);
  EXPECT_THROW(FabricPowerModel(0, SwitchPowerModel{}), InvalidArgument);
}

}  // namespace
}  // namespace hpcem
