// Tests for job-trace serialisation.
#include <gtest/gtest.h>

#include <filesystem>

#include "util/error.hpp"
#include "workload/trace.hpp"

namespace hpcem {
namespace {

std::vector<JobSpec> sample_jobs() {
  JobSpec a;
  a.id = 1;
  a.app = "VASP (production)";
  a.nodes = 8;
  a.ref_runtime = Duration::hours(2.5);
  a.submit_time = sim_time_from_date({2022, 5, 9});
  a.requested_walltime = Duration::hours(5.0);
  a.silicon_factor = 1.05;

  JobSpec b;
  b.id = 2;
  b.app = "LAMMPS Ethanol";
  b.nodes = 4;
  b.ref_runtime = Duration::hours(1.0);
  b.submit_time = a.submit_time + Duration::minutes(10.0);
  b.requested_walltime = Duration::hours(2.0);
  b.user_pstate = pstates::kHighTurbo;
  b.silicon_factor = 0.97;
  return {a, b};
}

TEST(Trace, RoundTripPreservesJobs) {
  const auto jobs = sample_jobs();
  const auto parsed = jobs_from_csv(jobs_to_csv(jobs));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, 1u);
  EXPECT_EQ(parsed[0].app, "VASP (production)");
  EXPECT_EQ(parsed[0].nodes, 8u);
  EXPECT_NEAR(parsed[0].ref_runtime.hrs(), 2.5, 1e-3);
  EXPECT_FALSE(parsed[0].user_pstate.has_value());
  EXPECT_NEAR(parsed[0].silicon_factor, 1.05, 1e-6);
  ASSERT_TRUE(parsed[1].user_pstate.has_value());
  EXPECT_EQ(*parsed[1].user_pstate, pstates::kHighTurbo);
}

TEST(Trace, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "hpcem_jobs_test.csv";
  write_jobs_file(path, sample_jobs());
  const auto parsed = read_jobs_file(path);
  EXPECT_EQ(parsed.size(), 2u);
  std::filesystem::remove(path);
}

TEST(Trace, MalformedInputThrows) {
  EXPECT_THROW(jobs_from_csv("id,app\n1,x\n"), ParseError);  // cols missing
  const std::string header =
      "id,app,nodes,ref_runtime_s,submit_s,walltime_s,user_pstate,silicon\n";
  EXPECT_THROW(jobs_from_csv(header + "1,x,0,100,0,200,,1\n"), ParseError);
  EXPECT_THROW(jobs_from_csv(header + "1,x,abc,100,0,200,,1\n"), ParseError);
  EXPECT_THROW(jobs_from_csv(header + "1,x,4,100,0,200,3.70+turbo,1\n"),
               ParseError);
}

TEST(Trace, RecordsExportHasAccountingColumns) {
  JobRecord r;
  r.spec = sample_jobs()[0];
  r.start_time = r.spec.submit_time + Duration::minutes(5.0);
  r.end_time = r.start_time + Duration::hours(2.5);
  r.pstate = pstates::kMid;
  r.mode = DeterminismMode::kPerformanceDeterminism;
  r.node_energy = Energy::kwh(7.5);
  r.node_power_w = 375.0;
  const std::string csv = records_to_csv({r});
  EXPECT_NE(csv.find("node_energy_kwh"), std::string::npos);
  EXPECT_NE(csv.find("performance determinism"), std::string::npos);
  EXPECT_NE(csv.find("7.500"), std::string::npos);
  EXPECT_NE(csv.find("2.00"), std::string::npos);  // pstate code
}

TEST(Trace, JobRecordDerivedQuantities) {
  JobRecord r;
  r.spec = sample_jobs()[0];
  r.start_time = r.spec.submit_time + Duration::minutes(30.0);
  r.end_time = r.start_time + Duration::hours(2.0);
  EXPECT_NEAR(r.runtime().hrs(), 2.0, 1e-12);
  EXPECT_NEAR(r.wait_time().min(), 30.0, 1e-12);
  EXPECT_NEAR(r.node_hours(), 16.0, 1e-12);
}

}  // namespace
}  // namespace hpcem
