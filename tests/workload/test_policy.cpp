// Tests for the operating-policy resolution logic (§4.2 opt-out rules).
#include <gtest/gtest.h>

#include "workload/catalog.hpp"
#include "workload/policy.hpp"

namespace hpcem {
namespace {

class PolicyTest : public ::testing::Test {
 protected:
  NodePowerParams np_;
  AppCatalog cat_ = AppCatalog::archer2(np_);
};

TEST_F(PolicyTest, FactoryPoliciesMatchThePaperTimeline) {
  const auto base = OperatingPolicy::baseline();
  EXPECT_EQ(base.bios_mode, DeterminismMode::kPowerDeterminism);
  EXPECT_EQ(base.default_pstate, pstates::kHighTurbo);

  const auto perfdet = OperatingPolicy::performance_determinism();
  EXPECT_EQ(perfdet.bios_mode, DeterminismMode::kPerformanceDeterminism);
  EXPECT_EQ(perfdet.default_pstate, pstates::kHighTurbo);

  const auto lowfreq = OperatingPolicy::low_frequency_default();
  EXPECT_EQ(lowfreq.bios_mode, DeterminismMode::kPerformanceDeterminism);
  EXPECT_EQ(lowfreq.default_pstate, pstates::kMid);
  EXPECT_TRUE(lowfreq.auto_revert_enabled);
  EXPECT_DOUBLE_EQ(lowfreq.revert_threshold, 0.10);
}

TEST_F(PolicyTest, UserChoiceAlwaysWins) {
  const auto policy = OperatingPolicy::low_frequency_default();
  JobSpec job;
  job.user_pstate = pstates::kLow;
  // Even a compute-bound app that would auto-revert gets the user's pick.
  EXPECT_EQ(policy.resolve_pstate(cat_.at("LAMMPS Ethanol"), job),
            pstates::kLow);
  job.user_pstate = pstates::kHighTurbo;
  EXPECT_EQ(policy.resolve_pstate(cat_.at("VASP CdTe"), job),
            pstates::kHighTurbo);
}

TEST_F(PolicyTest, ComputeBoundAppsAutoRevert) {
  const auto policy = OperatingPolicy::low_frequency_default();
  // LAMMPS Ethanol: published perf ratio 0.74 => 35% slowdown >> 10%.
  EXPECT_TRUE(policy.auto_reverts(cat_.at("LAMMPS Ethanol")));
  JobSpec job;
  EXPECT_EQ(policy.resolve_pstate(cat_.at("LAMMPS Ethanol"), job),
            pstates::kHighTurbo);
}

TEST_F(PolicyTest, MemoryBoundAppsFollowTheDefault) {
  const auto policy = OperatingPolicy::low_frequency_default();
  // VASP CdTe: published perf ratio 0.95 => ~5% slowdown < 10%.
  EXPECT_FALSE(policy.auto_reverts(cat_.at("VASP CdTe")));
  JobSpec job;
  EXPECT_EQ(policy.resolve_pstate(cat_.at("VASP CdTe"), job),
            pstates::kMid);
}

TEST_F(PolicyTest, RevertSetMatchesPublishedPerfRatios) {
  // Exactly the Table 4 benchmarks with >10% published slowdown must
  // revert: GROMACS (0.83), LAMMPS (0.74), Nektar++ (0.80), CP2K (0.91 ->
  // 9.9% stays), CASTEP (0.93 stays), ONETEP (0.92 stays), VASP (0.95).
  const auto policy = OperatingPolicy::low_frequency_default();
  EXPECT_TRUE(policy.auto_reverts(cat_.at("GROMACS 1400k")));
  EXPECT_TRUE(policy.auto_reverts(cat_.at("Nektar++ TGV 128 DoF")));
  EXPECT_FALSE(policy.auto_reverts(cat_.at("CP2K H2O 2048")));
  EXPECT_FALSE(policy.auto_reverts(cat_.at("CASTEP Al Slab")));
  EXPECT_FALSE(policy.auto_reverts(cat_.at("ONETEP hBN-BP-hBN")));
}

TEST_F(PolicyTest, NoRevertWhenDefaultIsTurbo) {
  const auto policy = OperatingPolicy::baseline();
  EXPECT_FALSE(policy.auto_reverts(cat_.at("LAMMPS Ethanol")));
  JobSpec job;
  EXPECT_EQ(policy.resolve_pstate(cat_.at("LAMMPS Ethanol"), job),
            pstates::kHighTurbo);
}

TEST_F(PolicyTest, DisablingAutoRevertForcesTheDefault) {
  OperatingPolicy policy = OperatingPolicy::low_frequency_default();
  policy.auto_revert_enabled = false;
  JobSpec job;
  EXPECT_EQ(policy.resolve_pstate(cat_.at("LAMMPS Ethanol"), job),
            pstates::kMid);
}

TEST_F(PolicyTest, ThresholdControlsTheRevertSet) {
  OperatingPolicy loose = OperatingPolicy::low_frequency_default();
  loose.revert_threshold = 0.50;  // nothing is half as slow at 2.0 GHz
  OperatingPolicy strict = OperatingPolicy::low_frequency_default();
  strict.revert_threshold = 0.01;  // nearly everything reverts
  std::size_t loose_count = 0, strict_count = 0;
  for (const auto* app : cat_.production_mix()) {
    if (loose.auto_reverts(*app)) ++loose_count;
    if (strict.auto_reverts(*app)) ++strict_count;
  }
  EXPECT_EQ(loose_count, 0u);
  EXPECT_EQ(strict_count, cat_.production_mix().size());
}

}  // namespace
}  // namespace hpcem
