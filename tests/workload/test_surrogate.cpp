// Tests for the AI-surrogate replacement study.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/catalog.hpp"
#include "workload/surrogate.hpp"

namespace hpcem {
namespace {

class SurrogateTest : public ::testing::Test {
 protected:
  NodePowerParams np_;
  AppCatalog cat_ = AppCatalog::archer2(np_);
  const ApplicationModel& um_ = cat_.at("UM atmosphere (production)");

  SurrogateStudy make(SurrogateSpec spec = {}) const {
    return SurrogateStudy(um_, spec, 128, Duration::hours(6.0));
  }
};

TEST_F(SurrogateTest, PerRunEnergyArithmetic) {
  const auto study = make();
  const double original = study.original_run_energy().to_kwh();
  // 128 nodes * ~462 W * 6 h ~ 355 kWh.
  EXPECT_NEAR(original, 128.0 * 0.462 * 6.0, 5.0);
  // Default spec: 80% coverage replaced at 5% node-hours x1.2 power.
  const double expected =
      original * (0.8 * 0.05 * 1.2 + 0.2);
  EXPECT_NEAR(study.surrogate_run_energy().to_kwh(), expected, 1.0);
  EXPECT_NEAR(study.saving_per_run().to_kwh(), original - expected, 1.0);
}

TEST_F(SurrogateTest, BreakEvenAmortisesTraining) {
  const auto study = make();
  const double runs = study.break_even_runs();
  // 20 MWh training / ~270 kWh per-run saving ~ 74 runs.
  EXPECT_GT(runs, 40.0);
  EXPECT_LT(runs, 120.0);
  // Exactly at break-even the campaign saving crosses zero.
  const auto at = study.campaign(
      static_cast<std::size_t>(runs) + 1, CarbonIntensity::g_per_kwh(200));
  EXPECT_GT(at.saving_fraction, 0.0);
  const auto before =
      study.campaign(static_cast<std::size_t>(runs) / 2,
                     CarbonIntensity::g_per_kwh(200));
  EXPECT_LT(before.saving_fraction, 0.0);  // training not yet paid back
}

TEST_F(SurrogateTest, LargeCampaignApproachesAsymptoticSaving) {
  const auto study = make();
  const auto big =
      study.campaign(100000, CarbonIntensity::g_per_kwh(200.0));
  // Asymptote: 1 - (0.8*0.05*1.2 + 0.2) = 0.752.
  EXPECT_NEAR(big.saving_fraction, 0.752, 0.01);
  EXPECT_GT(big.scope2_saved.t(), 0.0);
}

TEST_F(SurrogateTest, FullCoverageSavesMost) {
  SurrogateSpec full;
  full.coverage = 1.0;
  const auto full_study = make(full);
  const auto partial_study = make();
  EXPECT_GT(full_study.saving_per_run().j(),
            partial_study.saving_per_run().j());
}

TEST_F(SurrogateTest, CheapTrainingBreaksEvenSooner) {
  SurrogateSpec cheap;
  cheap.training_energy = Energy::mwh(2.0);
  EXPECT_LT(make(cheap).break_even_runs(), make().break_even_runs());
}

TEST_F(SurrogateTest, ValidationErrors) {
  SurrogateSpec bad;
  bad.node_hour_ratio = 0.0;
  EXPECT_THROW(make(bad), InvalidArgument);
  bad = {};
  bad.node_hour_ratio = 1.0;
  EXPECT_THROW(make(bad), InvalidArgument);
  bad = {};
  bad.coverage = 0.0;
  EXPECT_THROW(make(bad), InvalidArgument);
  bad = {};
  bad.power_factor = -1.0;
  EXPECT_THROW(make(bad), InvalidArgument);
  // A surrogate that burns more than it replaces is rejected outright:
  // coverage * ratio * power >= coverage would mean no saving.
  bad = {};
  bad.node_hour_ratio = 0.9;
  bad.power_factor = 1.5;
  EXPECT_THROW(make(bad), InvalidArgument);
  // Degenerate geometry.
  SurrogateSpec ok;
  EXPECT_THROW(SurrogateStudy(um_, ok, 0, Duration::hours(1.0)),
               InvalidArgument);
  EXPECT_THROW(SurrogateStudy(um_, ok, 1, Duration::hours(0.0)),
               InvalidArgument);
  const auto study = make();
  EXPECT_THROW(study.campaign(0, CarbonIntensity::g_per_kwh(100.0)),
               InvalidArgument);
}

}  // namespace
}  // namespace hpcem
