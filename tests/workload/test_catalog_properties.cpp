// Catalogue-wide property sweep: physical invariants that every entry —
// benchmark or production, present or future — must satisfy at every
// operating point.  Parameterised over the application names so a failure
// pinpoints the offending entry.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "workload/catalog.hpp"
#include "workload/policy.hpp"

namespace hpcem {
namespace {

std::vector<std::string> all_app_names() {
  const NodePowerParams np;
  const AppCatalog cat = AppCatalog::archer2(np);
  std::vector<std::string> names;
  for (const auto& app : cat.apps()) names.push_back(app.name());
  return names;
}

class CatalogSweep : public ::testing::TestWithParam<std::string> {
 protected:
  NodePowerParams np_;
  AppCatalog cat_ = AppCatalog::archer2(np_);
  const ApplicationModel& app() const { return cat_.at(GetParam()); }
};

TEST_P(CatalogSweep, PowerMonotoneInFrequencyUnderBothModes) {
  for (DeterminismMode mode : {DeterminismMode::kPowerDeterminism,
                               DeterminismMode::kPerformanceDeterminism}) {
    double prev = 0.0;
    for (const PState& ps : {pstates::kLow, pstates::kMid,
                             pstates::kHighNoTurbo, pstates::kHighTurbo}) {
      const double w = app().node_draw(mode, ps).w();
      EXPECT_GT(w, prev) << to_string(ps);
      EXPECT_GT(w, np_.idle.w());      // loaded beats idle
      EXPECT_LT(w, 900.0);             // within the platform envelope
      prev = w;
    }
  }
}

TEST_P(CatalogSweep, RuntimeNeverImprovesWhenDownclocking) {
  const auto mode = DeterminismMode::kPerformanceDeterminism;
  const double at_turbo = app().time_factor(mode, pstates::kHighTurbo);
  const double at_mid = app().time_factor(mode, pstates::kMid);
  const double at_low = app().time_factor(mode, pstates::kLow);
  EXPECT_LE(at_turbo, at_mid);
  EXPECT_LE(at_mid, at_low);
  EXPECT_NEAR(at_turbo, 1.0, 1e-12);  // reference conditions
}

TEST_P(CatalogSweep, PowerDeterminismCostsEnergyNotMuchTime) {
  const double e = app().energy_ratio(
      DeterminismMode::kPerformanceDeterminism, pstates::kHighTurbo,
      DeterminismMode::kPowerDeterminism, pstates::kHighTurbo);
  const double p = app().perf_ratio(
      DeterminismMode::kPerformanceDeterminism, pstates::kHighTurbo,
      DeterminismMode::kPowerDeterminism, pstates::kHighTurbo);
  // Performance determinism always saves energy (Table 3's direction) at
  // no more than ~1.5% performance.
  EXPECT_LT(e, 1.0);
  EXPECT_GT(e, 0.80);
  EXPECT_GE(p, 0.985);
  EXPECT_LE(p, 1.0 + 1e-12);
}

TEST_P(CatalogSweep, TwoGhzAlwaysImprovesEnergyToSolution) {
  // The paper: "All the application benchmarks are more energy efficient
  // at 2.0 GHz" — enforced catalogue-wide.
  const auto mode = DeterminismMode::kPerformanceDeterminism;
  const double e = app().energy_ratio(mode, pstates::kMid, mode,
                                      pstates::kHighTurbo);
  EXPECT_LT(e, 0.97);
  EXPECT_GT(e, 0.60);
}

TEST_P(CatalogSweep, ProfileIsPhysical) {
  EXPECT_GE(app().profile().core_w, 0.0);
  EXPECT_GE(app().profile().uncore_w, 0.0);
  EXPECT_NEAR(np_.idle.w() + app().profile().total_w(),
              app().spec().loaded_node_w, 1e-6);
  EXPECT_GE(app().spec().beta, 0.0);
  EXPECT_LE(app().spec().beta + app().spec().comm_fraction, 1.0 + 1e-12);
}

TEST_P(CatalogSweep, PolicyResolutionTotalOrder) {
  // Under the paper's final policy, the resolved P-state is either the
  // default or the turbo revert — never anything else.
  const OperatingPolicy policy = OperatingPolicy::low_frequency_default();
  JobSpec probe;
  const PState ps = policy.resolve_pstate(app(), probe);
  EXPECT_TRUE(ps == pstates::kMid || ps == pstates::kHighTurbo);
  // And the revert fires exactly when the slowdown exceeds the threshold.
  const double slowdown = app().expected_slowdown(
      policy.bios_mode, policy.default_pstate);
  EXPECT_EQ(ps == pstates::kHighTurbo, slowdown > policy.revert_threshold);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CatalogSweep, ::testing::ValuesIn(all_app_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hpcem
