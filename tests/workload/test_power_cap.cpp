// Tests for the node power-capping model.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/power_cap.hpp"

namespace hpcem {
namespace {

class PowerCapTest : public ::testing::Test {
 protected:
  NodePowerParams np_;
  AppCatalog cat_ = AppCatalog::archer2(np_);
  const ApplicationModel& vasp_ = cat_.at("VASP (production)");
  const ApplicationModel& lammps_ = cat_.at("LAMMPS (production)");
};

TEST_F(PowerCapTest, GenerousCapDoesNotThrottle) {
  const auto point = apply_power_cap(vasp_, Power::watts(600.0));
  EXPECT_FALSE(point.throttled);
  EXPECT_NEAR(point.effective.to_ghz(), 2.8, 1e-9);
  EXPECT_NEAR(point.time_factor, 1.0, 1e-9);
  EXPECT_NEAR(point.node_power.w(), vasp_.spec().loaded_node_w, 1e-6);
}

TEST_F(PowerCapTest, BindingCapSettlesExactlyAtTheCap) {
  const Power cap = Power::watts(400.0);
  const auto point = apply_power_cap(vasp_, cap);
  EXPECT_TRUE(point.throttled);
  EXPECT_NEAR(point.node_power.w(), 400.0, 0.5);
  EXPECT_LT(point.effective.to_ghz(), 2.8);
  EXPECT_GT(point.effective.to_ghz(), kMinThrottleGhz);
  EXPECT_GT(point.time_factor, 1.0);
}

TEST_F(PowerCapTest, TighterCapsThrottleHarder) {
  double prev_f = 10.0;
  double prev_t = 0.0;
  for (double cap_w : {450.0, 420.0, 390.0, 360.0}) {
    const auto p = apply_power_cap(vasp_, Power::watts(cap_w));
    EXPECT_LT(p.effective.to_ghz(), prev_f);
    EXPECT_GT(p.time_factor, prev_t);
    prev_f = p.effective.to_ghz();
    prev_t = p.time_factor;
  }
}

TEST_F(PowerCapTest, UnreachableCapBottomsOutAtTheFloor) {
  // Idle + uncore power cannot be capped away: a 100 W cap is unreachable.
  const auto p = apply_power_cap(vasp_, Power::watts(100.0));
  EXPECT_TRUE(p.throttled);
  EXPECT_NEAR(p.effective.to_ghz(), kMinThrottleGhz, 1e-9);
  EXPECT_GT(p.node_power.w(), 100.0);
  EXPECT_THROW(apply_power_cap(vasp_, Power::watts(0.0)), InvalidArgument);
}

TEST_F(PowerCapTest, CapCostsClockSensitiveHotCodesMost) {
  // The structural contrast with the frequency lever: under a uniform cap
  // the hot compute-dense code (LAMMPS) sheds far more power — and, being
  // clock-sensitive, pays far more runtime — than the cooler code (VASP).
  // (The *clocks* land close together: a steep f·V² curve sheds watts per
  // MHz quickly, so equal draw does not mean equal frequency.)
  const Power cap = Power::watts(400.0);
  const auto vasp = apply_power_cap(vasp_, cap);
  const auto lammps = apply_power_cap(lammps_, cap);
  ASSERT_TRUE(vasp.throttled);
  ASSERT_TRUE(lammps.throttled);
  EXPECT_GT(lammps_.spec().loaded_node_w, vasp_.spec().loaded_node_w);
  EXPECT_GT(lammps.time_factor, vasp.time_factor + 0.05);
}

TEST_F(PowerCapTest, CapForTargetDrawInvertsTheMean) {
  const Power target = Power::watts(400.0);
  const auto cap = cap_for_target_draw(cat_, target);
  ASSERT_TRUE(cap.has_value());
  const double achieved = cat_.mix_average([&](const ApplicationModel& a) {
    return apply_power_cap(a, *cap).node_power.w();
  });
  EXPECT_NEAR(achieved, 400.0, 2.0);
}

TEST_F(PowerCapTest, ImpossibleTargetReturnsNullopt) {
  EXPECT_FALSE(cap_for_target_draw(cat_, Power::watts(250.0)).has_value());
  EXPECT_THROW(cap_for_target_draw(cat_, Power::watts(0.0)),
               InvalidArgument);
}

TEST_F(PowerCapTest, ComparisonRowsCoverTheMix) {
  const auto rows = compare_cap_vs_frequency(cat_, Power::watts(380.0));
  EXPECT_EQ(rows.size(), cat_.production_mix().size());
  for (const auto& r : rows) {
    EXPECT_GE(r.cap_time_factor, 1.0);
    EXPECT_GE(r.freq_time_factor, 1.0);
    EXPECT_LE(r.cap_node_w, 380.5);
    EXPECT_GT(r.freq_node_w, 230.0);
  }
}

TEST_F(PowerCapTest, MatchedDrawDifferentVictims) {
  // At a cap matched to the 2.0 GHz fleet draw, the worst-hit app under
  // the cap (hottest) differs from the worst-hit under the frequency
  // default (most clock-sensitive among non-reverted)... at minimum, the
  // per-app orderings must differ somewhere.
  const double freq_mean = cat_.mix_average([](const ApplicationModel& a) {
    return a.node_draw(DeterminismMode::kPerformanceDeterminism,
                       pstates::kMid)
        .w();
  });
  const auto cap = cap_for_target_draw(cat_, Power::watts(freq_mean));
  ASSERT_TRUE(cap.has_value());
  const auto rows = compare_cap_vs_frequency(cat_, *cap);
  bool cap_worse_somewhere = false;
  bool freq_worse_somewhere = false;
  for (const auto& r : rows) {
    if (r.cap_time_factor > r.freq_time_factor + 0.01) {
      cap_worse_somewhere = true;
    }
    if (r.freq_time_factor > r.cap_time_factor + 0.01) {
      freq_worse_somewhere = true;
    }
  }
  EXPECT_TRUE(cap_worse_somewhere);
  EXPECT_TRUE(freq_worse_somewhere);
}

}  // namespace
}  // namespace hpcem
